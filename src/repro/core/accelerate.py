"""Pass 3 — Accelerate accesses with reference accelerators (paper Sec. IV-B).

Two rewrite patterns offload a stage's loads to Pipette RAs:

* **indirect**: ``v = load @arr[idx]; enq(q, v)`` with ``v`` otherwise
  unused becomes ``enq(ra_in, idx)`` plus an INDIRECT RA on ``arr`` feeding
  ``q``. Consecutive rewrites against the same array and output queue share
  one RA (that is how ``nodes[v]``/``nodes[v+1]`` ride a single engine).
* **scan**: a loop that is exactly ``for (e = lo; e < hi; e++) { v = load
  @arr[e]; enq(q, v); }`` becomes ``enq(ra_in, lo); enq(ra_in, hi)`` plus a
  SCAN RA.

After rewriting, control values the stage still sends into the offloaded
queue are retargeted to the RA's input (RAs forward control values), and
stages reduced to pure pass-throughs are chained away: an RA fed only by
``x = deq(q_up); enq(ra_in, x)`` pairs plugs directly into ``q_up``,
yielding the paper's chained RAs, with the empty middle stage deleted.
"""

from ..ir import stmts as S
from ..ir.program import RA_INDIRECT, RA_SCAN, QueueSpec, RASpec
from ..ir.stmts import walk
from ..ir.values import is_array_symbol
from .cleanup import cleanup_stage
from .decouple import drop_trivial_stages


def _uses_count(stage, reg):
    count = 0
    for stmt in stage.all_stmts():
        if reg in stmt.uses():
            count += 1
    return count


class _RABuilder:
    def __init__(self, pipeline, max_ras, capacity):
        self.pipeline = pipeline
        self.max_ras = max_ras
        self.capacity = capacity
        self.next_raid = 0
        self.next_qid = (max(pipeline.queues) + 1) if pipeline.queues else 0
        self.by_target = {}  # (array, out_qid) -> RASpec

    def get(self, array, out_qid, mode, stage):
        key = (array, out_qid, mode)
        spec = self.by_target.get(key)
        if spec is not None:
            return spec
        if self.next_raid >= self.max_ras:
            return None
        in_qid = self.next_qid
        self.next_qid += 1
        spec = RASpec(self.next_raid, mode, array, in_qid, out_qid)
        self.next_raid += 1
        self.by_target[key] = spec
        self.pipeline.ras.append(spec)
        self.pipeline.queues[in_qid] = QueueSpec(
            in_qid, ("stage", stage.index), ("ra", spec.raid), self.capacity, "ra%d.in" % spec.raid
        )
        out_spec = self.pipeline.queues[out_qid]
        out_spec.producer = ("ra", spec.raid)
        return spec


def apply_reference_accelerators(pipeline, max_ras=4, capacity=24):
    """Offload qualifying loads to RAs; chain and drop emptied stages."""
    builder = _RABuilder(pipeline, max_ras, capacity)
    changed = False
    for stage in pipeline.stages:
        changed |= _rewrite_stage(builder, pipeline, stage)
    if changed:
        _chain_ras(pipeline)
        for stage in pipeline.stages:
            cleanup_stage(stage)
        drop_trivial_stages(pipeline)
        pipeline.meta.setdefault("passes", []).append("ra")
    return pipeline


def _rewrite_stage(builder, pipeline, stage):
    """Offload a stage's loads queue by queue.

    A queue is offloadable only when *every* enqueue the stage performs
    into it is covered by pattern instances against one array in one mode —
    a partially-offloaded queue would interleave loaded values with raw
    data and corrupt the stream.
    """
    instances = _collect_instances(pipeline, stage)
    by_queue = {}
    for inst in instances:
        by_queue.setdefault(inst["queue"], []).append(inst)

    changed = False
    for qid, insts in sorted(by_queue.items()):
        total_enqs = [
            s for s in walk(stage.body) if s.kind == "enq" and s.queue == qid
        ]
        covered = set()
        for inst in insts:
            covered.update(id(s) for s in inst["covers"])
        if any(id(s) not in covered for s in total_enqs):
            continue
        arrays = {inst["array"] for inst in insts}
        modes = {inst["mode"] for inst in insts}
        if len(arrays) != 1 or len(modes) != 1:
            continue
        spec = builder.get(arrays.pop(), qid, modes.pop(), stage)
        if spec is None:
            continue  # out of RAs
        for inst in insts:
            _apply_instance(stage.body, inst, spec)
        # Control values the stage still sends into the offloaded queue now
        # enter at the RA input; the engine forwards them.
        for root in [stage.body] + list(stage.handlers.values()):
            for stmt in walk(root):
                if stmt.kind == "enq_ctrl" and stmt.queue == qid:
                    stmt.queue = spec.in_queue
        changed = True
    return changed


def _collect_instances(pipeline, stage):
    """Find offloadable patterns without mutating anything."""
    out = []

    def visit(body):
        for index, stmt in enumerate(body):
            # Scan: a loop that only streams one array into one queue. A
            # matched scan subsumes the indirect pair inside it, so the
            # loop body is not visited separately.
            if (
                stmt.kind == "for"
                and stmt.step == 1
                and len(stmt.body) == 2
                and stmt.body[0].kind == "load"
                and stmt.body[1].kind == "enq"
                and is_array_symbol(stmt.body[0].array)
                and stmt.body[0].index == stmt.var
                and stmt.body[1].value == stmt.body[0].dst
                and _uses_count(stage, stmt.body[0].dst) == 1
                and _stage_produces(pipeline, stage, stmt.body[1].queue)
            ):
                out.append(
                    {
                        "mode": RA_SCAN,
                        "array": stmt.body[0].array,
                        "queue": stmt.body[1].queue,
                        "covers": [stmt.body[1]],
                        "anchor": stmt,
                        "body": body,
                    }
                )
                continue
            for block in stmt.blocks():
                visit(block)
            # Indirect: a load immediately and solely forwarded.
            if (
                stmt.kind == "load"
                and is_array_symbol(stmt.array)
                and index + 1 < len(body)
                and body[index + 1].kind == "enq"
                and body[index + 1].value == stmt.dst
                and _uses_count(stage, stmt.dst) == 1
                and _stage_produces(pipeline, stage, body[index + 1].queue)
            ):
                out.append(
                    {
                        "mode": RA_INDIRECT,
                        "array": stmt.array,
                        "queue": body[index + 1].queue,
                        "covers": [body[index + 1]],
                        "anchor": stmt,
                        "body": body,
                    }
                )

    visit(stage.body)
    return out


def _apply_instance(body, inst, spec):
    anchor = inst["anchor"]
    holder = inst["body"]
    position = holder.index(anchor)
    if inst["mode"] == RA_SCAN:
        holder[position : position + 1] = [
            S.Enq(spec.in_queue, anchor.lo),
            S.Enq(spec.in_queue, anchor.hi),
        ]
    else:
        holder[position : position + 2] = [S.Enq(spec.in_queue, anchor.index)]


def _stage_produces(pipeline, stage, qid):
    spec = pipeline.queues.get(qid)
    return spec is not None and spec.producer == ("stage", stage.index)


def _chain_ras(pipeline):
    """Remove pass-through plumbing: ``x = deq(q_up); enq(ra_in, x)``.

    When a stage's only use of an upstream queue is to feed an RA input in
    order, the RA can consume the upstream queue directly (a chained RA).
    """
    for stage in pipeline.stages:
        changed = True
        while changed:
            changed = False
            pairs = _passthrough_pairs(stage, pipeline)
            for q_up, ra_in, stmts in pairs:
                in_spec = pipeline.queues[ra_in]
                if in_spec.consumer[0] != "ra":
                    continue
                if q_up in stage.handlers:
                    continue
                ra = next(r for r in pipeline.ras if r.raid == in_spec.consumer[1])
                # Record control-value positions relative to the dequeues
                # *before* mutating the body: a marker at the same loop
                # depth as the dequeues fires once per pass-through unit, a
                # marker one level out fires once per enclosing iteration.
                deq_stmt = next(s for s in stmts if s.kind == "deq")
                deq_depth = len(_loop_chain(stage.body, deq_stmt) or ())
                ctrls = [
                    (s, deq_depth - len(_loop_chain(stage.body, s) or ()))
                    for s in walk(stage.body)
                    if s.kind == "enq_ctrl" and s.queue == ra_in
                ]
                # Rewire: the RA consumes the upstream queue directly.
                up_spec = pipeline.queues[q_up]
                up_spec.consumer = ("ra", ra.raid)
                ra.in_queue = q_up
                _remove_stmts(stage.body, stmts)
                del pipeline.queues[ra_in]
                # Control values this stage injected into the (now deleted)
                # RA input must originate upstream instead: the upstream
                # producer sends them into q_up and the chain forwards them.
                _relocate_ctrl(pipeline, stage, ctrls, q_up)
                changed = True
                break


def _relocate_ctrl(pipeline, stage, ctrls, q_up):
    """Move control enqueues into q_up's producer, preserving multiplicity.

    ``ctrls`` is a list of ``(stmt, k)`` where ``k`` is how many loop
    levels separated the marker from the pass-through dequeues: ``k == 0``
    markers fired once per unit (e.g. per-vertex NEXT) and are re-emitted
    right after the upstream enqueues; ``k == 1`` markers fired once per
    enclosing iteration and land after the upstream's innermost enqueue
    loop, and so on.
    """
    if not ctrls:
        return
    _remove_stmts(stage.body, [s for s, _ in ctrls])
    # Walk up through any RA chain: control values enter at the first
    # stage-produced queue and are forwarded through the engines.
    up_spec = pipeline.queues[q_up]
    while up_spec.producer[0] == "ra":
        ra = next(r for r in pipeline.ras if r.raid == up_spec.producer[1])
        q_up = ra.in_queue
        up_spec = pipeline.queues[q_up]
    if up_spec.producer[0] != "stage":
        return
    upstream = next(s for s in pipeline.stages if s.index == up_spec.producer[1])
    enqs = [s for s in walk(upstream.body) if s.kind == "enq" and s.queue == q_up]
    if not enqs:
        return
    last_enq = enqs[-1]
    chain = _loop_chain(upstream.body, last_enq) or ()
    for ctrl, k in ctrls:
        moved = S.EnqCtrl(q_up, ctrl.ctrl)
        if k <= 0:
            container = _container_of(upstream.body, last_enq)
            container.insert(container.index(last_enq) + 1, moved)
        else:
            depth = min(k, len(chain))
            anchor = chain[-depth] if depth else None
            if anchor is None:
                upstream.body.append(moved)
            else:
                container = _container_of(upstream.body, anchor)
                container.insert(container.index(anchor) + 1, moved)


def _loop_chain(body, target, chain=()):
    for stmt in body:
        if stmt is target:
            return chain
        for block in stmt.blocks():
            ext = chain + (stmt,) if stmt.kind in ("for", "loop") else chain
            found = _loop_chain(block, target, ext)
            if found is not None:
                return found
    return None


def _container_of(body, target):
    for stmt in body:
        if stmt is target:
            return body
    for stmt in body:
        for block in stmt.blocks():
            found = _container_of(block, target)
            if found is not None:
                return found
    return None


def _passthrough_pairs(stage, pipeline):
    """Find (upstream_queue, ra_input_queue, stmts) fully-forwarded routes."""
    routes = {}
    blockers = set()
    reg_sources = {}
    for stmt in walk(stage.body):
        if stmt.kind == "deq":
            reg_sources[stmt.dst] = (stmt.queue, stmt)
        elif stmt.kind == "enq":
            src = reg_sources.get(stmt.value)
            if src is None:
                blockers.add(stmt.queue)
                continue
            q_up, deq_stmt = src
            routes.setdefault((q_up, stmt.queue), []).extend([deq_stmt, stmt])
        elif stmt.kind in ("enq_ctrl", "peek"):
            pass
    result = []
    for (q_up, q_down), stmts in routes.items():
        if q_down in blockers:
            continue
        # Pass-throughs inside a control-value-terminated Loop would leave
        # an empty infinite loop behind; only chain For-level plumbing.
        if any(
            (lambda ch: ch and ch[-1].kind == "loop")(_loop_chain(stage.body, s))
            for s in stmts
            if s.kind == "deq"
        ):
            continue
        # Every deq of q_up must feed q_down and nothing else; every enq of
        # q_down must come from q_up.
        deqs = [s for s in walk(stage.body) if s.kind == "deq" and s.queue == q_up]
        enqs = [s for s in walk(stage.body) if s.kind == "enq" and s.queue == q_down]
        involved = {id(s) for s in stmts}
        if any(id(s) not in involved for s in deqs + enqs):
            continue
        regs = {s.dst for s in deqs}
        extra_uses = 0
        for stmt in stage.all_stmts():
            if stmt.kind == "enq" and stmt.queue == q_down:
                continue
            extra_uses += sum(1 for r in stmt.uses() if r in regs)
        if extra_uses:
            continue
        result.append((q_up, q_down, stmts))
    return result


def _remove_stmts(body, victims):
    ids = {id(v) for v in victims}
    kept = []
    for stmt in body:
        if id(stmt) in ids:
            continue
        for block in stmt.blocks():
            _remove_stmts(block, victims)
        kept.append(stmt)
    body[:] = kept
