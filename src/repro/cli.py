"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's artifact would be driven:

* ``emit FILE.c`` — run the Phloem compiler on a mini-C kernel and print
  the pipeline (pseudo-C, IR, or a one-line summary);
* ``lint [FILE.c | --bench NAME|all]`` — run the static pipeline-safety
  analyzer (:mod:`repro.analysis.sanitize`) and print coded diagnostics
  (``PHL...``); exits non-zero when any error-severity finding exists;
* ``demo BENCH`` — run one benchmark (bfs/cc/prd/radii/spmm) on a synthetic
  input, comparing serial / data-parallel / Phloem / manual;
* ``search BENCH`` — run the profile-guided pipeline search and print the
  Fig. 13-style distribution;
* ``figures [NAME...]`` — regenerate evaluation figures (fig6..fig14);
* ``trace BENCH`` — run one benchmark with cycle-domain tracing on and
  write a Chrome trace-event file (load it at ui.perfetto.dev);
* ``metrics BENCH`` — run the comparison suite and emit structured
  JSONL RunRecords (:mod:`repro.obs.record`).

``--quiet`` (or ``REPRO_QUIET=1``) silences the stderr telemetry
(wall-clock/cache chatter); figure results on stdout are unaffected.
"""

import argparse
import sys
import time

from .core import ALL_PASSES, CompileOptions, compile_function, emit_pipeline, pipeline_summary
from .frontend import compile_source
from .ir import format_pipeline
from .pipette import SCALED_1CORE


def _cmd_emit(args):
    with open(args.file) as handle:
        source = handle.read()
    function = compile_source(source, name=args.name)
    passes = ALL_PASSES if args.passes is None else tuple(args.passes.split(","))
    passes = tuple(p for p in passes if p)
    options = CompileOptions(
        num_stages=args.stages, passes=passes, verify_each=args.verify_each
    )
    pipeline = compile_function(function, options=options)
    if args.format == "summary":
        print(pipeline_summary(pipeline))
    elif args.format == "ir":
        print(format_pipeline(pipeline))
    elif args.format == "diagram":
        from .core.viz import ascii_diagram

        print(ascii_diagram(pipeline))
    else:
        print(emit_pipeline(pipeline))
    return 0


def _cmd_lint(args):
    import json

    from .analysis.sanitize import lint_source

    targets = []
    if args.bench is not None:
        from .workloads import ALL_BENCHMARKS

        if args.bench != "all" and args.bench not in ALL_BENCHMARKS:
            print(
                "unknown benchmark %r (choose from %s, all)"
                % (args.bench, ", ".join(sorted(ALL_BENCHMARKS)))
            )
            return 2
        names = sorted(ALL_BENCHMARKS) if args.bench == "all" else [args.bench]
        for bench in names:
            targets.append((bench, ALL_BENCHMARKS[bench].SOURCE, None, None))
    if args.file is not None:
        with open(args.file) as handle:
            targets.append((args.file, handle.read(), args.name, args.file))
    if not targets:
        print("lint: give a FILE.c, --bench NAME, or --bench all")
        return 2

    passes = ALL_PASSES if args.passes is None else tuple(p for p in args.passes.split(",") if p)
    options = CompileOptions(
        num_stages=args.stages, passes=passes, verify_each=args.verify_each
    )
    failed = False
    reports = []
    for label, source, name, path in targets:
        diags = lint_source(source, name=name, options=options, file=path)
        failed = failed or diags.has_errors
        if args.json:
            reports.append(
                {
                    "target": label,
                    "diagnostics": [d.as_dict() for d in diags.sorted()],
                    "errors": len(diags.errors()),
                    "warnings": len(diags.warnings()),
                }
            )
        elif len(diags) == 0:
            print("%s: clean" % label)
        else:
            print("%s:" % label)
            for line in diags.render_text().splitlines():
                print("  " + line)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    return 1 if failed else 0


#: The variants `demo` runs and prints, in order (all use the unified
#: adapter + run_suite path; "phloem-static" is the compiled pipeline).
_DEMO_VARIANTS = ("serial", "data-parallel", "phloem-static", "manual")


def _demo_input(args):
    """One synthetic input item for ``demo`` (graph or matrix)."""
    from .workloads.datasets import GraphInput, MatrixInput
    from .workloads.graphs import uniform_random
    from .workloads.matrices import random_matrix

    if args.bench == "spmm":
        return MatrixInput(
            "demo", "synthetic", lambda: random_matrix(max(40, args.size // 40), 8, seed=args.seed)
        )
    return GraphInput(
        "demo", "synthetic", lambda: uniform_random(args.size, 5, seed=args.seed)
    )


def _cmd_demo(args):
    from .bench.harness import adapter_for, run_suite

    adapter = adapter_for(args.bench)
    item = _demo_input(args)
    print("input: %r" % item.build())
    suite = run_suite(
        adapter,
        [item],
        [],
        config=SCALED_1CORE,
        variants=_DEMO_VARIANTS,
        options=CompileOptions(num_stages=args.stages),
    )
    print("phloem pipeline: %s\n" % pipeline_summary(suite["_meta"]["phloem-static"]))
    base = suite["serial"][0].cycles
    print("%-16s %14s %9s %6s" % ("variant", "cycles", "speedup", "ok"))
    for name in _DEMO_VARIANTS:
        run = suite[name][0]
        print("%-16s %14.0f %8.2fx %6s" % (name, run.cycles, base / run.cycles, run.ok))
    return 0 if all(suite[name][0].ok for name in _DEMO_VARIANTS) else 1


def _cmd_search(args):
    from .bench.harness import adapter_for, profile_guided_pipeline
    from .bench.report import render_distribution
    from .core.autotune import speedup_distribution
    from .workloads import datasets

    adapter = adapter_for(args.bench)
    train = datasets.TRAIN_MATRICES_SPMM if args.bench == "spmm" else datasets.TRAIN_GRAPHS
    best, results = profile_guided_pipeline(adapter, train, config=SCALED_1CORE)
    print(render_distribution("training-set speedups by pipeline length", {args.bench: speedup_distribution(results)}))
    if best is not None:
        print("\nbest: %r" % best)
        print("      %s" % pipeline_summary(best.pipeline))
    return 0


_FIGURES = {
    "fig6": "fig6_pass_ablation",
    "fig9": "fig9_overall_speedup",
    "fig10": "fig10_cycle_breakdown",
    "fig11": "fig11_energy_breakdown",
    "fig12": "fig12_taco",
    "fig13": "fig13_stage_distribution",
    "fig14": "fig14_replication",
}

#: Figures that re-slice the shared Fig. 9 suites (computed once, in the
#: parent, with per-benchmark parallelism) rather than running standalone.
_SUITE_FIGURES = ("fig9", "fig10", "fig11", "fig13")


def _cmd_trace(args):
    from . import cache, obs
    from .bench.harness import adapter_for

    if args.quiet:
        obs.set_quiet(True)
    adapter = adapter_for(args.bench)
    item = _demo_input(args)
    data = item.build()
    arrays, scalars = adapter.env(data)
    function = adapter.function()
    options = CompileOptions(num_stages=args.stages)

    profiler = obs.PassProfiler() if args.profile_passes else None
    if profiler is not None:
        pipeline = compile_function(function, options=options, profiler=profiler)
    else:
        pipeline = cache.cached_compile(function, options)

    serial = cache.cached_serial_run(function, arrays, scalars, SCALED_1CORE)
    tracer = obs.Tracer()
    tracer.meta.update({"bench": args.bench, "input": item.name})
    from .runtime.executor import run_pipeline

    result = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE, tracer=tracer)
    ok = adapter.check(result.arrays, data)

    print("pipeline: %s" % pipeline_summary(pipeline))
    print(
        "serial %.0f cycles, traced pipeline %.0f cycles (%.2fx), ok=%s"
        % (serial.cycles, result.cycles, serial.cycles / result.cycles, ok)
    )
    print()
    print(obs.render_timeline(obs.summarize_timeline(tracer)))
    if profiler is not None:
        print()
        print(profiler.render())

    if args.trace_out:
        obs.write_chrome_trace(tracer, args.trace_out, meta={"bench": args.bench})
        obs.log("trace: %d events -> %s (open at ui.perfetto.dev)", len(tracer), args.trace_out)
    if args.metrics_out:
        records = [
            obs.run_record(
                args.bench, "serial", item.name, serial.cycles, ok=True,
                summary=serial.summary(), breakdown=serial.breakdown(),
                energy=serial.energy().as_dict(), speedup=1.0,
            ),
            obs.run_record(
                args.bench, "phloem-static", item.name, result.cycles, ok=ok,
                summary=result.stats.summary(), breakdown=result.breakdown(),
                energy=result.energy().as_dict(),
                speedup=serial.cycles / result.cycles,
                cache_stats=cache.stats(),
                passes=None if profiler is None else profiler.as_dicts(),
            ),
        ]
        obs.write_jsonl(records, args.metrics_out)
        obs.log("metrics: %d records -> %s", len(records), args.metrics_out)
    return 0 if ok else 1


def _cmd_metrics(args):
    import json

    from . import cache, obs
    from .bench.harness import adapter_for, run_suite

    if args.quiet:
        obs.set_quiet(True)
    adapter = adapter_for(args.bench)
    item = _demo_input(args)
    options = CompileOptions(num_stages=args.stages)
    suite = run_suite(
        adapter,
        [item],
        [],
        config=SCALED_1CORE,
        variants=_DEMO_VARIANTS,
        options=options,
        jobs=args.jobs,
    )
    records = obs.records_from_suite(args.bench, suite, cache_stats=cache.stats())
    if args.profile_passes:
        profiler = obs.PassProfiler()
        compile_function(adapter.function(), options=options, profiler=profiler)
        for record in records:
            if record["variant"] == "phloem-static":
                record["passes"] = profiler.as_dicts()
    if args.metrics_out:
        obs.write_jsonl(records, args.metrics_out)
        obs.log("metrics: %d records -> %s", len(records), args.metrics_out)
    else:
        for record in records:
            print(json.dumps(record, sort_keys=True))
    return 0 if all(r.get("ok", True) for r in records) else 1


def _cmd_figures(args):
    from . import cache, obs
    from .bench import experiments, parallel, report

    if args.quiet:
        obs.set_quiet(True)
    names = args.names or sorted(_FIGURES)
    for name in names:
        if name not in _FIGURES:
            print("unknown figure %r (choose from %s)" % (name, ", ".join(sorted(_FIGURES))))
            return 2

    jobs = parallel.resolve_jobs(args.jobs)
    parallel.clear_job_log()
    start = time.perf_counter()

    # Two-phase job graph, one pool level deep: the Fig. 9 suites fan out
    # per benchmark, standalone figures fan out per figure; the suite
    # re-slicing figures then run in-parent against the warm suites.
    results = {}
    standalone = [n for n in names if n not in _SUITE_FIGURES]
    if any(n in _SUITE_FIGURES for n in names):
        experiments.ensure_suites(jobs=jobs)
    if standalone:
        job_list = [
            parallel.Job(name, getattr(experiments, _FIGURES[name])) for name in standalone
        ]
        for job_result in parallel.run_jobs(job_list, workers=jobs):
            results[job_result.key] = job_result.value
    for name in names:
        if name not in results:
            results[name] = getattr(experiments, _FIGURES[name])()

    for name in names:
        print(results[name]["text"])
        print()

    if args.metrics_out:
        # Structured RunRecords for whatever suites this invocation ran
        # (the fig9/10/11/13 family); per-suite record lists merge
        # deterministically regardless of worker count.
        from .bench.experiments import _SUITES

        record_lists = [
            obs.records_from_suite(bench, suite, cache_stats=cache.stats())
            for bench, suite in _SUITES.items()
        ]
        records = obs.merge_records(*record_lists)
        obs.write_jsonl(records, args.metrics_out)
        obs.log("metrics: %d records -> %s", len(records), args.metrics_out)

    # Harness telemetry on stderr (obs.log: --quiet/REPRO_QUIET silences
    # it), keeping stdout byte-identical to a serial, cache-less run:
    # per-job wall times and cache hit rates (a cold-vs-warm pair of
    # invocations shows the caches working).
    elapsed = time.perf_counter() - start
    obs.log("%s", report.render_job_times(parallel.job_log(), workers=jobs, total_wall=elapsed))
    obs.log("%s", report.render_cache_stats(cache.stats(), directory=cache.cache_dir()))
    return 0


def _cmd_bench_perf(args):
    from . import obs
    from .bench import perf as perfmod

    if args.quiet:
        obs.set_quiet(True)
    for bench in args.benches:
        if bench not in perfmod.SCALES["quick"]:
            print(
                "unknown benchmark %r (choose from %s)"
                % (bench, ", ".join(sorted(perfmod.SCALES["quick"])))
            )
            return 2
    return perfmod.main_cli(args)


def build_parser():
    from .bench import perf as perfmod
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Phloem reproduction: compile, simulate, and evaluate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    emit = sub.add_parser("emit", help="compile a mini-C kernel and print the pipeline")
    emit.add_argument("file")
    emit.add_argument("--name", default=None, help="kernel name if the file has several")
    emit.add_argument("--stages", type=int, default=4)
    emit.add_argument("--passes", default=None, help="comma-separated pass subset")
    emit.add_argument("--format", choices=("c", "ir", "summary", "diagram"), default="c")
    emit.add_argument(
        "--verify-each", action="store_true",
        help="re-verify the IR and re-run the safety analyzer after every pass",
    )
    emit.set_defaults(func=_cmd_emit)

    lint = sub.add_parser(
        "lint", help="run the static pipeline-safety analyzer on a kernel"
    )
    lint.add_argument("file", nargs="?", default=None, metavar="FILE.c")
    lint.add_argument("--name", default=None, help="kernel name if the file has several")
    lint.add_argument(
        "--bench", default=None, metavar="NAME",
        help="lint a shipped benchmark kernel instead of a file ('all' sweeps every one)",
    )
    lint.add_argument("--stages", type=int, default=4)
    lint.add_argument("--passes", default=None, help="comma-separated pass subset")
    lint.add_argument(
        "--verify-each", action="store_true",
        help="also verify after every compiler pass, not just the final pipeline",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable diagnostics")
    lint.set_defaults(func=_cmd_lint)

    demo = sub.add_parser("demo", help="run one benchmark across all variants")
    demo.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    demo.add_argument("--size", type=int, default=4000)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--stages", type=int, default=4)
    demo.set_defaults(func=_cmd_demo)

    search = sub.add_parser("search", help="profile-guided pipeline search")
    search.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    search.set_defaults(func=_cmd_search)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("names", nargs="*", metavar="figN")
    figures.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the harness (default: REPRO_JOBS env or 1)",
    )
    figures.add_argument(
        "--quiet", action="store_true", help="silence stderr telemetry (wall times, cache rates)"
    )
    figures.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="write structured RunRecords for the suites this run computed",
    )
    figures.set_defaults(func=_cmd_figures)

    trace = sub.add_parser(
        "trace", help="run one benchmark with cycle-domain tracing on"
    )
    trace.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    trace.add_argument("--size", type=int, default=4000)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--stages", type=int, default=4)
    trace.add_argument(
        "--trace-out", default=None, metavar="FILE.json",
        help="write a Chrome trace-event file (open at ui.perfetto.dev)",
    )
    trace.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="write RunRecords for the serial and traced runs",
    )
    trace.add_argument(
        "--profile-passes", action="store_true",
        help="instrument the compiler passes and print the timing table",
    )
    trace.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench", help="benchmark harness utilities (currently: perf)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    perf = bench_sub.add_parser(
        "perf",
        help="time the simulator itself: fast path vs reference interpreter",
    )
    perf.add_argument(
        "benches", nargs="*", metavar="BENCH",
        help="kernels to measure (default: all of bfs cc prd radii spmm)",
    )
    perf.add_argument(
        "--quick", action="store_true",
        help="QUICK-scale inputs (the committed-baseline scale; the default)",
    )
    perf.add_argument(
        "--full", action="store_true",
        help="larger inputs for patient local measurement",
    )
    perf.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per engine; the minimum wall time is kept (default 2)",
    )
    perf.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (cycles are unaffected; wall times contend)",
    )
    perf.add_argument(
        "--baseline", default=perfmod.BASELINE_FILE, metavar="FILE.json",
        help="baseline file (default: %s in the working directory)"
        % perfmod.BASELINE_FILE,
    )
    perf.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the baseline: cycle changes are errors, "
        "wall-time regressions warn",
    )
    perf.add_argument(
        "--update-baseline", action="store_true",
        help="write the fresh measurements to the baseline file",
    )
    perf.add_argument(
        "--threshold", type=float, default=perfmod.DEFAULT_THRESHOLD,
        help="fractional wall-time tolerance before warning (default 0.25)",
    )
    perf.add_argument(
        "--strict", action="store_true",
        help="treat wall-time warnings as failures (off in CI: boxes are noisy)",
    )
    perf.add_argument("--json", action="store_true", help="JSON instead of the table")
    perf.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="also write repro.obs RunRecords for both engines",
    )
    perf.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    perf.set_defaults(func=_cmd_bench_perf)

    metrics = sub.add_parser(
        "metrics", help="run the comparison suite and emit JSONL RunRecords"
    )
    metrics.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    metrics.add_argument("--size", type=int, default=4000)
    metrics.add_argument("--seed", type=int, default=1)
    metrics.add_argument("--stages", type=int, default=4)
    metrics.add_argument("--jobs", type=int, default=None)
    metrics.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="destination file (default: JSONL on stdout)",
    )
    metrics.add_argument(
        "--profile-passes", action="store_true",
        help="attach compile-pass timings to the phloem-static records",
    )
    metrics.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    metrics.set_defaults(func=_cmd_metrics)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
