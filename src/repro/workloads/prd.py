"""PageRank-Delta (paper Sec. VI-B).

Fringe-based PageRank: only vertices whose accumulated delta exceeds a
threshold propagate in the next phase. Each phase runs *two* loop nests —
the scatter over the fringe and the dense apply — which exercises the
paper's "program phases" machinery (Sec. IV-A): the nests are decoupled
individually and synchronized with barriers between phases.

Floating-point: ranks/deltas are doubles. The pipeline performs scatter
additions in a single stage in serial order, so its results are bitwise
equal to the serial kernel; the data-parallel variant reorders additions
and is checked against the oracle with a tolerance.
"""

from ..frontend.lowering import compile_source
from ..ir import (
    ArrayDecl,
    Break,
    Ctrl,
    EnqCtrl,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)

NAME = "prd"

#: Damping factor and propagation threshold.
DAMPING = 0.85
THRESHOLD = 0.01

SOURCE = """
#pragma phloem
void prd(const int* restrict nodes, const int* restrict edges,
         const int* restrict degree,
         double* restrict rank, double* restrict delta, double* restrict nghsum,
         int* restrict fringe0, int* restrict fringe1,
         int n, int fringe_size_init, double damping, double threshold) {
  int* restrict cur_fringe = fringe0;
  int* restrict next_fringe = fringe1;
  int fringe_size = fringe_size_init;
  while (fringe_size > 0) {
    for (int i = 0; i < fringe_size; i++) {
      int v = cur_fringe[i];
      int deg = degree[v];
      double share = delta[v] / (deg + 1);
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e++) {
        int ngh = edges[e];
        double s = nghsum[ngh];
        nghsum[ngh] = s + share;
      }
    }
    int next_size = 0;
    for (int u = 0; u < n; u++) {
      double acc = nghsum[u] * damping;
      double mag = acc;
      if (mag < 0.0) {
        mag = -mag;
      }
      if (mag > threshold) {
        delta[u] = acc;
        rank[u] = rank[u] + acc;
        next_fringe[next_size] = u;
        next_size = next_size + 1;
      }
      nghsum[u] = 0.0;
    }
    int* restrict tmp = cur_fringe;
    cur_fringe = next_fringe;
    next_fringe = tmp;
    fringe_size = next_size;
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def make_env(graph):
    n = graph.n
    degree = [graph.degree(v) for v in range(n)]
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "degree": degree,
        "rank": [1.0 - DAMPING] * n,
        "delta": [1.0 - DAMPING] * n,
        "nghsum": [0.0] * n,
        "fringe0": list(range(n)) + [0],
        "fringe1": [0] * (n + 1),
    }
    scalars = {
        "n": n,
        "fringe_size_init": n,
        "damping": DAMPING,
        "threshold": THRESHOLD,
    }
    return arrays, scalars


def reference(graph):
    """Oracle ranks: the same algorithm in pure Python (bitwise identical)."""
    n = graph.n
    nodes, edges = graph.nodes, graph.edges
    degree = [graph.degree(v) for v in range(n)]
    rank = [1.0 - DAMPING] * n
    delta = [1.0 - DAMPING] * n
    nghsum = [0.0] * n
    fringe = list(range(n))
    while fringe:
        for v in fringe:
            share = delta[v] / (degree[v] + 1)
            for e in range(nodes[v], nodes[v + 1]):
                nghsum[edges[e]] += share
        nxt = []
        for u in range(n):
            acc = nghsum[u] * DAMPING
            if abs(acc) > THRESHOLD:
                delta[u] = acc
                rank[u] += acc
                nxt.append(u)
            nghsum[u] = 0.0
        fringe = nxt
    return rank


def check(arrays, graph, exact=True, tol=1e-9):
    expected = reference(graph)
    got = arrays["rank"]
    if exact:
        return got == expected
    return all(abs(a - b) <= tol * max(1.0, abs(b)) for a, b in zip(got, expected))


def check_dp(arrays, graph):
    """Validation for the data-parallel variant.

    Its threads reassociate the floating-point delta reductions, so ranks
    match the serial reference only to a tolerance. Decoupled pipelines
    preserve the serial reduction order and use exact :func:`check`.
    """
    return check(arrays, graph, exact=False, tol=1e-6)


def manual_pipeline():
    """Hand-tuned 3-stage + 2-chained-RA pipeline with a prefetch stage.

    Every stage counts the per-phase vertex stream against the shared
    fringe size, so only per-vertex NEXT markers flow through the RA chain
    (no phase DONE). ``delta`` is read in the update stage (it is written
    there within the phase), so only vertex ids cross stages.
    """
    func = function()
    Q_RA1, Q_PAIRS, Q_NGH, Q_UPD, Q_V = 0, 1, 2, 3, 4

    b = IRBuilder(temp_prefix="%m")
    b.mov("@fringe0", dst="cur_fringe")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.for_("i", 0, "fringe_size"):
            v = b.load("cur_fringe", "i")
            b.enq(Q_V, v)
            b.enq(Q_RA1, v)
            b.enq(Q_RA1, b.binop("add", v, 1))
            b.enq_ctrl(Q_RA1, Ctrl.NEXT)
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        tmp = b.mov("cur_fringe")
        b.mov("next_fringe", dst="cur_fringe")
        b.mov(tmp, dst="next_fringe")
    stage0 = StageProgram(0, "scan_fringe", b.finish())

    b = IRBuilder(temp_prefix="%p")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.for_("i", 0, "fringe_size"):
            with b.loop():
                ngh = b.deq(Q_NGH)
                b.prefetch("@nghsum", ngh)
                b.enq(Q_UPD, ngh)
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
    stage1 = StageProgram(
        1,
        "prefetch_nghsum",
        b.finish(),
        handlers={Q_NGH: [EnqCtrl(Q_UPD, Ctrl(Ctrl.NEXT)), Break(1)]},
    )

    b = IRBuilder(temp_prefix="%u")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("@fringe0", dst="other")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.for_("i", 0, "fringe_size"):
            v = b.deq(Q_V)
            deg = b.load("@degree", v)
            dv = b.load("@delta", v)
            share = b.binop("div", dv, b.binop("add", deg, 1))
            with b.loop():
                ngh = b.deq(Q_UPD)
                s = b.load("@nghsum", ngh)
                b.store("@nghsum", ngh, b.binop("add", s, share))
        b.mov(0, dst="next_size")
        with b.for_("u", 0, "n"):
            s = b.load("@nghsum", "u")
            acc = b.binop("mul", s, "damping")
            mag = b.assign("select", [b.binop("lt", acc, 0.0), b.assign("neg", [acc]), acc])
            big = b.binop("gt", mag, "threshold")
            with b.if_(big):
                b.store("@delta", "u", acc)
                r = b.load("@rank", "u")
                b.store("@rank", "u", b.binop("add", r, acc))
                b.store("next_fringe", "next_size", "u")
                b.binop("add", "next_size", 1, dst="next_size")
            b.store("@nghsum", "u", 0.0)
        b.write_shared("next_size", "next_size")
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        tmp = b.mov("next_fringe")
        b.mov("other", dst="next_fringe")
        b.mov(tmp, dst="other")
    stage2 = StageProgram(2, "update", b.finish(), handlers={Q_UPD: [Break(1)]})

    queues = [
        QueueSpec(Q_RA1, ("stage", 0), ("ra", 0), 24, "v/v+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_UPD, ("stage", 1), ("stage", 2), 24, "neighbors'"),
        QueueSpec(Q_V, ("stage", 0), ("stage", 2), 24, "vertices"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH),
    ]
    return PipelineProgram(
        "prd_manual",
        [stage0, stage1, stage2],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        shared_vars={"next_size"},
        meta={"manual": True},
    )


def data_parallel(nthreads):
    """Hand-written data-parallel PRD: atomic scatter + partitioned apply.

    The scatter nest uses fetch-and-add on ``nghsum`` (the instruction-count
    cost the paper attributes to data-parallel PRD); the apply nest is
    statically partitioned by vertex range.
    """
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        b.mov("@fringe0", dst="cur_fringe")
        b.mov("@fringe1", dst="next_fringe")
        b.mov("fringe_size_init", dst="total")
        with b.loop():
            done = b.assign("le", ["total", 0])
            with b.if_(done):
                b.break_()
            with b.for_("seg", 0, "nthreads"):
                seg_size = b.load("@sizes", "seg")
                seg_base = b.binop("mul", "seg", "cap")
                with b.for_("j", tid, seg_size, nthreads):
                    idx = b.binop("add", seg_base, "j")
                    v = b.load("cur_fringe", idx)
                    deg = b.load("@degree", v)
                    dv = b.load("@delta", v)
                    share = b.binop("div", dv, b.binop("add", deg, 1))
                    es = b.load("@nodes", v)
                    ee = b.load("@nodes", b.binop("add", v, 1))
                    with b.for_("e", es, ee):
                        ngh = b.load("@edges", "e")
                        b.atomic_add("@nghsum", ngh, share)
            b.barrier("dp-scatter")
            b.mov(0, dst="my_size")
            my_base = b.binop("mul", tid, "cap")
            lo = b.binop("mul", tid, "chunk")
            hi0 = b.binop("add", lo, "chunk")
            hi = b.assign("min", [hi0, "n"])
            with b.for_("u", lo, hi):
                s = b.load("@nghsum", "u")
                acc = b.binop("mul", s, "damping")
                mag = b.assign("select", [b.binop("lt", acc, 0.0), b.assign("neg", [acc]), acc])
                big = b.binop("gt", mag, "threshold")
                with b.if_(big):
                    b.store("@delta", "u", acc)
                    r = b.load("@rank", "u")
                    b.store("@rank", "u", b.binop("add", r, acc))
                    slot = b.binop("add", my_base, "my_size")
                    b.store("next_fringe", slot, "u")
                    b.binop("add", "my_size", 1, dst="my_size")
                b.store("@nghsum", "u", 0.0)
            b.barrier("dp-apply")
            b.store("@sizes_next", tid, "my_size")
            b.barrier("dp-sizes")
            b.mov(0, dst="total")
            with b.for_("s2", 0, "nthreads"):
                sz = b.load("@sizes_next", "s2")
                b.binop("add", "total", sz, dst="total")
                b.store("@sizes", "s2", sz)
            b.barrier("dp-sync")
            tmp = b.mov("cur_fringe")
            b.mov("next_fringe", dst="cur_fringe")
            b.mov(tmp, dst="next_fringe")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    arrays = dict(func.arrays)
    arrays["sizes"] = ArrayDecl("sizes", elem_size=4)
    arrays["sizes_next"] = ArrayDecl("sizes_next", elem_size=4)
    return PipelineProgram(
        "prd_dp%d" % nthreads,
        stages,
        [],
        [],
        arrays,
        func.scalar_params + ["nthreads", "cap", "chunk"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads):
    n = graph.n
    cap = n + 1
    fringe0 = [0] * (cap * nthreads)
    sizes = [0] * nthreads
    per = (n + nthreads - 1) // nthreads
    v = 0
    for t in range(nthreads):
        count = min(per, n - v)
        if count <= 0:
            break
        for k in range(count):
            fringe0[t * cap + k] = v + k
        sizes[t] = count
        v += count
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "degree": [graph.degree(u) for u in range(n)],
        "rank": [1.0 - DAMPING] * n,
        "delta": [1.0 - DAMPING] * n,
        "nghsum": [0.0] * n,
        "fringe0": fringe0,
        "fringe1": [0] * (cap * nthreads),
        "sizes": sizes,
        "sizes_next": [0] * nthreads,
    }
    scalars = {
        "n": n,
        "fringe_size_init": n,
        "damping": DAMPING,
        "threshold": THRESHOLD,
        "nthreads": nthreads,
        "cap": cap,
        "chunk": per,
    }
    return arrays, scalars
