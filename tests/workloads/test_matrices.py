"""Sparse matrix substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.matrices import random_matrix


def _validate(m):
    assert m.pos[0] == 0 and m.pos[-1] == m.nnz
    assert all(a <= b for a, b in zip(m.pos, m.pos[1:]))
    for i in range(m.nrows):
        row = m.crd[m.pos[i] : m.pos[i + 1]]
        assert row == sorted(row)  # coordinates sorted (SpMM merge needs this)
        assert len(set(row)) == len(row)  # no duplicates
        assert all(0 <= c < m.ncols for c in row)


def test_uniform_pattern():
    m = random_matrix(100, 8, seed=1)
    _validate(m)
    assert 5 <= m.avg_nnz_per_row <= 11


def test_banded_pattern_stays_near_diagonal():
    m = random_matrix(200, 6, seed=2, pattern="banded")
    _validate(m)
    for i in range(m.nrows):
        for c in m.crd[m.pos[i] : m.pos[i + 1]]:
            assert abs(c - i) <= 6 * 6 + 1


def test_powerlaw_rows_vary():
    m = random_matrix(300, 8, seed=3, pattern="powerlaw")
    _validate(m)
    lengths = [m.pos[i + 1] - m.pos[i] for i in range(m.nrows)]
    assert max(lengths) > 3 * (sum(lengths) / len(lengths))


def test_transpose_roundtrip():
    m = random_matrix(40, 5, seed=4)
    tt = m.transpose().transpose()
    assert tt.pos == m.pos and tt.crd == m.crd and tt.val == m.val


def test_transpose_is_transpose():
    m = random_matrix(20, 3, seed=5)
    t = m.transpose()
    dense = m.to_dense_rows()
    dense_t = t.to_dense_rows()
    for i in range(m.nrows):
        for j in range(m.ncols):
            assert dense[i][j] == dense_t[j][i]


def test_rectangular():
    m = random_matrix(30, 4, seed=6, ncols=50)
    _validate(m)
    assert m.ncols == 50
    assert m.transpose().nrows == 50


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 40), st.integers(1, 8), st.integers(0, 3))
def test_random_matrix_always_valid(n, nnz, seed):
    _validate(random_matrix(n, nnz, seed=seed))
