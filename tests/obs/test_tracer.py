"""Cycle-domain tracer: zero-impact when off, exact when on."""

import pytest

from repro.bench.harness import adapter_for
from repro.core.compiler import compile_function
from repro.obs import Tracer, export_chrome_trace, validate_chrome_trace
from repro.runtime.executor import run_pipeline, run_serial
from repro.workloads.graphs import uniform_random


@pytest.fixture(scope="module")
def bfs_setup():
    adapter = adapter_for("bfs")
    pipeline = compile_function(adapter.function(), num_stages=4)
    arrays, scalars = adapter.env(uniform_random(300, 5, seed=3))
    return pipeline, arrays, scalars


def test_tracer_off_is_default_and_bufferless(bfs_setup):
    pipeline, arrays, scalars = bfs_setup
    result = run_pipeline(pipeline, arrays, scalars)
    assert result.machine.tracer is None


def test_tracer_off_and_on_runs_are_identical(bfs_setup):
    """Tracing must be pure observation: same cycles, stats, and outputs."""
    pipeline, arrays, scalars = bfs_setup
    plain = run_pipeline(pipeline, arrays, scalars)
    tracer = Tracer()
    traced = run_pipeline(pipeline, arrays, scalars, tracer=tracer)
    assert traced.cycles == plain.cycles
    assert traced.arrays == plain.arrays
    assert traced.stats.summary() == plain.stats.summary()
    assert len(tracer) > 0


def test_stall_intervals_sum_to_thread_counters_exactly(bfs_setup):
    """Per-(thread, bucket) traced stall time == ThreadStats, tolerance 0."""
    pipeline, arrays, scalars = bfs_setup
    tracer = Tracer()
    result = run_pipeline(pipeline, arrays, scalars, tracer=tracer)
    totals = tracer.stall_totals()
    buckets = (
        ("mem", "mem_stall"),
        ("queue", "queue_stall"),
        ("branch", "branch_stall"),
        ("barrier", "barrier_stall"),
    )
    checked = 0
    for tstats in result.stats.threads:
        for bucket, attr in buckets:
            assert totals.get((tstats.name, bucket), 0.0) == getattr(tstats, attr)
            checked += 1
    assert checked > 0
    # The traced run exercised at least queue and mem stalls somewhere.
    stalled_buckets = {bucket for (_, bucket) in totals}
    assert "queue" in stalled_buckets


def test_serial_run_traces_too(bfs_setup):
    _, arrays, scalars = bfs_setup
    adapter = adapter_for("bfs")
    tracer = Tracer()
    result = run_serial(adapter.function(), arrays, scalars, tracer=tracer)
    assert result.cycles > 0
    assert len(tracer.spans) > 0


def test_chrome_export_validates_and_covers_all_tracks(bfs_setup):
    pipeline, arrays, scalars = bfs_setup
    tracer = Tracer()
    run_pipeline(pipeline, arrays, scalars, tracer=tracer)
    trace = export_chrome_trace(tracer)
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    named = {e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
    # One track per stage thread and RA engine...
    for thread in tracer.threads:
        assert thread in named
    # ...plus occupancy counter samples for every live queue.
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    for label in tracer.queues:
        assert "occupancy:%s" % label in counter_names


def test_queue_occupancy_counters_are_sampled(bfs_setup):
    pipeline, arrays, scalars = bfs_setup
    tracer = Tracer()
    run_pipeline(pipeline, arrays, scalars, tracer=tracer)
    assert tracer.counters, "queue enq/deq must sample occupancy"
    for label, t, value in tracer.counters[:100]:
        assert label in tracer.queues
        assert t >= 0.0
        assert value >= 0


def test_tracer_meta_records_wall(bfs_setup):
    pipeline, arrays, scalars = bfs_setup
    tracer = Tracer()
    result = run_pipeline(pipeline, arrays, scalars, tracer=tracer)
    assert tracer.meta["wall_cycles"] == result.cycles


def test_validate_catches_malformed_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "run"}]}) != []
