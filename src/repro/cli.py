"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's artifact would be driven:

* ``emit FILE.c`` — run the Phloem compiler on a mini-C kernel and print
  the pipeline (pseudo-C, IR, or a one-line summary);
* ``demo BENCH`` — run one benchmark (bfs/cc/prd/radii/spmm) on a synthetic
  input, comparing serial / data-parallel / Phloem / manual;
* ``search BENCH`` — run the profile-guided pipeline search and print the
  Fig. 13-style distribution;
* ``figures [NAME...]`` — regenerate evaluation figures (fig6..fig14).
"""

import argparse
import sys

from .core import ALL_PASSES, compile_function, emit_pipeline, pipeline_summary
from .frontend import compile_source
from .ir import format_pipeline
from .pipette import SCALED_1CORE
from .runtime import run_pipeline, run_serial


def _cmd_emit(args):
    with open(args.file) as handle:
        source = handle.read()
    function = compile_source(source, name=args.name)
    passes = ALL_PASSES if args.passes is None else tuple(args.passes.split(","))
    passes = tuple(p for p in passes if p)
    pipeline = compile_function(function, num_stages=args.stages, passes=passes)
    if args.format == "summary":
        print(pipeline_summary(pipeline))
    elif args.format == "ir":
        print(format_pipeline(pipeline))
    elif args.format == "diagram":
        from .core.viz import ascii_diagram

        print(ascii_diagram(pipeline))
    else:
        print(emit_pipeline(pipeline))
    return 0


def _demo_graph(args):
    from .workloads import GRAPH_BENCHMARKS
    from .workloads.graphs import uniform_random

    module = GRAPH_BENCHMARKS[args.bench]
    graph = uniform_random(args.size, 5, seed=args.seed)
    print("input: %r" % graph)
    arrays, scalars = module.make_env(graph)
    function = module.function()
    serial = run_serial(function, arrays, scalars, config=SCALED_1CORE)
    rows = [("serial", serial.cycles, module.check(serial.arrays, graph))]

    dp = module.data_parallel(4)
    dp_env = module.make_env_dp(graph, 4)
    dresult = run_pipeline(dp, dp_env[0], dp_env[1], config=SCALED_1CORE)
    ok = (
        module.check(dresult.arrays, graph, exact=False, tol=1e-6)
        if args.bench == "prd"
        else module.check(dresult.arrays, graph)
    )
    rows.append(("data-parallel", dresult.cycles, ok))

    pipeline = compile_function(function, num_stages=args.stages, passes=ALL_PASSES)
    presult = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
    rows.append(("phloem", presult.cycles, module.check(presult.arrays, graph)))

    manual = module.manual_pipeline()
    mresult = run_pipeline(manual, arrays, scalars, config=SCALED_1CORE)
    rows.append(("manual", mresult.cycles, module.check(mresult.arrays, graph)))
    return rows, serial.cycles, pipeline


def _demo_spmm(args):
    from .workloads import spmm
    from .workloads.matrices import random_matrix

    matrix = random_matrix(max(40, args.size // 40), 8, seed=args.seed)
    print("input: %r" % matrix)
    arrays, scalars = spmm.make_env(matrix)
    function = spmm.function()
    serial = run_serial(function, arrays, scalars, config=SCALED_1CORE)
    rows = [("serial", serial.cycles, spmm.check(serial.arrays, matrix))]
    dp = spmm.data_parallel(4)
    dp_env = spmm.make_env_dp(matrix, 4)
    dresult = run_pipeline(dp, dp_env[0], dp_env[1], config=SCALED_1CORE)
    rows.append(("data-parallel", dresult.cycles, spmm.check(dresult.arrays, matrix)))
    pipeline = compile_function(function, num_stages=args.stages, passes=ALL_PASSES)
    presult = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
    rows.append(("phloem", presult.cycles, spmm.check(presult.arrays, matrix)))
    manual = spmm.manual_pipeline()
    mresult = run_pipeline(manual, arrays, scalars, config=SCALED_1CORE)
    rows.append(("manual", mresult.cycles, spmm.check(mresult.arrays, matrix)))
    return rows, serial.cycles, pipeline


def _cmd_demo(args):
    if args.bench == "spmm":
        rows, base, pipeline = _demo_spmm(args)
    else:
        rows, base, pipeline = _demo_graph(args)
    print("phloem pipeline: %s\n" % pipeline_summary(pipeline))
    print("%-16s %14s %9s %6s" % ("variant", "cycles", "speedup", "ok"))
    for name, cycles, ok in rows:
        print("%-16s %14.0f %8.2fx %6s" % (name, cycles, base / cycles, ok))
        if not ok:
            return 1
    return 0


def _cmd_search(args):
    from .bench.harness import GraphBenchAdapter, SpmmBenchAdapter, profile_guided_pipeline
    from .bench.report import render_distribution
    from .core.autotune import speedup_distribution
    from .workloads import GRAPH_BENCHMARKS, datasets, spmm

    if args.bench == "spmm":
        adapter = SpmmBenchAdapter(spmm)
        train = datasets.TRAIN_MATRICES_SPMM
    else:
        adapter = GraphBenchAdapter(GRAPH_BENCHMARKS[args.bench])
        train = datasets.TRAIN_GRAPHS
    best, results = profile_guided_pipeline(adapter, train, config=SCALED_1CORE)
    print(render_distribution("training-set speedups by pipeline length", {args.bench: speedup_distribution(results)}))
    if best is not None:
        print("\nbest: %r" % best)
        print("      %s" % pipeline_summary(best.pipeline))
    return 0


_FIGURES = {
    "fig6": "fig6_pass_ablation",
    "fig9": "fig9_overall_speedup",
    "fig10": "fig10_cycle_breakdown",
    "fig11": "fig11_energy_breakdown",
    "fig12": "fig12_taco",
    "fig13": "fig13_stage_distribution",
    "fig14": "fig14_replication",
}


def _cmd_figures(args):
    from .bench import experiments

    names = args.names or sorted(_FIGURES)
    for name in names:
        if name not in _FIGURES:
            print("unknown figure %r (choose from %s)" % (name, ", ".join(sorted(_FIGURES))))
            return 2
        result = getattr(experiments, _FIGURES[name])()
        print(result["text"])
        print()
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Phloem reproduction: compile, simulate, and evaluate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    emit = sub.add_parser("emit", help="compile a mini-C kernel and print the pipeline")
    emit.add_argument("file")
    emit.add_argument("--name", default=None, help="kernel name if the file has several")
    emit.add_argument("--stages", type=int, default=4)
    emit.add_argument("--passes", default=None, help="comma-separated pass subset")
    emit.add_argument("--format", choices=("c", "ir", "summary", "diagram"), default="c")
    emit.set_defaults(func=_cmd_emit)

    demo = sub.add_parser("demo", help="run one benchmark across all variants")
    demo.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    demo.add_argument("--size", type=int, default=4000)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--stages", type=int, default=4)
    demo.set_defaults(func=_cmd_demo)

    search = sub.add_parser("search", help="profile-guided pipeline search")
    search.add_argument("bench", choices=("bfs", "cc", "prd", "radii", "spmm"))
    search.set_defaults(func=_cmd_search)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("names", nargs="*", metavar="figN")
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
