"""Typed, versioned request/response values for the compile-and-simulate API.

Every CLI verb (and every daemon job) is described by one frozen-shape
request dataclass — :class:`CompileRequest`, :class:`LintRequest`,
:class:`RunRequest`, :class:`SearchRequest`, :class:`TraceRequest`,
:class:`MetricsRequest`, :class:`BenchPerfRequest`, :class:`ReportRequest` —
and answered by one :class:`Response` dataclass.
Both sides are plain JSON-serializable data
following the ``repro.obs/run-record`` and ``repro.bench/perf-record``
idioms: a ``schema`` tag plus an integer ``version`` ride on every wire
object, additions never bump the version, and consumers ignore unknown
keys (so old clients keep working against newer daemons and vice versa).

Wire format::

    {"schema": "repro.api/request", "version": 1, "verb": "metrics",
     "payload": {...request fields...}}

    {"schema": "repro.api/response", "version": 1, "type": "MetricsResponse",
     "payload": {...response fields...}}

``Response.output`` carries the verb's one-shot stdout payload verbatim —
byte-identical to what the pre-service CLI printed — so the CLI and the
daemon are two frontends over the same code path. ``Response.records``
carries the structured stream (RunRecords, diagnostics, perf records)
that the daemon forwards as JSONL messages as they become available.
"""

import dataclasses
from dataclasses import dataclass, field

from ..errors import PhloemError

#: Schema identities stamped on every wire object.
REQUEST_SCHEMA = "repro.api/request"
RESPONSE_SCHEMA = "repro.api/response"
API_VERSION = 1


class ApiError(PhloemError):
    """A malformed or unsupported API request/response wire object."""


# ---------------------------------------------------------------------------
# Requests


@dataclass
class Request:
    """Base request: wire (de)serialization shared by every verb.

    Subclasses set :attr:`VERB` (the CLI verb they describe) and declare
    JSON-serializable fields only. Unknown payload keys are ignored on the
    way in (the versioning policy), so adding a field never breaks an old
    peer.
    """

    #: The CLI verb this request describes (class attribute, not a field).
    VERB = None

    def to_wire(self):
        """The JSON-serializable wire dict for this request."""
        return {
            "schema": REQUEST_SCHEMA,
            "version": API_VERSION,
            "verb": self.VERB,
            "payload": dataclasses.asdict(self),
        }

    @staticmethod
    def from_wire(wire):
        """Rebuild the typed request a wire dict describes.

        Raises :class:`ApiError` on a wrong schema tag, an incompatible
        version, or an unregistered verb; unknown payload keys are dropped.
        """
        if not isinstance(wire, dict):
            raise ApiError("request wire object must be a dict, got %r" % type(wire).__name__)
        if wire.get("schema") != REQUEST_SCHEMA:
            raise ApiError("not a %s object (schema=%r)" % (REQUEST_SCHEMA, wire.get("schema")))
        version = wire.get("version")
        if not isinstance(version, int) or version < 1:
            raise ApiError("bad request version %r" % (version,))
        verb = wire.get("verb")
        cls = REQUEST_TYPES.get(verb)
        if cls is None:
            raise ApiError(
                "unsupported verb %r (choose from %s)" % (verb, ", ".join(sorted(REQUEST_TYPES)))
            )
        payload = wire.get("payload") or {}
        if not isinstance(payload, dict):
            raise ApiError("request payload must be a dict, got %r" % type(payload).__name__)
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in names}
        try:
            request = cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ApiError("bad %s payload: %s" % (verb, exc)) from exc
        return request


@dataclass
class CompileRequest(Request):
    """``repro emit``: compile mini-C source and render the pipeline.

    The *source text* travels in the request (clients read their local
    files), so a daemon never touches client paths for inputs.
    """

    VERB = "emit"

    source: str = ""
    name: str = None
    stages: int = 4
    passes: str = None  # comma-separated subset, CLI-style; None = all
    fmt: str = "c"  # c | ir | summary | diagram
    verify_each: bool = False


@dataclass
class LintRequest(Request):
    """``repro lint``: static pipeline-safety diagnostics for kernels.

    ``source``/``file`` describe an inline kernel (content + display
    label); ``bench`` names a shipped benchmark kernel (``"all"`` sweeps
    every one). Either or both, exactly like the CLI.
    """

    VERB = "lint"

    source: str = None
    file: str = None  # display label for the inline source target
    name: str = None
    bench: str = None
    stages: int = 4
    passes: str = None
    verify_each: bool = False
    json: bool = False
    #: Also run the static performance model (PHL4xx advisories).
    perf: bool = False


@dataclass
class RunRequest(Request):
    """``repro demo``: one benchmark, all comparison variants, one input."""

    VERB = "demo"

    bench: str = "bfs"
    size: int = 4000
    seed: int = 1
    stages: int = 4


@dataclass
class SearchRequest(Request):
    """``repro search``: the profile-guided pipeline search."""

    VERB = "search"

    bench: str = "bfs"
    #: Prune statically-dominated candidates before simulation (the
    #: analytic throughput model ranks them; only the top quartile runs).
    prune_static: bool = False


@dataclass
class TraceRequest(Request):
    """``repro trace``: one traced run plus the timeline summary.

    Output paths (``trace_out``/``metrics_out``) are resolved where the
    request executes — the daemon writes server-side files, which is the
    point of a unix-socket service sharing the machine with its clients.
    """

    VERB = "trace"

    bench: str = "bfs"
    size: int = 4000
    seed: int = 1
    stages: int = 4
    trace_out: str = None
    metrics_out: str = None
    profile_passes: bool = False
    quiet: bool = False


@dataclass
class MetricsRequest(Request):
    """``repro metrics``: the comparison suite as structured RunRecords."""

    VERB = "metrics"

    bench: str = "bfs"
    size: int = 4000
    seed: int = 1
    stages: int = 4
    jobs: int = None
    metrics_out: str = None
    profile_passes: bool = False
    quiet: bool = False


@dataclass
class ReportRequest(Request):
    """``repro report``: aggregate a results directory into one report.

    ``results_dir`` (and the optional extra ``baseline`` file) are
    resolved where the request executes — like :class:`TraceRequest`
    output paths, a daemon reads server-side files, which is the point of
    a unix-socket service sharing the machine with its clients. ``out``/
    ``html_out`` write the rendered report(s) server-side; with neither
    set, the markdown rendering is the stdout payload.
    """

    VERB = "report"

    results_dir: str = ""
    title: str = None
    baseline: str = "BENCH_pipette.json"
    out: str = None  # write markdown here instead of stdout
    html_out: str = None  # also write the single-file HTML page here
    quiet: bool = False


@dataclass
class BenchPerfRequest(Request):
    """``repro bench perf``: the simulator perf-regression harness."""

    VERB = "bench-perf"

    benches: tuple = ()
    scale: str = "quick"  # quick | full
    #: Engine selection: an engine name, ``"all"``, or None for the legacy
    #: reference + fastpath pair. The reference interpreter always runs —
    #: it is the conformance oracle and speedup denominator.
    engine: str = None
    repeats: int = 2
    jobs: int = None
    baseline: str = "BENCH_pipette.json"
    check_baseline: bool = False
    update_baseline: bool = False
    threshold: float = 0.25
    strict: bool = False
    json: bool = False
    metrics_out: str = None
    quiet: bool = False

    def __post_init__(self):
        self.benches = tuple(self.benches)


#: Verb -> request class, the dispatch registry for the wire decoder.
REQUEST_TYPES = {
    cls.VERB: cls
    for cls in (
        CompileRequest,
        LintRequest,
        RunRequest,
        SearchRequest,
        TraceRequest,
        MetricsRequest,
        BenchPerfRequest,
        ReportRequest,
    )
}


# ---------------------------------------------------------------------------
# Responses


@dataclass
class Response:
    """Base response: the one-shot result of any verb.

    ``output`` is the verb's stdout payload, byte-identical to the
    pre-service CLI; ``records`` the structured stream (RunRecords, diag
    dicts, perf records) the daemon forwards as JSONL; ``cache`` the
    :mod:`repro.cache` hit/miss *delta over this request* per layer, so a
    warm shared-cache hit is visible to the client; ``error`` a structured
    ``{"code", "message"}`` dict when the request was rejected or failed.
    """

    verb: str = ""
    exit_code: int = 0
    output: str = ""
    records: list = field(default_factory=list)
    cache: dict = None
    error: dict = None

    @property
    def ok(self):
        """True when the request completed with exit code 0 and no error."""
        return self.exit_code == 0 and self.error is None

    def to_wire(self):
        """The JSON-serializable wire dict for this response."""
        return {
            "schema": RESPONSE_SCHEMA,
            "version": API_VERSION,
            "type": type(self).__name__,
            "payload": dataclasses.asdict(self),
        }

    @staticmethod
    def from_wire(wire):
        """Rebuild the typed response a wire dict describes."""
        if not isinstance(wire, dict):
            raise ApiError("response wire object must be a dict, got %r" % type(wire).__name__)
        if wire.get("schema") != RESPONSE_SCHEMA:
            raise ApiError("not a %s object (schema=%r)" % (RESPONSE_SCHEMA, wire.get("schema")))
        cls = RESPONSE_TYPES.get(wire.get("type"), Response)
        payload = wire.get("payload") or {}
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in names}
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ApiError("bad %s payload: %s" % (wire.get("type"), exc)) from exc


@dataclass
class CompileResponse(Response):
    """``emit`` result; ``summary`` is the one-line pipeline description."""

    summary: str = None


@dataclass
class LintResponse(Response):
    """``lint`` result; ``records`` are the diagnostics, with totals here."""

    errors: int = 0
    warnings: int = 0


@dataclass
class RunResponse(Response):
    """``demo`` result; ``speedup`` is phloem-static over serial."""

    speedup: float = None


@dataclass
class SearchResponse(Response):
    """``search`` result; ``best`` summarizes the winning candidate."""

    best: dict = None


@dataclass
class TraceResponse(Response):
    """``trace`` result; ``cycles`` is the traced pipeline's cycle count."""

    cycles: float = None


@dataclass
class MetricsResponse(Response):
    """``metrics`` result; the RunRecords ride in ``records``."""


@dataclass
class BenchPerfResponse(Response):
    """``bench perf`` result; ``aggregate`` is the headline speedup rollup."""

    aggregate: dict = None


@dataclass
class ReportResponse(Response):
    """``report`` result; ``summary`` is the schema-stamped section census."""

    summary: dict = None


#: Response type tag -> class, for the wire decoder.
RESPONSE_TYPES = {
    cls.__name__: cls
    for cls in (
        Response,
        CompileResponse,
        LintResponse,
        RunResponse,
        SearchResponse,
        TraceResponse,
        MetricsResponse,
        BenchPerfResponse,
        ReportResponse,
    )
}

#: Verb -> response class used by the handler layer.
RESPONSE_FOR_VERB = {
    "emit": CompileResponse,
    "lint": LintResponse,
    "demo": RunResponse,
    "search": SearchResponse,
    "trace": TraceResponse,
    "metrics": MetricsResponse,
    "bench-perf": BenchPerfResponse,
    "report": ReportResponse,
}


def error_response(verb, code, message, exit_code=1):
    """A structured failure :class:`Response` (rejections, worker crashes)."""
    return Response(
        verb=verb or "",
        exit_code=exit_code,
        output="",
        records=[],
        cache=None,
        error={"code": code, "message": message},
    )
