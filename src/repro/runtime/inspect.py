"""Run introspection: the report one reads when a pipeline underperforms.

``describe_run`` renders per-stage cycle attribution (where each thread's
time went), per-queue traffic/occupancy/blocking, and RA throughput for a
finished simulation — the practical counterpart of the paper's Fig. 10
analysis, at single-run granularity.
"""


def queue_report(machine):
    """Per-queue rows: traffic, peak occupancy, and blocking events."""
    rows = []
    for replica, env in enumerate(machine.envs):
        for qid in sorted(env.queues):
            queue = env.queues[qid]
            rows.append(
                {
                    "replica": replica,
                    "queue": qid,
                    "enqs": queue.total_enqs,
                    "deqs": queue.total_deqs,
                    "peak": queue.max_occupancy,
                    "capacity": queue.capacity,
                    "full_blocks": queue.full_blocks,
                    "empty_blocks": queue.empty_blocks,
                }
            )
    return rows


def stage_report(result):
    """Per-thread rows from a finished RunResult/SimResult's stats."""
    rows = []
    for thread in result.stats.threads:
        breakdown = thread.breakdown()
        total = max(thread.total_cycles, 1.0)
        rows.append(
            {
                "thread": thread.name,
                "cycles": thread.total_cycles,
                "uops": thread.uops,
                "ipc": thread.uops / total,
                "issue_pct": 100.0 * breakdown["issue"] / total,
                "backend_pct": 100.0 * breakdown["backend"] / total,
                "queue_pct": 100.0 * breakdown["queue"] / total,
                "other_pct": 100.0 * breakdown["other"] / total,
                "mispredicts": thread.mispredicts,
            }
        )
    return rows


def describe_run(result, machine=None):
    """Human-readable multi-line report for a finished run."""
    lines = ["run: %.0f cycles, %d uops" % (result.cycles, result.stats.total_uops)]
    lines.append("")
    lines.append(
        "%-26s %12s %8s %6s %6s %6s %6s %8s"
        % ("thread", "cycles", "uops", "iss%", "mem%", "que%", "oth%", "mispred")
    )
    for row in stage_report(result):
        lines.append(
            "%-26s %12.0f %8d %5.1f%% %5.1f%% %5.1f%% %5.1f%% %8d"
            % (
                row["thread"],
                row["cycles"],
                row["uops"],
                row["issue_pct"],
                row["backend_pct"],
                row["queue_pct"],
                row["other_pct"],
                row["mispredicts"],
            )
        )
    if machine is not None:
        lines.append("")
        lines.append(
            "%-8s %6s %10s %10s %6s %12s %12s"
            % ("replica", "queue", "enqs", "deqs", "peak", "full-blocks", "empty-blocks")
        )
        for row in queue_report(machine):
            lines.append(
                "r%-7d q%-5d %10d %10d %3d/%-2d %12d %12d"
                % (
                    row["replica"],
                    row["queue"],
                    row["enqs"],
                    row["deqs"],
                    row["peak"],
                    row["capacity"],
                    row["full_blocks"],
                    row["empty_blocks"],
                )
            )
    caches = result.stats.cache_levels
    if caches:
        lines.append("")
        for name in ("L1", "L2", "L3"):
            level = caches.get(name)
            if level and level.accesses:
                lines.append(
                    "%s: %d accesses, %.1f%% hits, %d prefetch fills"
                    % (name, level.accesses, 100.0 * level.hits / level.accesses, level.prefetch_fills)
                )
        lines.append("DRAM: %d accesses" % result.stats.dram_accesses)
    return "\n".join(lines)
