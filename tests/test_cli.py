"""CLI surface."""

import pytest

from repro.cli import build_parser, main

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "k.c"
    path.write_text(KERNEL)
    return str(path)


def test_emit_summary(kernel_file, capsys):
    assert main(["emit", kernel_file, "--format", "summary"]) == 0
    out = capsys.readouterr().out
    assert "stages" in out and "RAs" in out


def test_emit_pseudo_c(kernel_file, capsys):
    assert main(["emit", kernel_file]) == 0
    out = capsys.readouterr().out
    assert "setup_reference_accelerator" in out


def test_emit_ir(kernel_file, capsys):
    assert main(["emit", kernel_file, "--format", "ir"]) == 0
    out = capsys.readouterr().out
    assert "pipeline k" in out


def test_emit_pass_subset(kernel_file, capsys):
    assert main(["emit", kernel_file, "--passes", "recompute,cv", "--format", "summary"]) == 0
    out = capsys.readouterr().out
    assert "0 RAs" in out


def test_demo_bfs(capsys):
    assert main(["demo", "bfs", "--size", "300"]) == 0
    out = capsys.readouterr().out
    assert "serial" in out and "phloem" in out
    assert "False" not in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figures_rejects_unknown(capsys):
    assert main(["figures", "fig99"]) == 2
