"""Intra-stage cleanups run after every transformation.

Stage bodies accumulate dead scalar code as values migrate between stages
(cloned phase scalars a stage no longer needs, addresses whose loads moved
to an RA). Pipeline stages are "extremely sensitive to overhead" (Sec. IV),
so these cleanups — dead pure code elimination and empty-control pruning —
stand in for the ``gcc -O3`` the paper compiles its emitted code with.
"""

from ..ir.stmts import walk

#: Statement kinds that are removable when their destination is unused.
_PURE_DEFS = frozenset(["assign", "read_shared", "is_control", "peek", "load"])

#: Kinds whose presence makes a stage non-trivial (it does real work or
#: participates in a queue protocol).
_EFFECTFUL = frozenset(
    [
        "store",
        "atomic_rmw",
        "call",
        "enq",
        "enq_ctrl",
        "enq_dist",
        "enq_ctrl_dist",
        "deq",
        "peek",
        "prefetch",
        "write_shared",
        "load",
    ]
)


def _collect_uses(body, handler_bodies=()):
    used = set()
    for root in (body,) + tuple(handler_bodies):
        for stmt in walk(root):
            used.update(stmt.uses())
    return used


def remove_dead_code(body, live_out=(), handler_bodies=()):
    """Iteratively drop pure statements whose results are never used.

    ``live_out`` names registers that must survive (none for stage bodies —
    stages communicate only through queues, memory, and shared cells).
    Loads are removable too: a load whose value is unused has no
    architectural effect (we deliberately do *not* keep it as an implicit
    prefetch — the compiler emits explicit ``Prefetch`` when it wants one).
    """
    changed = True
    while changed:
        used = _collect_uses(body, handler_bodies) | set(live_out)
        changed = _sweep(body, used)
    return body


def _sweep(body, used):
    changed = False
    kept = []
    for stmt in body:
        for block in stmt.blocks():
            if _sweep(block, used):
                changed = True
        if stmt.kind in _PURE_DEFS and stmt.kind != "peek":
            defs = stmt.defs()
            if defs and all(d not in used for d in defs):
                changed = True
                continue
        kept.append(stmt)
    if len(kept) != len(body):
        body[:] = kept
    return changed


def prune_empty_control(body):
    """Remove loops/ifs whose bodies became empty; returns True if changed."""
    changed = True
    any_change = False
    while changed:
        changed = False
        kept = []
        for stmt in body:
            for block in stmt.blocks():
                if prune_empty_control(block):
                    changed = True
            if stmt.kind in ("for", "loop") and not stmt.body:
                changed = True
                continue
            if stmt.kind == "if" and not stmt.then_body and not stmt.else_body:
                changed = True
                continue
            kept.append(stmt)
        if len(kept) != len(body):
            body[:] = kept
        any_change = any_change or changed
    return any_change


def copy_propagate(stage):
    """Forward single-definition ``mov`` copies and drop the movs.

    Safe under the IR's structure: a single-def ``dst = mov(src)`` where
    ``src`` is itself single-def (or a parameter/constant) can have every
    use of ``dst`` replaced by ``src`` — all uses follow the mov, and
    neither register is ever redefined.
    """
    from .rewrite import substitute_uses

    defs = {}
    roots = [stage.body] + list(stage.handlers.values())
    for root in roots:
        for stmt in walk(root):
            for reg in stmt.defs():
                defs.setdefault(reg, []).append(stmt)

    mapping = {}
    for reg, stmts in defs.items():
        if len(stmts) != 1 or stmts[0].kind != "assign" or stmts[0].op != "mov":
            continue
        src = stmts[0].args[0]
        if type(src) is str and not src.startswith("@"):
            if len(defs.get(src, ())) != 1:
                continue
        mapping[reg] = src
    # Resolve chains (a -> b -> c) to their final source.
    for reg in list(mapping):
        seen = {reg}
        target = mapping[reg]
        while type(target) is str and target in mapping and target not in seen:
            seen.add(target)
            target = mapping[target]
        mapping[reg] = target
    if mapping:
        for root in roots:
            substitute_uses(root, mapping)
    return stage


def cleanup_stage(stage):
    """Run all intra-stage cleanups on one StageProgram."""
    handler_bodies = tuple(stage.handlers.values())
    copy_propagate(stage)
    remove_dead_code(stage.body, handler_bodies=handler_bodies)
    prune_empty_control(stage.body)
    remove_dead_code(stage.body, handler_bodies=handler_bodies)
    return stage


def stage_is_trivial(stage):
    """True if a stage does nothing observable and can be deleted."""
    if stage.handlers:
        return False
    for stmt in walk(stage.body):
        if stmt.kind in _EFFECTFUL:
            return False
    return True
