"""Mini-Taco lowering: emitted C structure and schedule selection."""

import pytest

from repro.errors import CompileError
from repro.frontend import compile_source
from repro.taco import csr, dense_matrix, dense_vector, lower


def test_spmv_source_shape():
    kernel = lower(
        "spmv",
        "y(i) = A(i,j) * x(j)",
        {"y": dense_vector("y"), "A": csr("A"), "x": dense_vector("x")},
    )
    src = kernel.source
    assert "A_pos[i]" in src and "A_pos[i + 1]" in src
    assert "A_crd[q]" in src
    assert "restrict" in src
    assert "#pragma phloem" in src
    compile_source(src)  # parses and lowers cleanly


def test_residual_combines_addend():
    kernel = lower(
        "residual",
        "y(i) = b(i) - A(i,j) * x(j)",
        {
            "y": dense_vector("y"),
            "b": dense_vector("b"),
            "A": csr("A"),
            "x": dense_vector("x"),
        },
    )
    assert "b[i]" in kernel.source
    compile_source(kernel.source)


def test_mtmul_scatter_schedule():
    kernel = lower(
        "mtmul",
        "y(j) = alpha * A(i,j) * x(i) + beta * z(j)",
        {
            "y": dense_vector("y"),
            "A": csr("A"),
            "x": dense_vector("x"),
            "z": dense_vector("z"),
        },
    )
    src = kernel.source
    assert "y[j] = beta * z[j]" in src.replace("  ", " ")
    assert "y[j] + " in src  # scatter accumulation
    compile_source(src)


def test_sddmm_dense_inner_loop():
    kernel = lower(
        "sddmm",
        "A(i,j) = B(i,j) * C(i,k) * D(k,j)",
        {"A": csr("A"), "B": csr("B"), "C": dense_matrix("C"), "D": dense_matrix("D")},
    )
    src = kernel.source
    assert "for (int k = 0; k < kdim; k++)" in src
    assert "B_val[q]" in src
    compile_source(src)


def test_binder_spmv():
    from repro.workloads.matrices import random_matrix

    kernel = lower(
        "spmv",
        "y(i) = A(i,j) * x(j)",
        {"y": dense_vector("y"), "A": csr("A"), "x": dense_vector("x")},
    )
    m = random_matrix(10, 3, seed=1)
    arrays, scalars = kernel.bind({"A": m, "x": [1.0] * m.ncols})
    assert scalars["n"] == 10
    assert len(arrays["y"]) == 10
    assert arrays["A_pos"] == m.pos


def test_missing_declaration_rejected():
    with pytest.raises(CompileError, match="format declaration"):
        lower("k", "y(i) = A(i,j) * x(j)", {"y": dense_vector("y"), "x": dense_vector("x")})


def test_two_sparse_operands_rejected():
    with pytest.raises(CompileError, match="one CSR operand"):
        lower(
            "k",
            "y(i) = A(i,j) * B(j,i)",
            {"y": dense_vector("y"), "A": csr("A"), "B": csr("B")},
        )


def test_formats_api():
    assert csr("A").is_csr
    assert dense_vector("x").order == 1
    assert dense_matrix("C").is_dense
    with pytest.raises(ValueError):
        from repro.taco.formats import TensorDecl

        TensorDecl("T", ("q",))
