"""Triangle Counting (GARDENIA suite).

Ordered merge-intersection TC: for every edge ``(u, v)`` with ``v > u``,
the sorted adjacency lists of ``u`` and ``v`` are merge-intersected
counting common neighbors ``w < u``, so each triangle ``w < u < v`` is
counted exactly once. Like SpMM, the merge's pointer advances depend on
loaded values — the compiler cannot decouple inside it — so the manual
pipeline uses the same skip-ahead drain trick on its two coordinate
streams.

The kernel requires canonical adjacency (ascending, duplicate-free,
self-loop-free); :func:`make_env` canonicalizes whatever graph it is
given, so generator outputs with duplicate edges are fine. All arithmetic
is integer, so every variant is exact.
"""

from ..frontend.lowering import compile_source
from ..ir import (
    Ctrl,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_SCAN,
    RASpec,
    StageProgram,
)
from . import graphs

NAME = "tc"

SOURCE = """
#pragma phloem
void tc(const int* restrict nodes, const int* restrict edges,
        int* restrict total, int n) {
  int count = 0;
  for (int u = 0; u < n; u++) {
    int ub = nodes[u];
    int ue = nodes[u + 1];
    for (int i = ub; i < ue; i++) {
      int v = edges[i];
      if (v > u) {
        int pa = ub;
        int pb = nodes[v];
        int pb_end = nodes[v + 1];
        while (pa < ue && pb < pb_end) {
          int wa = edges[pa];
          if (wa >= u) {
            break;
          }
          int wb = edges[pb];
          if (wa == wb) {
            count = count + 1;
            pa = pa + 1;
            pb = pb + 1;
          } else if (wa < wb) {
            pa = pa + 1;
          } else {
            pb = pb + 1;
          }
        }
      }
    }
  }
  total[0] = count;
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def make_env(graph):
    g = graphs.canonicalize(graph)
    arrays = {
        "nodes": list(g.nodes),
        "edges": list(g.edges),
        "total": [0],
    }
    scalars = {"n": g.n}
    return arrays, scalars


def reference(graph):
    """Oracle triangle count via set intersections (independent algorithm)."""
    g = graphs.canonicalize(graph)
    neighbor_sets = [set(g.neighbors(v)) for v in range(g.n)]
    count = 0
    for u in range(g.n):
        nu = neighbor_sets[u]
        for v in nu:
            if v > u:
                count += sum(1 for w in nu & neighbor_sets[v] if w < u)
    return count


def check(arrays, graph):
    return arrays["total"][0] == reference(graph)


# ---------------------------------------------------------------------------
# Manually pipelined variant


def manual_pipeline():
    """Driver + merge stage over two scan RAs (the SpMM skip-ahead trick).

    The driver walks each vertex's adjacency itself (those reads are
    sequential and cache-friendly); for each oriented edge ``(u, v>u)`` it
    ships ``u`` and the two list bounds, and the merge stage intersects
    the RA-streamed lists, draining both to their NEXT markers as soon as
    the ``w < u`` cutoff or either end is reached.
    """
    func = function()
    Q_A_IN, Q_B_IN, Q_A, Q_B, Q_U = 0, 1, 2, 3, 4

    b = IRBuilder(temp_prefix="%m")
    with b.for_("u", 0, "n"):
        ub = b.load("@nodes", "u")
        ue = b.load("@nodes", b.binop("add", "u", 1))
        with b.for_("i", ub, ue):
            v = b.load("@edges", "i")
            fwd = b.binop("gt", v, "u")
            with b.if_(fwd):
                pb = b.load("@nodes", v)
                pbe = b.load("@nodes", b.binop("add", v, 1))
                b.enq(Q_U, "u")
                b.enq(Q_A_IN, ub)
                b.enq(Q_A_IN, ue)
                b.enq_ctrl(Q_A_IN, Ctrl.NEXT)
                b.enq(Q_B_IN, pb)
                b.enq(Q_B_IN, pbe)
                b.enq_ctrl(Q_B_IN, Ctrl.NEXT)
    b.enq_ctrl(Q_U, Ctrl.DONE)
    stage0 = StageProgram(0, "drive", b.finish())

    b = IRBuilder(temp_prefix="%t")
    b.mov(0, dst="count")
    with b.loop():
        u = b.deq(Q_U, dst="u")
        at_end = b.is_control("u")
        with b.if_(at_end):
            b.break_()
        ka = b.deq(Q_A, dst="ka")
        kb = b.deq(Q_B, dst="kb")
        with b.loop():
            ca = b.is_control("ka")
            with b.if_(ca):
                cb0 = b.is_control("kb")
                nb0 = b.assign("not", [cb0])
                with b.if_(nb0):
                    with b.loop():
                        x = b.deq(Q_B)
                        cx = b.is_control(x)
                        with b.if_(cx):
                            b.break_()
                b.break_()
            cb = b.is_control("kb")
            with b.if_(cb):
                with b.loop():
                    x = b.deq(Q_A)
                    cx = b.is_control(x)
                    with b.if_(cx):
                        b.break_()
                b.break_()
            # Cutoff: lists are ascending and only w < u count, so once
            # either head reaches u both streams can be drained outright.
            cut = b.binop("ge", b.assign("max", ["ka", "kb"]), "u")
            with b.if_(cut):
                with b.loop():
                    x = b.deq(Q_A)
                    cx = b.is_control(x)
                    with b.if_(cx):
                        b.break_()
                with b.loop():
                    y = b.deq(Q_B)
                    cy = b.is_control(y)
                    with b.if_(cy):
                        b.break_()
                b.break_()
            eq = b.binop("eq", "ka", "kb")
            with b.if_(eq):
                b.binop("add", "count", 1, dst="count")
                b.deq(Q_A, dst="ka")
                b.deq(Q_B, dst="kb")
                b.continue_()
            lt = b.binop("lt", "ka", "kb")
            with b.if_(lt):
                b.deq(Q_A, dst="ka")
                b.continue_()
            b.deq(Q_B, dst="kb")
    b.store("@total", 0, "count")
    stage1 = StageProgram(1, "merge", b.finish())

    queues = [
        QueueSpec(Q_A_IN, ("stage", 0), ("ra", 0), 24, "u-list bounds"),
        QueueSpec(Q_B_IN, ("stage", 0), ("ra", 1), 24, "v-list bounds"),
        QueueSpec(Q_A, ("ra", 0), ("stage", 1), 24, "u-list"),
        QueueSpec(Q_B, ("ra", 1), ("stage", 1), 24, "v-list"),
        QueueSpec(Q_U, ("stage", 0), ("stage", 1), 24, "pivot u"),
    ]
    ras = [
        RASpec(0, RA_SCAN, "@edges", Q_A_IN, Q_A),
        RASpec(1, RA_SCAN, "@edges", Q_B_IN, Q_B),
    ]
    return PipelineProgram(
        "tc_manual",
        [stage0, stage1],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        meta={"manual": True},
    )


# ---------------------------------------------------------------------------
# Data-parallel variant


def data_parallel(nthreads):
    """Pivot-striped TC: worker t handles ``u % nthreads == t``.

    Each worker counts its pivots' triangles locally and folds the local
    count into ``total[0]`` with one integer ``atomic_add`` at the end —
    integer arithmetic, so the result is exact regardless of interleaving.
    """
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        b.mov(0, dst="count")
        with b.for_("u", tid, "n", nthreads):
            ub = b.load("@nodes", "u")
            ue = b.load("@nodes", b.binop("add", "u", 1))
            with b.for_("i", ub, ue):
                v = b.load("@edges", "i")
                fwd = b.binop("gt", v, "u")
                with b.if_(fwd):
                    b.mov(ub, dst="pa")
                    pb0 = b.load("@nodes", v)
                    pbe = b.load("@nodes", b.binop("add", v, 1))
                    b.mov(pb0, dst="pb")
                    with b.loop():
                        more_a = b.binop("lt", "pa", ue)
                        more_b = b.binop("lt", "pb", pbe)
                        stop = b.assign("not", [b.binop("and", more_a, more_b)])
                        with b.if_(stop):
                            b.break_()
                        wa = b.load("@edges", "pa")
                        cut = b.binop("ge", wa, "u")
                        with b.if_(cut):
                            b.break_()
                        wb = b.load("@edges", "pb")
                        eq = b.binop("eq", wa, wb)
                        with b.if_(eq):
                            b.binop("add", "count", 1, dst="count")
                            b.binop("add", "pa", 1, dst="pa")
                            b.binop("add", "pb", 1, dst="pb")
                            b.continue_()
                        lt = b.binop("lt", wa, wb)
                        with b.if_(lt):
                            b.binop("add", "pa", 1, dst="pa")
                            b.continue_()
                        b.binop("add", "pb", 1, dst="pb")
        b.atomic_add("@total", 0, "count")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    return PipelineProgram(
        "tc_dp%d" % nthreads,
        stages,
        [],
        [],
        func.arrays,
        func.scalar_params + ["nthreads"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads):
    arrays, scalars = make_env(graph)
    scalars["nthreads"] = nthreads
    return arrays, scalars
