"""Structural verifier for Phloem IR.

Run after the frontend and after every compiler pass (the passes are simple,
and keeping them honest is what lets them stay simple). Raises
:class:`~repro.errors.IRVerificationError` with a precise message; when the
offending statement carries a source span (frontend-lowered code does), the
error carries its line/col so :mod:`repro.diag` can render it uniformly.
"""

from ..errors import IRVerificationError
from .values import is_array_symbol, is_reg

#: Statement kinds that operate on hardware queues. Serial Functions must
#: not contain them: queues only exist once the compiler has decoupled the
#: kernel into a pipeline.
QUEUE_KINDS = frozenset(
    ["enq", "enq_ctrl", "deq", "peek", "enq_dist", "enq_ctrl_dist"]
)


def _fail(msg, *args, span=None):
    message = msg % args if args else msg
    if span is not None:
        raise IRVerificationError(message, line=span.line, col=span.col)
    raise IRVerificationError(message)


def _span_of(stmt):
    return getattr(stmt, "span", None)


class _Scope:
    """Tracks which registers are defined on the walk so far."""

    def __init__(self, initial):
        self.defined = set(initial)

    def define(self, regs):
        self.defined.update(regs)

    def check_uses(self, stmt, where):
        for reg in stmt.uses():
            if reg not in self.defined:
                _fail(
                    "%s: use of undefined register %r in '%s'",
                    where,
                    reg,
                    stmt,
                    span=_span_of(stmt),
                )


def _verify_operand_shapes(stmt, arrays, where):
    for attr in ("array",):
        if hasattr(stmt, attr):
            op = getattr(stmt, attr)
            if is_array_symbol(op) and op[1:] not in arrays:
                _fail(
                    "%s: reference to undeclared array %s in '%s'",
                    where,
                    op,
                    stmt,
                    span=_span_of(stmt),
                )
            if not is_array_symbol(op) and not is_reg(op):
                _fail(
                    "%s: array operand must be a symbol or register in '%s'",
                    where,
                    stmt,
                    span=_span_of(stmt),
                )


def _verify_body(body, scope, arrays, readonly, loop_depth, where, queue_check=None):
    for stmt in body:
        scope.check_uses(stmt, where)
        _verify_operand_shapes(stmt, arrays, where)
        kind = stmt.kind

        if kind in ("store", "atomic_rmw"):
            if is_array_symbol(stmt.array) and stmt.array[1:] in readonly:
                _fail("%s: store to const array %s", where, stmt.array, span=_span_of(stmt))
        elif kind == "break":
            if stmt.levels < 1 or stmt.levels > loop_depth:
                _fail(
                    "%s: break %d with only %d enclosing loop(s)",
                    where,
                    stmt.levels,
                    loop_depth,
                    span=_span_of(stmt),
                )
        elif kind == "continue":
            if loop_depth < 1:
                _fail("%s: continue outside any loop", where, span=_span_of(stmt))
        elif kind in QUEUE_KINDS:
            if queue_check is not None:
                queue_check(stmt, where)
            else:
                _fail(
                    "%s: queue operation '%s' outside a pipeline stage",
                    where,
                    stmt,
                    span=_span_of(stmt),
                )

        if kind == "for":
            scope.define([stmt.var])
            for block in stmt.blocks():
                _verify_body(block, scope, arrays, readonly, loop_depth + 1, where, queue_check)
        elif kind == "loop":
            for block in stmt.blocks():
                _verify_body(block, scope, arrays, readonly, loop_depth + 1, where, queue_check)
        elif kind == "if":
            for block in stmt.blocks():
                _verify_body(block, scope, arrays, readonly, loop_depth, where, queue_check)

        scope.define(stmt.defs())


def _readonly_names(arrays):
    return {name for name, decl in arrays.items() if decl.readonly}


def verify_function(function):
    """Check a serial Function: defined-before-use, valid breaks, decls.

    Queue operations are rejected outright — a serial kernel has no queues;
    they appear only in pipeline stages where the queue table scopes them.
    """
    scope = _Scope(function.scalar_params)
    scope.define("@" + a for a in ())  # no-op; arrays are symbols, not regs
    _verify_body(
        function.body,
        scope,
        function.arrays,
        _readonly_names(function.arrays),
        loop_depth=0,
        where="func %s" % function.name,
    )
    return True


def verify_pipeline(pipeline, max_queues=None, max_ras=None):
    """Check a PipelineProgram's wiring and each stage's body.

    * stage indices and RA ids are unique (endpoint descriptors would be
      ambiguous otherwise);
    * every queue has one producer and one consumer endpoint that exists;
    * stages only enq to queues they produce and deq from queues they
      consume — and every queue id a statement references is declared in
      the program's queue table;
    * RA in/out queues are distinct and agree with the queue specs;
    * handlers are installed only on queues the stage consumes;
    * optional machine limits (queues, RAs) are respected.
    """
    if max_queues is not None and len(pipeline.queues) > max_queues:
        _fail("pipeline %s uses %d queues > machine limit %d", pipeline.name, len(pipeline.queues), max_queues)
    if max_ras is not None and len(pipeline.ras) > max_ras:
        _fail("pipeline %s uses %d RAs > machine limit %d", pipeline.name, len(pipeline.ras), max_ras)

    stage_ids = set()
    for stage in pipeline.stages:
        if stage.index in stage_ids:
            _fail(
                "pipeline %s has two stages with index %d: queue endpoints are ambiguous",
                pipeline.name,
                stage.index,
            )
        stage_ids.add(stage.index)
    ra_ids = set()
    for ra in pipeline.ras:
        if ra.raid in ra_ids:
            _fail("pipeline %s has two RAs with id %d", pipeline.name, ra.raid)
        ra_ids.add(ra.raid)

    def endpoint_ok(ep):
        kind, idx = ep
        if kind == "stage":
            return idx in stage_ids
        if kind == "ra":
            return idx in ra_ids
        if kind == "extern":
            # Reserved for replicated pipelines, where a remote replica is
            # the producer or consumer.
            return True
        return False

    for q in pipeline.queues.values():
        if not endpoint_ok(q.producer):
            _fail("queue %d has unknown producer %s", q.qid, q.producer)
        if not endpoint_ok(q.consumer):
            _fail("queue %d has unknown consumer %s", q.qid, q.consumer)

    for ra in pipeline.ras:
        if ra.in_queue == ra.out_queue:
            _fail("RA %d uses queue %d as both input and output", ra.raid, ra.in_queue)
        if ra.in_queue not in pipeline.queues:
            _fail("RA %d input queue %d undeclared", ra.raid, ra.in_queue)
        if ra.out_queue not in pipeline.queues:
            _fail("RA %d output queue %d undeclared", ra.raid, ra.out_queue)
        if pipeline.queues[ra.in_queue].consumer != ("ra", ra.raid):
            _fail("RA %d is not the consumer of its input queue %d", ra.raid, ra.in_queue)
        if pipeline.queues[ra.out_queue].producer != ("ra", ra.raid):
            _fail("RA %d is not the producer of its output queue %d", ra.raid, ra.out_queue)
        if is_array_symbol(ra.array) and ra.array[1:] not in pipeline.arrays:
            _fail("RA %d references undeclared array %s", ra.raid, ra.array)

    readonly = _readonly_names(pipeline.arrays)
    for stage in pipeline.stages:
        me = ("stage", stage.index)

        def queue_check(stmt, where, _me=me):
            q = pipeline.queues.get(stmt.queue)
            if q is None:
                _fail(
                    "%s: reference to undeclared queue %d",
                    where,
                    stmt.queue,
                    span=_span_of(stmt),
                )
            if stmt.kind in ("enq", "enq_ctrl", "enq_dist", "enq_ctrl_dist") and q.producer != _me:
                _fail(
                    "%s: stage is not the producer of queue %d",
                    where,
                    stmt.queue,
                    span=_span_of(stmt),
                )
            if stmt.kind in ("deq", "peek") and q.consumer != _me:
                _fail(
                    "%s: stage is not the consumer of queue %d",
                    where,
                    stmt.queue,
                    span=_span_of(stmt),
                )

        scope = _Scope(pipeline.scalar_params)
        _verify_body(
            stage.body,
            scope,
            pipeline.arrays,
            readonly,
            loop_depth=0,
            where="stage %d (%s)" % (stage.index, stage.name),
            queue_check=queue_check,
        )

        for qid, handler in stage.handlers.items():
            q = pipeline.queues.get(qid)
            if q is None or q.consumer != me:
                _fail(
                    "stage %d installs a handler on queue %d it does not consume",
                    stage.index,
                    qid,
                )
            hscope = _Scope(set(scope.defined) | {"%ctrl"})
            # Handlers run at a dequeue inside (possibly) nested loops; a
            # trailing Break is resolved against the dequeue's loop depth at
            # runtime, so allow breaks here with a generous static depth.
            _verify_body(
                handler,
                hscope,
                pipeline.arrays,
                readonly,
                loop_depth=8,
                where="stage %d handler(q%d)" % (stage.index, qid),
                queue_check=queue_check,
            )
    return True
