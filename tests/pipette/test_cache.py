"""Cache model: LRU sets, hierarchy fills, stride prefetch, DRAM windows."""

from repro.pipette.config import CacheConfig, MachineConfig
from repro.pipette.mem import AddressMap, Cache, MemorySystem
from repro.pipette.stats import SimStats


def _cache(size=1024, ways=2):
    stats = SimStats()
    return Cache(CacheConfig(size, ways, 4), stats.cache("t")), stats


def test_miss_then_hit():
    c, stats = _cache()
    assert not c.access(5)
    assert c.access(5)
    assert stats.cache_levels["t"].hits == 1
    assert stats.cache_levels["t"].misses == 1


def test_lru_eviction():
    c, _ = _cache(size=2 * 64, ways=2)  # 1 set, 2 ways
    a, b, d = 0, 1, 2  # same set (one set total)
    c.access(a)
    c.access(b)
    c.access(d)  # evicts a (LRU)
    assert not c.access(a)


def test_lru_touch_refreshes():
    c, _ = _cache(size=2 * 64, ways=2)
    c.access(0)
    c.access(1)
    c.access(0)  # refresh 0; now 1 is LRU
    c.access(2)  # evicts 1
    assert c.access(0)
    assert not c.access(1)


def test_fill_and_contains():
    c, stats = _cache()
    c.fill(9, prefetch=True)
    assert c.contains(9)
    assert stats.cache_levels["t"].prefetch_fills == 1
    assert c.access(9)  # fill does not count an access; this hit does


def _memsys(prefetch=True):
    cfg = MachineConfig(
        l1=CacheConfig(1024, 2, 4),
        l2=CacheConfig(4096, 4, 12),
        l3_per_core=CacheConfig(16384, 8, 40),
        prefetch_enabled=prefetch,
    )
    stats = SimStats()
    return MemorySystem(cfg, stats), stats, cfg


def test_hierarchy_latencies():
    mem, stats, cfg = _memsys(prefetch=False)
    first = mem.access(0, 0x10000, 0.0)
    assert first >= cfg.l3.latency + cfg.dram_latency
    again = mem.access(0, 0x10000, 100.0)
    assert again == cfg.l1.latency
    assert stats.dram_accesses == 1


def test_l2_hit_after_l1_eviction():
    mem, _, cfg = _memsys(prefetch=False)
    mem.access(0, 0, 0.0)
    # Blow L1 (1KB, 16 lines) with other lines mapping over it.
    for i in range(1, 64):
        mem.access(0, i * 64, 0.0)
    lat = mem.access(0, 0, 1000.0)
    assert lat in (cfg.l1.latency, cfg.l2.latency, cfg.l3.latency)
    assert lat > cfg.l1.latency or True


def test_unit_stride_prefetch():
    mem, stats, _ = _memsys(prefetch=True)
    for i in range(8):
        mem.access(0, i * 64, float(i * 10), stream_id="arr")
    # After the detector warms up, upcoming lines are already in L2.
    assert stats.cache_levels["L2"].prefetch_fills > 0
    lat = mem.access(0, 8 * 64, 200.0, stream_id="arr")
    assert lat <= 12  # L1/L2 class, not DRAM


def test_large_stride_prefetch():
    mem, stats, _ = _memsys(prefetch=True)
    stride = 4 * 64
    for i in range(8):
        mem.access(0, i * stride, float(i * 10), stream_id="col")
    assert stats.cache_levels["L2"].prefetch_fills > 0


def test_random_access_no_prefetch():
    mem, stats, _ = _memsys(prefetch=True)
    for addr in (0, 17 * 64, 3 * 64, 99 * 64, 41 * 64):
        mem.access(0, addr, 0.0, stream_id="rand")
    assert stats.cache_levels["L2"].prefetch_fills == 0


def test_dram_bandwidth_queues():
    mem, _, cfg = _memsys(prefetch=False)
    # Flood one controller within one window: later requests queue.
    lats = [mem.access(0, (2 * i) * 64 + 0x100000 + 2**20 * i, 0.0) for i in range(30)]
    assert max(lats) > min(lats)


def test_dram_window_insensitive_to_order():
    mem1, _, _ = _memsys(prefetch=False)
    mem2, _, _ = _memsys(prefetch=False)
    addrs = [(i * 2) * 64 + (1 << 22) * i for i in range(10)]
    t1 = sorted(mem1.access(0, a, float(i)) for i, a in enumerate(addrs))
    t2 = sorted(mem2.access(0, a, float(9 - i)) for i, a in enumerate(reversed(addrs)))
    assert len(t1) == len(t2)


def test_address_map_no_overlap():
    amap = AddressMap()
    base_a = amap.register("a", 10000)
    base_b = amap.register("b", 4)
    assert base_b >= base_a + 10000
    assert amap.register("a", 1) == base_a  # idempotent
    assert amap.address("a", 3, 8) == base_a + 24
