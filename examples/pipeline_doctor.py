"""Pipeline doctor: diagnosing a pipeline with the run inspector.

When a pipeline underperforms, the questions are always the same: which
stage is the bottleneck, is it stalled on memory or on queues, and are the
queues running full (producer-bound) or empty (consumer-bound)? This
script runs BFS twice — the naive queues-only pipeline and the fully
optimized one — and prints the per-thread / per-queue reports that answer
those questions.

Run:  python examples/pipeline_doctor.py
"""

from repro.core import ALL_PASSES, compile_function
from repro.pipette import SCALED_1CORE
from repro.runtime import describe_run, run_pipeline
from repro.workloads import bfs
from repro.workloads.graphs import uniform_random


def main():
    graph = uniform_random(12000, 5, seed=2)
    function = bfs.function()
    arrays, scalars = bfs.make_env(graph)

    for label, passes in (("queues only (pass 1)", ()), ("all passes", ALL_PASSES)):
        pipeline = compile_function(function, num_stages=4, passes=passes)
        result = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
        assert bfs.check(result.arrays, graph)
        print("=" * 72)
        print(label)
        print("=" * 72)
        print(describe_run(result, result.machine))
        print()


if __name__ == "__main__":
    main()
