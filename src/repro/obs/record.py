"""Structured, versioned run metrics (``RunRecord``).

One RunRecord is a plain JSON-serializable dict describing one
``(benchmark, variant, input)`` execution: cycles, the full
:meth:`~repro.pipette.stats.SimStats.summary` (including per-queue traffic
and the stall buckets), the Fig. 10 cycle breakdown, the energy breakdown,
cache-layer hit rates, and — when instrumented — compile-pass timings and
search verdicts. Records stream to JSONL (one record per line, sorted
keys) so cross-variant and cross-run comparisons are a ``jq`` one-liner.

The schema is versioned: every record carries ``schema`` and ``version``;
consumers must ignore unknown keys (additions bump nothing) while any
change to the *meaning* of an existing key bumps ``RECORD_VERSION``.
"""

import json

#: Schema identity stamped on every record.
RECORD_SCHEMA = "repro.obs/run-record"
RECORD_VERSION = 1

#: Merge/sort identity of a record within a stream.
_KEY_FIELDS = ("bench", "input", "variant")


def run_record(
    bench,
    variant,
    input_name,
    cycles,
    ok=None,
    summary=None,
    breakdown=None,
    energy=None,
    speedup=None,
    cache_stats=None,
    passes=None,
    search=None,
    extra=None,
):
    """Build one RunRecord dict.

    ``summary``/``breakdown``/``energy`` come from the simulator
    (:class:`~repro.pipette.stats.SimStats`), ``cache_stats`` from
    :func:`repro.cache.stats`, ``passes`` from
    :meth:`~repro.obs.passes.PassProfiler.as_dicts`, ``search`` from
    :meth:`~repro.obs.search.SearchRecorder.as_dict`.
    """
    record = {
        "schema": RECORD_SCHEMA,
        "version": RECORD_VERSION,
        "bench": bench,
        "variant": variant,
        "input": input_name,
        "cycles": cycles,
    }
    if ok is not None:
        record["ok"] = bool(ok)
    if speedup is not None:
        record["speedup"] = speedup
    if summary is not None:
        record["summary"] = summary
    if breakdown is not None:
        record["breakdown"] = breakdown
    if energy is not None:
        record["energy"] = energy
    if cache_stats is not None:
        record["cache"] = {
            layer: {
                "hits": counts["hits"],
                "misses": counts["misses"],
                "hit_rate": (
                    counts["hits"] / (counts["hits"] + counts["misses"])
                    if counts["hits"] + counts["misses"]
                    else 0.0
                ),
            }
            for layer, counts in cache_stats.items()
        }
    if passes is not None:
        record["passes"] = passes
    if search is not None:
        record["search"] = search
    if extra:
        record.update(extra)
    return record


def records_from_suite(bench, suite, cache_stats=None):
    """RunRecords for every run of a :func:`repro.bench.harness.run_suite`.

    Iterates variants and runs in the suite's own (deterministic) order, so
    records built from a parallel harness run are identical to a serial
    one: the worker pool returns per-input results in submission order and
    the merge below adds nothing time-dependent.
    """
    records = []
    for variant, runs in suite.items():
        if variant.startswith("_"):
            continue
        for run in runs:
            records.append(
                run_record(
                    bench,
                    variant,
                    run.input_name,
                    run.cycles,
                    ok=run.ok,
                    speedup=run.meta.get("speedup"),
                    summary=run.meta.get("summary"),
                    breakdown=run.breakdown,
                    energy=run.energy,
                    cache_stats=cache_stats,
                )
            )
    return records


def merge_records(*record_lists):
    """Deterministically merge record streams (e.g. one per worker).

    Records are keyed by ``(bench, input, variant)``; the first occurrence
    wins and the merged stream is sorted by that key, so any partition of
    the same work across workers merges to the same list.
    """
    seen = {}
    for records in record_lists:
        for record in records:
            key = tuple(str(record.get(field)) for field in _KEY_FIELDS)
            if key not in seen:
                seen[key] = record
    return [seen[key] for key in sorted(seen)]


def write_jsonl(records, path):
    """Write records to ``path``, one sorted-key JSON object per line."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


def read_jsonl(path):
    """Read a JSONL record stream back (blank lines ignored)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
