"""Regenerates paper Fig. 9: per-benchmark speedups over serial.

Expected shape (paper): Phloem beats serial and the data-parallel baseline
on the graph benchmarks, achieves the bulk of the manually pipelined
performance, and shows no improvement on SpMM (whose bespoke merge trick
is unavailable to the compiler).
"""

from repro.bench.experiments import fig9_overall_speedup
from repro.core.autotune import gmean


def test_fig9(once):
    result = once(fig9_overall_speedup)
    print(result["text"])
    table = result["speedups"]
    graph_apps = ("bfs", "cc", "prd", "radii")
    for name in graph_apps:
        assert table[name]["phloem"] > 1.2, name
    # Paper: Phloem surpasses the data-parallel implementation "in almost
    # all cases" — require it on at least half the graph benchmarks (our
    # data-parallel baselines are comparatively strong; see EXPERIMENTS.md).
    wins = sum(table[n]["phloem"] > table[n]["data-parallel"] for n in graph_apps)
    assert wins >= 2, table
    # SpMM: the negative result — no meaningful gain for Phloem.
    assert table["spmm"]["phloem"] < 1.4
    assert table["spmm"]["manual"] > table["spmm"]["phloem-static"]
    # Overall gmean lands in the paper's neighborhood (1.7x).
    overall = gmean([table[n]["phloem"] for n in table])
    assert overall > 1.4
