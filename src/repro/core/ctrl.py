"""Passes 4-6: control values, inter-stage DCE, control-value handlers.

**Use control values (pass 4).** A consumer loop whose bounds arrive by
queue (``deq lo; deq hi; for (e = lo; e < hi; ...)``) stops computing its
trip count: the producer appends an in-band ``NEXT`` marker to the element
stream, the consumer becomes ``while (true)`` with an ``is_control`` check,
and the bounds queues disappear.

**Inter-stage DCE (pass 6).** When the consumer's enclosing counted loop
does nothing but run the element loop (nobody cares which vertex a
neighbor belonged to), the per-iteration ``NEXT`` markers are superfluous:
the two loops collapse into one stream consumed until a single ``DONE``
per phase, and the producer's marker moves out of its loop. Processed
downstream-first so middle stages collapse on both sides.

**Control-value handlers (pass 5).** The explicit ``is_control`` check in
the inner loop still costs instructions per element; Pipette's handlers
eliminate it. The ``deq; is_control; if (ctrl) {...}`` prefix moves into a
hardware handler attached to the queue, leaving a bare dequeue in the loop.
"""

from ..ir import stmts as S
from ..ir.stmts import walk
from ..ir.values import Ctrl
from .rewrite import find_container, substitute_uses


def _single_use(body, reg, exclude):
    count = 0
    for stmt in walk(body):
        if stmt is exclude:
            continue
        if reg in stmt.uses():
            count += 1
        if stmt.kind == "for" and reg in (stmt.lo, stmt.hi, stmt.step):
            pass  # already counted via uses()
    return count


def _stage_of_queue_producer(pipeline, qid):
    kind, idx = pipeline.queues[qid].producer
    if kind != "stage":
        return None
    for stage in pipeline.stages:
        if stage.index == idx:
            return stage
    return None


def _find_deq(stage, qid):
    for stmt in walk(stage.body):
        if stmt.kind == "deq" and stmt.queue == qid:
            return stmt
    return None


def _find_enqs(stage, qid):
    return [s for s in walk(stage.body) if s.kind == "enq" and s.queue == qid]


def _remove(body, victims):
    ids = {id(v) for v in victims}
    kept = []
    for stmt in body:
        if id(stmt) in ids:
            continue
        for block in stmt.blocks():
            _remove(block, victims)
        kept.append(stmt)
    body[:] = kept


def _innermost_loop_chain(body, target, chain=()):
    """Loop statements enclosing ``target``, outermost first, or None."""
    for stmt in body:
        if stmt is target:
            return chain
        for block in stmt.blocks():
            ext = chain + (stmt,) if stmt.kind in ("for", "loop") else chain
            found = _innermost_loop_chain(block, target, ext)
            if found is not None:
                return found
    return None


# ---------------------------------------------------------------------------
# Pass 4: use control values


def apply_control_values(pipeline):
    """Convert bounded consumer loops fed by queued bounds into
    control-value-terminated streams."""
    converted = []
    # Downstream stages first: converting a boundary removes the bounds
    # forwards from its producer, which is what makes the producer's own
    # upstream boundary convertible. Sweep until a fixpoint for safety.
    changed = True
    while changed:
        changed = False
        for stage in reversed(pipeline.stages):
            for for_stmt in list(walk(stage.body)):
                if for_stmt.kind != "for":
                    continue
                if _try_convert_loop(pipeline, stage, for_stmt):
                    converted.append(stage.index)
                    changed = True
    if converted:
        pipeline.meta.setdefault("passes", []).append("cv")
    return pipeline


def _try_convert_loop(pipeline, stage, for_stmt):
    lo, hi = for_stmt.lo, for_stmt.hi
    if type(lo) is not str or type(hi) is not str or for_stmt.step != 1:
        return False
    if not for_stmt.body:
        return False
    elem_deq = for_stmt.body[0]
    if elem_deq.kind != "deq":
        return False
    qe = elem_deq.queue
    # Bounds must each come from their own queue and be used only here.
    defs = {}
    for stmt in walk(stage.body):
        for reg in stmt.defs():
            defs.setdefault(reg, []).append(stmt)
    lo_defs, hi_defs = defs.get(lo, []), defs.get(hi, [])
    if len(lo_defs) != 1 or len(hi_defs) != 1:
        return False
    lo_def, hi_def = lo_defs[0], hi_defs[0]
    if lo_def.kind != "deq" or hi_def.kind != "deq" or lo_def.queue == hi_def.queue:
        return False
    if _single_use(stage.body, lo, for_stmt) or _single_use(stage.body, hi, for_stmt):
        return False
    if for_stmt.var in set().union(*[set(s.uses()) for s in walk(for_stmt.body)] or [set()]):
        return False

    producer = _stage_of_queue_producer(pipeline, qe)
    if producer is None:
        return False
    elem_enqs = _find_enqs(producer, qe)
    if not elem_enqs:
        return False
    chain = _innermost_loop_chain(producer.body, elem_enqs[0])
    if not chain:
        return False
    gen_loop = chain[-1]

    # Producer: drop the bounds enqueues, add the NEXT marker after the
    # generating loop.
    bounds_enqs = _find_enqs(producer, lo_def.queue) + _find_enqs(producer, hi_def.queue)
    if len(bounds_enqs) != 2:
        return False
    _remove(producer.body, bounds_enqs)
    container = find_container(producer.body, gen_loop)
    container.insert(container.index(gen_loop) + 1, S.EnqCtrl(qe, Ctrl(Ctrl.NEXT)))

    # Consumer: drop the bounds dequeues; For -> ctrl-terminated Loop.
    _remove(stage.body, [lo_def, hi_def])
    ctl = "%c_q%d" % (qe, stage.index)
    new_body = [elem_deq, S.IsControl(ctl, elem_deq.dst), S.If(ctl, [S.Break(1)], [])]
    new_body.extend(for_stmt.body[1:])
    loop = S.Loop(new_body)
    holder = find_container(stage.body, for_stmt)
    holder[holder.index(for_stmt)] = loop

    del pipeline.queues[lo_def.queue]
    del pipeline.queues[hi_def.queue]
    pipeline.meta.setdefault("cv_queues", []).append(qe)
    return True


# ---------------------------------------------------------------------------
# Pass 6: inter-stage dead code elimination (superfluous control values)


def apply_interstage_dce(pipeline):
    """Collapse per-iteration NEXT markers into one DONE per phase."""
    elem_queues = list(pipeline.meta.get("cv_queues", []))
    # Downstream boundaries first, so a middle stage's outgoing marker moves
    # out of the loop before its own enclosing loop is considered.
    order = {q.qid: (q.consumer[1] if q.consumer[0] == "stage" else -1) for q in pipeline.queues.values()}
    elem_queues.sort(key=lambda qid: -order.get(qid, -1))
    collapsed = []
    for qid in elem_queues:
        if qid in pipeline.queues and _try_collapse(pipeline, qid):
            collapsed.append(qid)
    if collapsed:
        pipeline.meta.setdefault("passes", []).append("dce")
        pipeline.meta["collapsed_queues"] = collapsed
    return pipeline


def _try_collapse(pipeline, qe):
    spec = pipeline.queues[qe]
    if spec.consumer[0] != "stage":
        return False
    consumer = next(s for s in pipeline.stages if s.index == spec.consumer[1])
    producer = _stage_of_queue_producer(pipeline, qe)
    if producer is None:
        return False

    # Find the consumer's ctrl-terminated Loop for qe and its enclosing For.
    loop = None
    for stmt in walk(consumer.body):
        if stmt.kind == "loop" and stmt.body and stmt.body[0].kind == "deq" and stmt.body[0].queue == qe:
            loop = stmt
            break
    if loop is None:
        return False
    chain = _innermost_loop_chain(consumer.body, loop)
    if not chain:
        return False
    outer = chain[-1]
    if outer.kind != "for":
        return False
    if [s for s in outer.body if s is not loop]:
        return False  # the counted loop does more than run the stream
    if any(outer.var in s.uses() for s in walk(loop.body)):
        return False

    # Find the producer's per-iteration marker for qe.
    marker = None
    for stmt in walk(producer.body):
        if stmt.kind == "enq_ctrl" and stmt.queue == qe and stmt.ctrl.name == Ctrl.NEXT:
            marker = stmt
            break
    if marker is None:
        return False
    m_chain = _innermost_loop_chain(producer.body, marker)
    if not m_chain:
        return False
    m_outer = m_chain[-1]
    if m_outer.kind != "for":
        # The marker already sits at phase level (or under an unbounded
        # loop); hoisting it further would break the per-phase protocol.
        return False

    # Producer: one DONE after the outer generating loop instead of NEXT
    # per iteration.
    _remove(producer.body, [marker])
    container = find_container(producer.body, m_outer)
    container.insert(container.index(m_outer) + 1, S.EnqCtrl(qe, Ctrl(Ctrl.DONE)))

    # Consumer: splice the stream loop up in place of the counted loop.
    holder = find_container(consumer.body, outer)
    holder[holder.index(outer)] = loop
    return True


# ---------------------------------------------------------------------------
# Pass 5: control-value handlers


def apply_control_handlers(pipeline):
    """Move ``deq; is_control; if`` prefixes into hardware handlers."""
    installed = []
    for stage in pipeline.stages:
        for loop in list(walk(stage.body)):
            if loop.kind != "loop" or len(loop.body) < 3:
                continue
            deq, check, branch = loop.body[0], loop.body[1], loop.body[2]
            if deq.kind != "deq" or check.kind != "is_control" or branch.kind != "if":
                continue
            if check.src != deq.dst or branch.cond != check.dst or branch.else_body:
                continue
            if deq.queue in stage.handlers:
                continue
            arm = branch.then_body
            if not arm or arm[-1].kind != "break":
                continue
            if any(s.kind not in ("break", "enq_ctrl", "enq", "comment") for s in arm):
                continue
            handler = [s.clone() for s in arm]
            substitute_uses(handler, {deq.dst: "%ctrl"})
            stage.handlers[deq.queue] = handler
            loop.body[1:3] = []
            installed.append((stage.index, deq.queue))
    if installed:
        pipeline.meta.setdefault("passes", []).append("handlers")
        pipeline.meta["handlers"] = installed
    return pipeline
