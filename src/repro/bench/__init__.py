"""Evaluation harness regenerating the paper's figures.

``harness`` runs variant suites behind the unified :class:`BenchAdapter`;
``parallel`` fans independent jobs over a worker pool; ``experiments``
holds the per-figure drivers; ``report`` renders ASCII figures plus the
cache/wall-time summaries.
"""

from .harness import (
    DP_THREADS,
    QUICK,
    BenchAdapter,
    GraphBenchAdapter,
    SpmmBenchAdapter,
    adapter_for,
    gmean_speedup,
    normalized_breakdowns,
    normalized_energy,
    profile_guided_pipeline,
    run_suite,
)
from .parallel import Job, JobResult, resolve_jobs, run_jobs

__all__ = [
    "DP_THREADS",
    "QUICK",
    "BenchAdapter",
    "GraphBenchAdapter",
    "SpmmBenchAdapter",
    "adapter_for",
    "gmean_speedup",
    "normalized_breakdowns",
    "normalized_energy",
    "profile_guided_pipeline",
    "run_suite",
    "Job",
    "JobResult",
    "resolve_jobs",
    "run_jobs",
]
