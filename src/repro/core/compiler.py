"""The Phloem compiler driver.

``compile_function`` turns a serial :class:`~repro.ir.Function` into a
:class:`~repro.ir.PipelineProgram` by running the paper's passes in order:

1. decouple + add queues (Sec. IV-B pass 1, always on),
2. recompute (pass 2),
3. use control values (pass 4),
4. inter-stage dead code elimination (pass 6),
5. control-value handlers (pass 5),
6. accelerate accesses with RAs + chaining (pass 3).

RA offloading runs last because chaining feeds on the streamlined queue
protocol the control-value passes leave behind; the *pass set* is exposed
so the Fig. 6 ablation can reproduce each intermediate configuration.
"""

import dataclasses
import warnings
from dataclasses import dataclass

from ..analysis.sanitize import sanitize_pipeline
from ..errors import CompileError
from ..frontend.lowering import compile_source
from ..ir.stmts import walk
from ..ir.verifier import verify_pipeline
from ..obs import log
from .accelerate import apply_reference_accelerators
from .cleanup import cleanup_stage
from .ctrl import apply_control_handlers, apply_control_values, apply_interstage_dce
from .decouple import decouple_function, drop_trivial_stages
from .recompute import apply_recompute

#: Every optional pass, in application order. "queues" (pass 1) is implied
#: by decoupling itself and always on.
ALL_PASSES = ("recompute", "cv", "dce", "handlers", "ra")


@dataclass(frozen=True)
class CompileOptions:
    """Everything that shapes a compilation, as one hashable value.

    Consolidates the ``num_stages``/``passes``/``max_ras``/... kwarg sprawl
    on :func:`compile_function`: pass ``options=CompileOptions(...)`` to the
    compiler, the autotune search, or the bench harness. Being frozen and
    canonically keyable (:meth:`cache_key`), an options value doubles as the
    second half of the compiled-pipeline cache key (:mod:`repro.cache`) —
    the first half being the content hash of the lowered IR.
    """

    num_stages: int = 4
    passes: tuple = ALL_PASSES
    max_ras: int = 4
    queue_capacity: int = 24
    max_queues: int = 16
    point_indices: tuple = None
    #: Re-run the IR verifier and the static safety analyzer after every
    #: pass (LLVM's -verify-each). Deliberately NOT part of cache_key():
    #: verification never changes the compiled pipeline, so a verified and
    #: an unverified compile must share cache entries.
    verify_each: bool = False
    #: Run compiled pipelines on the closure-compiled fast path
    #: (:mod:`repro.pipette.fastpath`). Recorded in ``pipeline.meta`` for
    #: the machine to honor; like ``verify_each``, NOT part of cache_key()
    #: — the engine choice never changes the compiled pipeline, so both
    #: engines must share cache entries.
    fastpath: bool = True
    #: Run the static performance model at the end of compilation and log
    #: its PHL4xx advisories. Advisory only — it never changes the
    #: compiled pipeline — so, like ``verify_each``/``fastpath``, it is
    #: deliberately NOT part of cache_key(): analyzed and unanalyzed
    #: compiles must share cache entries.
    perf_lints: bool = False

    def __post_init__(self):
        object.__setattr__(self, "passes", tuple(self.passes))
        if self.point_indices is not None:
            object.__setattr__(self, "point_indices", tuple(self.point_indices))
        if self.num_stages < 1:
            raise CompileError("num_stages must be >= 1")
        for name in self.passes:
            if name not in ALL_PASSES:
                raise CompileError("unknown pass %r" % name)

    def replace(self, **changes):
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def merge(self, **overrides):
        """A copy with every non-``None`` override applied (kwarg shims)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self

    def cache_key(self):
        """Canonical one-line text of this options value (cache key half)."""
        points = (
            "-" if self.point_indices is None else ",".join(str(i) for i in self.point_indices)
        )
        return "stages=%d;passes=%s;max_ras=%d;qcap=%d;maxq=%d;points=%s" % (
            self.num_stages,
            ",".join(self.passes),
            self.max_ras,
            self.queue_capacity,
            self.max_queues,
            points,
        )


def _remove_dead_queues(pipeline):
    """Delete point-to-point queues whose dequeued value is never used."""
    changed = True
    while changed:
        changed = False
        for qid in list(pipeline.queues):
            enqs, deqs, others = [], [], []
            for stage in pipeline.stages:
                for stmt in stage.all_stmts():
                    if getattr(stmt, "queue", None) != qid:
                        continue
                    if stmt.kind == "enq":
                        enqs.append((stage, stmt))
                    elif stmt.kind == "deq":
                        deqs.append((stage, stmt))
                    else:
                        others.append((stage, stmt))
            if others or len(enqs) != 1 or len(deqs) != 1:
                continue
            cons_stage, deq = deqs[0]
            used = any(
                deq.dst in stmt.uses() for stmt in cons_stage.all_stmts() if stmt is not deq
            )
            if used:
                continue
            _strip(cons_stage.body, deq)
            _strip(enqs[0][0].body, enqs[0][1])
            del pipeline.queues[qid]
            changed = True
    return pipeline


def _strip(body, target):
    kept = []
    for stmt in body:
        if stmt is target:
            continue
        for block in stmt.blocks():
            _strip(block, target)
        kept.append(stmt)
    body[:] = kept


def compile_function(
    function,
    num_stages=None,
    passes=None,
    max_ras=None,
    queue_capacity=None,
    max_queues=None,
    point_indices=None,
    options=None,
    profiler=None,
):
    """Compile a serial function into a pipeline.

    ``options`` is a :class:`CompileOptions`; the individual kwargs are
    deprecated shims kept for the original API. Any that are passed
    explicitly still override the corresponding ``options`` field, but the
    shim path emits one :class:`DeprecationWarning` per call — pass
    ``options=CompileOptions(...)`` instead. ``point_indices`` selects
    specific ranked decoupling points (the profile-guided search drives
    this); by default the static cost model's top choices are used.

    ``profiler`` (a :class:`repro.obs.PassProfiler`) records per-pass wall
    time and IR deltas; it is observation only and never part of the
    compiled-pipeline cache key.
    """
    legacy = {
        "num_stages": num_stages,
        "passes": passes,
        "max_ras": max_ras,
        "queue_capacity": queue_capacity,
        "max_queues": max_queues,
        "point_indices": point_indices,
    }
    passed = sorted(k for k, v in legacy.items() if v is not None)
    if passed:
        warnings.warn(
            "compile_function(%s=...) kwargs are deprecated; pass "
            "options=CompileOptions(...) instead" % ", ".join(passed),
            DeprecationWarning,
            stacklevel=2,
        )
    options = (options or CompileOptions()).merge(**legacy)
    passes = options.passes

    if profiler is None:
        def run(name, subject, fn, result_of=None):
            return fn()
    else:
        run = profiler.measure

    def checkpoint(after):
        """--verify-each: structural + safety verification between passes."""
        if not options.verify_each:
            return
        verify_pipeline(pipeline)
        sanitize_pipeline(pipeline).raise_if_errors(
            "static analysis failed after pass '%s'" % after
        )

    pipeline, _points = run(
        "decouple",
        function,
        lambda: decouple_function(
            function,
            options.num_stages - 1,
            capacity=options.queue_capacity,
            point_indices=options.point_indices,
            profiler=profiler,
        ),
        result_of=lambda r: r[0],
    )

    checkpoint("decouple")

    if "recompute" in passes:
        run("recompute", pipeline, lambda: apply_recompute(pipeline))
        checkpoint("recompute")
    if "cv" in passes:
        run("cv", pipeline, lambda: apply_control_values(pipeline))
        checkpoint("cv")
    if "dce" in passes:
        run("dce", pipeline, lambda: apply_interstage_dce(pipeline))
        checkpoint("dce")
    if "handlers" in passes:
        run("handlers", pipeline, lambda: apply_control_handlers(pipeline))
        checkpoint("handlers")
    if "ra" in passes:
        def apply_ra():
            # Clean first: the chain matcher wants copy-propagated plumbing.
            for stage in pipeline.stages:
                cleanup_stage(stage)
            apply_reference_accelerators(
                pipeline, max_ras=options.max_ras, capacity=options.queue_capacity
            )

        run("ra", pipeline, apply_ra)
        checkpoint("ra")

    def finalize():
        _remove_dead_queues(pipeline)
        for stage in pipeline.stages:
            cleanup_stage(stage)
        drop_trivial_stages(pipeline)

    run("finalize", pipeline, finalize)
    pipeline.meta["requested_stages"] = options.num_stages
    pipeline.meta["pass_set"] = list(passes)
    pipeline.meta["fastpath"] = options.fastpath
    if function.pragmas.get("replicate"):
        # `#pragma replicate N`: record the request; the caller materializes
        # the replicas with core.replicate.replicate_pipeline (Sec. IV-C).
        pipeline.meta["replicate"] = function.pragmas["replicate"]
    verify_pipeline(pipeline, max_queues=options.max_queues, max_ras=options.max_ras)
    diags = sanitize_pipeline(pipeline)
    for warning in diags.warnings():
        log("compile %s: %s", pipeline.name, warning.render())
    diags.raise_if_errors("pipeline %s failed static safety analysis" % pipeline.name)
    if options.perf_lints:
        # Advisory only: logged, never raised, never part of the cache key.
        from ..analysis.perfmodel import perf_advisories

        for advisory in perf_advisories(pipeline).sorted():
            log("perf %s: %s", pipeline.name, advisory.render())
    return pipeline


def compile_c(source, name=None, num_stages=None, passes=None, options=None, profiler=None, **kwargs):
    """Parse mini-C source and compile the (named) kernel into a pipeline."""
    function = compile_source(source, name=name)
    return compile_function(
        function, num_stages=num_stages, passes=passes, options=options,
        profiler=profiler, **kwargs
    )


def pipeline_summary(pipeline):
    """One-line description used by the evaluation harness logs."""
    stmts = sum(1 for stage in pipeline.stages for _ in walk(stage.body))
    return "%s: %d stages + %d RAs, %d queues, %d stmts" % (
        pipeline.name,
        len(pipeline.stages),
        len(pipeline.ras),
        len(pipeline.queues),
        stmts,
    )
