"""Tensor-expression parsing."""

import pytest

from repro.errors import ParseError
from repro.taco.expr import TensorRef, parse_expression


def test_spmv_shape():
    e = parse_expression("y(i) = A(i,j) * x(j)")
    assert e.lhs.name == "y" and e.lhs.indices == ("i",)
    assert len(e.terms) == 1
    (term,) = e.terms
    assert [r.name for r in term.refs] == ["A", "x"]
    assert e.contraction_vars == ["j"]


def test_signed_terms():
    e = parse_expression("y(i) = b(i) - A(i,j) * x(j)")
    assert [t.sign for t in e.terms] == [1, -1]


def test_scalars_captured():
    e = parse_expression("y(j) = alpha * A(i,j) * x(i) + beta * z(j)")
    assert e.terms[0].scalars == ["alpha"]
    assert e.terms[1].scalars == ["beta"]


def test_sddmm_shape():
    e = parse_expression("A(i,j) = B(i,j) * C(i,k) * D(k,j)")
    assert e.lhs.order == 2
    assert e.contraction_vars == ["k"]
    assert len(e.terms[0].refs) == 3


def test_index_vars_ordered():
    e = parse_expression("y(i) = A(i,j) * x(j)")
    assert e.index_vars == ["i", "j"]


def test_errors():
    with pytest.raises(ParseError):
        parse_expression("y(i) = = A(i,j)")
    with pytest.raises(ParseError):
        parse_expression("3 = A(i,j)")
    with pytest.raises(ParseError):
        parse_expression("y(i) = alpha * beta")  # no tensor in term
    with pytest.raises(ParseError):
        parse_expression("y() = A(i,j)")


def test_repr_roundtrippy():
    e = parse_expression("y(i) = b(i) - A(i,j) * x(j)")
    assert "A(i,j)" in repr(e)
    assert isinstance(e.lhs, TensorRef)
