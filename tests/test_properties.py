"""Property-based tests on the toolchain's core invariants.

Three pillars:

* random straight-line arithmetic kernels: the simulator computes exactly
  what a Python oracle computes;
* random graphs: the fully-optimized compiled BFS/CC pipelines agree with
  pure-Python references (the compiler's end-to-end soundness);
* machine components already covered in their units get cross-checked
  against simple models here.
"""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.core import compile_function
from repro.core.compiler import ALL_PASSES
from repro.pipette import Machine, MachineConfig, RunSpec
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs, cc
from repro.workloads.graphs import uniform_random

_OPS = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "min": min,
    "max": max,
}

_op_names = st.sampled_from(sorted(_OPS))
_values = st.integers(-(2**31), 2**31)


@st.composite
def straightline_programs(draw):
    """A random sequence of binary ops over a growing register file."""
    n_inputs = draw(st.integers(1, 4))
    inputs = [draw(_values) for _ in range(n_inputs)]
    n_ops = draw(st.integers(1, 12))
    program = []
    n_regs = n_inputs
    for _ in range(n_ops):
        op = draw(_op_names)
        a = draw(st.integers(0, n_regs - 1))
        b = draw(st.integers(0, n_regs - 1))
        program.append((op, a, b))
        n_regs += 1
    return inputs, program


@settings(max_examples=60, deadline=None)
@given(straightline_programs())
def test_interpreter_matches_python_oracle(case):
    inputs, program = case
    # Oracle.
    regs = list(inputs)
    for op, a, b in program:
        regs.append(_OPS[op](regs[a], regs[b]))
    expected = regs[-1]

    # Simulated.
    b_ = ir.IRBuilder()
    names = []
    for k, v in enumerate(inputs):
        names.append(b_.mov(v, dst="in%d" % k))
    for op, x, y in program:
        names.append(b_.binop(op, names[x], names[y]))
    b_.store("@out", 0, names[-1])
    stage = ir.StageProgram(0, "t", b_.finish())
    pipe = ir.PipelineProgram("t", [stage], [], [], {"out": ir.ArrayDecl("out")}, [])
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    assert res.arrays()["out"][0] == expected


@settings(max_examples=8, deadline=None)
@given(
    st.integers(20, 120),
    st.integers(1, 4),
    st.integers(0, 1000),
)
def test_compiled_bfs_correct_on_random_graphs(n, degree, seed):
    graph = uniform_random(n, degree, seed=seed)
    arrays, scalars = bfs.make_env(graph)
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    cfg = MachineConfig()
    result = run_pipeline(pipe, arrays, scalars, config=cfg)
    assert bfs.check(result.arrays, graph)


@settings(max_examples=5, deadline=None)
@given(st.integers(20, 80), st.integers(1, 3), st.integers(0, 1000))
def test_compiled_cc_correct_on_random_graphs(n, degree, seed):
    graph = uniform_random(n, degree, seed=seed)
    arrays, scalars = cc.make_env(graph)
    pipe = compile_function(cc.function(), num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=MachineConfig())
    assert cc.check(result.arrays, graph)


@settings(max_examples=10, deadline=None)
@given(st.integers(20, 100), st.integers(1, 4), st.integers(0, 500))
def test_serial_pipeline_equivalence(n, degree, seed):
    """Running serial code as a 1-stage pipeline is exactly the kernel."""
    graph = uniform_random(n, degree, seed=seed)
    arrays, scalars = bfs.make_env(graph)
    result = run_serial(bfs.function(), arrays, scalars, config=MachineConfig())
    assert bfs.check(result.arrays, graph)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 2**31), min_size=1, max_size=30), st.integers(1, 8))
def test_queue_through_machine_preserves_order(values, capacity):
    b0 = ir.IRBuilder()
    for v in values:
        b0.enq(0, v)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, len(values)):
        x = b1.deq(0)
        b1.store("@out", "i", x)
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t",
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("stage", 1), capacity=capacity)],
        [],
        {"out": ir.ArrayDecl("out")},
        [],
    )
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0] * len(values)}, {}))
    assert res.arrays()["out"] == values
