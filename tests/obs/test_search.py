"""Search recorder: candidates, failures, and the selection verdict."""

from repro.bench.harness import adapter_for
from repro.core.autotune import search_pipelines
from repro.errors import CompileError
from repro.obs import SearchRecorder


def test_recorder_mirrors_a_real_search():
    adapter = adapter_for("bfs")
    recorder = SearchRecorder()

    def evaluate(pipeline):
        # Cheap deterministic stand-in for profiling: prefer more units.
        return float(pipeline.num_units)

    best, results = search_pipelines(
        adapter.function(), evaluate, max_stages=3, top_k=3, recorder=recorder
    )
    scored = [c for c in recorder.candidates if c["status"] == "scored"]
    assert len(scored) == len(results)
    assert {tuple(c["points"]) for c in scored} == {r.indices for r in results}
    assert recorder.verdict is not None
    assert tuple(recorder.verdict["winner"]) == best.indices
    assert recorder.verdict["speedup"] == best.speedup


def test_recorder_captures_evaluation_failures():
    adapter = adapter_for("bfs")
    recorder = SearchRecorder()

    def evaluate(pipeline):
        raise CompileError("boom")

    best, results = search_pipelines(
        adapter.function(), evaluate, max_stages=2, top_k=2, recorder=recorder
    )
    assert best is None and results == []
    failed = [c for c in recorder.candidates if c["status"] == "failed:evaluate"]
    assert failed and all(c["error"] == "boom" for c in failed)
    assert recorder.verdict["winner"] is None


def test_verdict_margin_and_render():
    recorder = SearchRecorder()
    recorder.scored((0,), 3, 2.0)
    recorder.scored((1,), 4, 3.0)
    recorder.failed((0, 1), "compile", "not splittable")
    recorder.decide((1,))
    v = recorder.verdict
    assert v["winner"] == [1]
    assert v["runner_up"] == [0]
    assert v["margin"] == 1.0
    d = recorder.as_dict()
    assert len(d["candidates"]) == 3
    text = recorder.render()
    assert "failed:compile" in text
    assert "verdict:" in text


def test_recorder_logs_pruned_candidates():
    adapter = adapter_for("bfs")
    recorder = SearchRecorder()
    simulated = []

    def evaluate(pipeline):
        simulated.append(pipeline.num_units)
        return float(pipeline.num_units)

    best, results = search_pipelines(
        adapter.function(), evaluate, max_stages=3, top_k=3,
        recorder=recorder, prune_static=True,
    )
    scored = [c for c in recorder.candidates if c["status"] == "scored"]
    pruned = [c for c in recorder.candidates if c["status"] == "pruned"]
    # Pruned candidates are never evaluated: the recorder's scored entries
    # are exactly the simulations that ran.
    assert len(scored) == len(simulated) == len(results)
    for entry in pruned:
        assert entry["speedup"] is None
        assert entry["static_score"] > 0
        assert "static score" in entry["reason"]
    text = recorder.render()
    if pruned:
        assert "pruned: static score" in text


def test_pruned_entry_render():
    recorder = SearchRecorder()
    recorder.scored((1,), 3, 2.0)
    recorder.pruned((0,), 2, 0.001, "static score 0.001 below cutoff 0.002 (top 1 kept)")
    recorder.decide((1,))
    d = recorder.as_dict()
    assert len(d["candidates"]) == 2
    entry = next(c for c in recorder.candidates if c["status"] == "pruned")
    assert entry["static_score"] == 0.001
    assert "pruned: static score 0.001" in recorder.render()


def test_sole_candidate_has_no_margin():
    recorder = SearchRecorder()
    recorder.scored((2,), 2, 1.5)
    recorder.decide((2,))
    assert recorder.verdict["margin"] is None
    assert "sole scored candidate" in recorder.render()
