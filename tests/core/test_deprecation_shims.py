"""The legacy kwarg shims: one DeprecationWarning, CompileOptions semantics."""

import warnings

import pytest

from repro.bench.harness import adapter_for, run_suite
from repro.core import CompileOptions, compile_function, pipeline_summary
from repro.frontend import compile_source
from repro.workloads.datasets import GraphInput
from repro.workloads.graphs import uniform_random

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


@pytest.fixture
def function():
    return compile_source(KERNEL)


def test_legacy_kwargs_warn_once(function):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        compile_function(function, num_stages=3, max_ras=2)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, "one warning per call, not one per kwarg"
    message = str(deprecations[0].message)
    assert "max_ras" in message and "num_stages" in message
    assert "CompileOptions" in message


def test_options_path_does_not_warn(function):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        compile_function(function, options=CompileOptions(num_stages=3))


def test_legacy_kwargs_override_options(function):
    """Explicit kwargs still win over the options value (merge semantics)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        merged = compile_function(
            function, options=CompileOptions(num_stages=4, max_ras=2), num_stages=2
        )
    direct = compile_function(function, options=CompileOptions(num_stages=2, max_ras=2))
    assert pipeline_summary(merged) == pipeline_summary(direct)


def test_legacy_kwargs_equal_options(function):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_kwargs = compile_function(function, num_stages=3)
    via_options = compile_function(function, options=CompileOptions(num_stages=3))
    assert pipeline_summary(via_kwargs) == pipeline_summary(via_options)


def test_run_suite_num_stages_warns(tiny_config):
    inputs = [GraphInput("t", "test", lambda: uniform_random(60, 3, seed=5))]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_suite(
            adapter_for("bfs"), inputs, [], config=tiny_config,
            variants=("serial",), num_stages=3,
        )
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "CompileOptions" in str(deprecations[0].message)


def test_run_suite_options_path_does_not_warn(tiny_config):
    inputs = [GraphInput("t", "test", lambda: uniform_random(60, 3, seed=5))]
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        run_suite(
            adapter_for("bfs"), inputs, [], config=tiny_config,
            variants=("serial",), options=CompileOptions(num_stages=3),
        )
