"""Wire (de)serialization of the request/response layer."""

import json

import pytest

from repro.api import (
    API_VERSION,
    ApiError,
    BenchPerfRequest,
    CompileRequest,
    LintRequest,
    MetricsRequest,
    MetricsResponse,
    ReportRequest,
    Request,
    Response,
    RunRequest,
    SearchRequest,
    TraceRequest,
    error_response,
)
from repro.api.requests import REQUEST_SCHEMA, REQUEST_TYPES, RESPONSE_FOR_VERB

ALL_REQUESTS = [
    CompileRequest(source="void k() {}", name="k", fmt="summary"),
    LintRequest(bench="bfs", json=True, perf=True),
    RunRequest(bench="cc", size=120, seed=3),
    SearchRequest(bench="prd", prune_static=True),
    TraceRequest(bench="radii", trace_out="/tmp/t.json", profile_passes=True),
    MetricsRequest(bench="spmm", jobs=2, quiet=True),
    BenchPerfRequest(benches=("bfs", "cc"), scale="quick", strict=True),
    ReportRequest(results_dir="/tmp/results", title="run 1", html_out="/tmp/r.html"),
]


@pytest.mark.parametrize("request_obj", ALL_REQUESTS, ids=lambda r: r.VERB)
def test_round_trip_preserves_fields(request_obj):
    wire = request_obj.to_wire()
    # The wire object must survive real JSON serialization.
    rebuilt = Request.from_wire(json.loads(json.dumps(wire)))
    assert type(rebuilt) is type(request_obj)
    assert rebuilt.to_wire() == wire


def test_wire_envelope_shape():
    wire = MetricsRequest(bench="bfs").to_wire()
    assert wire["schema"] == REQUEST_SCHEMA
    assert wire["version"] == API_VERSION
    assert wire["verb"] == "metrics"
    assert wire["payload"]["bench"] == "bfs"


def test_unknown_payload_keys_ignored():
    wire = RunRequest(bench="bfs").to_wire()
    wire["payload"]["added_in_v99"] = {"x": 1}
    rebuilt = Request.from_wire(wire)
    assert rebuilt.bench == "bfs"
    assert not hasattr(rebuilt, "added_in_v99")


def test_wrong_schema_rejected():
    with pytest.raises(ApiError):
        Request.from_wire({"schema": "nope", "version": 1, "verb": "demo"})


def test_bad_version_rejected():
    wire = RunRequest().to_wire()
    wire["version"] = "one"
    with pytest.raises(ApiError):
        Request.from_wire(wire)


def test_unknown_verb_rejected():
    wire = RunRequest().to_wire()
    wire["verb"] = "frobnicate"
    with pytest.raises(ApiError):
        Request.from_wire(wire)


def test_every_verb_has_a_response_type():
    assert set(REQUEST_TYPES) == set(RESPONSE_FOR_VERB)


def test_response_round_trip():
    response = MetricsResponse(
        verb="metrics",
        exit_code=0,
        output="{}\n",
        records=[{"bench": "bfs"}],
        cache={"pipeline": {"hits": 1, "misses": 0}},
    )
    rebuilt = Response.from_wire(json.loads(json.dumps(response.to_wire())))
    assert type(rebuilt) is MetricsResponse
    assert rebuilt.ok
    assert rebuilt.records == [{"bench": "bfs"}]
    assert rebuilt.cache["pipeline"]["hits"] == 1


def test_response_unknown_type_falls_back_to_base():
    wire = Response(verb="demo").to_wire()
    wire["type"] = "FutureResponse"
    rebuilt = Response.from_wire(wire)
    assert type(rebuilt) is Response
    assert rebuilt.verb == "demo"


def test_error_response_shape():
    response = error_response("demo", "rate-limited", "slow down", exit_code=75)
    assert not response.ok
    assert response.exit_code == 75
    assert response.error == {"code": "rate-limited", "message": "slow down"}
