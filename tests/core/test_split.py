"""The decoupling transform: sides, forwarding, modes, rejections."""

import pytest

from repro import ir
from repro.analysis.costmodel import rank_decouple_points
from repro.core.phases import prepare_phases
from repro.core.split import split_at
from repro.errors import CompileError
from repro.frontend import compile_source
from repro.workloads import bfs


def _split(source, cls, already=None):
    f = compile_source(source)
    prepare_phases(f)
    points = {p.cls: p for p in rank_decouple_points(f)}
    counter = [0]

    def alloc():
        counter[0] += 1
        return counter[0] - 1

    return split_at(f.body, points[cls], alloc, f.scalar_params), f


SIMPLE = """
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


def test_value_mode_split():
    outcome, f = _split(SIMPLE, "@b")
    prod_kinds = [s.kind for s in ir.walk(outcome.producer_body)]
    cons_kinds = [s.kind for s in ir.walk(outcome.consumer_body)]
    # Producer performs the load and forwards the value.
    assert "load" in prod_kinds and "enq" in prod_kinds
    assert "store" not in prod_kinds
    # Consumer receives it and stores.
    assert "deq" in cons_kinds and "store" in cons_kinds
    loads_b = [s for s in ir.walk(outcome.consumer_body) if s.kind == "load" and s.array == "@b"]
    assert not loads_b


def test_loops_replicated_on_both_sides():
    outcome, _ = _split(SIMPLE, "@b")
    assert outcome.producer_body[0].kind == "for"
    assert outcome.consumer_body[0].kind == "for"


RW = """
void k(const int* restrict idx, int* restrict data, int n) {
  for (int i = 0; i < n; i++) {
    int j = idx[i];
    int old = data[j];
    if (old > 0) {
      data[j] = old - 1;
    }
  }
}
"""


def test_prefetch_mode_for_written_class():
    outcome, _ = _split(RW, "@data")
    prod = list(ir.walk(outcome.producer_body))
    cons = list(ir.walk(outcome.consumer_body))
    assert any(s.kind == "prefetch" and s.array == "@data" for s in prod)
    assert not any(s.kind == "load" and s.array == "@data" for s in prod)
    # Consumer keeps the authoritative load AND the store.
    assert any(s.kind == "load" and s.array == "@data" for s in cons)
    assert any(s.kind == "store" for s in cons)


def test_forwarded_index_in_prefetch_mode():
    outcome, _ = _split(RW, "@data")
    # The index j crosses the boundary through a queue.
    enqs = [s for s in ir.walk(outcome.producer_body) if s.kind == "enq"]
    deqs = [s for s in ir.walk(outcome.consumer_body) if s.kind == "deq"]
    assert enqs and deqs
    assert {e.queue for e in enqs} == {d.queue for d in deqs}


def test_group_shares_one_queue():
    outcome, _ = _split(bfs.SOURCE, "@nodes")
    group = outcome.group_queue
    assert group is not None
    enqs = [s for s in ir.walk(outcome.producer_body) if s.kind == "enq" and s.queue == group]
    assert len(enqs) == 2  # nodes[v] and nodes[v+1] values, one stream


def test_bfs_distances_split_rejects_nothing_crosswise():
    outcome, _ = _split(bfs.SOURCE, "@distances")
    # All stores stay in the consumer.
    assert not any(s.kind == "store" for s in ir.walk(outcome.producer_body))


def test_multidef_crossing_rejected():
    src = """
    void k(const int* restrict a, int* restrict out, int n) {
      int acc = 0;
      for (int i = 0; i < n; i++) {
        acc = acc + 1;
        int v = a[acc];
        out[i] = v + acc;
      }
    }
    """
    f = compile_source(src)
    points = {p.cls: p for p in rank_decouple_points(f)}
    counter = [0]
    with pytest.raises(CompileError):
        split_at(f.body, points["@a"], lambda: counter.append(0) or len(counter), f.scalar_params)


def test_pure_scalars_cloned_not_forwarded():
    outcome, _ = _split(SIMPLE, "@b")
    # The loop bound n is a parameter: no queue carries it.
    for fwd in outcome.forwards:
        assert fwd.reg != "n"


def test_barriers_cloned_to_both_sides():
    outcome, _ = _split(bfs.SOURCE, "@edges")
    p_barriers = sum(1 for s in ir.walk(outcome.producer_body) if s.kind == "barrier")
    c_barriers = sum(1 for s in ir.walk(outcome.consumer_body) if s.kind == "barrier")
    assert p_barriers == c_barriers == 2


def test_write_shared_stays_with_value():
    outcome, _ = _split(bfs.SOURCE, "@edges")
    # next_size is computed in the consumer; the WriteShared must be there.
    assert any(s.kind == "write_shared" for s in ir.walk(outcome.consumer_body))
    assert not any(s.kind == "write_shared" for s in ir.walk(outcome.producer_body))
