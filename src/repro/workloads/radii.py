"""Radii estimation (paper Sec. VI-B).

Ligra-style multi-source BFS: 64 simultaneous searches share one traversal,
each owning a bit of a 64-bit visited mask. A vertex's radius estimate is
the last round in which its mask grew; the graph's radius estimate is the
maximum. Compared to BFS, every neighbor visit does mask arithmetic on two
read-write arrays, which makes the decoupling prefetch-heavy.
"""

from ..frontend.lowering import compile_source
from ..ir import (
    ArrayDecl,
    Break,
    Ctrl,
    Deq,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)

NAME = "radii"

#: Number of simultaneous searches (bits in the visited masks).
K = 64

SOURCE = """
#pragma phloem
void radii(const int* restrict nodes, const int* restrict edges,
           long* restrict visited, long* restrict visited_next,
           int* restrict radii_arr, int* restrict lastpush,
           int* restrict fringe0, int* restrict fringe1,
           int n, int fringe_size_init) {
  int* restrict cur_fringe = fringe0;
  int* restrict next_fringe = fringe1;
  int fringe_size = fringe_size_init;
  int round = 1;
  while (fringe_size > 0) {
    int next_size = 0;
    for (int i = 0; i < fringe_size; i++) {
      int v = cur_fringe[i];
      long mv = visited[v];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e++) {
        int ngh = edges[e];
        long mn = visited_next[ngh];
        long un = mn | mv;
        if (un != mn) {
          visited_next[ngh] = un;
          if (lastpush[ngh] != round) {
            lastpush[ngh] = round;
            next_fringe[next_size] = ngh;
            next_size = next_size + 1;
          }
        }
      }
    }
    for (int j = 0; j < next_size; j++) {
      int u = next_fringe[j];
      visited[u] = visited_next[u];
      radii_arr[u] = round;
    }
    int* restrict tmp = cur_fringe;
    cur_fringe = next_fringe;
    next_fringe = tmp;
    fringe_size = next_size;
    round = round + 1;
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def sample_sources(graph, k=K):
    """Deterministic source sample: the k highest-degree vertices."""
    order = sorted(range(graph.n), key=lambda v: (-graph.degree(v), v))
    return order[: min(k, graph.n)]


def make_env(graph):
    n = graph.n
    sources = sample_sources(graph)
    visited = [0] * n
    for bit, s in enumerate(sources):
        visited[s] = 1 << bit
    fringe0 = [0] * (n + 1)
    for i, s in enumerate(sources):
        fringe0[i] = s
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "visited": visited,
        "visited_next": list(visited),
        "radii_arr": [0] * n,
        "lastpush": [0] * n,
        "fringe0": fringe0,
        "fringe1": [0] * (n + 1),
    }
    scalars = {"n": n, "fringe_size_init": len(sources)}
    return arrays, scalars


def reference(graph):
    """Oracle radii via the same algorithm in Python."""
    n = graph.n
    nodes, edges = graph.nodes, graph.edges
    sources = sample_sources(graph)
    visited = [0] * n
    for bit, s in enumerate(sources):
        visited[s] = 1 << bit
    visited_next = list(visited)
    radii_arr = [0] * n
    lastpush = [0] * n
    fringe = list(sources)
    rnd = 1
    while fringe:
        nxt = []
        for v in fringe:
            mv = visited[v]
            for e in range(nodes[v], nodes[v + 1]):
                ngh = edges[e]
                un = visited_next[ngh] | mv
                if un != visited_next[ngh]:
                    visited_next[ngh] = un
                    if lastpush[ngh] != rnd:
                        lastpush[ngh] = rnd
                        nxt.append(ngh)
        for u in nxt:
            visited[u] = visited_next[u]
            radii_arr[u] = rnd
        fringe = nxt
        rnd += 1
    return radii_arr


def check(arrays, graph):
    return arrays["radii_arr"] == reference(graph)


def estimate(arrays):
    """The headline number: the estimated graph radius."""
    return max(arrays["radii_arr"])


def manual_pipeline():
    """Hand-tuned 2-stage + 2-chained-RA pipeline.

    Like the paper's best Radii decoupling, this is a *short* pipeline
    (Sec. VII-B notes Radii favors 2 stages + RAs): one scan stage drives
    the RA chain and sends per-vertex masks; the update stage does all
    read-write mask work.
    """
    func = function()
    Q_RA1, Q_PAIRS, Q_NGH, Q_MASK = 0, 1, 2, 3

    b = IRBuilder(temp_prefix="%m")
    b.mov("@fringe0", dst="cur_fringe")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.for_("i", 0, "fringe_size"):
            v = b.load("cur_fringe", "i")
            # Send the vertex id, not its mask: `visited` is written by the
            # update stage within the phase, so only that stage may read it
            # (the compiler's aliasing rule; here applied by hand).
            b.enq(Q_MASK, v)
            b.enq(Q_RA1, v)
            b.enq(Q_RA1, b.binop("add", v, 1))
            b.enq_ctrl(Q_RA1, Ctrl.NEXT)
        b.enq_ctrl(Q_RA1, Ctrl.DONE)
        b.enq_ctrl(Q_MASK, Ctrl.DONE)
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        tmp = b.mov("cur_fringe")
        b.mov("next_fringe", dst="cur_fringe")
        b.mov(tmp, dst="next_fringe")
    stage0 = StageProgram(0, "scan_fringe", b.finish())

    b = IRBuilder(temp_prefix="%u")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("@fringe0", dst="other")
    b.mov("fringe_size_init", dst="fringe_size")
    b.mov(1, dst="round")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        b.mov(0, dst="next_size")
        with b.loop():
            v = b.deq(Q_MASK)
            mv = b.load("@visited", v)
            with b.loop():
                ngh = b.deq(Q_NGH)
                mn = b.load("@visited_next", ngh)
                un = b.binop("or", mn, mv)
                grew = b.binop("ne", un, mn)
                with b.if_(grew):
                    b.store("@visited_next", ngh, un)
                    lp = b.load("@lastpush", ngh)
                    fresh = b.binop("ne", lp, "round")
                    with b.if_(fresh):
                        b.store("@lastpush", ngh, "round")
                        b.store("next_fringe", "next_size", ngh)
                        b.binop("add", "next_size", 1, dst="next_size")
        with b.for_("j", 0, "next_size"):
            u = b.load("next_fringe", "j")
            nv = b.load("@visited_next", u)
            b.store("@visited", u, nv)
            b.store("@radii_arr", u, "round")
        b.write_shared("next_size", "next_size")
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        b.binop("add", "round", 1, dst="round")
        tmp = b.mov("next_fringe")
        b.mov("other", dst="next_fringe")
        b.mov(tmp, dst="other")
    stage1 = StageProgram(
        1,
        "update",
        b.finish(),
        handlers={Q_MASK: [Deq("%drain", Q_NGH), Break(1)], Q_NGH: [Break(1)]},
    )

    queues = [
        QueueSpec(Q_RA1, ("stage", 0), ("ra", 0), 24, "v/v+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_MASK, ("stage", 0), ("stage", 1), 24, "masks"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH),
    ]
    return PipelineProgram(
        "radii_manual",
        [stage0, stage1],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        shared_vars={"next_size"},
        meta={"manual": True},
    )


def data_parallel(nthreads):
    """Hand-written data-parallel Radii: atomic mask unions."""
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        b.mov("@fringe0", dst="cur_fringe")
        b.mov("@fringe1", dst="next_fringe")
        b.mov("fringe_size_init", dst="total")
        b.mov(1, dst="round")
        with b.loop():
            done = b.assign("le", ["total", 0])
            with b.if_(done):
                b.break_()
            b.mov(0, dst="my_size")
            my_base = b.binop("mul", tid, "cap")
            with b.for_("seg", 0, "nthreads"):
                seg_size = b.load("@sizes", "seg")
                seg_base = b.binop("mul", "seg", "cap")
                with b.for_("j", tid, seg_size, nthreads):
                    idx = b.binop("add", seg_base, "j")
                    v = b.load("cur_fringe", idx)
                    mv = b.load("@visited", v)
                    es = b.load("@nodes", v)
                    ee = b.load("@nodes", b.binop("add", v, 1))
                    with b.for_("e", es, ee):
                        ngh = b.load("@edges", "e")
                        old = b.atomic_or("@visited_next", ngh, mv)
                        un = b.binop("or", old, mv)
                        grew = b.binop("ne", un, old)
                        with b.if_(grew):
                            lp = b.load("@lastpush", ngh)
                            fresh = b.binop("ne", lp, "round")
                            with b.if_(fresh):
                                b.store("@lastpush", ngh, "round")
                                slot = b.binop("add", my_base, "my_size")
                                b.store("next_fringe", slot, ngh)
                                b.binop("add", "my_size", 1, dst="my_size")
            b.barrier("dp-scatter")
            b.store("@sizes_next", tid, "my_size")
            b.barrier("dp-sizes")
            b.mov(0, dst="total")
            with b.for_("s2", 0, "nthreads"):
                sz = b.load("@sizes_next", "s2")
                b.binop("add", "total", sz, dst="total")
                b.store("@sizes", "s2", sz)
            b.barrier("dp-count")
            # Apply: each worker finalizes the vertices it pushed.
            with b.for_("j2", 0, "my_size"):
                slot = b.binop("add", my_base, "j2")
                u = b.load("next_fringe", slot)
                nv = b.load("@visited_next", u)
                b.store("@visited", u, nv)
                b.store("@radii_arr", u, "round")
            b.barrier("dp-sync")
            b.binop("add", "round", 1, dst="round")
            tmp = b.mov("cur_fringe")
            b.mov("next_fringe", dst="cur_fringe")
            b.mov(tmp, dst="next_fringe")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    arrays = dict(func.arrays)
    arrays["sizes"] = ArrayDecl("sizes", elem_size=4)
    arrays["sizes_next"] = ArrayDecl("sizes_next", elem_size=4)
    return PipelineProgram(
        "radii_dp%d" % nthreads,
        stages,
        [],
        [],
        arrays,
        func.scalar_params + ["nthreads", "cap"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads):
    n = graph.n
    cap = n + 1
    sources = sample_sources(graph)
    visited = [0] * n
    for bit, s in enumerate(sources):
        visited[s] = 1 << bit
    fringe0 = [0] * (cap * nthreads)
    sizes = [0] * nthreads
    per = (len(sources) + nthreads - 1) // nthreads
    v = 0
    for t in range(nthreads):
        count = min(per, len(sources) - v)
        if count <= 0:
            break
        for k in range(count):
            fringe0[t * cap + k] = sources[v + k]
        sizes[t] = count
        v += count
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "visited": visited,
        "visited_next": list(visited),
        "radii_arr": [0] * n,
        "lastpush": [0] * n,
        "fringe0": fringe0,
        "fringe1": [0] * (cap * nthreads),
        "sizes": sizes,
        "sizes_next": [0] * nthreads,
    }
    scalars = {"n": n, "fringe_size_init": len(sources), "nthreads": nthreads, "cap": cap}
    return arrays, scalars
