"""Evaluation harness regenerating the paper's figures."""

from .harness import (
    DP_THREADS,
    QUICK,
    GraphBenchAdapter,
    SpmmBenchAdapter,
    gmean_speedup,
    normalized_breakdowns,
    normalized_energy,
    profile_guided_pipeline,
    run_suite,
)

__all__ = [
    "DP_THREADS",
    "QUICK",
    "GraphBenchAdapter",
    "SpmmBenchAdapter",
    "gmean_speedup",
    "normalized_breakdowns",
    "normalized_energy",
    "profile_guided_pipeline",
    "run_suite",
]
