"""High-level executors: run serial functions and pipelines conveniently.

Wraps :class:`~repro.pipette.machine.Machine` with input copying (runs never
mutate caller data unless asked) and result packaging, so benchmarks can
say ``run_serial(func, env)`` / ``run_pipeline(pipe, env)`` and compare
cycles and outputs directly.
"""

from ..ir.program import serial_pipeline
from ..pipette.config import MachineConfig
from ..pipette.energy import energy_of
from ..pipette.machine import Machine, RunSpec


class RunResult:
    """Cycles, final arrays, stats, and energy of one execution."""

    def __init__(self, cycles, arrays, stats, config, active_cores=1, machine=None):
        self.cycles = cycles
        self.arrays = arrays
        self.stats = stats
        self.config = config
        self.active_cores = active_cores
        self.machine = machine  # for post-run introspection (runtime.inspect)

    def energy(self):
        return energy_of(self.stats, self.config, active_cores=self.active_cores)

    def breakdown(self):
        return self.stats.cycle_breakdown()

    def __repr__(self):
        return "RunResult(%.0f cycles)" % self.cycles


def _copy_arrays(arrays):
    return {name: list(data) for name, data in arrays.items()}


def run_pipeline(
    pipeline, arrays, scalars, config=None, core=0, stage_cores=None, copy=True,
    tracer=None, fastpath=None, engine=None,
):
    """Run one pipeline program; returns a :class:`RunResult`.

    ``tracer`` (a :class:`repro.obs.Tracer`) opts into cycle-domain event
    tracing; the default ``None`` keeps the run trace-free and unchanged.
    ``engine`` selects the execution engine by name (``"reference"``,
    ``"fastpath"``, ``"batch"``); ``fastpath`` is the legacy boolean spelling
    of the first two. ``None`` defers to ``REPRO_SLOWPATH`` / ``REPRO_ENGINE``
    and the pipeline's ``meta``.
    """
    config = config or MachineConfig()
    bound = _copy_arrays(arrays) if copy else arrays
    machine = Machine(config, tracer=tracer, fastpath=fastpath, engine=engine)
    spec = RunSpec(pipeline, bound, scalars, core=core, stage_cores=stage_cores)
    sim = machine.run(spec)
    cores_used = 1 if stage_cores is None else len(set(stage_cores))
    return RunResult(
        sim.cycles, sim.arrays(0), sim.stats, config, active_cores=cores_used, machine=machine
    )


def run_serial(
    function, arrays, scalars, config=None, copy=True, tracer=None, fastpath=None,
    engine=None,
):
    """Run a serial Function as a single-stage pipeline."""
    return run_pipeline(
        serial_pipeline(function), arrays, scalars, config=config, copy=copy,
        tracer=tracer, fastpath=fastpath, engine=engine,
    )


def run_replicated(
    pipelines_and_envs, config, copy=True, tracer=None, fastpath=None, engine=None,
):
    """Run several pipeline instances concurrently (replication, Fig. 14).

    ``pipelines_and_envs`` is a list of ``(pipeline, arrays, scalars, core)``
    tuples. Arrays may share the same underlying list objects to model
    shared data structures; when ``copy`` is set, identical objects are
    copied once and stay shared.
    """
    machine = Machine(config, tracer=tracer, fastpath=fastpath, engine=engine)
    specs = []
    copies = {}
    for pipeline, arrays, scalars, core in pipelines_and_envs:
        if copy:
            bound = {}
            for name, data in arrays.items():
                key = id(data)
                if key not in copies:
                    copies[key] = list(data)
                bound[name] = copies[key]
        else:
            bound = arrays
        specs.append(RunSpec(pipeline, bound, scalars, core=core))
    sim = machine.run(specs)
    arrays0 = sim.arrays(0)
    cores = len({spec.core for spec in specs})
    result = RunResult(
        sim.cycles, arrays0, sim.stats, config, active_cores=cores, machine=machine
    )
    result.replica_arrays = [sim.arrays(i) for i in range(len(specs))]
    return result
