"""Per-client admission control: token-bucket rates and job quotas.

The daemon serves many clients off one shared cache; what it must never do
is let one chatty client starve the rest or fork-bomb the worker pool. Two
independent guards, both keyed by the client identity string each request
carries:

* a **token bucket** per client — ``burst`` tokens deep, refilled at
  ``rate`` tokens/second, one token per request — bounds sustained request
  rate while allowing short bursts;
* a **job quota** per client — at most ``quota`` requests in flight at
  once — bounds worker-pool occupancy.

Rejections are immediate and structured (the daemon answers with an
``error`` response carrying ``rate-limited``/``quota-exceeded``), never
queued: a client that wants backpressure can retry with its own policy.

The clock is injectable so tests drive time by hand.
"""

import time

#: Error codes stamped on rejection responses.
RATE_LIMITED = "rate-limited"
QUOTA_EXCEEDED = "quota-exceeded"


class TokenBucket:
    """The classic leaky-bucket-as-meter: ``burst`` deep, ``rate``/s refill.

    ``rate <= 0`` disables metering (every acquire succeeds).
    """

    __slots__ = ("rate", "burst", "level", "stamp", "clock")

    def __init__(self, rate, burst, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self.level = float(burst)
        self.clock = clock
        self.stamp = clock()

    def try_acquire(self, tokens=1.0):
        """Take ``tokens`` if available; returns success without blocking."""
        if self.rate <= 0:
            return True
        self._refill()
        if self.level >= tokens:
            self.level -= tokens
            return True
        return False

    def peek(self):
        """The current level after refill, without consuming anything."""
        if self.rate > 0:
            self._refill()
        return self.level

    def _refill(self):
        now = self.clock()
        self.level = min(self.burst, self.level + (now - self.stamp) * self.rate)
        self.stamp = now


class ClientGovernor:
    """Admission control over all clients: buckets + in-flight quotas.

    :meth:`admit` consumes one token and claims one in-flight slot for the
    client; every admitted request must be paired with one
    :meth:`release`. ``quota <= 0`` disables the in-flight bound.
    """

    def __init__(self, rate=10.0, burst=20.0, quota=4, clock=time.monotonic):
        self.rate = rate
        self.burst = burst
        self.quota = quota
        self.clock = clock
        self._buckets = {}
        self._in_flight = {}
        self._rejected = {RATE_LIMITED: 0, QUOTA_EXCEEDED: 0}

    def admit(self, client):
        """``(True, None)`` or ``(False, code)`` for one request from ``client``."""
        if self.quota > 0 and self._in_flight.get(client, 0) >= self.quota:
            self._rejected[QUOTA_EXCEEDED] += 1
            return False, QUOTA_EXCEEDED
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(self.rate, self.burst, clock=self.clock)
        if not bucket.try_acquire():
            self._rejected[RATE_LIMITED] += 1
            return False, RATE_LIMITED
        self._in_flight[client] = self._in_flight.get(client, 0) + 1
        return True, None

    def release(self, client):
        """Return the in-flight slot an admitted request held."""
        count = self._in_flight.get(client, 0)
        if count <= 1:
            self._in_flight.pop(client, None)
        else:
            self._in_flight[client] = count - 1

    def snapshot(self):
        """Plain-data stats: known clients, in-flight counts, rejections.

        ``buckets`` exposes each client's live token-bucket state (level
        after refill, against the shared rate/burst), so an operator can
        see *which* client is about to be throttled, not just that
        rejections happened.
        """
        return {
            "clients": sorted(self._buckets),
            "in_flight": dict(self._in_flight),
            "rejected": dict(self._rejected),
            "buckets": {
                client: {
                    "level": round(bucket.peek(), 3),
                    "in_flight": self._in_flight.get(client, 0),
                }
                for client, bucket in sorted(self._buckets.items())
            },
            "limits": {"rate": self.rate, "burst": self.burst, "quota": self.quota},
        }
