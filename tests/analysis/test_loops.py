"""Loop-nest indexing and phase-loop detection."""

from repro import ir
from repro.analysis.loops import LoopNestInfo, estimated_trip_weight, find_phase_loop
from repro.frontend import compile_source
from repro.workloads import bfs


def test_depths():
    inner = ir.Assign("x", "mov", [0])
    body = [ir.Loop([ir.For("i", 0, 4, 1, [inner])])]
    nests = LoopNestInfo(body)
    assert nests.depth_of(inner) == 2
    assert nests.innermost_loop(inner).kind == "for"
    assert nests.depth_of(body[0]) == 0


def test_if_does_not_add_depth():
    inner = ir.Assign("x", "mov", [0])
    body = [ir.For("i", 0, 4, 1, [ir.If("c", [inner], [])])]
    assert LoopNestInfo(body).depth_of(inner) == 1


def test_phase_loop_found_in_bfs():
    f = compile_source(bfs.SOURCE)
    loop = find_phase_loop(f.body)
    assert loop is not None and loop.kind == "loop"


def test_no_phase_loop_in_counted_kernel():
    src = """
    void k(const int* restrict a, int* restrict out, int n) {
      for (int i = 0; i < n; i++) { out[i] = a[i]; }
    }
    """
    assert find_phase_loop(compile_source(src).body) is None


def test_phase_loop_requires_nest():
    src = """
    void k(int* restrict out, int n) {
      while (n > 0) { out[n] = n; n = n - 1; }
    }
    """
    assert find_phase_loop(compile_source(src).body) is None


def test_trip_weight_grows_exponentially():
    assert estimated_trip_weight(3) == 8 * estimated_trip_weight(2)


def test_trip_weight_nested_edge_cases():
    # Depth 0 (outside any loop) is weight 1, custom bases compound per
    # level, and the result is always a float.
    assert estimated_trip_weight(0) == 1.0
    assert estimated_trip_weight(2, base=4) == 16.0
    assert type(estimated_trip_weight(1)) is float


def test_two_top_level_while_loops_are_not_a_phase():
    inner = [ir.For("i", 0, 4, 1, [ir.Assign("x", "mov", [0])])]
    body = [ir.Loop(list(inner)), ir.Loop(list(inner))]
    assert find_phase_loop(body) is None


def test_phase_loop_nest_found_under_if():
    # The shallow walk looks through Ifs for the work nest, but not into
    # nested loops.
    nest = ir.If("c", [ir.For("i", 0, 4, 1, [ir.Assign("x", "mov", [0])])], [])
    loop = ir.Loop([nest])
    assert find_phase_loop([loop]) is loop
