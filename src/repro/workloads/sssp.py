"""Single-Source Shortest Paths (GARDENIA suite; delta-stepping).

Bucketed delta-stepping over integer edge weights: vertices are settled in
distance buckets of width ``delta``; inside a bucket the kernel iterates to
a fixpoint (light-edge relaxations can reinsert a vertex into the current
bucket), then a dense sweep counts the vertices still waiting for a later
bucket. Integer weights keep every variant exact: relaxations commute, so
even the data-parallel variant's ``atomic_min`` races converge to the same
distances the Dijkstra oracle computes.

Variants:

* ``SOURCE`` — the serial mini-C kernel (scan-based buckets; the fringe
  membership test ``dist[v] < limit && dist[v] < done[v]`` replaces an
  explicit bucket queue, which keeps the kernel decouplable);
* :func:`reference` — a heapq Dijkstra oracle;
* :func:`data_parallel` — vertex-striped workers, ``atomic_min`` on
  distances, per-round changed/remaining flags across double barriers;
* :func:`manual_pipeline` — a 2-stage pipeline where the driver streams
  every candidate's neighbor and weight bursts through two chained RA
  pairs (nodes indirect -> edges/weights scan) and the update stage owns
  all distance state, with shared changed/remaining cells at phase
  barriers.
"""

import heapq

from ..frontend.lowering import compile_source
from ..ir import (
    ArrayDecl,
    Ctrl,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)
from . import graphs

#: "Infinity" for unreached vertices; small enough that limit arithmetic
#: never wraps a 32-bit int even after adding a max weight.
INF = 2**30

#: Default weight range for auto-weighted plain graphs.
MAX_WEIGHT = 64

NAME = "sssp"

SOURCE = """
#pragma phloem
void sssp(const int* restrict nodes, const int* restrict edges,
          const int* restrict weights, int* restrict dist,
          int* restrict done, int n, int delta) {
  int k = 0;
  int remaining = 1;
  while (remaining > 0) {
    int limit = (k + 1) * delta;
    int changed = 1;
    while (changed > 0) {
      changed = 0;
      for (int v = 0; v < n; v++) {
        int dv = dist[v];
        if (dv < limit && dv < done[v]) {
          done[v] = dv;
          int edge_start = nodes[v];
          int edge_end = nodes[v + 1];
          for (int e = edge_start; e < edge_end; e++) {
            int w = edges[e];
            int alt = dv + weights[e];
            if (alt < dist[w]) {
              dist[w] = alt;
              if (alt < limit) {
                changed = 1;
              }
            }
          }
        }
      }
    }
    remaining = 0;
    for (int u = 0; u < n; u++) {
      if (dist[u] < done[u]) {
        remaining = remaining + 1;
      }
    }
    k = k + 1;
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def default_root(graph):
    """A deterministic, well-connected root: the max-degree vertex."""
    return max(range(graph.n), key=graph.degree)


def as_weighted(graph):
    """Coerce any CSR graph to a weighted one (deterministic weights)."""
    if isinstance(graph, graphs.WeightedCSRGraph):
        return graph
    return graphs.with_weights(graph, max_weight=MAX_WEIGHT, seed=0)


def default_delta(graph):
    """Bucket width: the average edge weight (the classic heuristic)."""
    w = as_weighted(graph)
    if not w.weights:
        return 1
    return max(1, sum(w.weights) // len(w.weights))


def make_env(graph, root=None):
    g = as_weighted(graph)
    if root is None:
        root = default_root(g)
    dist = [INF] * g.n
    dist[root] = 0
    arrays = {
        "nodes": list(g.nodes),
        "edges": list(g.edges),
        "weights": list(g.weights),
        "dist": dist,
        "done": [INF] * g.n,
    }
    scalars = {"n": g.n, "delta": default_delta(g)}
    return arrays, scalars


def reference(graph, root=None):
    """Oracle distances via a Python Dijkstra (exact integer arithmetic)."""
    g = as_weighted(graph)
    if root is None:
        root = default_root(g)
    dist = [INF] * g.n
    dist[root] = 0
    heap = [(0, root)]
    nodes, edges, weights = g.nodes, g.edges, g.weights
    while heap:
        dv, v = heapq.heappop(heap)
        if dv > dist[v]:
            continue
        for e in range(nodes[v], nodes[v + 1]):
            w = edges[e]
            alt = dv + weights[e]
            if alt < dist[w]:
                dist[w] = alt
                heapq.heappush(heap, (alt, w))
    return dist


def check(arrays, graph, root=None):
    return arrays["dist"] == reference(graph, root)


# ---------------------------------------------------------------------------
# Manually pipelined variant


def manual_pipeline():
    """2 stages + two chained RA pairs (neighbor ids and edge weights).

    The driver mirrors the serial loop nest but owns no kernel state: it
    streams every vertex's neighbor burst (nodes indirect -> edges scan)
    and weight burst (nodes indirect -> weights scan), each delimited by a
    NEXT marker, and follows the bucket/fixpoint control flow purely from
    the shared ``changed``/``remaining`` cells the update stage publishes
    at the phase barriers. The update stage owns dist/done and consumes
    the two bursts in lockstep.
    """
    func = function()
    Q_EN, Q_EPAIR, Q_NGH = 0, 1, 2
    Q_WN, Q_WPAIR, Q_WGT = 3, 4, 5

    b = IRBuilder(temp_prefix="%m")
    b.mov(1, dst="remaining")
    with b.loop():
        outer_done = b.assign("le", ["remaining", 0])
        with b.if_(outer_done):
            b.break_()
        with b.loop():
            with b.for_("v", 0, "n"):
                b.enq(Q_EN, "v")
                vp1 = b.binop("add", "v", 1)
                b.enq(Q_EN, vp1)
                b.enq_ctrl(Q_EN, Ctrl.NEXT)
                b.enq(Q_WN, "v")
                b.enq(Q_WN, vp1)
                b.enq_ctrl(Q_WN, Ctrl.NEXT)
            b.barrier("phase")
            ch = b.read_shared("changed")
            b.barrier("phase-sync")
            ch_done = b.binop("le", ch, 0)
            with b.if_(ch_done):
                b.break_()
        b.barrier("bucket")
        rem = b.read_shared("remaining")
        b.barrier("bucket-sync")
        b.mov(rem, dst="remaining")
    stage0 = StageProgram(0, "drive", b.finish())

    b = IRBuilder(temp_prefix="%u")
    b.mov(0, dst="k")
    b.mov(1, dst="remaining")
    with b.loop():
        outer_done = b.assign("le", ["remaining", 0])
        with b.if_(outer_done):
            b.break_()
        kp1 = b.binop("add", "k", 1)
        limit = b.binop("mul", kp1, "delta")
        with b.loop():
            b.mov(0, dst="changed")
            with b.for_("v", 0, "n"):
                dv = b.load("@dist", "v")
                below = b.binop("lt", dv, limit)
                fresh = b.binop("lt", dv, b.load("@done", "v"))
                proc = b.binop("and", below, fresh)
                with b.if_(proc):
                    b.store("@done", "v", dv)
                with b.loop():
                    w = b.deq(Q_NGH)
                    at_end = b.is_control(w)
                    with b.if_(at_end):
                        b.deq(Q_WGT)  # consume the aligned marker
                        b.break_()
                    wt = b.deq(Q_WGT)
                    with b.if_(proc):
                        alt = b.binop("add", dv, wt)
                        old = b.load("@dist", w)
                        better = b.binop("lt", alt, old)
                        with b.if_(better):
                            b.store("@dist", w, alt)
                            light = b.binop("lt", alt, limit)
                            with b.if_(light):
                                b.mov(1, dst="changed")
            b.write_shared("changed", "changed")
            b.barrier("phase")
            ch = b.read_shared("changed")
            b.barrier("phase-sync")
            ch_done = b.binop("le", ch, 0)
            with b.if_(ch_done):
                b.break_()
        b.mov(0, dst="rem")
        with b.for_("u", 0, "n"):
            du = b.load("@dist", "u")
            waiting = b.binop("lt", du, b.load("@done", "u"))
            with b.if_(waiting):
                b.binop("add", "rem", 1, dst="rem")
        b.write_shared("remaining", "rem")
        b.barrier("bucket")
        rem = b.read_shared("remaining")
        b.barrier("bucket-sync")
        b.mov(rem, dst="remaining")
        b.binop("add", "k", 1, dst="k")
    stage1 = StageProgram(1, "update", b.finish())

    queues = [
        QueueSpec(Q_EN, ("stage", 0), ("ra", 0), 24, "v/v+1 (edges)"),
        QueueSpec(Q_EPAIR, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_WN, ("stage", 0), ("ra", 2), 24, "v/v+1 (weights)"),
        QueueSpec(Q_WPAIR, ("ra", 2), ("ra", 3), 24, "weight bounds"),
        QueueSpec(Q_WGT, ("ra", 3), ("stage", 1), 24, "weights"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_EN, Q_EPAIR),
        RASpec(1, RA_SCAN, "@edges", Q_EPAIR, Q_NGH),
        RASpec(2, RA_INDIRECT, "@nodes", Q_WN, Q_WPAIR),
        RASpec(3, RA_SCAN, "@weights", Q_WPAIR, Q_WGT),
    ]
    return PipelineProgram(
        "sssp_manual",
        [stage0, stage1],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        shared_vars={"changed", "remaining"},
        meta={"manual": True},
    )


# ---------------------------------------------------------------------------
# Data-parallel variant


def data_parallel(nthreads):
    """Vertex-striped delta-stepping: ``atomic_min`` relaxations.

    Worker t owns vertices ``v % nthreads == t`` (their ``done`` cells are
    written only by the owner); distance relaxations race benignly through
    ``atomic_min``. Per-round changed flags and per-bucket remaining
    counts flow through the ``parts`` array across double barriers, as in
    the other hand-parallelized workloads.
    """
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        b.mov(0, dst="k")
        b.mov(1, dst="remaining")
        with b.loop():
            outer_done = b.assign("le", ["remaining", 0])
            with b.if_(outer_done):
                b.break_()
            kp1 = b.binop("add", "k", 1)
            limit = b.binop("mul", kp1, "delta")
            with b.loop():
                b.mov(0, dst="my_changed")
                with b.for_("v", tid, "n", nthreads):
                    dv = b.load("@dist", "v")
                    below = b.binop("lt", dv, limit)
                    fresh = b.binop("lt", dv, b.load("@done", "v"))
                    proc = b.binop("and", below, fresh)
                    with b.if_(proc):
                        b.store("@done", "v", dv)
                        es = b.load("@nodes", "v")
                        ee = b.load("@nodes", b.binop("add", "v", 1))
                        with b.for_("e", es, ee):
                            w = b.load("@edges", "e")
                            alt = b.binop("add", dv, b.load("@weights", "e"))
                            old = b.atomic_min("@dist", w, alt)
                            better = b.binop("lt", alt, old)
                            light = b.binop("lt", alt, limit)
                            hit = b.binop("and", better, light)
                            with b.if_(hit):
                                b.mov(1, dst="my_changed")
                b.barrier("dp-phase")
                b.store("@parts", tid, "my_changed")
                b.barrier("dp-flags")
                b.mov(0, dst="changed")
                with b.for_("t", 0, "nthreads"):
                    f = b.load("@parts", "t")
                    b.binop("add", "changed", f, dst="changed")
                b.barrier("dp-sync")
                ch_done = b.assign("le", ["changed", 0])
                with b.if_(ch_done):
                    b.break_()
            b.mov(0, dst="my_rem")
            with b.for_("u", tid, "n", nthreads):
                du = b.load("@dist", "u")
                waiting = b.binop("lt", du, b.load("@done", "u"))
                with b.if_(waiting):
                    b.binop("add", "my_rem", 1, dst="my_rem")
            b.barrier("dp-bucket")
            b.store("@parts", tid, "my_rem")
            b.barrier("dp-rems")
            b.mov(0, dst="remaining")
            with b.for_("t2", 0, "nthreads"):
                r = b.load("@parts", "t2")
                b.binop("add", "remaining", r, dst="remaining")
            b.barrier("dp-bucket-sync")
            b.binop("add", "k", 1, dst="k")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    arrays = dict(func.arrays)
    arrays["parts"] = ArrayDecl("parts", elem_size=4)
    return PipelineProgram(
        "sssp_dp%d" % nthreads,
        stages,
        [],
        [],
        arrays,
        func.scalar_params + ["nthreads"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads, root=None):
    arrays, scalars = make_env(graph, root)
    arrays["parts"] = [0] * nthreads
    scalars["nthreads"] = nthreads
    return arrays, scalars
