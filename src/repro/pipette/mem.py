"""Memory hierarchy model: set-associative caches, stride prefetcher, DRAM.

Timing-only: data lives in NumPy arrays bound by the executor; this module
answers "how many cycles does the access at address X issued at cycle T
take", updating tag state, the prefetcher, and the DRAM bandwidth ledgers.
"""


class Cache:
    """One set-associative LRU cache level (tags only)."""

    __slots__ = ("sets_count", "ways", "latency", "sets", "stats")

    def __init__(self, cfg, stats):
        self.sets_count = cfg.sets
        self.ways = cfg.ways
        self.latency = cfg.latency
        self.sets = {}
        self.stats = stats

    def access(self, line):
        """Look up ``line``; returns True on hit. Updates LRU and counters."""
        index = line % self.sets_count
        tag = line // self.sets_count
        entry = self.sets.get(index)
        if entry is None:
            self.sets[index] = [tag]
            self.stats.misses += 1
            return False
        if entry[0] == tag:
            # MRU hit: streaming accesses land here, skipping the list scan
            # and the LRU reorder (a no-op at position 0).
            self.stats.hits += 1
            return True
        try:
            pos = entry.index(tag, 1)
        except ValueError:
            self.stats.misses += 1
            entry.insert(0, tag)
            if len(entry) > self.ways:
                entry.pop()
            return False
        del entry[pos]
        entry.insert(0, tag)
        self.stats.hits += 1
        return True

    def fill(self, line, prefetch=False):
        """Install ``line`` without counting an access (miss fill / prefetch)."""
        index = line % self.sets_count
        tag = line // self.sets_count
        entry = self.sets.get(index)
        if entry is None:
            self.sets[index] = [tag]
        elif tag not in entry:
            entry.insert(0, tag)
            if len(entry) > self.ways:
                entry.pop()
        if prefetch:
            self.stats.prefetch_fills += 1

    def contains(self, line):
        entry = self.sets.get(line % self.sets_count)
        return entry is not None and (line // self.sets_count) in entry


class _StreamTable:
    """Per-core stride detector: array symbol -> (last line, stride, run).

    Detects constant line strides (not just +1), like the L2 stride
    prefetchers of the Skylake-class cores in Table III — unit-stride scans
    *and* large fixed strides (e.g. walking a dense matrix by column) are
    covered; irregular gathers are not, which is the whole point.
    """

    __slots__ = ("streams",)

    MAX_STRIDE = 32  # lines; beyond this, prefetching would thrash

    def __init__(self):
        self.streams = {}

    def observe(self, stream_id, line):
        """Returns the detected line stride to prefetch along (0 = none)."""
        entry = self.streams.get(stream_id)
        if entry is None:
            self.streams[stream_id] = (line, 0, 0)
            return 0
        last_line, stride, run = entry
        delta = line - last_line
        if delta == 0:
            return 0
        if delta == stride and 0 < abs(stride) <= self.MAX_STRIDE:
            run = min(run + 1, 8)
            self.streams[stream_id] = (line, stride, run)
            return stride if run >= 2 else 0
        self.streams[stream_id] = (line, delta, 1)
        return 0


class MemorySystem:
    """The full hierarchy shared by all cores of a machine."""

    LINE_SHIFT = 6

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        self.l1 = [Cache(config.l1, stats.cache("L1")) for _ in range(config.cores)]
        self.l2 = [Cache(config.l2, stats.cache("L2")) for _ in range(config.cores)]
        self.l3 = Cache(config.l3, stats.cache("L3"))
        # Bandwidth ledger per controller: 64-cycle windows with a fixed
        # request capacity. Window-based accounting is insensitive to the
        # order in which decoupled threads (whose local clocks drift)
        # present their requests, unlike a single next-free cursor.
        self.window_shift = 6
        self.window_capacity = max(1, (1 << self.window_shift) // config.dram_service)
        self.windows = [dict() for _ in range(config.dram_controllers)]
        self.window_low = [0] * config.dram_controllers
        self.prefetchers = [_StreamTable() for _ in range(config.cores)]

    def _dram(self, line, now):
        """DRAM access: bank-conflict-free but bandwidth-limited per controller."""
        self.stats.dram_accesses += 1
        ctrl = line % len(self.windows)
        table = self.windows[ctrl]
        window = int(now) >> self.window_shift
        if len(table) > 8192:
            horizon = window - 4096
            table = {w: c for w, c in table.items() if w >= horizon}
            self.windows[ctrl] = table
        while table.get(window, 0) >= self.window_capacity:
            window += 1
        table[window] = table.get(window, 0) + 1
        queue_delay = max(0.0, float(window << self.window_shift) - now)
        return queue_delay + self.config.dram_latency

    def next_dram_window_cycle(self, line, now):
        """Event-horizon contract: the cycle at which the controller owning
        ``line`` next has spare bandwidth for a request presented at
        ``now``, without consuming any. ``_dram``'s queue delay is exactly
        ``this - now``: the closed form by which a bandwidth-saturated
        access skips ahead to the first open 64-cycle window."""
        ctrl = line % len(self.windows)
        table = self.windows[ctrl]
        window = int(now) >> self.window_shift
        while table.get(window, 0) >= self.window_capacity:
            window += 1
        start = float(window << self.window_shift)
        return start if start > now else now

    def access(self, core, addr, now, stream_id=None, is_store=False):
        """Access ``addr`` from ``core`` at cycle ``now``; returns latency.

        ``stream_id`` identifies the accessed array for the stride
        prefetcher. Stores are write-allocate and write-back; their latency
        is hidden by the store buffer, so callers usually ignore it.

        The L1 lookup is inlined (not a :meth:`Cache.access` call) because
        this is the hottest function in the simulator: the MRU compare
        catches streaming accesses, the membership test avoids raising
        ``ValueError`` for every L1 miss, and the tag is installed directly
        instead of via a redundant post-lookup ``fill``. Tag state, LRU
        order, and hit/miss counters end up exactly as the plain
        lookup-then-fill sequence would leave them.
        """
        cfg = self.config
        line = addr >> self.LINE_SHIFT
        l1 = self.l1[core]
        sets = l1.sets
        index = line % l1.sets_count
        tag = line // l1.sets_count
        entry = sets.get(index)
        if entry is not None and entry[0] == tag:
            l1.stats.hits += 1
            latency = cfg.l1.latency
        elif entry is not None and tag in entry:
            pos = entry.index(tag, 1)
            del entry[pos]
            entry.insert(0, tag)
            l1.stats.hits += 1
            latency = cfg.l1.latency
        else:
            if entry is None:
                sets[index] = [tag]
            else:
                entry.insert(0, tag)
                if len(entry) > l1.ways:
                    entry.pop()
            l1.stats.misses += 1
            latency = self.miss_below_l1(core, line, now)

        if cfg.prefetch_enabled and stream_id is not None and not is_store:
            stride = self.prefetchers[core].observe(stream_id, line)
            if stride:
                for step in range(1, cfg.prefetch_degree + 1):
                    self._prefetch(core, line + stride * step, now + latency)
        return latency

    def miss_below_l1(self, core, line, now):
        """L2 -> L3 -> DRAM walk after an L1 miss; returns the latency.

        The caller has already updated L1 tag state and counters (the L1
        install is part of the miss handling, not of this walk), which lets
        the fast-path load closures inline the L1 lookup and share this
        method for the miss side.
        """
        cfg = self.config
        if self.l2[core].access(line):
            return cfg.l2.latency
        return self.miss_below_l2(core, line, now)

    def miss_below_l2(self, core, line, now):
        """L3 -> DRAM walk after an L2 miss; returns the latency.

        Split from :meth:`miss_below_l1` so engines that also inline the L2
        lookup (batchpath, the RA loop) can share the walk below it. The
        caller has already updated L2 tag state and counters.
        """
        cfg = self.config
        l2 = self.l2[core]
        if self.l3.access(line):
            l2.fill(line)
            return cfg.l3.latency
        latency = cfg.l3.latency + self._dram(line, now)
        self.l3.fill(line)
        l2.fill(line)
        return latency

    def _prefetch(self, core, line, now):
        """Bring ``line`` toward the core without charging request latency."""
        if self.l2[core].contains(line):
            return
        if not self.l3.contains(line):
            self._dram(line, now)  # prefetches still consume DRAM bandwidth
            self.l3.fill(line, prefetch=True)
        self.l2[core].fill(line, prefetch=True)


class AddressMap:
    """Assigns each array a base address in a flat physical space.

    Bases are spread 4 KiB-aligned with guard gaps so distinct arrays never
    share a cache line, mirroring separately-allocated buffers.
    """

    PAGE = 4096

    def __init__(self):
        self.bases = {}
        self.next_base = self.PAGE

    def register(self, name, size_bytes):
        if name in self.bases:
            return self.bases[name]
        base = self.next_base
        self.bases[name] = base
        pages = (size_bytes + self.PAGE - 1) // self.PAGE + 1
        self.next_base = base + pages * self.PAGE
        return base

    def address(self, name, index, elem_size):
        return self.bases[name] + index * elem_size
