"""The Pipette programming interface (paper Table I), as constants and a
functional facade.

The simulator executes IR programs rather than calling these functions, but
this module documents and exposes the ISA surface so tests can assert API
parity with Table I, and so example code can demonstrate the primitives
against a bare :class:`~repro.pipette.queues.HWQueue`.
"""

from ..ir.values import Ctrl
from ..ir.values import is_control as _is_control

#: Reference accelerator modes (Table I: ``setup_reference_accelerator``).
INDIRECT = "indirect"
SCAN = "scan"

#: The ISA operations Table I lists, with their IR statement equivalents.
ISA_SURFACE = {
    "enq": "ir.Enq",
    "deq": "ir.Deq",
    "peek": "ir.Peek",
    "setup_reference_accelerator": "ir.RASpec",
    "enq_ctrl": "ir.EnqCtrl",
    "is_control": "ir.IsControl",
    "setup_control_value_handler": "ir.StageProgram.handlers",
}


def enq(queue, value, now=0.0):
    """Functional ``enq(q, v)`` against a bare HWQueue (blocks = returns None)."""
    return queue.try_enq(now, value)


def deq(queue, now=0.0):
    """Functional ``deq(q)``; returns (value, cycle) or None when empty."""
    return queue.try_deq(now)


def peek(queue, now=0.0):
    """Functional ``peek(q)``; returns (value, cycle) or None when empty."""
    return queue.try_peek(now)


def enq_ctrl(queue, name, now=0.0):
    """Functional ``enq_ctrl(q, cv)``."""
    return queue.try_enq(now, Ctrl(name))


def is_control(value):
    """``is_control(v)`` — true only for in-band control values."""
    return _is_control(value)
