"""Energy model and statistics accounting."""

import pytest

from repro.pipette.config import MachineConfig
from repro.pipette.energy import ENERGY_PJ, STATIC_PJ_PER_CYCLE, EnergyBreakdown, energy_of
from repro.pipette.stats import SimStats, ThreadStats


def _stats(uops=100, wall=1000.0, dram=5):
    stats = SimStats()
    t = stats.new_thread("t0")
    t.uops = uops
    t.start_cycle, t.end_cycle = 0.0, wall
    stats.wall_cycles = wall
    stats.dram_accesses = dram
    cache = stats.cache("L1")
    cache.hits, cache.misses = 80, 20
    return stats


def test_energy_components_scale_with_events():
    cfg = MachineConfig()
    small = energy_of(_stats(uops=100), cfg)
    big = energy_of(_stats(uops=1000), cfg)
    assert big.core_dynamic > small.core_dynamic
    assert big.core_static == small.core_static  # same wall time


def test_static_energy_scales_with_cores():
    cfg = MachineConfig(cores=4)
    one = energy_of(_stats(), cfg, active_cores=1)
    four = energy_of(_stats(), cfg, active_cores=4)
    assert four.core_static == pytest.approx(4 * one.core_static)


def test_dram_energy():
    cfg = MachineConfig()
    none = energy_of(_stats(dram=0), cfg)
    some = energy_of(_stats(dram=10), cfg)
    assert some.dram - none.dram == pytest.approx(10 * ENERGY_PJ["dram"])


def test_static_constant_used():
    cfg = MachineConfig()
    e = energy_of(_stats(wall=100.0), cfg, active_cores=1)
    assert e.core_static == pytest.approx(100.0 * STATIC_PJ_PER_CYCLE)


def test_breakdown_dict_and_total():
    b = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
    assert b.total == 10.0
    assert set(b.as_dict()) == {"core_dynamic", "core_static", "cache", "dram"}


class TestThreadBreakdown:
    def test_components_fill_total(self):
        t = ThreadStats("t")
        t.start_cycle, t.end_cycle = 0.0, 100.0
        t.mem_stall = 30.0
        t.queue_stall = 20.0
        t.branch_stall = 10.0
        b = t.breakdown()
        assert b["backend"] == 30.0
        assert b["queue"] == 20.0
        assert b["other"] == 10.0
        assert b["issue"] == 40.0
        # branch/barrier decompose "other"; they are not extra components.
        assert b["branch"] == 10.0
        assert b["barrier"] == 0.0
        primary = b["issue"] + b["backend"] + b["queue"] + b["other"]
        assert primary == pytest.approx(100.0)

    def test_other_decomposition_sums_to_other(self):
        t = ThreadStats("t")
        t.start_cycle, t.end_cycle = 0.0, 100.0
        t.branch_stall = 12.0
        t.barrier_stall = 8.0
        b = t.breakdown()
        assert b["other"] == pytest.approx(20.0)
        assert b["branch"] + b["barrier"] == pytest.approx(b["other"])
        assert b["branch"] == pytest.approx(12.0)
        assert b["barrier"] == pytest.approx(8.0)

    def test_overbooked_stalls_clamped(self):
        t = ThreadStats("t")
        t.start_cycle, t.end_cycle = 0.0, 50.0
        t.mem_stall = 80.0  # measured stall exceeds wall: clamp
        b = t.breakdown()
        assert b["backend"] == 50.0
        assert b["issue"] == 0.0
        primary = b["issue"] + b["backend"] + b["queue"] + b["other"]
        assert primary == pytest.approx(50.0)


def test_sim_breakdown_rescales_to_wall():
    stats = SimStats()
    for name in ("a", "b"):
        t = stats.new_thread(name)
        t.start_cycle, t.end_cycle = 0.0, 100.0
        t.queue_stall = 50.0
    stats.wall_cycles = 100.0
    b = stats.cycle_breakdown()
    primary = b["issue"] + b["backend"] + b["queue"] + b["other"]
    assert primary == pytest.approx(100.0)
    assert b["queue"] == pytest.approx(50.0)


def test_summary_keys():
    stats = _stats()
    summary = stats.summary()
    for key in ("wall_cycles", "uops", "loads", "dram_accesses", "ra_loads"):
        assert key in summary
