"""Exception hierarchy for the Phloem reproduction.

Every error raised by this package derives from :class:`PhloemError`, so
callers can catch one type to handle any failure in the toolchain.
Frontend and verifier errors carry an optional source position
(:class:`SpannedError`) that :mod:`repro.diag` renders uniformly.
"""


class PhloemError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpannedError(PhloemError):
    """A toolchain error that may know its source line/column.

    ``line``/``col`` are 1-based and optional; when present they are
    formatted into the message exactly as :class:`ParseError` always did,
    and :mod:`repro.diag` can lift them into a :class:`~repro.diag.Span`.
    """

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        if line is not None:
            message = "line %d:%d: %s" % (line, col if col is not None else 0, message)
        super().__init__(message)


class ParseError(SpannedError):
    """Raised by the mini-C frontend on malformed source."""


class LoweringError(SpannedError):
    """Raised when a parsed AST cannot be lowered to Phloem IR."""


class IRVerificationError(SpannedError):
    """Raised by the IR verifier when a program violates a structural invariant."""


class CompileError(PhloemError):
    """Raised by the Phloem compiler passes on an untransformable program."""


class AliasError(CompileError):
    """Raised when a requested decoupling would violate the aliasing rules.

    Mirrors the paper's Sec. IV-A rule: reads and writes to the same data
    structure (or through pointers that may alias) must stay in one stage.
    """


class SanitizeError(CompileError):
    """Raised when the static pipeline-safety analyzer finds hard errors.

    Carries the offending :class:`~repro.diag.Diagnostic` list as
    ``diagnostics`` so callers (the lint CLI, tests) can inspect codes
    instead of parsing the message.
    """

    def __init__(self, message, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class SimulationError(PhloemError):
    """Raised by the Pipette simulator on an inconsistent machine state."""


class DeadlockError(SimulationError):
    """Raised when every thread in a simulation is blocked.

    The message lists each thread and the queue it is blocked on — and,
    when the scheduler knows the queue topology, the actual wait cycle
    (stage -> queue -> stage chain) plus the static analyzer's verdict,
    which is the first thing one needs when debugging a miscompiled
    pipeline.
    """


class ResourceError(SimulationError):
    """Raised when a pipeline exceeds the machine's resources.

    For example, requesting more queues than the 16 the Pipette
    configuration provides, or more reference accelerators than exist.
    """
