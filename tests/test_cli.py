"""CLI surface."""

import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "k.c"
    path.write_text(KERNEL)
    return str(path)


def test_emit_summary(kernel_file, capsys):
    assert main(["emit", kernel_file, "--format", "summary"]) == 0
    out = capsys.readouterr().out
    assert "stages" in out and "RAs" in out


def test_emit_pseudo_c(kernel_file, capsys):
    assert main(["emit", kernel_file]) == 0
    out = capsys.readouterr().out
    assert "setup_reference_accelerator" in out


def test_emit_ir(kernel_file, capsys):
    assert main(["emit", kernel_file, "--format", "ir"]) == 0
    out = capsys.readouterr().out
    assert "pipeline k" in out


def test_emit_pass_subset(kernel_file, capsys):
    assert main(["emit", kernel_file, "--passes", "recompute,cv", "--format", "summary"]) == 0
    out = capsys.readouterr().out
    assert "0 RAs" in out


def test_demo_bfs(capsys):
    assert main(["demo", "bfs", "--size", "300"]) == 0
    out = capsys.readouterr().out
    assert "serial" in out and "phloem" in out
    assert "False" not in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figures_rejects_unknown(capsys):
    assert main(["figures", "fig99"]) == 2


def test_demo_spmm(capsys):
    assert main(["demo", "spmm", "--size", "2000"]) == 0
    out = capsys.readouterr().out
    assert "serial" in out and "manual" in out
    assert "False" not in out


def test_figures_jobs_flag_parses():
    args = build_parser().parse_args(["figures", "fig6", "--jobs", "4"])
    assert args.jobs == 4 and args.names == ["fig6"]
    assert build_parser().parse_args(["figures"]).jobs is None


def test_figures_fig6_smoke(tmp_path):
    """End-to-end: QUICK fig6 through the parallel harness with a cold cache."""
    env = dict(os.environ)
    env.update(
        REPRO_QUICK="1",
        REPRO_CACHE_DIR=str(tmp_path),
        PYTHONPATH=os.path.join(os.path.dirname(__file__), "..", "src"),
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "figures", "fig6", "--jobs", "2"],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Fig. 6" in proc.stdout
    assert "cache" in proc.stderr  # telemetry lands on stderr, not stdout


# ---------------------------------------------------------------------------
# Observability surface: trace / metrics / --quiet


import json

import repro.obs as obs


@pytest.fixture(autouse=True)
def _reset_quiet():
    """--quiet flags set a process-global; keep tests independent."""
    yield
    obs.set_quiet(None)


def test_trace_writes_valid_chrome_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.jsonl"
    rc = main(
        [
            "trace", "bfs", "--size", "300",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--profile-passes",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "timeline over" in captured.out
    assert "bottleneck stage by window:" in captured.out
    assert "decouple" in captured.out  # the pass table
    assert "perfetto" in captured.err  # telemetry, silenceable

    trace = json.loads(trace_path.read_text())
    assert obs.validate_chrome_trace(trace) == []
    assert trace["otherData"]["bench"] == "bfs"

    records = obs.read_jsonl(str(metrics_path))
    assert [r["variant"] for r in records] == ["serial", "phloem-static"]
    assert all(r["schema"] == obs.RECORD_SCHEMA for r in records)
    assert "passes" in records[1]


def test_trace_quiet_silences_stderr(tmp_path, capsys):
    rc = main(["trace", "bfs", "--size", "300", "--quiet",
               "--trace-out", str(tmp_path / "t.json")])
    assert rc == 0
    captured = capsys.readouterr()
    assert "timeline over" in captured.out  # results stay on stdout
    assert captured.err == ""


def test_metrics_emits_jsonl_on_stdout(capsys):
    rc = main(["metrics", "bfs", "--size", "300", "--quiet"])
    assert rc == 0
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert {r["variant"] for r in records} == {
        "serial", "data-parallel", "phloem-static", "manual"
    }
    assert all(r["ok"] for r in records)
    assert all("summary" in r for r in records)


def test_report_aggregates_metrics_and_lint(tmp_path, capsys):
    """metrics + lint into a directory, then ``repro report`` over it."""
    results = tmp_path / "results"
    results.mkdir()
    assert main(["metrics", "bfs", "--size", "300", "--quiet",
                 "--metrics-out", str(results / "runs.jsonl")]) == 0
    capsys.readouterr()
    assert main(["lint", "--bench", "bfs", "--json"]) == 0
    (results / "lint.json").write_text(capsys.readouterr().out)

    html_out = tmp_path / "report.html"
    rc = main(["report", str(results), "--baseline", "", "--quiet",
               "--html-out", str(html_out)])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("# experiment report")
    assert "## Per-kernel speedups" in out
    assert "## Lint status" in out
    assert "bfs" in out and "phloem-static" in out
    assert html_out.read_text().startswith("<!DOCTYPE html>")


def test_report_missing_directory_exits_2(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope"), "--baseline", ""]) == 2
    assert "not found" in capsys.readouterr().out


def test_figures_metrics_out_from_suites(tmp_path, capsys):
    """--metrics-out captures RunRecords for the suites a run computed."""
    from repro.bench import experiments
    from repro.bench.harness import adapter_for, run_suite
    from repro.pipette.config import SCALED_1CORE
    from repro.workloads.datasets import GraphInput
    from repro.workloads.graphs import uniform_random

    item = GraphInput("tiny", "synthetic", lambda: uniform_random(200, 4, seed=2))
    suite = run_suite(
        adapter_for("bfs"), [item], [], config=SCALED_1CORE,
        variants=("serial", "phloem-static"),
    )
    old = dict(experiments._SUITES)
    experiments._SUITES.clear()
    experiments._SUITES["bfs"] = suite
    try:
        path = tmp_path / "runs.jsonl"
        rc = main(["figures", "fig10", "--quiet", "--metrics-out", str(path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Fig. 10" in captured.out
        assert captured.err == ""  # --quiet silences the telemetry
        records = obs.read_jsonl(str(path))
        assert {(r["bench"], r["variant"]) for r in records} == {
            ("bfs", "serial"), ("bfs", "phloem-static")
        }
    finally:
        experiments._SUITES.clear()
        experiments._SUITES.update(old)


BAD_KERNEL = """
#pragma phloem
void bad(int n) {
  #pragma phloem
  n = 1;
}
"""


class TestLint:
    def test_lint_clean_file(self, kernel_file, capsys):
        assert main(["lint", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_lint_bad_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text(BAD_KERNEL)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "PHL003" in out

    def test_lint_all_benchmarks_clean(self, capsys):
        assert main(["lint", "--bench", "all"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "spmm" in out
        assert "PHL" not in out

    def test_lint_json_shape(self, kernel_file, capsys):
        assert main(["lint", kernel_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.diag/lint-report"
        assert payload["version"] == 1
        (entry,) = payload["reports"]
        assert entry["errors"] == 0 and entry["warnings"] == 0
        assert entry["diagnostics"] == []
        assert entry["target"].endswith("k.c")

    def test_lint_json_carries_code_and_span(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text(BAD_KERNEL)
        assert main(["lint", str(path), "--json"]) == 1
        (entry,) = json.loads(capsys.readouterr().out)["reports"]
        (d,) = entry["diagnostics"]
        assert d["code"] == "PHL003"
        assert d["span"]["line"] == 4

    def test_lint_perf_advisories(self, capsys):
        # --perf adds the PHL4xx performance advisories; they are
        # advisory-only, so the exit code stays 0.
        assert main(["lint", "--bench", "bfs", "--perf"]) == 0
        out = capsys.readouterr().out
        assert "PHL401" in out
        assert main(["lint", "--bench", "bfs", "--perf", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["reports"]
        codes = set(d["code"] for d in entry["diagnostics"])
        assert "PHL401" in codes
        assert all(c.startswith("PHL4") for c in codes)

    def test_lint_verify_each_benchmarks(self, capsys):
        assert main(["lint", "--bench", "bfs", "--verify-each"]) == 0

    def test_lint_requires_a_target(self, capsys):
        assert main(["lint"]) == 2

    def test_lint_unknown_bench_rejected(self, capsys):
        assert main(["lint", "--bench", "nope"]) == 2


class TestApiLayer:
    """The CLI is a thin frontend over repro.api: argv -> request -> handle."""

    def test_cli_has_no_toolchain_imports(self):
        """Verb logic lives in repro.api.handlers; cli.py only builds requests."""
        import ast
        import inspect

        import repro.cli

        tree = ast.parse(inspect.getsource(repro.cli))
        banned = ("core", "frontend", "ir", "pipette", "analysis", "runtime")
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                assert root not in banned, "cli.py imports repro.%s" % node.module
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    assert root not in banned, "cli.py imports %s" % alias.name

    def test_every_submittable_verb_builds_its_request(self, kernel_file):
        from repro import api
        from repro.cli import _REQUEST_BUILDERS

        parser = build_parser()
        argvs = {
            "emit": ["emit", kernel_file, "--format", "summary"],
            "lint": ["lint", kernel_file, "--json"],
            "demo": ["demo", "bfs", "--size", "300"],
            "search": ["search", "cc"],
            "trace": ["trace", "prd", "--quiet"],
            "metrics": ["metrics", "radii", "--jobs", "2"],
            "bench-perf": ["bench", "perf", "bfs", "--quick", "--json"],
            "report": ["report", "/tmp/results", "--html-out", "/tmp/r.html"],
        }
        assert set(argvs) == set(_REQUEST_BUILDERS)
        for verb, argv in argvs.items():
            args = parser.parse_args(argv)
            request = _REQUEST_BUILDERS[args.verb](args)
            assert request.VERB == verb
            assert type(request) is api.REQUEST_TYPES[verb]

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--socket", "/tmp/x.sock"])
        assert args.verb == "serve"
        assert args.workers == 2 and args.quota == 4
        assert args.rate == 10.0 and args.burst == 20.0

    def test_submit_parser_captures_verb_argv(self):
        args = build_parser().parse_args(
            ["submit", "--socket", "/tmp/x.sock", "--stream", "metrics", "bfs", "--size", "300"]
        )
        assert args.verb == "submit"
        assert args.stream
        assert args.argv == ["metrics", "bfs", "--size", "300"]

    def test_submit_without_verb_or_control_is_an_error(self, capsys):
        assert main(["submit", "--socket", "/tmp/never-bound.sock"]) == 2
        assert "give a verb" in capsys.readouterr().out

    def test_submit_rejects_non_submittable_verbs(self, capsys):
        assert main(["submit", "--socket", "/tmp/never-bound.sock", "figures"]) == 2
        assert "only in-process" in capsys.readouterr().out

    def test_submit_unreachable_daemon_is_a_clean_error(self, tmp_path, capsys):
        assert main(["submit", "--socket", str(tmp_path / "nope.sock"), "demo", "bfs"]) == 1
        assert "cannot reach daemon" in capsys.readouterr().err
