"""Bench harness: adapters, suites, normalization (on micro inputs)."""

import pytest

from repro.bench.harness import (
    BenchAdapter,
    GraphBenchAdapter,
    SpmmBenchAdapter,
    VariantRun,
    adapter_for,
    gmean_speedup,
    normalized_breakdowns,
    normalized_energy,
    profile_guided_pipeline,
    run_suite,
)
from repro.core import CompileOptions
from repro.workloads import bfs, prd, spmm
from repro.workloads.datasets import GraphInput, MatrixInput
from repro.workloads.graphs import uniform_random
from repro.workloads.matrices import random_matrix


@pytest.fixture(scope="module")
def micro_inputs():
    return [
        GraphInput("t1", "test", lambda: uniform_random(80, 3, seed=1)),
        GraphInput("t2", "test", lambda: uniform_random(90, 3, seed=2)),
    ]


def test_unified_adapter_aliases():
    """The graph/SpMM adapters merged; the old names still resolve."""
    assert GraphBenchAdapter is BenchAdapter
    assert SpmmBenchAdapter is BenchAdapter
    assert adapter_for("spmm").module is spmm
    assert adapter_for(bfs).name == "bfs"


def test_check_dp_dispatch():
    """check_dp falls back to check unless the module loosens it (PRD)."""
    graph = uniform_random(60, 3, seed=5)
    arrays, _ = bfs.make_env(graph)
    adapter = adapter_for("bfs")
    assert adapter.check_dp(arrays, graph) == bfs.check(arrays, graph)
    assert adapter_for("prd").check_dp.__func__ is BenchAdapter.check_dp
    assert callable(prd.check_dp)


def test_gmean_speedup():
    runs = [
        VariantRun("v", "a", 10, True, {}, {}, {"speedup": 2.0}),
        VariantRun("v", "b", 10, True, {}, {}, {"speedup": 8.0}),
    ]
    assert gmean_speedup(runs) == pytest.approx(4.0)


def test_profile_guided_pipeline(micro_inputs, tiny_config):
    adapter = GraphBenchAdapter(bfs)
    best, results = profile_guided_pipeline(
        adapter, micro_inputs, config=tiny_config, max_stages=3, top_k=3
    )
    assert best is not None
    assert results


def test_run_suite_end_to_end(micro_inputs, tiny_config):
    adapter = GraphBenchAdapter(bfs)
    suite = run_suite(
        adapter,
        micro_inputs[:1],
        micro_inputs[1:],
        config=tiny_config,
        variants=("serial", "data-parallel", "phloem-static", "manual"),
    )
    for variant in ("serial", "data-parallel", "phloem-static", "manual"):
        assert len(suite[variant]) == 1
        assert all(r.ok for r in suite[variant])
    assert suite["serial"][0].meta["speedup"] == 1.0
    assert suite["phloem-static"][0].meta["speedup"] > 0

    breakdowns = normalized_breakdowns(suite)
    serial = breakdowns["serial"]
    primary = sum(serial[k] for k in ("issue", "backend", "queue", "other"))
    assert abs(primary - 1.0) < 1e-9
    energy = normalized_energy(suite)
    assert abs(sum(energy["serial"].values()) - 1.0) < 1e-9


def test_run_suite_options_equals_legacy_kwargs(micro_inputs, tiny_config):
    """CompileOptions and the num_stages shim steer the same compilation."""
    adapter = adapter_for("bfs")
    via_kwarg = run_suite(
        adapter, micro_inputs[:1], [], config=tiny_config,
        variants=("serial", "phloem-static"), num_stages=3,
    )
    via_options = run_suite(
        adapter, micro_inputs[:1], [], config=tiny_config,
        variants=("serial", "phloem-static"), options=CompileOptions(num_stages=3),
    )
    assert (
        via_options["phloem-static"][0].cycles == via_kwarg["phloem-static"][0].cycles
    )


def test_run_suite_matrix_benchmark(tiny_config):
    """The single adapter drives SpMM through the same run_suite path."""
    item = MatrixInput("m1", "test", lambda: random_matrix(30, 4, seed=7))
    suite = run_suite(
        adapter_for("spmm"), [item], [], config=tiny_config,
        variants=("serial", "phloem-static"),
    )
    assert suite["serial"][0].ok and suite["phloem-static"][0].ok
