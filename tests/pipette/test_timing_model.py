"""Qualitative timing-model properties: the phenomena the paper builds on.

These tests assert *relations*, not absolute cycle counts: predictable
branches are cheaper than random ones, dependent loads serialize while
independent loads overlap, decoupling hides latency, and prefetching
ahead of use works.
"""

import random

from repro import ir
from repro.pipette import Machine, MachineConfig, RunSpec
from repro.pipette.config import CacheConfig


def _tiny_mem_config(**kw):
    return MachineConfig(
        l1=CacheConfig(1024, 2, 4),
        l2=CacheConfig(4096, 4, 12),
        l3_per_core=CacheConfig(8192, 8, 40),
        prefetch_enabled=False,
        **kw,
    )


def _run_stage(body, arrays, scalars=None, config=None):
    decls = {name: ir.ArrayDecl(name) for name in arrays}
    stage = ir.StageProgram(0, "t", body)
    pipe = ir.PipelineProgram("t", [stage], [], [], decls, list((scalars or {}).keys()))
    machine = Machine(config or MachineConfig())
    return machine.run(RunSpec(pipe, arrays, scalars or {}))


def _branchy_body(flags):
    b = ir.IRBuilder()
    b.mov(0, dst="acc")
    with b.for_("i", 0, len(flags)):
        f = b.load("@flags", "i")
        with b.if_(f):
            b.binop("add", "acc", 1, dst="acc")
    b.store("@out", 0, "acc")
    return b.finish()


def test_random_branches_cost_more_than_biased():
    rng = random.Random(0)
    n = 4000
    random_flags = [rng.randint(0, 1) for _ in range(n)]
    biased_flags = [1] * n
    r_rand = _run_stage(_branchy_body(random_flags), {"flags": random_flags, "out": [0]})
    r_bias = _run_stage(_branchy_body(biased_flags), {"flags": biased_flags, "out": [0]})
    assert r_rand.cycles > 1.5 * r_bias.cycles
    assert sum(t.mispredicts for t in r_rand.stats.threads) > 10 * sum(
        t.mispredicts for t in r_bias.stats.threads
    )


def test_dependent_loads_serialize():
    """A pointer chase costs ~full latency per hop; a gather overlaps."""
    rng = random.Random(1)
    n = 2000
    # A random cycle for the chase (every element visited once).
    perm = list(range(n))
    rng.shuffle(perm)
    chain = [0] * n
    for a, b_ in zip(perm, perm[1:] + perm[:1]):
        chain[a] = b_

    b = ir.IRBuilder()
    b.mov(0, dst="p")
    with b.for_("i", 0, n):
        b.load("@chain", "p", dst="p")
    b.store("@out", 0, "p")
    chase = _run_stage(b.finish(), {"chain": chain, "out": [0]}, config=_tiny_mem_config())

    b = ir.IRBuilder()
    b.mov(0, dst="acc")
    with b.for_("i", 0, n):
        idx = b.load("@idx", "i", dst="j")
        v = b.load("@chain", "j", dst="v")
        b.binop("add", "acc", "v", dst="acc")
    b.store("@out", 0, "acc")
    gather = _run_stage(
        b.finish(), {"idx": perm, "chain": chain, "out": [0]}, config=_tiny_mem_config()
    )
    # Same number of irregular loads; the chase's dependence chain makes it
    # far slower than the MLP-friendly gather.
    assert chase.cycles > 2.0 * gather.cycles


def test_prefetch_hides_latency():
    rng = random.Random(2)
    n = 1500
    idx = [rng.randrange(n) for _ in range(n)]
    data = [rng.randrange(100) for _ in range(n)]

    def body(with_prefetch):
        b = ir.IRBuilder()
        b.mov(0, dst="acc")
        if with_prefetch:
            # Warm each line well before its use.
            with b.for_("w", 0, n):
                j = b.load("@idx", "w", dst="jw")
                b.prefetch("@data", "jw")
        with b.for_("i", 0, n):
            j = b.load("@idx", "i", dst="j")
            v = b.load("@data", "j", dst="v")
            b.binop("add", "acc", "v", dst="acc")
        b.store("@out", 0, "acc")
        return b.finish()

    cfg = MachineConfig(
        l1=CacheConfig(64 * 1024, 8, 4),
        l2=CacheConfig(256 * 1024, 8, 12),
        l3_per_core=CacheConfig(1 << 20, 16, 40),
        prefetch_enabled=False,
    )
    cold = _run_stage(body(False), {"idx": idx, "data": data, "out": [0]}, config=cfg)
    # Per-access latency in the main loop shrinks when lines were warmed;
    # compare the *second* half by giving the warmed variant its prefetch
    # loop for free.
    warm = _run_stage(body(True), {"idx": idx, "data": data, "out": [0]}, config=cfg)
    l1 = warm.stats.cache_levels["L1"]
    assert l1.hits / l1.accesses > 0.5


def test_decoupling_hides_memory_latency():
    """The paper's Sec. I example: an unpredictable branch consuming a
    long-latency load serializes serial execution; decoupling the fetch
    into its own stage restores memory-level parallelism.

    (A branch-free gather does *not* benefit — the OOO model already
    overlaps independent loads — which is itself the correct behavior.)
    """
    rng = random.Random(3)
    n = 3000
    idx = [rng.randrange(n) for _ in range(n)]
    data = [rng.randrange(50) - 25 for _ in range(n)]
    expected = sum(data[j] for j in idx if data[j] > 0)

    serial_b = ir.IRBuilder()
    serial_b.mov(0, dst="acc")
    with serial_b.for_("i", 0, n):
        j = serial_b.load("@idx", "i", dst="j")
        v = serial_b.load("@data", "j", dst="v")
        pos = serial_b.binop("gt", "v", 0)
        with serial_b.if_(pos):  # unpredictable, resolves on the load
            serial_b.binop("add", "acc", "v", dst="acc")
    serial_b.store("@out", 0, "acc")
    serial = _run_stage(
        serial_b.finish(), {"idx": idx, "data": data, "out": [0]}, config=_tiny_mem_config()
    )
    assert serial.arrays()["out"] == [expected]

    b0 = ir.IRBuilder()
    with b0.for_("i", 0, n):
        j = b0.load("@idx", "i", dst="j")
        v = b0.load("@data", "j", dst="v")
        b0.enq(0, "v")
    s0 = ir.StageProgram(0, "fetch", b0.finish())
    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.for_("i", 0, n):
        v = b1.deq(0, dst="v")
        pos = b1.binop("gt", "v", 0)
        with b1.if_(pos):  # same branch, but it resolves on a queue value
            b1.binop("add", "acc", "v", dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "filter", b1.finish())
    pipe = ir.PipelineProgram(
        "p",
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("stage", 1))],
        [],
        {name: ir.ArrayDecl(name) for name in ("idx", "data", "out")},
        [],
    )
    piped = Machine(_tiny_mem_config()).run(
        RunSpec(pipe, {"idx": idx, "data": data, "out": [0]}, {})
    )
    assert piped.arrays()["out"] == [expected]
    assert piped.cycles < serial.cycles


def test_queue_stall_attributed():
    """A slow producer shows up as queue stall in the consumer."""
    n = 500
    b0 = ir.IRBuilder()
    b0.mov(1, dst="s")
    with b0.for_("i", 0, n):
        # A loop-carried division chain: ~12 cycles per produced value
        # (latency on the dependence path, not just issue slots).
        t = b0.binop("add", "s", "i")
        b0.binop("div", t, 1, dst="s")
        b0.enq(0, "s")
    s0 = ir.StageProgram(0, "slow", b0.finish())
    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.for_("i", 0, n):
        v = b1.deq(0, dst="v")
        b1.binop("add", "acc", "v", dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "fast", b1.finish())
    pipe = ir.PipelineProgram(
        "p",
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("stage", 1))],
        [],
        {"out": ir.ArrayDecl("out")},
        [],
    )
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    consumer = next(t for t in res.stats.threads if "fast" in t.name)
    assert consumer.queue_stall > 0.2 * consumer.total_cycles
