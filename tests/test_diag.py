"""The diagnostics framework: codes, spans, rendering, severity plumbing."""

import json
import os
import subprocess
import sys

import pytest

from repro.diag import (
    CODES,
    ERROR,
    LINT_REPORT_SCHEMA,
    LINT_REPORT_VERSION,
    NOTE,
    WARNING,
    Diagnostic,
    DiagnosticSet,
    Span,
    from_exception,
)
from repro.errors import (
    CompileError,
    IRVerificationError,
    LoweringError,
    ParseError,
    SanitizeError,
)


class TestRegistry:
    def test_codes_are_stable_identifiers(self):
        # The registry is append-only; these families exist and keep their
        # documented default severities.
        assert CODES["PHL002"][0] == ERROR
        assert CODES["PHL104"][0] == WARNING
        assert CODES["PHL201"][0] == WARNING
        assert CODES["PHL301"][0] == ERROR
        assert CODES["PHL401"][0] == NOTE
        assert CODES["PHL402"][0] == WARNING

    def test_perf_advisories_are_never_errors(self):
        # The PHL4xx family is advisory by contract: a performance finding
        # must never fail a compile.
        for code, (severity, _) in CODES.items():
            if code.startswith("PHL4"):
                assert severity in (WARNING, NOTE), code

    def test_lint_report_schema_identity(self):
        assert LINT_REPORT_SCHEMA == "repro.diag/lint-report"
        assert LINT_REPORT_VERSION == 1

    def test_every_code_is_well_formed(self):
        for code, (severity, summary) in CODES.items():
            assert code.startswith("PHL") and code[3:].isdigit()
            assert severity in (ERROR, WARNING, NOTE)
            assert summary

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("PHL999", "nope")


class TestSpan:
    def test_render_variants(self):
        assert Span(7).render() == "line 7"
        assert Span(7, 3).render() == "7:3"
        assert Span(7, 3, "k.c").render() == "k.c:7:3"

    def test_from_error_lifts_position(self):
        exc = LoweringError("boom", line=4, col=2)
        span = Span.from_error(exc)
        assert span == Span(4, 2)
        assert Span.from_error(CompileError("no position")) is None


class TestDiagnosticSet:
    def test_add_render_and_counts(self):
        diags = DiagnosticSet()
        diags.add("PHL105", "mismatch", span=Span(9), where="queue 3")
        diags.add("PHL104", "conditional")
        assert diags.has_errors
        assert len(diags.errors()) == 1 and len(diags.warnings()) == 1
        text = diags.render_text()
        assert "error[PHL105]" in text and "[queue 3]" in text
        assert "line 9" in text
        assert "1 error(s), 1 warning(s)" in text

    def test_sorted_puts_errors_first(self):
        diags = DiagnosticSet()
        diags.add("PHL104", "warn", span=Span(1))
        diags.add("PHL105", "err", span=Span(99))
        assert [d.code for d in diags.sorted()] == ["PHL105", "PHL104"]

    def test_sorted_is_a_total_order(self):
        # Within one severity the order is (file, span, code, where,
        # message) — never insertion order, never dict/hash order.
        diags = DiagnosticSet()
        diags.add("PHL402", "b", span=Span(5, None, "z.c"), where="queue 1")
        diags.add("PHL104", "a", span=Span(5, None, "a.c"))
        diags.add("PHL402", "a", span=Span(5, None, "z.c"), where="queue 0")
        diags.add("PHL104", "a", span=Span(2, None, "z.c"))
        diags.add("PHL301", "spanless")
        got = [(d.span.file if d.span else None, d.code, d.where) for d in diags.sorted()]
        assert got == [
            (None, "PHL301", None),  # errors first
            ("a.c", "PHL104", None),  # then by file...
            ("z.c", "PHL104", None),  # ...then line...
            ("z.c", "PHL402", "queue 0"),  # ...then code, then where
            ("z.c", "PHL402", "queue 1"),
        ]

    def test_sorted_is_byte_stable_across_hash_seeds(self):
        # Diagnostic ordering must not leak set/dict iteration order:
        # rendering the same findings under different PYTHONHASHSEED
        # values yields identical bytes.
        program = (
            "from repro.diag import DiagnosticSet, Span\n"
            "diags = DiagnosticSet()\n"
            "for name in ('gamma', 'alpha', 'beta', 'delta'):\n"
            "    diags.add('PHL402', 'queue ' + name, where='queue ' + name)\n"
            "    diags.add('PHL104', 'cv ' + name, span=Span(len(name)))\n"
            "diags.add('PHL401', 'bottleneck', span=Span(3), where='stage 2')\n"
            "print(diags.render_text())\n"
            "print(diags.render_json())\n"
        )
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__import__("repro").__file__)))
        outputs = set()
        for seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src_dir)
            proc = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                env=env,
                check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_json_roundtrip(self):
        diags = DiagnosticSet()
        diags.add("PHL301", "race", span=Span(5, 1, "k.c"), where="array @a")
        payload = json.loads(diags.render_json())
        assert payload["errors"] == 1
        (d,) = payload["diagnostics"]
        assert d["code"] == "PHL301"
        assert d["span"] == {"line": 5, "col": 1, "file": "k.c"}

    def test_raise_if_errors(self):
        diags = DiagnosticSet()
        diags.add("PHL104", "only a warning")
        diags.raise_if_errors()  # warnings never raise
        diags.add("PHL101", "never drained")
        with pytest.raises(SanitizeError) as excinfo:
            diags.raise_if_errors()
        assert [d.code for d in excinfo.value.diagnostics] == ["PHL101"]


class TestFromException:
    def test_wraps_each_toolchain_error(self):
        cases = [
            (ParseError("bad token", line=2, col=5), "PHL002"),
            (LoweringError("bad stmt", line=3), "PHL003"),
            (IRVerificationError("bad ir"), "PHL001"),
            (CompileError("bad pass"), "PHL004"),
        ]
        for exc, code in cases:
            diags = from_exception(exc, file="k.c")
            (d,) = list(diags)
            assert d.code == code
            assert d.severity == ERROR

    def test_strips_position_prefix_from_message(self):
        diags = from_exception(ParseError("bad token", line=2, col=5))
        (d,) = list(diags)
        assert d.message == "bad token"
        assert d.span == Span(2, 5)


class TestSpannedErrors:
    def test_lowering_and_verification_errors_carry_position(self):
        # Satellite of the diagnostics work: LoweringError and
        # IRVerificationError accept the same optional line/col ParseError
        # always had.
        for cls in (ParseError, LoweringError, IRVerificationError):
            exc = cls("oops", line=11, col=4)
            assert (exc.line, exc.col) == (11, 4)
            assert "line 11:4" in str(exc)
            bare = cls("oops")
            assert bare.line is None and str(bare) == "oops"
