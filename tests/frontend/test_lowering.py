"""AST -> IR lowering: structures, affine-for detection, safety checks."""

import pytest

from repro import ir
from repro.errors import LoweringError
from repro.frontend import compile_source


def _lower(body_src, params="const int* restrict a, int* restrict out, int n"):
    return compile_source("void k(%s) { %s }" % (params, body_src))


def _kinds(body):
    return [s.kind for s in body]


def test_params_split_arrays_scalars():
    f = _lower("out[0] = a[0];")
    assert set(f.arrays) == {"a", "out"}
    assert f.scalar_params == ["n"]
    assert f.arrays["a"].readonly
    assert not f.arrays["out"].readonly


def test_restrict_required():
    with pytest.raises(LoweringError, match="restrict"):
        compile_source("void k(int* p) { p[0] = 1; }")


def test_affine_for_becomes_For():
    f = _lower("for (int i = 0; i < n; i++) { out[i] = a[i]; }")
    loop = f.body[0]
    assert loop.kind == "for"
    assert loop.var == "i" and loop.lo == 0 and loop.step == 1


def test_for_with_step():
    f = _lower("for (int i = 0; i < n; i += 2) { out[i] = 0; }")
    assert f.body[0].step == 2


def test_nonaffine_for_falls_back_to_loop():
    f = _lower("for (int i = 0; i < n; i = i * 2 + 1) { out[i] = 0; }")
    kinds = _kinds(f.body)
    assert "loop" in kinds and "for" not in kinds


def test_for_with_mutated_bound_falls_back():
    f = compile_source(
        "void k(int* restrict out, int n) {"
        " for (int i = 0; i < n; i++) { n = n - 1; out[i] = 0; } }"
    )
    kinds = _kinds(f.body)
    assert "loop" in kinds and "for" not in kinds


def test_while_lowering_shape():
    f = _lower("int i = 0; while (i < n) { i = i + 1; }")
    loop = f.body[1]
    assert loop.kind == "loop"
    # cond, not, if(break) prefix
    assert loop.body[0].kind == "assign" and loop.body[0].op == "lt"
    assert loop.body[1].op == "not"
    assert loop.body[2].kind == "if"
    assert loop.body[2].then_body[0].kind == "break"


def test_if_else_lowering():
    f = _lower("if (n > 0) { out[0] = 1; } else { out[0] = 2; }")
    node = f.body[-1]
    assert node.kind == "if"
    assert node.then_body[-1].kind == "store"
    assert node.else_body[-1].kind == "store"


def test_logical_and_pure():
    f = _lower("if (n > 0 && n < 10) { out[0] = 1; }")
    ands = [s for s in ir.walk(f.body) if s.kind == "assign" and s.op == "and"]
    assert len(ands) == 1


def test_logical_with_side_effects_rejected():
    with pytest.raises(LoweringError, match="side effects"):
        _lower("if (n > 0 && f(n)) { out[0] = 1; }")


def test_ternary_becomes_select():
    f = _lower("out[0] = n > 0 ? 1 : 2;")
    sels = [s for s in ir.walk(f.body) if s.kind == "assign" and s.op == "select"]
    assert len(sels) == 1


def test_compound_index_assignment():
    f = _lower("out[n] += 5;")
    kinds = _kinds(f.body)
    assert kinds == ["load", "assign", "store"]
    assert f.body[1].op == "add"


def test_postincrement_value():
    f = _lower("int x = 1; out[x++] = x;")
    # old value used as index, incremented before the store's value read
    store = [s for s in ir.walk(f.body) if s.kind == "store"][0]
    assert store.index != "x"


def test_pointer_locals_and_swap():
    src = """
    void k(int* restrict f0, int* restrict f1, int n) {
      int* restrict cur = f0;
      int* restrict nxt = f1;
      int* restrict tmp = cur;
      cur = nxt;
      nxt = tmp;
      cur[0] = 1;
    }
    """
    f = compile_source(src)
    store = [s for s in ir.walk(f.body) if s.kind == "store"][0]
    assert store.array == "cur"


def test_pointer_from_scalar_rejected():
    with pytest.raises(LoweringError, match="initialized from an array"):
        compile_source("void k(int n) { int* restrict p = n; }")


def test_pointer_arithmetic_rejected():
    with pytest.raises(LoweringError, match="array parameter"):
        compile_source("void k(int* restrict a, int n) { a += 1; }")
    with pytest.raises(LoweringError, match="pointer"):
        compile_source(
            "void k(int* restrict a, int n) { int* restrict p = a; p += 1; }"
        )


def test_builtin_constants():
    f = _lower("out[0] = INT_MAX;")
    store = f.body[-1]
    assert store.value == 2**31 - 1


def test_intrinsic_call():
    f = _lower("out[0] = work(a[0]);")
    calls = [s for s in ir.walk(f.body) if s.kind == "call"]
    assert calls and calls[0].func == "work"


def test_early_return_rejected():
    with pytest.raises(LoweringError, match="early return"):
        _lower("if (n > 0) { return; } out[0] = 1;")


def test_trailing_return_allowed():
    f = _lower("out[0] = 1; return;")
    assert f.body[-1].kind == "store"


def test_return_value_rejected():
    with pytest.raises(LoweringError, match="void"):
        compile_source("int k(int n) { return n; }")


def test_undeclared_identifier():
    with pytest.raises(LoweringError, match="undeclared"):
        _lower("out[0] = mystery;")


def test_multiple_functions_need_name():
    src = "void a() {} void b() {}"
    with pytest.raises(LoweringError, match="multiple functions"):
        compile_source(src)
    assert compile_source(src, name="b").name == "b"


def test_float_kernels():
    src = """
    void axpy(const double* restrict x, double* restrict y, int n, double alpha) {
      for (int i = 0; i < n; i++) {
        y[i] = y[i] + alpha * x[i];
      }
    }
    """
    f = compile_source(src)
    assert f.arrays["x"].is_float
    assert f.scalar_params == ["n", "alpha"]


def test_verifies_output():
    # Every lowered function passes the IR verifier by construction.
    f = _lower("for (int i = 0; i < n; i++) { out[i] = a[i] * 2; }")
    assert ir.verify_function(f)
