"""ASCII renderers for the evaluation figures.

The paper's figures are bar charts; this module prints them as aligned
tables (one row per benchmark/variant) so ``pytest benchmarks/`` output
reads like the evaluation section.
"""


def render_table(title, headers, rows):
    """Generic aligned table."""
    widths = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [c if isinstance(c, str) else _fmt(c) for c in row]
        str_rows.append(cells)
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = ["", "== %s ==" % title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in str_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def render_speedups(title, per_benchmark):
    """``{benchmark: {variant: speedup}}`` -> table."""
    variants = []
    for entries in per_benchmark.values():
        for v in entries:
            if v not in variants:
                variants.append(v)
    headers = ["benchmark"] + variants
    rows = []
    for name, entries in per_benchmark.items():
        rows.append([name] + [entries.get(v, float("nan")) for v in variants])
    return render_table(title, headers, rows)


def render_stacked(title, per_benchmark, components):
    """``{benchmark: {variant: {component: value}}}`` -> stacked rows."""
    headers = ["benchmark", "variant"] + list(components) + ["total"]
    rows = []
    for name, variants in per_benchmark.items():
        for variant, comps in variants.items():
            values = [comps.get(c, 0.0) for c in components]
            rows.append([name, variant] + values + [sum(values)])
    return render_table(title, headers, rows)


def render_distribution(title, per_benchmark):
    """``{benchmark: {units: [speedups]}}`` -> Fig. 13-style summary rows."""
    headers = ["benchmark", "stages+RAs", "count", "min", "median", "max"]
    rows = []
    for name, dist in per_benchmark.items():
        for units, speeds in sorted(dist.items()):
            mid = speeds[len(speeds) // 2]
            rows.append([name, str(units), str(len(speeds)), min(speeds), mid, max(speeds)])
    return render_table(title, headers, rows)
