"""Intra-stage cleanups: dead code, empty control, copy propagation."""

from repro import ir
from repro.core.cleanup import (
    copy_propagate,
    cleanup_stage,
    prune_empty_control,
    remove_dead_code,
    stage_is_trivial,
)


def test_dead_assign_removed():
    body = [ir.Assign("x", "mov", [1]), ir.Store("@a", 0, 2)]
    remove_dead_code(body)
    assert [s.kind for s in body] == ["store"]


def test_dead_chain_removed_transitively():
    body = [
        ir.Assign("a", "mov", [1]),
        ir.Assign("b", "add", ["a", 1]),
        ir.Assign("c", "add", ["b", 1]),
    ]
    remove_dead_code(body)
    assert body == []


def test_dead_load_removed():
    body = [ir.Load("v", "@a", 0)]
    remove_dead_code(body)
    assert body == []


def test_effectful_kept():
    body = [ir.Deq("x", 0), ir.Prefetch("@a", 1), ir.Call(None, "f", [])]
    remove_dead_code(body)
    assert len(body) == 3


def test_live_out_respected():
    body = [ir.Assign("x", "mov", [1])]
    remove_dead_code(body, live_out=["x"])
    assert len(body) == 1


def test_handler_uses_keep_values():
    body = [ir.Assign("dones", "mov", [0]), ir.Store("@a", 0, 1)]
    handler = [ir.Assign("dones", "add", ["dones", 1])]
    remove_dead_code(body, handler_bodies=(handler,))
    assert body[0].kind == "assign"


def test_prune_empty_loops_and_ifs():
    body = [
        ir.For("i", 0, 10, 1, []),
        ir.If("c", [], []),
        ir.Loop([]),
        ir.Store("@a", 0, 1),
    ]
    prune_empty_control(body)
    assert [s.kind for s in body] == ["store"]


def test_prune_cascades():
    body = [ir.For("i", 0, 10, 1, [ir.If("c", [], [])])]
    prune_empty_control(body)
    assert body == []


def test_copy_propagation():
    stage = ir.StageProgram(
        0,
        "t",
        [
            ir.Deq("%t0", 0),
            ir.Assign("v", "mov", ["%t0"]),
            ir.Store("@a", "v", "v"),
        ],
    )
    copy_propagate(stage)
    remove_dead_code(stage.body)
    store = stage.body[-1]
    assert store.index == "%t0" and store.value == "%t0"
    assert all(s.kind != "assign" for s in stage.body)


def test_copy_propagation_skips_multidef():
    stage = ir.StageProgram(
        0,
        "t",
        [
            ir.Assign("x", "mov", [1]),
            ir.Assign("x", "mov", [2]),
            ir.Store("@a", 0, "x"),
        ],
    )
    copy_propagate(stage)
    assert stage.body[-1].value == "x"  # untouched


def test_copy_propagation_resolves_chains():
    stage = ir.StageProgram(
        0,
        "t",
        [
            ir.Deq("a", 0),
            ir.Assign("b", "mov", ["a"]),
            ir.Assign("c", "mov", ["b"]),
            ir.Store("@x", 0, "c"),
        ],
    )
    copy_propagate(stage)
    assert stage.body[-1].value == "a"


def test_stage_triviality():
    trivial = ir.StageProgram(0, "t", [ir.Assign("x", "mov", [1]), ir.Barrier()])
    real = ir.StageProgram(0, "t", [ir.Enq(0, 1)])
    handlerful = ir.StageProgram(0, "t", [], handlers={0: [ir.Break(1)]})
    assert stage_is_trivial(trivial)
    assert not stage_is_trivial(real)
    assert not stage_is_trivial(handlerful)


def test_cleanup_stage_composite():
    stage = ir.StageProgram(
        0,
        "t",
        [
            ir.Assign("dead", "mov", [9]),
            ir.For("i", 0, 4, 1, [ir.Assign("alsodead", "add", ["i", 1])]),
            ir.Store("@a", 0, 1),
        ],
    )
    cleanup_stage(stage)
    assert [s.kind for s in stage.body] == ["store"]
