"""Compiler pass instrumentation."""

from repro.bench.harness import adapter_for
from repro.core.compiler import CompileOptions, compile_function
from repro.ir.serialize import fingerprint
from repro.obs import PassProfiler


def _function():
    return adapter_for("bfs").function()


def test_profiler_records_every_pass_with_deltas():
    profiler = PassProfiler()
    compile_function(_function(), num_stages=4, profiler=profiler)
    names = [r.name for r in profiler.records]
    # decouple always runs and always finalizes; optional passes in order.
    assert names[-1] == "finalize"
    assert "decouple" in names
    for name in ("recompute", "cv", "dce", "handlers", "ra"):
        assert name in names
    decouple = next(r for r in profiler.records if r.name == "decouple")
    assert decouple.before["stages"] == 1
    assert decouple.after["stages"] > 1
    assert decouple.after["queues"] > 0
    ra = next(r for r in profiler.records if r.name == "ra")
    assert ra.delta("ras") > 0
    assert all(r.wall_s >= 0.0 for r in profiler.records)


def test_phase_transform_recorded_for_phased_kernels():
    profiler = PassProfiler()
    compile_function(_function(), num_stages=4, profiler=profiler)
    # BFS has a convergence loop, so the phases prepass fires and records.
    assert any(r.name == "phases" for r in profiler.records)


def test_pass_subset_profiles_only_requested_passes():
    profiler = PassProfiler()
    compile_function(_function(), num_stages=4, passes=("recompute",), profiler=profiler)
    names = {r.name for r in profiler.records}
    assert "recompute" in names
    assert "ra" not in names and "cv" not in names


def test_profiler_does_not_change_compilation():
    plain = compile_function(_function(), num_stages=4)
    profiled = compile_function(_function(), num_stages=4, profiler=PassProfiler())
    assert fingerprint(plain) == fingerprint(profiled)


def test_snapshots_capture_ir_text():
    profiler = PassProfiler(snapshots=True)
    compile_function(_function(), num_stages=4, profiler=profiler)
    decouple = next(r for r in profiler.records if r.name == "decouple")
    assert "pipeline" in decouple.ir_after
    assert decouple.ir_before != decouple.ir_after
    d = decouple.as_dict()
    assert "ir_before" in d and "ir_after" in d


def test_as_dicts_and_render():
    profiler = PassProfiler()
    compile_function(_function(), options=CompileOptions(num_stages=3), profiler=profiler)
    dicts = profiler.as_dicts()
    assert all(set(d) >= {"pass", "wall_s", "before", "after"} for d in dicts)
    text = profiler.render()
    assert "decouple" in text and "total" in text
    assert profiler.total_wall_s() >= 0.0
