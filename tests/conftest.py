"""Shared fixtures: tiny inputs and configs that keep unit tests fast."""

import os

import pytest

from repro.pipette.config import CacheConfig, MachineConfig
from repro.workloads.graphs import uniform_random


@pytest.fixture(scope="session", autouse=True)
def _cache_sandbox(tmp_path_factory):
    """Keep the repro.cache disk layer out of ``~/.cache`` during tests."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("phloem-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def tiny_config():
    """A small machine: full feature set, tiny caches, quick to simulate."""
    return MachineConfig(
        l1=CacheConfig(4 * 1024, 4, 4),
        l2=CacheConfig(16 * 1024, 8, 12),
        l3_per_core=CacheConfig(64 * 1024, 16, 40),
    )


@pytest.fixture(scope="session")
def tiny_graph():
    """A 300-vertex graph small enough for exhaustive validation."""
    return uniform_random(300, 4, seed=9)


@pytest.fixture(scope="session")
def micro_graph():
    """A 60-vertex graph for the slowest (replicated/multi-variant) tests."""
    return uniform_random(60, 3, seed=5)
