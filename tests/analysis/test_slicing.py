"""Backward slicing across a region tree."""

from repro import ir
from repro.analysis.slicing import backward_slice


def test_simple_chain():
    body = [
        ir.Assign("a", "mov", [1]),
        ir.Assign("b", "add", ["a", 2]),
        ir.Assign("c", "add", ["b", 3]),
        ir.Assign("unrelated", "mov", [9]),
    ]
    ids, regs = backward_slice(body, ["c"])
    assert {id(body[0]), id(body[1]), id(body[2])} <= ids
    assert id(body[3]) not in ids
    assert {"a", "b", "c"} <= regs


def test_slice_through_loads():
    body = [
        ir.Assign("i", "mov", [0]),
        ir.Load("v", "@a", "i"),
        ir.Assign("addr", "add", ["v", 1]),
    ]
    ids, _ = backward_slice(body, ["addr"])
    assert id(body[1]) in ids and id(body[0]) in ids


def test_for_bounds_pulled_in():
    bound = ir.Load("hi", "@a", 0)
    body = [bound, ir.For("i", 0, "hi", 1, [ir.Assign("x", "add", ["i", 1])])]
    ids, regs = backward_slice(body, ["x"])
    assert id(bound) in ids
    assert "hi" in regs


def test_constants_dont_slice():
    body = [ir.Assign("x", "mov", [5])]
    ids, _ = backward_slice(body, [7])
    assert ids == set()


def test_empty_seeds_give_empty_slice():
    body = [ir.Assign("x", "mov", [5]), ir.Load("v", "@a", "x")]
    ids, regs = backward_slice(body, [])
    assert ids == set() and regs == set()


def test_array_pointer_seeds_are_not_registers():
    # "@"-prefixed operands are alias classes, not scalar registers: they
    # seed nothing (the alias analysis owns them).
    body = [ir.Assign("x", "mov", [5]), ir.Store("@a", "x", 1)]
    ids, regs = backward_slice(body, ["@a"])
    assert ids == set() and regs == set()


def test_multiple_defs_all_pulled():
    # Flow-insensitive closure: every def of a register joins the slice,
    # including the loop-carried update.
    init = ir.Assign("acc", "mov", [0])
    update = ir.Assign("acc", "add", ["acc", "v"])
    load = ir.Load("v", "@a", "i")
    body = [init, ir.For("i", 0, 4, 1, [load, update])]
    ids, regs = backward_slice(body, ["acc"])
    assert {id(init), id(update), id(load)} <= ids
    assert {"acc", "v", "i"} <= regs


def test_nested_loop_bounds_chain():
    # Slicing an inner-loop value pulls both loop headers and the loaded
    # bound the inner header depends on.
    bound = ir.Load("row_end", "@offsets", "i")
    inner = ir.For("j", "i", "row_end", 1, [ir.Assign("x", "add", ["j", 1])])
    outer = ir.For("i", 0, "n", 1, [bound, inner])
    ids, regs = backward_slice([outer], ["x"])
    assert {id(bound), id(inner), id(outer)} <= ids
    assert {"row_end", "i", "j", "n"} <= regs


def test_self_referential_def_terminates():
    body = [ir.Assign("x", "add", ["x", 1])]
    ids, regs = backward_slice(body, ["x"])
    assert ids == {id(body[0])}
    assert regs == {"x"}
