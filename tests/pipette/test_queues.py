"""Hardware queue semantics: FIFO order, capacity, timestamps."""

from hypothesis import given
from hypothesis import strategies as st

from repro.pipette.queues import HWQueue


def test_fifo_order():
    q = HWQueue(0, capacity=4, latency=0)
    for v in (1, 2, 3):
        assert q.try_enq(0.0, v) is not None
    assert q.try_deq(10.0)[0] == 1
    assert q.try_deq(10.0)[0] == 2
    assert q.try_deq(10.0)[0] == 3


def test_empty_deq_returns_none():
    q = HWQueue(0, 4, 0)
    assert q.try_deq(0.0) is None


def test_capacity_blocks():
    q = HWQueue(0, capacity=2, latency=0)
    assert q.try_enq(0.0, 1) is not None
    assert q.try_enq(0.0, 2) is not None
    assert q.try_enq(0.0, 3) is None  # full
    q.try_deq(5.0)
    assert q.try_enq(6.0, 3) is not None


def test_latency_delays_visibility():
    q = HWQueue(0, 4, latency=3)
    q.try_enq(10.0, 42)
    value, t = q.try_deq(0.0)
    assert value == 42
    assert t == 13.0  # enq at 10 + 3 cycles of queue latency


def test_deq_not_before_enqueue_time():
    q = HWQueue(0, 4, latency=2)
    q.try_enq(100.0, 1)
    _, t = q.try_deq(5.0)
    assert t == 102.0


def test_slot_reuse_carries_deq_time():
    q = HWQueue(0, capacity=1, latency=0)
    q.try_enq(0.0, 1)
    q.try_deq(50.0)  # slot freed at t=50
    t = q.try_enq(10.0, 2)
    assert t == 50.0  # cannot reuse the slot before it was freed


def test_peek_leaves_entry():
    q = HWQueue(0, 4, 0)
    q.try_enq(0.0, 7)
    assert q.try_peek(1.0)[0] == 7
    assert q.try_peek(1.0)[0] == 7
    assert q.try_deq(1.0)[0] == 7


def test_counters():
    q = HWQueue(0, 4, 0)
    q.try_enq(0.0, 1)
    q.try_enq(0.0, 2)
    q.try_deq(0.0)
    assert q.total_enqs == 2 and q.total_deqs == 1
    assert q.occupancy == 1


class _FakeTask:
    def __init__(self):
        self.woken = 0

    def wake(self):
        self.woken += 1


def test_enq_wakes_consumers():
    q = HWQueue(0, 4, 0)
    t = _FakeTask()
    q.waiting_consumers.append(t)
    q.try_enq(0.0, 1)
    assert t.woken == 1
    assert q.waiting_consumers == []


def test_deq_wakes_producers():
    q = HWQueue(0, 1, 0)
    q.try_enq(0.0, 1)
    t = _FakeTask()
    q.waiting_producers.append(t)
    q.try_deq(0.0)
    assert t.woken == 1


@given(st.lists(st.integers(), max_size=50))
def test_fifo_property(values):
    q = HWQueue(0, capacity=64, latency=1)
    now = 0.0
    for v in values:
        q.try_enq(now, v)
        now += 1.0
    out = []
    while True:
        res = q.try_deq(now)
        if res is None:
            break
        out.append(res[0])
        now += 1.0
    assert out == values


@given(st.integers(1, 8), st.lists(st.integers(0, 100), min_size=1, max_size=40))
def test_occupancy_never_exceeds_capacity(capacity, script):
    q = HWQueue(0, capacity=capacity, latency=0)
    now = 0.0
    for step in script:
        now += 1.0
        if step % 2:
            q.try_enq(now, step)
        else:
            q.try_deq(now)
        assert 0 <= q.occupancy <= capacity
