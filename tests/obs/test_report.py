"""Report aggregation over synthesized results trees, plus both renderers."""

import json
from html.parser import HTMLParser

import pytest

from repro.obs import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    collect,
    render_html,
    render_markdown,
    run_record,
    spark,
    write_jsonl,
)
from repro.obs.report import ExperimentReport


def _run(bench, variant, cycles, speedup=None, breakdown=None, cache=None):
    return run_record(
        bench,
        variant,
        "tiny",
        cycles,
        ok=True,
        speedup=speedup,
        breakdown=breakdown,
        cache_stats=cache,
    )


def _perf_baseline(with_history=True):
    record = {
        "schema": "repro.bench/perf-record",
        "version": 1,
        "bench": "bfs",
        "scale": "quick",
        "input": "power_law(deg=3,n=120,seed=7)",
        "repeats": 2,
        "cycles": 5000,
        "slow_wall_s": 2.0,
        "fast_wall_s": 1.0,
        "speedup": 2.0,
        "sim_mcycles_per_s": 0.005,
        "phases": {},
    }
    payload = {
        "schema": "repro.bench/perf-baseline",
        "version": 1,
        "scale": "quick",
        "records": [record],
        "aggregate": {"slow_wall_s": 2.0, "fast_wall_s": 1.0, "speedup": 2.0},
    }
    if with_history:
        payload["history"] = [
            {
                "git": "abc1234",
                "engine": "fastpath",
                "scale": "quick",
                "recorded": "2026-08-01",
                "aggregate": {"speedup": 1.8, "fast_wall_s": 1.1, "slow_wall_s": 2.0},
                "benches": {"bfs": {"sim_mcycles_per_s": 0.004, "speedup": 1.8}},
            },
            {
                "git": "def5678",
                "engine": "fastpath",
                "scale": "quick",
                "recorded": "2026-08-07",
                "aggregate": {"speedup": 2.0, "fast_wall_s": 1.0, "slow_wall_s": 2.0},
                "benches": {"bfs": {"sim_mcycles_per_s": 0.005, "speedup": 2.0}},
            },
        ]
    return payload


def _multi_engine_perf():
    """A baseline written by an ``--engine all`` run: per-engine records
    plus a history interleaving fastpath and batch points."""
    record = {
        "schema": "repro.bench/perf-record",
        "version": 1,
        "bench": "bfs",
        "scale": "quick",
        "repeats": 2,
        "cycles": 5000,
        "slow_wall_s": 4.0,
        "fast_wall_s": 1.0,
        "speedup": 4.0,
        "sim_mcycles_per_s": 0.005,
        "phases": {},
        "engines": {
            "reference": {"wall_s": 4.0, "speedup": 1.0, "sim_mcycles_per_s": 0.00125},
            "fastpath": {"wall_s": 2.0, "speedup": 2.0, "sim_mcycles_per_s": 0.0025},
            "batch": {"wall_s": 1.0, "speedup": 4.0, "sim_mcycles_per_s": 0.005},
        },
    }
    history = []
    for git, fast_x, batch_x in (("aaa1111", 1.8, 3.4), ("bbb2222", 2.0, 4.0)):
        for engine, x in (("fastpath", fast_x), ("batch", batch_x)):
            history.append(
                {
                    "git": git,
                    "engine": engine,
                    "scale": "quick",
                    "recorded": "2026-08-0%d" % len(history),
                    "aggregate": {"speedup": x, "fast_wall_s": 4.0 / x, "slow_wall_s": 4.0},
                    "benches": {"bfs": {"sim_mcycles_per_s": 0.00125 * x, "speedup": x}},
                }
            )
    return {
        "schema": "repro.bench/perf-baseline",
        "version": 1,
        "scale": "quick",
        "records": [record],
        "aggregate": {
            "slow_wall_s": 4.0,
            "fast_wall_s": 1.0,
            "speedup": 4.0,
            "engines": {
                "reference": {"wall_s": 4.0, "speedup": 1.0},
                "fastpath": {"wall_s": 2.0, "speedup": 2.0},
                "batch": {"wall_s": 1.0, "speedup": 4.0},
            },
        },
        "history": history,
    }


def _telemetry_snapshot():
    return {
        "schema": "repro.service/telemetry",
        "version": 1,
        "uptime_s": 42.0,
        "in_flight": 0,
        "in_flight_peak": 2,
        "rejections": {"rate-limited": 1},
        "verbs": {
            "metrics": {
                "requests": 3,
                "outcomes": {"completed": 2, "failed": 0, "rejected": 1},
                "latency": {
                    "buckets": [{"le": 0.1, "count": 2}, {"le": "+Inf", "count": 2}],
                    "count": 2,
                    "sum_s": 0.08,
                    "p50_s": 0.05,
                    "p90_s": 0.1,
                    "p99_s": 0.1,
                },
            }
        },
        "cache": {"pipeline": {"hits": 4, "misses": 1, "hit_rate": 0.8}},
    }


@pytest.fixture
def results_dir(tmp_path):
    """A realistic results tree: runs, lint, perf, timeline, telemetry."""
    cache = {"pipeline": {"hits": 3, "misses": 1}}
    bd = {"issue": 50.0, "backend": 30.0, "queue": 15.0, "other": 5.0}
    write_jsonl(
        [
            _run("bfs", "serial", 1000.0, cache=cache),
            _run("bfs", "phloem-static", 400.0, speedup=2.5, breakdown=bd, cache=cache),
            _run("cc", "serial", 800.0, cache=cache),
            _run("cc", "phloem-static", 500.0, speedup=1.6, cache=cache),
        ],
        str(tmp_path / "runs.jsonl"),
    )
    (tmp_path / "lint.json").write_text(
        json.dumps(
            {
                "schema": "repro.diag/lint-report",
                "version": 1,
                "reports": [
                    {
                        "target": "bfs.c",
                        "errors": 0,
                        "warnings": 1,
                        "diagnostics": [{"code": "PHL010", "severity": "warning"}],
                    }
                ],
            }
        )
    )
    # The pre-envelope ``repro lint --json`` shape: a bare report list.
    # Archived results directories still aggregate.
    (tmp_path / "lint_legacy.json").write_text(
        json.dumps(
            [
                {
                    "file": "cc.c",
                    "errors": 0,
                    "warnings": 1,
                    "diagnostics": [{"code": "PHL402", "severity": "warning"}],
                }
            ]
        )
    )
    (tmp_path / "perf.json").write_text(json.dumps(_perf_baseline()))
    (tmp_path / "timeline.json").write_text(
        json.dumps(
            {
                "wall": 100.0,
                "utilization": {"s0": {"busy": 90.0, "utilization": 0.9, "stalls": {}}},
                "critical": [],
                "top_stalls": [
                    {"thread": "s0", "bucket": "queue", "cycles": 20.0, "start": 10.0}
                ],
            }
        )
    )
    (tmp_path / "telemetry.json").write_text(json.dumps(_telemetry_snapshot()))
    (tmp_path / "notes.json").write_text(json.dumps({"free": "form"}))
    return str(tmp_path)


class TestSpark:
    def test_empty_series(self):
        assert spark([]) == ""

    def test_flat_series_is_midline(self):
        assert spark([3.0, 3.0, 3.0]) == "▄▄▄"

    def test_monotone_series_spans_the_blocks(self):
        line = spark([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 8


class TestCollect:
    def test_classifies_every_source_by_schema(self, results_dir):
        report = collect(results_dir)
        kinds = {s["file"]: s["kind"] for s in report.sources}
        assert kinds["runs.jsonl"] == "runs"
        assert kinds["lint.json"] == "lint"
        assert kinds["lint_legacy.json"] == "lint"
        assert kinds["perf.json"] == "perf"
        assert kinds["timeline.json"] == "timeline"
        assert kinds["telemetry.json"] == "telemetry"
        assert kinds["notes.json"] == "skipped"

    def test_derived_views(self, results_dir):
        report = collect(results_dir)
        assert report.kernels() == ["bfs", "cc"]
        assert report.variants() == ["phloem-static", "serial"]
        table = report.speedup_table()
        assert table["bfs"]["phloem-static"]["speedup"] == 2.5
        assert table["cc"]["serial"]["cycles"] == 800.0
        stalls = report.stall_table()
        assert list(stalls) == ["bfs"]
        assert stalls["bfs"]["phloem-static"]["issue"] == 50.0

    def test_cache_summary_counts_each_stream_once(self, results_dir):
        # Four records share one stream's per-request delta; summing
        # per-record would quadruple it.
        cache = collect(results_dir).cache_summary()
        assert cache["pipeline"]["hits"] == 3
        assert cache["pipeline"]["misses"] == 1
        assert cache["pipeline"]["hit_rate"] == 0.75

    def test_lint_rollup(self, results_dir):
        rollup = collect(results_dir).lint_rollup()
        assert rollup == {
            "targets": 2,
            "errors": 0,
            "warnings": 2,
            "codes": {"PHL010": 1, "PHL402": 1},
        }

    def test_trajectory_from_history(self, results_dir):
        report = collect(results_dir)
        assert [e["git"] for e in report.trajectory] == ["abc1234", "def5678"]

    def test_pre_history_baseline_synthesizes_one_point(self, tmp_path):
        (tmp_path / "perf.json").write_text(
            json.dumps(_perf_baseline(with_history=False))
        )
        report = collect(str(tmp_path))
        assert [e["git"] for e in report.trajectory] == ["(baseline)"]
        assert report.trajectory[0]["benches"]["bfs"]["cycles"] == 5000

    def test_extra_files_pulled_in_once(self, results_dir, tmp_path):
        baseline = str(tmp_path / "perf.json")  # already inside the walk
        report = collect(results_dir, extra_files=(baseline, "/nope/missing.json"))
        assert sum(1 for s in report.sources if s["kind"] == "perf") == 1

    def test_summary_is_schema_stamped(self, results_dir):
        summary = collect(results_dir).summary()
        assert summary["schema"] == REPORT_SCHEMA
        assert summary["version"] == REPORT_VERSION
        assert summary["kernels"] == ["bfs", "cc"]
        assert summary["sections"]["runs"] == 4
        assert summary["sections"]["telemetry"] == 1
        json.dumps(summary)

    def test_unreadable_json_is_skipped_not_fatal(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        report = collect(str(tmp_path))
        assert report.sources == [{"file": "broken.json", "kind": "skipped", "items": 0}]

    def test_missing_directory_yields_empty_report(self):
        report = collect("/nope/not-here")
        assert report.runs == [] and report.sources == []


class TestMarkdown:
    def test_all_sections_present(self, results_dir):
        text = render_markdown(collect(results_dir))
        assert "## Per-kernel speedups" in text
        assert "## Cycle breakdown (Fig. 10 buckets)" in text
        assert "## Cache effectiveness" in text
        assert "## Lint status" in text
        assert "## Simulator performance (quick scale)" in text
        assert "## Perf trajectory (2 points)" in text
        assert "## Timeline" in text
        assert "## Service telemetry" in text

    def test_speedup_cells_and_kernels(self, results_dir):
        text = render_markdown(collect(results_dir))
        assert "| bfs |" in text and "| cc |" in text
        assert "(2.50x)" in text

    def test_stall_percentages_sum_to_hundred(self, results_dir):
        text = render_markdown(collect(results_dir))
        row = next(line for line in text.splitlines() if "50.0%" in line)
        assert "30.0%" in row and "15.0%" in row and "5.0%" in row

    def test_trajectory_has_sparkline(self, results_dir):
        text = render_markdown(collect(results_dir))
        assert "aggregate speedup (latest 2.00)" in text
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")

    def test_multi_engine_table_and_aggregate(self, tmp_path):
        (tmp_path / "perf.json").write_text(json.dumps(_multi_engine_perf()))
        text = render_markdown(collect(str(tmp_path)))
        # One wall column per engine, one speedup column per non-reference
        # engine, in canonical order.
        assert "| ref (s) | fast (s) | batch (s) | fast (x) | batch (x) |" in text
        assert "Aggregate: **4.00x** (ref 4.000s; fast 2.000s 2.00x; batch 1.000s 4.00x)." in text

    def test_trajectory_sparks_grouped_per_engine(self, tmp_path):
        (tmp_path / "perf.json").write_text(json.dumps(_multi_engine_perf()))
        text = render_markdown(collect(str(tmp_path)))
        # Interleaved fastpath/batch history points split into one labeled
        # series per engine instead of one zig-zagging line.
        assert "aggregate speedup [fastpath] (latest 2.00)" in text
        assert "aggregate speedup [batch] (latest 4.00)" in text
        assert "| git | engine | scale |" in text
        assert "| bbb2222 | batch | quick |" in text

    def test_single_point_trajectory_omitted(self, tmp_path):
        (tmp_path / "perf.json").write_text(
            json.dumps(_perf_baseline(with_history=False))
        )
        text = render_markdown(collect(str(tmp_path)))
        assert "Perf trajectory" not in text

    def test_empty_report_renders(self):
        text = render_markdown(ExperimentReport())
        assert text.startswith("# experiment report")


class _PageCheck(HTMLParser):
    def __init__(self):
        super().__init__()
        self.tags = []
        self.text = []

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)

    def handle_data(self, data):
        self.text.append(data)


class TestHtml:
    def test_page_parses_and_references_every_kernel(self, results_dir):
        report = collect(results_dir)
        page = render_html(report)
        checker = _PageCheck()
        checker.feed(page)
        assert "html" in checker.tags and "table" in checker.tags
        body = "".join(checker.text)
        for kernel in report.kernels():
            assert kernel in body
        assert "Service telemetry" in body

    def test_content_is_escaped(self):
        report = ExperimentReport(title="<script>alert(1)</script>")
        page = render_html(report)
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_single_file_page(self, results_dir):
        page = render_html(collect(results_dir))
        assert "<style>" in page  # styling is inline, no external assets
        assert "src=" not in page and "href=" not in page
