"""Wire protocol of the compile-and-simulate daemon (NDJSON over a socket).

One connection carries one job: the client sends a single line — a
:mod:`repro.api` request envelope or a control envelope — and reads lines
back until the terminal ``response`` message:

* client -> server: ``Request.to_wire()`` plus a ``client`` identity key
  (the rate-limit/quota subject), or
  ``{"schema": "repro.service/control", "version": 1, "action": ...}``
  for ``ping``/``stats``/``shutdown``;
* server -> client: zero or more ``{"kind": "record", "payload": ...}``
  lines — the RunRecord/diagnostic JSONL stream — then exactly one
  ``{"kind": "response", "payload": Response.to_wire(), "streamed": n}``
  (records already streamed are not repeated inside the final payload),
  or one ``{"kind": "control-reply", "payload": ...}`` for controls.

Every line is one ``sort_keys`` JSON object; the framing is newline
delimited so any language (or ``nc`` + ``jq``) can speak it.
"""

import json
import os

from ..api.requests import ApiError

#: Schema identity of daemon control messages (ping/stats/shutdown).
CONTROL_SCHEMA = "repro.service/control"
CONTROL_VERSION = 1

#: Actions a control envelope may request. ``telemetry`` answers with
#: Prometheus text exposition; the rest reply in JSON.
CONTROL_ACTIONS = ("ping", "stats", "telemetry", "shutdown")

#: Maximum accepted line length (a kernel source is kilobytes; 32 MiB is
#: generous and bounds a misbehaving peer).
MAX_LINE = 32 * 1024 * 1024


def default_socket_path(create_dir=False):
    """The rendezvous unix socket when none is given explicitly.

    ``REPRO_SOCKET`` overrides; otherwise ``serve.sock`` next to the
    on-disk cache (``REPRO_CACHE_DIR`` or the user cache directory), so a
    bare ``repro serve`` and a bare ``repro submit`` find each other.
    """
    path = os.environ.get("REPRO_SOCKET")
    if path:
        return path
    base = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "phloem-repro"
    )
    if create_dir:
        os.makedirs(base, exist_ok=True)
    return os.path.join(base, "serve.sock")


def encode(obj):
    """One wire line: sorted-keys JSON plus the newline terminator."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def decode(line):
    """Parse one wire line back into a dict (:class:`ApiError` on junk)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ApiError("empty protocol line")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ApiError("undecodable protocol line: %s" % exc) from exc
    if not isinstance(obj, dict):
        raise ApiError("protocol line must be a JSON object, got %r" % type(obj).__name__)
    return obj


def request_envelope(request, client="anon"):
    """The client->server line for one API request."""
    wire = request.to_wire()
    wire["client"] = client
    return wire


def control_envelope(action, client="anon"):
    """The client->server line for one control action."""
    if action not in CONTROL_ACTIONS:
        raise ApiError(
            "unknown control action %r (choose from %s)" % (action, ", ".join(CONTROL_ACTIONS))
        )
    return {
        "schema": CONTROL_SCHEMA,
        "version": CONTROL_VERSION,
        "action": action,
        "client": client,
    }


def is_control(wire):
    """True when a decoded envelope is a daemon control message."""
    return wire.get("schema") == CONTROL_SCHEMA


def record_message(payload):
    """One streamed structured record (RunRecord, diagnostic, ...)."""
    return {"kind": "record", "payload": payload}


def response_message(response_wire, streamed=0):
    """The terminal message of a job; already-streamed records stripped."""
    payload = dict(response_wire)
    inner = dict(payload.get("payload") or {})
    inner["records"] = []
    payload["payload"] = inner
    return {"kind": "response", "payload": payload, "streamed": streamed}


def control_reply(payload):
    """The terminal message of a control action."""
    return {"kind": "control-reply", "payload": payload}
