"""Replicated pipelines across cores (paper Sec. IV-C and Fig. 14).

Runs BFS four ways on a 4-core x 4-thread machine: single-thread serial,
16-thread data-parallel, four distributed pipeline replicas (the
`#pragma replicate` + `distribute` structure), and the same replicas
*without* the distribute step — demonstrating why data-centric
distribution matters: undirected replication strands all discovered work
on one replica.

Run:  python examples/replicated_multicore.py
"""

from repro.pipette import SCALED_4CORE
from repro.runtime import run_pipeline, run_replicated, run_serial
from repro.workloads import bfs, replicated
from repro.workloads.graphs import uniform_random


def main():
    graph = uniform_random(16000, 5, seed=7)
    print("input: %r, machine: 4 cores x 4 SMT threads\n" % graph)
    function = bfs.function()
    arrays, scalars = bfs.make_env(graph)
    expected = bfs.reference(graph)

    serial = run_serial(function, arrays, scalars, config=SCALED_4CORE)
    print("%-28s %12.0f cycles   1.00x" % ("serial (1 thread)", serial.cycles))

    threads = 16
    dp = bfs.data_parallel(threads)
    dp_arrays, dp_scalars = bfs.make_env_dp(graph, threads)
    dresult = run_pipeline(
        dp, dp_arrays, dp_scalars, config=SCALED_4CORE, stage_cores=[i // 4 for i in range(threads)]
    )
    assert dresult.arrays["distances"] == expected
    print("%-28s %12.0f cycles   %.2fx" % ("data-parallel (16 threads)", dresult.cycles, serial.cycles / dresult.cycles))

    for label, builder in (
        ("replicated + distribute", replicated.bfs_replicated),
        ("replicated, NO distribute", replicated.bfs_replicated_nodist),
    ):
        replicas = 4
        pipelines = [builder(rid, replicas) for rid in range(replicas)]
        envs = replicated.make_envs("bfs", graph, replicas)
        result = run_replicated(
            [(pipelines[r], envs[r][0], envs[r][1], r) for r in range(replicas)],
            SCALED_4CORE,
        )
        assert result.arrays["distances"] == expected
        print("%-28s %12.0f cycles   %.2fx" % (label, result.cycles, serial.cycles / result.cycles))


if __name__ == "__main__":
    main()
