"""Scheduler, barrier, and issue-ledger behaviour."""

import pytest

from repro.errors import DeadlockError
from repro.pipette.queues import HWQueue
from repro.pipette.sched import BLOCKED, BarrierSync, IssueLedger, Scheduler, SharedCells, Task


def _simple_task(name, log, daemon=False):
    task = Task(name, daemon=daemon)
    task.clock_ref = lambda: 0.0

    def gen():
        log.append(name)
        if False:
            yield

    return task, gen()


def test_runs_all_tasks():
    log = []
    sched = Scheduler()
    for name in ("a", "b", "c"):
        task, gen = _simple_task(name, log)
        sched.add(task, gen)
    sched.run()
    assert sorted(log) == ["a", "b", "c"]


def test_producer_consumer_unblocks():
    q = HWQueue(0, 2, 0)
    got = []
    sched = Scheduler()

    consumer = Task("consumer")
    consumer.clock_ref = lambda: 0.0

    def consume():
        while True:
            res = q.try_deq(0.0)
            if res is not None:
                got.append(res[0])
                return
            consumer.block(("deq", 0))
            q.waiting_consumers.append(consumer)
            yield BLOCKED

    producer = Task("producer")
    producer.clock_ref = lambda: 5.0

    def produce():
        q.try_enq(0.0, 42)
        if False:
            yield

    sched.add(consumer, consume())
    sched.add(producer, produce())
    sched.run()
    assert got == [42]


def test_deadlock_detected():
    q = HWQueue(0, 2, 0)
    sched = Scheduler()
    task = Task("stuck")
    task.clock_ref = lambda: 0.0

    def wait_forever():
        while True:
            task.block(("deq", 0))
            q.waiting_consumers.append(task)
            yield BLOCKED

    sched.add(task, wait_forever())
    with pytest.raises(DeadlockError, match="stuck"):
        sched.run()


def test_daemons_do_not_keep_simulation_alive():
    log = []
    sched = Scheduler()
    daemon = Task("ra", daemon=True)
    daemon.clock_ref = lambda: 0.0

    def spin():
        while True:
            daemon.block(("ra-deq", 0))
            yield BLOCKED

    task, gen = _simple_task("main", log)
    sched.add(daemon, spin())
    sched.add(task, gen)
    sched.run()
    assert log == ["main"]


class TestBarrier:
    def test_last_arrival_releases(self):
        t1, t2 = Task("a"), Task("b")
        t1.clock_ref = t2.clock_ref = lambda: 0.0
        barrier = BarrierSync(2, cost=10.0)
        assert barrier.arrive(t1, 100.0) is None
        release = barrier.arrive(t2, 50.0)
        assert release == 110.0  # max arrival + cost
        assert barrier.last_release == 110.0
        assert t1.runnable  # woken

    def test_generation_reuse(self):
        t1, t2 = Task("a"), Task("b")
        t1.clock_ref = t2.clock_ref = lambda: 0.0
        barrier = BarrierSync(2, cost=0.0)
        barrier.arrive(t1, 1.0)
        barrier.arrive(t2, 2.0)
        assert barrier.generation == 1
        barrier.arrive(t1, 5.0)
        assert barrier.arrive(t2, 7.0) == 7.0

    def test_drop_participant_releases_waiters(self):
        t1, t2 = Task("a"), Task("b")
        t1.clock_ref = t2.clock_ref = lambda: 0.0
        barrier = BarrierSync(2, cost=0.0)
        barrier.arrive(t1, 3.0)
        t1.block("barrier")
        barrier.drop_participant()  # t2 finished without arriving
        assert t1.runnable
        assert barrier.last_release == 3.0


class TestIssueLedger:
    def test_capacity_per_cycle(self):
        ledger = IssueLedger(2)
        slots = [ledger.acquire(0.0) for _ in range(5)]
        assert slots == [0.0, 0.0, 1.0, 1.0, 2.0]

    def test_fractional_time_rounds_up(self):
        ledger = IssueLedger(1)
        assert ledger.acquire(2.5) == 3.0

    def test_out_of_order_acquisition(self):
        ledger = IssueLedger(1)
        assert ledger.acquire(10.0) == 10.0
        assert ledger.acquire(0.0) == 0.0  # earlier cycles stay available

    def test_prune_keeps_semantics(self):
        ledger = IssueLedger(1)
        for t in range(5000):
            ledger.acquire(float(t))
        ledger.prune(5000.0)
        assert ledger.acquire(5000.0) == 5000.0


class TestClockNormalization:
    """Heap keys must never mix int and float clocks.

    Reference accelerators keep an *integer* front clock while stage
    cursors are floats; ``Task.time`` normalizes both to float so heap
    tuples always compare like-typed keys, and the FIFO counter (not task
    identity) breaks exact ties.
    """

    def test_time_is_float_for_int_clock(self):
        task = Task("ra")
        task.clock_ref = lambda: 5  # RA-style integer cycle counter
        assert type(task.time) is float and task.time == 5.0

    def test_time_is_float_before_clock_ref_is_set(self):
        assert type(Task("unbound").time) is float

    def test_heap_order_with_mixed_clock_types_and_ties(self):
        log = []
        sched = Scheduler()
        clocks = {"int-clock": 7, "float-clock": 7.0, "late": 9.5}
        for name, now in clocks.items():
            task = Task(name)
            task.clock_ref = (lambda t: lambda: t)(now)

            def gen(name=name):
                log.append(name)
                if False:
                    yield

            sched.add(task, gen())
        sched.run()
        # equal-time tasks run in push (FIFO) order regardless of clock type
        assert log == ["int-clock", "float-clock", "late"]


def test_shared_cells():
    cells = SharedCells()
    assert cells.read("x") == 0
    cells.write("x", 41)
    assert cells.read("x") == 41
