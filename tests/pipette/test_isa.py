"""Table I parity: the Pipette ISA surface exists and behaves."""

from repro import ir
from repro.pipette import isa
from repro.pipette.queues import HWQueue


def test_table1_surface_is_complete():
    expected = {
        "enq",
        "deq",
        "peek",
        "setup_reference_accelerator",
        "enq_ctrl",
        "is_control",
        "setup_control_value_handler",
    }
    assert set(isa.ISA_SURFACE) == expected


def test_modes():
    assert isa.INDIRECT == ir.RA_INDIRECT
    assert isa.SCAN == ir.RA_SCAN


def test_enq_deq_roundtrip():
    q = HWQueue(0, 4, 0)
    isa.enq(q, 37)
    value, _ = isa.deq(q)
    assert value == 37


def test_peek_nondestructive():
    q = HWQueue(0, 4, 0)
    isa.enq(q, 5)
    assert isa.peek(q)[0] == 5
    assert isa.deq(q)[0] == 5


def test_control_values_in_band():
    q = HWQueue(0, 4, 0)
    isa.enq(q, 1)
    isa.enq_ctrl(q, "NEXT")
    data, _ = isa.deq(q)
    ctrl, _ = isa.deq(q)
    assert not isa.is_control(data)
    assert isa.is_control(ctrl)
    assert ctrl == ir.Ctrl("NEXT")


def test_blocking_indicated_by_none():
    q = HWQueue(0, 1, 0)
    assert isa.deq(q) is None  # empty
    isa.enq(q, 1)
    assert isa.enq(q, 2) is None  # full
