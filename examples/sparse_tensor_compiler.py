"""Domain-specific pipeline generation (paper Sec. IV-D).

Drives the mini-Taco tensor compiler: a one-line tensor expression becomes
CSR C code, which Phloem then pipelines — no human ever writes the loop
nest. Shown for SpMV and the four-operand MTMul.

Run:  python examples/sparse_tensor_compiler.py
"""

from repro.core import ALL_PASSES, compile_c, pipeline_summary
from repro.frontend import compile_source
from repro.pipette import SCALED_1CORE
from repro.runtime import run_pipeline, run_serial
from repro.taco import ALPHA, BETA, dense_input, mtmul_kernel, ref_mtmul, ref_spmv, spmv_kernel
from repro.workloads.matrices import random_matrix


def demo(title, kernel, data, expected, output):
    print("=" * 60)
    print(title)
    print("=" * 60)
    print(kernel.source)
    arrays, scalars = kernel.bind(data)
    function = compile_source(kernel.source)
    serial = run_serial(function, arrays, scalars, config=SCALED_1CORE)
    pipeline = compile_c(kernel.source, num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
    assert serial.arrays[output] == expected
    assert result.arrays[output] == expected
    print("pipeline: %s" % pipeline_summary(pipeline))
    print("speedup over Taco-emitted serial: %.2fx\n" % (serial.cycles / result.cycles))


def main():
    matrix = random_matrix(2500, 7, seed=11)
    x = dense_input(matrix.ncols, 1)

    demo(
        "SpMV:  y(i) = A(i,j) * x(j)",
        spmv_kernel(),
        {"A": matrix, "x": x},
        ref_spmv(matrix, x),
        "y",
    )

    xr = dense_input(matrix.nrows, 4)
    z = dense_input(matrix.ncols, 3)
    demo(
        "MTMul: y(j) = alpha * A(i,j) * x(i) + beta * z(j)",
        mtmul_kernel(),
        {"A": matrix, "x": xr, "z": z, "alpha": ALPHA, "beta": BETA},
        ref_mtmul(matrix, xr, z),
        "y",
    )


if __name__ == "__main__":
    main()
