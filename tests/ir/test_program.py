"""Program container behaviour: clones, lookups, metadata."""

from repro import ir


def _small_pipeline():
    s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
    s1 = ir.StageProgram(1, "c", [ir.Loop([ir.Deq("x", 0)])], handlers={0: [ir.Break(1)]})
    return ir.PipelineProgram(
        "demo",
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("stage", 1), capacity=8, label="xs")],
        [],
        {"a": ir.ArrayDecl("a", elem_size=4, readonly=True)},
        ["n"],
        shared_vars={"total"},
        meta={"k": 1},
    )


def test_pipeline_clone_is_independent():
    original = _small_pipeline()
    clone = original.clone()
    clone.stages[0].body.append(ir.Barrier())
    clone.queues[0].capacity = 99
    clone.meta["k"] = 2
    clone.shared_vars.add("extra")
    assert len(original.stages[0].body) == 1
    assert original.queues[0].capacity == 8
    assert original.meta["k"] == 1
    assert original.shared_vars == {"total"}


def test_stage_clone_copies_handlers():
    original = _small_pipeline()
    stage = original.stages[1]
    clone = stage.clone()
    clone.handlers[0].append(ir.Continue())
    assert len(stage.handlers[0]) == 1


def test_queue_ids_sorted():
    pipe = _small_pipeline()
    pipe.queues[5] = ir.QueueSpec(5, ("stage", 0), ("stage", 1))
    pipe.queues[2] = ir.QueueSpec(2, ("stage", 0), ("stage", 1))
    assert pipe.queue_ids() == [0, 2, 5]


def test_array_decl_symbol_and_repr():
    decl = ir.ArrayDecl("edges", elem_size=4, readonly=True)
    assert decl.symbol == "@edges"
    assert "const" in repr(decl)


def test_function_array_for():
    f = ir.Function("k", ["n"], {"a": ir.ArrayDecl("a")}, [])
    assert f.array_for("@a").name == "a"
    assert f.array_for("reg") is None
    assert f.array_for("@missing") is None


def test_function_clone_deep():
    f = ir.Function("k", ["n"], {"a": ir.ArrayDecl("a")}, [ir.Assign("x", "mov", [0])])
    g = f.clone()
    g.body.append(ir.Barrier())
    g.scalar_params.append("m")
    assert len(f.body) == 1
    assert f.scalar_params == ["n"]


def test_intrinsic_defaults():
    intr = ir.Intrinsic("work", lambda x: x, cost=10)
    assert intr.cost == 10 and intr.fn(3) == 3


def test_reprs():
    pipe = _small_pipeline()
    assert "demo" in repr(pipe)
    assert "xs" in repr(pipe.queues[0])
    assert "Stage(1:c)" == repr(pipe.stages[1])
