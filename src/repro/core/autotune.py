"""Profile-guided pipeline search (paper Sec. V, "Autotuning decoupling
points", and Fig. 8's shaded flow).

The static cost model is necessarily approximate: cache behaviour and loop
lengths are input-dependent. The profile-guided mode takes more candidate
decoupling points than stages, builds *every* pipeline from combinations of
the top-ranked points, profiles each on small training inputs, and keeps
the best. This module is generic over how a pipeline is scored: the caller
supplies ``evaluate(pipeline) -> gmean speedup`` (the bench harness closes
over the training inputs, mirroring the paper's internet/USA-road-d-NY and
email-Enron/wiki-Vote training sets).
"""

import itertools
import math

from ..analysis.costmodel import rank_decouple_points
from ..errors import CompileError, PhloemError
from .compiler import ALL_PASSES, CompileOptions, compile_function
from .phases import prepare_phases


class CandidateResult:
    """One profiled pipeline from the search."""

    __slots__ = ("indices", "pipeline", "num_units", "speedup")

    def __init__(self, indices, pipeline, speedup):
        self.indices = indices
        self.pipeline = pipeline
        self.num_units = pipeline.num_units
        self.speedup = speedup

    def __repr__(self):
        return "Candidate(points=%s, units=%d, speedup=%.2f)" % (
            list(self.indices),
            self.num_units,
            self.speedup,
        )


class SearchPoint:
    """A pipeline-free candidate summary: point indices, unit count, score.

    What the search cache stores and what the harness ships across worker
    boundaries — everything Fig. 13 plots, without pickling a pipeline.
    ``pipeline`` is attached only on the winning candidate (recompiled
    through the pipeline cache when the scores came from a warm hit).
    """

    __slots__ = ("indices", "num_units", "speedup", "pipeline")

    def __init__(self, indices, num_units, speedup, pipeline=None):
        self.indices = tuple(indices)
        self.num_units = num_units
        self.speedup = speedup
        self.pipeline = pipeline

    def __repr__(self):
        return "Candidate(points=%s, units=%d, speedup=%.2f)" % (
            list(self.indices),
            self.num_units,
            self.speedup,
        )


def candidate_count(function, top_k=7):
    """How many ranked points the search can draw from."""
    work = function.clone()
    prepare_phases(work)
    return min(top_k, len(rank_decouple_points(work)))


def _prune_keep_count(n, prune_static):
    """How many compiled candidates survive static pruning.

    ``prune_static`` is ``True`` (keep the top quarter, at least 2), an
    ``int`` (keep exactly that many), or a ``float`` fraction in (0, 1].
    """
    if prune_static is True:
        keep = max(2, -(-n // 4))
    elif isinstance(prune_static, float):
        keep = math.ceil(n * prune_static)
    else:
        keep = int(prune_static)
    return max(1, min(n, keep))


def search_pipelines(
    function,
    evaluate,
    max_stages=4,
    top_k=7,
    passes=ALL_PASSES,
    limit=80,
    keep_failures=False,
    recorder=None,
    prune_static=None,
):
    """Enumerate, compile, and profile candidate pipelines.

    Returns ``(best, results)`` where ``best`` is the highest-speedup
    :class:`CandidateResult` (None if nothing compiled) and ``results``
    holds every profiled candidate — the distribution Fig. 13 plots.
    Combinations the compiler rejects (alias races, backward control) are
    skipped, exactly as untransformable candidates should be.

    ``prune_static`` enables the static pre-filter: every candidate still
    compiles, but only the ones the analytic performance model
    (:func:`repro.analysis.perfmodel.static_score`) ranks highest are
    simulated; the rest are dropped before ``evaluate`` ever runs. Pass
    ``True`` (keep the top quarter, at least 2), an ``int`` (keep that
    many), or a ``float`` fraction. Pruning only skips simulations — the
    compile set, the scoring of survivors, and the final ``max`` by
    measured speedup are unchanged.

    ``recorder`` (a :class:`repro.obs.SearchRecorder`) logs every candidate
    — scored, compile-rejected, evaluation-failed, or statically pruned —
    and the selection verdict; it observes the search without altering it.
    """
    k = candidate_count(function, top_k)
    combos = []
    for size in range(1, max_stages):
        combos.extend(itertools.combinations(range(k), size))
    if limit is not None:
        combos = combos[:limit]

    results = []
    failures = []

    compiled = []
    for indices in combos:
        try:
            pipeline = compile_function(
                function,
                options=CompileOptions(
                    num_stages=len(indices) + 1, passes=passes, point_indices=indices
                ),
            )
        except PhloemError as exc:
            failures.append((indices, str(exc)))
            if recorder is not None:
                recorder.failed(indices, "compile", exc)
            continue
        compiled.append((indices, pipeline))

    survivors = {indices: None for indices, _ in compiled}
    if prune_static and compiled:
        from ..analysis.perfmodel import analyze_pipeline

        reports = {indices: analyze_pipeline(pipeline) for indices, pipeline in compiled}
        scores = {indices: rep.static_score() for indices, rep in reports.items()}

        def rank_key(item):
            indices, pipeline = item
            rep = reports[indices]
            # Primary: predicted throughput. Ties (identical bottleneck
            # work) break toward less total work, then fewer units — both
            # proxies for decoupling overhead the bottleneck model cannot
            # see — and finally deterministic combo order.
            return (
                -rep.static_score(),
                sum(s.work for s in rep.stages),
                pipeline.num_units,
                indices,
            )

        keep = _prune_keep_count(len(compiled), prune_static)
        ranked = sorted(compiled, key=rank_key)
        survivors = {indices: scores[indices] for indices, _ in ranked[:keep]}
        cutoff = min(survivors.values())
        for indices, pipeline in compiled:
            if indices in survivors:
                continue
            if recorder is not None:
                recorder.pruned(
                    indices,
                    pipeline.num_units,
                    scores[indices],
                    "static score %.3g below cutoff %.3g (top %d kept)"
                    % (scores[indices], cutoff, keep),
                )

    for indices, pipeline in compiled:
        if indices not in survivors:
            continue
        try:
            speedup = evaluate(pipeline)
        except PhloemError as exc:
            failures.append((indices, str(exc)))
            if recorder is not None:
                recorder.failed(indices, "evaluate", exc)
            continue
        results.append(CandidateResult(indices, pipeline, speedup))
        if recorder is not None:
            recorder.scored(indices, pipeline.num_units, speedup)

    best = max(results, key=lambda r: r.speedup) if results else None
    if recorder is not None:
        recorder.decide(None if best is None else best.indices)
    if keep_failures:
        return best, results, failures
    return best, results


def gmean(values):
    """Geometric mean (the paper's aggregate everywhere)."""
    values = list(values)
    if not values:
        raise CompileError("gmean of no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_distribution(results):
    """Group results by unit count (stages + RAs): Fig. 13's x-axis."""
    by_units = {}
    for result in results:
        by_units.setdefault(result.num_units, []).append(result.speedup)
    return {units: sorted(speeds) for units, speeds in sorted(by_units.items())}
