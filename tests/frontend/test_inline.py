"""Function inlining: the Sec. IV-A future work, implemented."""

import pytest

from repro import ir
from repro.errors import LoweringError
from repro.frontend import compile_source
from repro.runtime import run_serial


UNIT = """
int relax(const int* restrict w, int v, int bound) {
  int x = w[v];
  if (x > bound) {
    x = bound;
  }
  return x;
}

void driver(const int* restrict w, int* restrict out, int n, int bound) {
  for (int i = 0; i < n; i++) {
    out[i] = relax(w, i, bound);
  }
}
"""


def test_call_inlined_no_intrinsic():
    f = compile_source(UNIT, name="driver")
    kinds = [s.kind for s in ir.walk(f.body)]
    assert "call" not in kinds  # relax() was spliced in
    assert kinds.count("load") == 1  # the w[v] load now belongs to driver


def test_inlined_semantics(tiny_config):
    f = compile_source(UNIT, name="driver")
    w = [5, 12, 7, 30]
    result = run_serial(f, {"w": w, "out": [0] * 4}, {"n": 4, "bound": 10}, config=tiny_config)
    assert result.arrays["out"] == [5, 10, 7, 10]


def test_inline_disabled_keeps_intrinsic():
    f = compile_source(UNIT, name="driver", inline=False)
    kinds = [s.kind for s in ir.walk(f.body)]
    assert "call" in kinds


def test_inlined_loads_become_decoupling_points():
    """The whole point: callee memory accesses participate in decoupling."""
    from repro.analysis import rank_decouple_points

    f = compile_source(UNIT, name="driver")
    assert any(p.cls == "@w" for p in rank_decouple_points(f))


def test_void_helper_inlined(tiny_config):
    src = """
    void bump(int* restrict a, int i) {
      a[i] = a[i] + 1;
    }
    void driver(int* restrict a, int n) {
      for (int i = 0; i < n; i++) {
        bump(a, i);
      }
    }
    """
    f = compile_source(src, name="driver")
    result = run_serial(f, {"a": [0, 0, 0]}, {"n": 3}, config=tiny_config)
    assert result.arrays["a"] == [1, 1, 1]


def test_nested_inlining(tiny_config):
    src = """
    int double_it(int x) { return x + x; }
    int quad(int x) { return double_it(double_it(x)); }
    void driver(int* restrict out, int n) {
      out[0] = quad(n);
    }
    """
    f = compile_source(src, name="driver")
    result = run_serial(f, {"out": [0]}, {"n": 3}, config=tiny_config)
    assert result.arrays["out"] == [12]


def test_recursion_rejected():
    src = """
    int f(int x) { return f(x); }
    void driver(int* restrict out) { out[0] = f(1); }
    """
    with pytest.raises(LoweringError, match="recursive"):
        compile_source(src, name="driver")


def test_unknown_calls_stay_intrinsic():
    src = """
    void helper(int* restrict a) { a[0] = extern_thing(); }
    void driver(int* restrict a) { helper(a); }
    """
    f = compile_source(src, name="driver")
    calls = [s for s in ir.walk(f.body) if s.kind == "call"]
    assert [c.func for c in calls] == ["extern_thing"]


def test_name_collisions_avoided(tiny_config):
    src = """
    int pick(int x) { int t = x + 1; return t; }
    void driver(int* restrict out, int n) {
      int t = 100;
      out[0] = pick(n) + t;
    }
    """
    f = compile_source(src, name="driver")
    result = run_serial(f, {"out": [0]}, {"n": 5}, config=tiny_config)
    assert result.arrays["out"] == [106]


def test_arg_count_mismatch():
    src = """
    int f(int a, int b) { return a; }
    void driver(int* restrict out) { out[0] = f(1); }
    """
    with pytest.raises(LoweringError, match="parameters"):
        compile_source(src, name="driver")


def test_inlined_kernel_pipelines(tiny_config):
    """End to end: an inlined two-level indirection decouples and runs."""
    from repro.core import ALL_PASSES, compile_function
    from repro.runtime import run_pipeline

    src = """
    int lookup(const int* restrict table, int key) {
      return table[key];
    }
    void driver(const int* restrict a, const int* restrict table,
                int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        out[i] = lookup(table, a[i]);
      }
    }
    """
    f = compile_source(src, name="driver")
    pipe = compile_function(f, num_stages=3, passes=ALL_PASSES)
    assert len(pipe.stages) + len(pipe.ras) >= 3
    a = [2, 0, 1, 2]
    table = [10, 11, 12]
    result = run_pipeline(
        pipe, {"a": a, "table": table, "out": [0] * 4}, {"n": 4}, config=tiny_config
    )
    assert result.arrays["out"] == [12, 10, 11, 12]
