"""Reference accelerator (RA) engines (Pipette Sec. III, "Offloading
memory accesses").

An RA is a runtime-configured FSM that interposes on the queue interface:
it dequeues values from its input queue, launches the configured memory
accesses (INDIRECT: value is an index; SCAN: value pairs are start/end of a
linear sweep), and delivers loaded elements *in order* to its output queue.
It can keep several loads in flight (``ra_mshrs``), which is where the
memory-level parallelism of a decoupled pipeline comes from.

Chaining (the paper's extension for e.g. BFS's nodes->edges indirection
sequence) needs no special support here: a chained RA is simply an RA whose
input queue is another RA's output queue.

RAs run as daemon tasks: they loop forever and the simulation ends when all
stage threads are done. Control values are forwarded downstream unchanged
so end-of-stream markers survive offloading.
"""

from collections import deque

from ..errors import SimulationError
from ..ir.program import RA_INDIRECT, RA_SCAN
from ..ir.values import is_control
from .sched import BLOCKED


class RAEngine:
    """One reference accelerator instance bound to a simulation run."""

    def __init__(self, spec, env, task):
        self.spec = spec
        self.env = env
        self.task = task
        self.clock = 0.0
        self.inflight = deque()  # completion times of outstanding loads
        self.last_delivery = 0.0
        self.tracer = env.machine.tracer

    # -- blocking queue helpers (RA-side) ----------------------------------

    def _deq(self, queue):
        while True:
            res = queue.try_deq(self.clock)
            if res is not None:
                value, t = res
                if t > self.clock:
                    self.clock = t
                return value
            self.task.block(("ra-deq", queue.qid))
            queue.waiting_consumers.append(self.task)
            yield BLOCKED

    def _enq(self, queue, value):
        while True:
            t = queue.try_enq(self.clock, value)
            if t is not None:
                if t > self.clock:
                    self.clock = t
                return
            self.task.block(("ra-enq", queue.qid))
            queue.waiting_producers.append(self.task)
            yield BLOCKED

    # -- the load pipeline --------------------------------------------------

    def _load_and_deliver(self, binding, index, out_queue):
        """Issue one load and enqueue its value, preserving delivery order.

        ``self.clock`` is the engine's *front* clock: it advances with input
        consumption and load issue, throttled only by the MSHR bound, so up
        to ``ra_mshrs`` loads overlap — the memory-level parallelism an RA
        exists to provide. Deliveries carry their own (in-order) timestamps;
        a full output queue backpressures the front.
        """
        if len(self.inflight) >= self.env.machine.config.ra_mshrs:
            oldest = self.inflight.popleft()
            if oldest > self.clock:
                self.clock = oldest
        start = self.clock
        addr = binding.base + index * binding.elem_size
        latency = self.env.machine.mem.access(self.env.core, addr, start, stream_id=binding.name)
        completion = start + latency
        if self.tracer is not None:
            self.tracer.ra_load(self.task.name, start, completion)
        self.inflight.append(completion)
        self.clock += 1  # one engine slot per accepted request
        try:
            value = binding.data[index]
        except IndexError:
            raise SimulationError(
                "RA %d: load %s[%d] out of bounds (len %d)"
                % (self.spec.raid, self.spec.array, index, len(binding.data))
            )
        delivery = max(completion, self.last_delivery)
        self.env.stats.ra_loads += 1
        while True:
            t = out_queue.try_enq(delivery, value)
            if t is not None:
                self.last_delivery = max(delivery, t)
                if t > delivery and t - latency > self.clock:
                    # Output backpressure: stall the front correspondingly.
                    self.clock = t - latency
                return
            self.task.block(("ra-enq", out_queue.qid))
            out_queue.waiting_producers.append(self.task)
            yield BLOCKED

    def run(self):
        """Main RA loop (a daemon task generator)."""
        env = self.env
        spec = self.spec
        in_queue = env.queues[spec.in_queue]
        out_queue = env.queues[spec.out_queue]
        binding = env.arrays.get(spec.array[1:] if spec.array.startswith("@") else spec.array)
        if binding is None:
            raise SimulationError("RA %d bound to unknown array %s" % (spec.raid, spec.array))

        if spec.mode == RA_INDIRECT:
            while True:
                value = yield from self._deq(in_queue)
                if is_control(value):
                    if spec.forward_ctrl:
                        yield from self._enq(out_queue, value)
                    continue
                yield from self._load_and_deliver(binding, value, out_queue)
        elif spec.mode == RA_SCAN:
            while True:
                start = yield from self._deq(in_queue)
                if is_control(start):
                    if spec.forward_ctrl:
                        yield from self._enq(out_queue, start)
                    continue
                end = yield from self._deq(in_queue)
                if is_control(end):
                    raise SimulationError(
                        "RA %d (scan): control value arrived mid-pair" % spec.raid
                    )
                for index in range(start, end):
                    yield from self._load_and_deliver(binding, index, out_queue)
        else:
            raise SimulationError("RA %d: unknown mode %r" % (spec.raid, spec.mode))
