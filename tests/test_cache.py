"""Memo layers: hits, misses, invalidation, disk persistence."""

import pytest

from repro import CompileOptions, cache
from repro.ir import fingerprint
from repro.pipette.config import SCALED_1CORE
from repro.workloads import bfs
from repro.workloads.graphs import uniform_random


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk layer at a fresh directory; start from zero."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    cache.reset()
    yield
    cache.reset()


def test_compile_cache_hit():
    fn = bfs.function()
    options = CompileOptions(num_stages=3)
    first = cache.cached_compile(fn, options)
    second = cache.cached_compile(fn, options)
    assert cache.stats()["pipeline"] == {"hits": 1, "misses": 1}
    assert fingerprint(first) == fingerprint(second)
    assert first is not second  # callers get independent clones
    assert second.intrinsics.keys() == fn.intrinsics.keys()


def test_compile_cache_invalidated_by_option_change():
    fn = bfs.function()
    cache.cached_compile(fn, CompileOptions(num_stages=3))
    cache.cached_compile(fn, CompileOptions(num_stages=3, queue_capacity=8))
    cache.cached_compile(fn, CompileOptions(num_stages=4))
    assert cache.stats()["pipeline"] == {"hits": 0, "misses": 3}


def test_compile_cache_survives_memory_reset():
    fn = bfs.function()
    options = CompileOptions(num_stages=3)
    warm = cache.cached_compile(fn, options)
    cache.reset()  # drop the in-process dicts; the pickle dir remains
    from_disk = cache.cached_compile(fn, options)
    assert cache.stats()["pipeline"] == {"hits": 1, "misses": 0}
    assert fingerprint(from_disk) == fingerprint(warm)


def test_no_cache_env_disables_disk(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert cache.cache_dir() is None
    fn = bfs.function()
    options = CompileOptions(num_stages=3)
    cache.cached_compile(fn, options)
    cache.reset()
    cache.cached_compile(fn, options)
    assert cache.stats()["pipeline"] == {"hits": 0, "misses": 1}


def test_serial_baseline_cache(tiny_config):
    fn = bfs.function()
    graph = uniform_random(80, 3, seed=1)
    arrays, scalars = bfs.make_env(graph)
    first = cache.cached_serial_run(fn, arrays, scalars, tiny_config)
    arrays2, scalars2 = bfs.make_env(graph)
    second = cache.cached_serial_run(fn, arrays2, scalars2, tiny_config)
    assert cache.stats()["baseline"] == {"hits": 1, "misses": 1}
    assert second.cycles == first.cycles
    assert second.breakdown() == first.breakdown()
    assert second.energy().as_dict() == first.energy().as_dict()
    assert bfs.check(second.arrays, graph)


def test_serial_baseline_keyed_on_input_and_config(tiny_config):
    fn = bfs.function()
    a, s = bfs.make_env(uniform_random(80, 3, seed=1))
    b, t = bfs.make_env(uniform_random(80, 3, seed=2))
    cache.cached_serial_run(fn, a, s, tiny_config)
    cache.cached_serial_run(fn, b, t, tiny_config)
    cache.cached_serial_run(fn, a, s, SCALED_1CORE)
    assert cache.stats()["baseline"] == {"hits": 0, "misses": 3}


def test_search_cache_memoizes_payload():
    calls = []

    def compute():
        calls.append(1)
        return {"points": [([1], 2, 1.5)], "best": [1]}

    key_parts = ("fn-print", ["env-print"], "cfg-print", {"max_stages": 3})
    first = cache.cached_search(key_parts, compute)
    second = cache.cached_search(key_parts, compute)
    assert len(calls) == 1
    assert second == first
    assert cache.stats()["search"] == {"hits": 1, "misses": 1}


def test_stats_delta_and_merge():
    fn = bfs.function()
    before = cache.stats_snapshot()
    cache.cached_compile(fn, CompileOptions(num_stages=3))
    delta = cache.stats_delta(before)
    assert delta[("pipeline", "misses")] == 1
    cache.merge_stats(delta)  # as the parent does for each worker
    assert cache.stats()["pipeline"]["misses"] == 2
