"""Every benchmark variant computes the oracle's answer.

The matrix of (benchmark x variant) correctness checks: serial kernel,
compiled pipeline, manual pipeline, and data-parallel version all agree
with a pure-Python reference.
"""

import pytest

from repro.core import compile_function
from repro.core.compiler import ALL_PASSES
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs, cc, prd, radii, spmm
from repro.workloads.graphs import power_law, uniform_random
from repro.workloads.matrices import random_matrix

GRAPH_MODULES = [bfs, cc, prd, radii]


@pytest.fixture(scope="module")
def graph():
    return uniform_random(250, 4, seed=13)


@pytest.mark.parametrize("module", GRAPH_MODULES, ids=lambda m: m.NAME)
def test_serial_matches_reference(module, graph, tiny_config):
    arrays, scalars = module.make_env(graph)
    result = run_serial(module.function(), arrays, scalars, config=tiny_config)
    assert module.check(result.arrays, graph)


@pytest.mark.parametrize("module", GRAPH_MODULES, ids=lambda m: m.NAME)
def test_compiled_pipeline_matches_reference(module, graph, tiny_config):
    arrays, scalars = module.make_env(graph)
    pipe = compile_function(module.function(), num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert module.check(result.arrays, graph)


@pytest.mark.parametrize("module", GRAPH_MODULES, ids=lambda m: m.NAME)
def test_manual_pipeline_matches_reference(module, graph, tiny_config):
    arrays, scalars = module.make_env(graph)
    result = run_pipeline(module.manual_pipeline(), arrays, scalars, config=tiny_config)
    assert module.check(result.arrays, graph)


@pytest.mark.parametrize("module", GRAPH_MODULES, ids=lambda m: m.NAME)
@pytest.mark.parametrize("nthreads", [2, 4])
def test_data_parallel_matches_reference(module, graph, tiny_config, nthreads):
    arrays, scalars = module.make_env_dp(graph, nthreads)
    result = run_pipeline(module.data_parallel(nthreads), arrays, scalars, config=tiny_config)
    if module is prd:
        assert module.check(result.arrays, graph, exact=False, tol=1e-6)
    else:
        assert module.check(result.arrays, graph)


def test_bfs_unreachable_vertices(tiny_config):
    from repro.workloads.graphs import CSRGraph

    g = CSRGraph.from_adjacency([[1], [0], [3], [2], []])
    arrays, scalars = bfs.make_env(g, root=0)
    result = run_serial(bfs.function(), arrays, scalars, config=tiny_config)
    assert bfs.check(result.arrays, g, root=0)
    assert result.arrays["distances"][4] == bfs.INT_MAX


def test_bfs_single_vertex(tiny_config):
    from repro.workloads.graphs import CSRGraph

    g = CSRGraph.from_adjacency([[]])
    arrays, scalars = bfs.make_env(g, root=0)
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert result.arrays["distances"] == [0]


def test_cc_components_labeled_by_minimum(tiny_config):
    from repro.workloads.graphs import CSRGraph

    g = CSRGraph.from_adjacency([[1], [0], [3], [2], []])
    arrays, scalars = cc.make_env(g)
    result = run_serial(cc.function(), arrays, scalars, config=tiny_config)
    assert result.arrays["labels"] == [0, 0, 2, 2, 4]


def test_radii_estimate_on_path(tiny_config):
    from repro.workloads.graphs import CSRGraph

    chain = CSRGraph.from_adjacency([[1], [0, 2], [1, 3], [2]])
    arrays, scalars = radii.make_env(chain)
    result = run_serial(radii.function(), arrays, scalars, config=tiny_config)
    assert radii.check(result.arrays, chain)
    assert radii.estimate(result.arrays) == 3  # path of 4 vertices


def test_prd_ranks_positive(tiny_config):
    g = power_law(120, 3, seed=4)
    arrays, scalars = prd.make_env(g)
    result = run_serial(prd.function(), arrays, scalars, config=tiny_config)
    assert prd.check(result.arrays, g)
    assert all(r > 0 for r in result.arrays["rank"])


class TestSpMM:
    @pytest.fixture(scope="class")
    def matrix(self):
        return random_matrix(30, 4, seed=17)

    def test_serial(self, matrix, tiny_config):
        arrays, scalars = spmm.make_env(matrix)
        result = run_serial(spmm.function(), arrays, scalars, config=tiny_config)
        assert spmm.check(result.arrays, matrix)

    def test_manual(self, matrix, tiny_config):
        arrays, scalars = spmm.make_env(matrix)
        result = run_pipeline(spmm.manual_pipeline(), arrays, scalars, config=tiny_config)
        assert spmm.check(result.arrays, matrix)

    def test_data_parallel(self, matrix, tiny_config):
        arrays, scalars = spmm.make_env_dp(matrix, 4)
        result = run_pipeline(spmm.data_parallel(4), arrays, scalars, config=tiny_config)
        assert spmm.check(result.arrays, matrix)

    def test_rectangular_product(self, tiny_config):
        a = random_matrix(12, 3, seed=8, ncols=20)
        bt = random_matrix(9, 3, seed=9, ncols=20)  # B^T: B is 20x9
        arrays, scalars = spmm.make_env(a, bt)
        result = run_serial(spmm.function(), arrays, scalars, config=tiny_config)
        assert spmm.check(result.arrays, a, bt)

    def test_empty_rows(self, tiny_config):
        from repro.workloads.matrices import CSRMatrix

        a = CSRMatrix(3, 3, [0, 0, 2, 2], [0, 2], [1.0, 2.0])
        arrays, scalars = spmm.make_env(a)
        result = run_serial(spmm.function(), arrays, scalars, config=tiny_config)
        assert spmm.check(result.arrays, a)


def test_spmm_manual_empty_rows(tiny_config):
    """The skip-ahead merge handles empty rows/columns (immediate markers)."""
    from repro.workloads.matrices import CSRMatrix

    a = CSRMatrix(4, 4, [0, 0, 2, 2, 3], [1, 3, 0], [1.0, 2.0, 3.0])
    arrays, scalars = spmm.make_env(a)
    result = run_pipeline(spmm.manual_pipeline(), arrays, scalars, config=tiny_config)
    assert spmm.check(result.arrays, a)
