"""Table IV/V substitutes: the named inputs keep their statistical identity."""

from repro.workloads import datasets


def test_training_inputs_smaller_than_tests():
    train_m = max(g.build().m for g in datasets.TRAIN_GRAPHS)
    test_m = min(g.build().m for g in datasets.TEST_GRAPHS)
    assert train_m < test_m


def test_graphs_cached():
    g = datasets.graph_by_name("coauthors")
    assert g.build() is g.build()


def test_road_class_low_degree():
    road = datasets.graph_by_name("road-usa").build()
    assert road.avg_degree < 4.0  # Table IV: road networks ~2.4-2.8


def test_internet_class_higher_degree():
    skitter = datasets.graph_by_name("skitter").build()
    road = datasets.graph_by_name("road-usa").build()
    assert skitter.avg_degree > road.avg_degree  # Table IV ordering


def test_mesh_class_uniform():
    mesh = datasets.graph_by_name("hugetrace").build()
    degrees = [mesh.degree(v) for v in range(mesh.n)]
    assert max(degrees) <= 6


def test_spmm_matrices_ordering():
    """Table V sorts by avg nnz/row: gnutella < amazon < cage12 < rma10."""
    names = ["gnutella", "amazon", "cage12", "rma10"]
    nnz = [datasets.matrix_by_name(n).build().avg_nnz_per_row for n in names]
    assert nnz == sorted(nnz)


def test_taco_matrices_ordering():
    names = ["scircuit", "cop20k", "pwtk", "cant"]
    nnz = [datasets.matrix_by_name(n).build().avg_nnz_per_row for n in names]
    assert nnz == sorted(nnz)


def test_unknown_names_raise():
    import pytest

    with pytest.raises(KeyError):
        datasets.graph_by_name("facebook")
    with pytest.raises(KeyError):
        datasets.matrix_by_name("bogus")


def test_domains_recorded():
    assert datasets.graph_by_name("road-usa").domain == "road network"
    assert datasets.matrix_by_name("cant").domain == "cantilever"
