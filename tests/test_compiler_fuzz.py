"""Compiler fuzzing: random structured kernels survive every pass subset.

Generates irregular mini-C kernels of the shape the compiler targets —
sequential scans, indirections, filters, reductions, scatter stores — and
checks that compiled pipelines (random stage counts and pass subsets)
produce exactly the serial kernel's memory state. This is the strongest
soundness property in the repository after the per-benchmark oracles.
"""

import random as pyrandom

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_function
from repro.core.compiler import ALL_PASSES
from repro.errors import PhloemError
from repro.frontend import compile_source
from repro.pipette import MachineConfig
from repro.runtime import run_pipeline, run_serial

N = 60  # elements per array: tiny inputs keep each example fast


@st.composite
def kernels(draw):
    """A random kernel: scan a[], optionally chase through idx[], filter,
    then reduce or scatter into out[]."""
    use_filter = draw(st.booleans())
    chase_depth = draw(st.integers(0, 2))
    reduce_out = draw(st.booleans())
    use_div = draw(st.booleans())
    threshold = draw(st.integers(-5, 5))
    scale = draw(st.integers(1, 3))

    body = []
    body.append("int v = a[i];")
    for level in range(chase_depth):
        body.append("v = idx[v];")
    inner = []
    if reduce_out:
        # Truncating integer division is the PageRank share shape.
        op = "/" if use_div else "*"
        inner.append("acc = acc + v %s %d;" % (op, scale))
    else:
        inner.append("out[v] = out[v] + %d;" % scale)
    if use_filter:
        work = "if (v > %d) { %s }" % (threshold, " ".join(inner))
    else:
        work = " ".join(inner)
    body.append(work)

    source = """
    void k(const int* restrict a, const int* restrict idx,
           int* restrict out, int n) {
      int acc = 0;
      for (int i = 0; i < n; i++) {
        %s
      }
      out[0] = out[0] + acc;
    }
    """ % "\n        ".join(body)
    return source


@st.composite
def pass_subsets(draw):
    keep = [p for p in ALL_PASSES if draw(st.booleans())]
    return tuple(keep)


def _env(seed):
    rng = pyrandom.Random(seed)
    return {
        "a": [rng.randrange(N) for _ in range(N)],
        "idx": [rng.randrange(N) for _ in range(N)],
        "out": [0] * N,
    }


@settings(max_examples=25, deadline=None)
@given(kernels(), pass_subsets(), st.integers(1, 4), st.integers(0, 10_000))
def test_compiled_equals_serial(source, passes, num_stages, seed):
    function = compile_source(source)
    config = MachineConfig()
    arrays = _env(seed)
    scalars = {"n": N}
    serial = run_serial(function, arrays, scalars, config=config)
    try:
        pipeline = compile_function(function, num_stages=num_stages, passes=passes)
    except PhloemError:
        return  # an unsplittable shape is allowed to be rejected, not miscompiled
    result = run_pipeline(pipeline, arrays, scalars, config=config)
    assert result.arrays["out"] == serial.arrays["out"], (source, passes, num_stages)


@settings(max_examples=20, deadline=None)
@given(kernels(), pass_subsets(), st.integers(1, 4), st.integers(0, 10_000))
def test_engines_match_reference_interpreter(source, passes, num_stages, seed):
    """Differential fuzzing of the execution engines.

    Whatever pipeline the compiler produces, the closure-compiled fast path
    and the batch-advance whole-stage compiler must agree with the
    reference interpreter on *time*, not just memory: final arrays, total
    cycles, and every ``SimStats.summary()`` field. Hypothesis shrinks the
    kernel on the first divergence, so a failure lands as a minimal
    irregular program plus the pass subset that built the offending
    pipeline, tagged with the engine that diverged.
    """
    from repro.pipette.fastpath import ENGINES

    function = compile_source(source)
    config = MachineConfig()
    arrays = _env(seed)
    scalars = {"n": N}
    try:
        pipeline = compile_function(function, num_stages=num_stages, passes=passes)
    except PhloemError:
        return
    oracle = run_pipeline(pipeline, arrays, scalars, config=config, engine="reference")
    for engine in ENGINES:
        if engine == "reference":
            continue
        result = run_pipeline(pipeline, arrays, scalars, config=config, engine=engine)
        label = (engine, source, passes, num_stages)
        assert result.arrays["out"] == oracle.arrays["out"], label
        assert result.cycles == oracle.cycles, label
        assert result.stats.summary() == oracle.stats.summary(), label


PHASED = """
void k(const int* restrict a, const int* restrict idx,
       int* restrict out, int n) {
  int rounds = 3;
  while (rounds > 0) {
    for (int i = 0; i < n; i++) {
      int v = idx[a[i]];
      out[v] = out[v] + rounds;
    }
    rounds = rounds - 1;
  }
}
"""


@pytest.mark.parametrize("num_stages", [2, 3, 4])
def test_phased_kernel_all_stage_counts(num_stages):
    function = compile_source(PHASED)
    config = MachineConfig()
    arrays = _env(99)
    serial = run_serial(function, arrays, {"n": N}, config=config)
    pipeline = compile_function(function, num_stages=num_stages, passes=ALL_PASSES)
    result = run_pipeline(pipeline, arrays, {"n": N}, config=config)
    assert result.arrays["out"] == serial.arrays["out"]


#: Fixed corpus distilled from the GARDENIA workloads: each entry is one
#: workload's irregular core (bounded relaxation, guarded division push,
#: two-pointer merge, frontier claim, per-row accumulation) reduced to the
#: fuzz harness's uniform ``(a, idx, out, n)`` signature. Values are
#: arbitrary — the property is differential (compiled ≡ serial, engines ≡
#: reference), not semantic.
GARDENIA_CORPUS = {
    "sssp_relax": """
    void k(const int* restrict a, const int* restrict idx,
           int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        int s = a[i] % 40;
        int e = s + (idx[i] % 5);
        for (int j = s; j < e; j++) {
          int w = idx[j];
          int alt = out[i] + a[j] + 1;
          if (alt > out[w]) {
            out[w] = alt;
          }
        }
      }
    }
    """,
    "pr_push": """
    void k(const int* restrict a, const int* restrict idx,
           int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        int d = idx[i] % 4;
        if (d > 0) {
          int share = a[i] / d;
          int t = a[idx[i]];
          out[t] = out[t] + share;
        }
      }
    }
    """,
    "tc_merge": """
    void k(const int* restrict a, const int* restrict idx,
           int* restrict out, int n) {
      int count = 0;
      for (int i = 0; i < n; i++) {
        int ka = a[i];
        int kb = idx[i];
        while (ka < n) {
          if (kb >= n) break;
          int va = idx[ka];
          int vb = a[kb];
          if (va == vb) { count = count + 1; ka = ka + 1; kb = kb + 1; }
          if (va < vb) { ka = ka + 1; }
          if (va > vb) { kb = kb + 1; }
        }
      }
      out[0] = out[0] + count;
    }
    """,
    "bc_claim": """
    void k(const int* restrict a, const int* restrict idx,
           int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        int v = a[i];
        if (out[v] == 0) {
          out[v] = i + 1;
          int w = idx[v];
          if (out[w] == 0) {
            out[w] = i + 1;
          }
        }
      }
    }
    """,
    "spmv_rows": """
    void k(const int* restrict a, const int* restrict idx,
           int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        int s = a[i] % 40;
        int e = s + (idx[i] % 6);
        int acc = 0;
        for (int j = s; j < e; j++) {
          acc = acc + a[j] * idx[j];
        }
        out[i] = acc;
      }
    }
    """,
}


@pytest.mark.parametrize("num_stages", [2, 4])
@pytest.mark.parametrize("name", sorted(GARDENIA_CORPUS))
def test_gardenia_corpus_kernels(name, num_stages):
    """The workload-derived corpus compiles and conforms on every engine."""
    from repro.pipette.fastpath import ENGINES

    function = compile_source(GARDENIA_CORPUS[name])
    config = MachineConfig()
    arrays = _env(7)
    serial = run_serial(function, arrays, {"n": N}, config=config)
    pipeline = compile_function(function, num_stages=num_stages, passes=ALL_PASSES)
    oracle = run_pipeline(
        pipeline, arrays, {"n": N}, config=config, engine="reference"
    )
    assert oracle.arrays["out"] == serial.arrays["out"], name
    for engine in ENGINES:
        if engine == "reference":
            continue
        result = run_pipeline(pipeline, arrays, {"n": N}, config=config, engine=engine)
        assert result.arrays["out"] == oracle.arrays["out"], (name, engine)
        assert result.cycles == oracle.cycles, (name, engine)
        assert result.stats.summary() == oracle.stats.summary(), (name, engine)
