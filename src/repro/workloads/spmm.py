"""Sparse Matrix-Matrix multiplication (paper Sec. VI-B).

Inner-product (output-stationary) SpMM: each output element is the dot
product of a row of A and a column of B, computed with a *merge-
intersection* over their sorted coordinate streams. This is the paper's
negative result for Phloem: the merge's pointer advances depend on loaded
values, so the compiler cannot decouple inside it (the address slice would
need consumer-computed control) — it falls back to shallow bounds-fetch
pipelines. The manual pipeline uses the application-specific skip-ahead
trick the paper describes: when one stream ends, the other is drained to
its marker without any merge logic.
"""

from ..frontend.lowering import compile_source
from ..ir import (
    Ctrl,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_SCAN,
    RASpec,
    StageProgram,
)

NAME = "spmm"

SOURCE = """
#pragma phloem
void spmm(const int* restrict a_pos, const int* restrict a_crd, const double* restrict a_val,
          const int* restrict bt_pos, const int* restrict bt_crd, const double* restrict bt_val,
          double* restrict out, int m, int p) {
  for (int i = 0; i < m; i++) {
    int ra = a_pos[i];
    int ra_end = a_pos[i + 1];
    for (int j = 0; j < p; j++) {
      int pb = bt_pos[j];
      int pb_end = bt_pos[j + 1];
      int pa = ra;
      double acc = 0.0;
      while (pa < ra_end && pb < pb_end) {
        int ka = a_crd[pa];
        int kb = bt_crd[pb];
        if (ka == kb) {
          acc = acc + a_val[pa] * bt_val[pb];
          pa = pa + 1;
          pb = pb + 1;
        } else if (ka < kb) {
          pa = pa + 1;
        } else {
          pb = pb + 1;
        }
      }
      if (acc != 0.0) {
        out[i * p + j] = acc;
      }
    }
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def make_env(a, bt=None):
    """Environment for C = A x B, with ``bt`` = B in CSC form (CSR of B^T).

    Defaults to B = A (the usual squaring benchmark).
    """
    if bt is None:
        bt = a.transpose()
    if a.ncols != bt.ncols:
        raise ValueError("inner dimensions disagree")
    arrays = {
        "a_pos": list(a.pos),
        "a_crd": list(a.crd),
        "a_val": list(a.val),
        "bt_pos": list(bt.pos),
        "bt_crd": list(bt.crd),
        "bt_val": list(bt.val),
        "out": [0.0] * (a.nrows * bt.nrows),
    }
    scalars = {"m": a.nrows, "p": bt.nrows}
    return arrays, scalars


def reference(a, bt=None):
    if bt is None:
        bt = a.transpose()
    m, p = a.nrows, bt.nrows
    out = [0.0] * (m * p)
    for i in range(m):
        arow = a.row(i)
        for j in range(p):
            brow = bt.row(j)
            pa = pb = 0
            acc = 0.0
            while pa < len(arow) and pb < len(brow):
                ka, va = arow[pa]
                kb, vb = brow[pb]
                if ka == kb:
                    acc += va * vb
                    pa += 1
                    pb += 1
                elif ka < kb:
                    pa += 1
                else:
                    pb += 1
            if acc != 0.0:
                out[i * p + j] = acc
    return out


def check(arrays, a, bt=None):
    return arrays["out"] == reference(a, bt)


def manual_pipeline():
    """Hand-tuned pipeline: four scan RAs feed a bespoke merge stage.

    The driver enqueues each (row, column) pair's bounds into the four RA
    input queues with a NEXT marker per stream per pair; the merge stage
    holds the current heads in registers and, on exhausting one stream,
    *drains* the other to its marker with no comparison logic — the
    skip-ahead insight the paper says is unavailable to Phloem.
    """
    func = function()
    QI_AC, QI_AV, QI_BC, QI_BV = 0, 1, 2, 3  # RA inputs
    QA_C, QA_V, QB_C, QB_V = 4, 5, 6, 7  # RA outputs into the merge stage

    b = IRBuilder(temp_prefix="%m")
    with b.for_("i", 0, "m"):
        ra = b.load("@a_pos", "i")
        rae = b.load("@a_pos", b.binop("add", "i", 1))
        with b.for_("j", 0, "p"):
            pb = b.load("@bt_pos", "j")
            pbe = b.load("@bt_pos", b.binop("add", "j", 1))
            b.enq(QI_AC, ra)
            b.enq(QI_AC, rae)
            b.enq_ctrl(QI_AC, Ctrl.NEXT)
            b.enq(QI_AV, ra)
            b.enq(QI_AV, rae)
            b.enq_ctrl(QI_AV, Ctrl.NEXT)
            b.enq(QI_BC, pb)
            b.enq(QI_BC, pbe)
            b.enq_ctrl(QI_BC, Ctrl.NEXT)
            b.enq(QI_BV, pb)
            b.enq(QI_BV, pbe)
            b.enq_ctrl(QI_BV, Ctrl.NEXT)
    stage0 = StageProgram(0, "drive", b.finish())

    b = IRBuilder(temp_prefix="%u")
    with b.for_("i", 0, "m"):
        base = b.binop("mul", "i", "p")
        with b.for_("j", 0, "p"):
            b.mov(0.0, dst="acc")
            ka = b.deq(QA_C, dst="ka")
            va = b.deq(QA_V, dst="va")
            kb = b.deq(QB_C, dst="kb")
            vb = b.deq(QB_V, dst="vb")
            with b.loop():
                ca = b.is_control("ka")
                with b.if_(ca):
                    # A exhausted: skip the rest of B without merge logic.
                    cb0 = b.is_control("kb")
                    nb0 = b.assign("not", [cb0])
                    with b.if_(nb0):
                        with b.loop():
                            x = b.deq(QB_C)
                            cx = b.is_control(x)
                            with b.if_(cx):
                                b.break_()
                        with b.loop():
                            y = b.deq(QB_V)
                            cy = b.is_control(y)
                            with b.if_(cy):
                                b.break_()
                    b.break_()
                cb = b.is_control("kb")
                with b.if_(cb):
                    # B exhausted: skip the rest of A.
                    with b.loop():
                        x = b.deq(QA_C)
                        cx = b.is_control(x)
                        with b.if_(cx):
                            b.break_()
                    with b.loop():
                        y = b.deq(QA_V)
                        cy = b.is_control(y)
                        with b.if_(cy):
                            b.break_()
                    b.break_()
                eq = b.binop("eq", "ka", "kb")
                with b.if_(eq):
                    prod = b.binop("mul", "va", "vb")
                    b.binop("add", "acc", prod, dst="acc")
                    b.deq(QA_C, dst="ka")
                    b.deq(QA_V, dst="va")
                    b.deq(QB_C, dst="kb")
                    b.deq(QB_V, dst="vb")
                    b.continue_()
                lt = b.binop("lt", "ka", "kb")
                with b.if_(lt):
                    b.deq(QA_C, dst="ka")
                    b.deq(QA_V, dst="va")
                    b.continue_()
                b.deq(QB_C, dst="kb")
                b.deq(QB_V, dst="vb")
            nz = b.binop("ne", "acc", 0.0)
            with b.if_(nz):
                idx = b.binop("add", base, "j")
                b.store("@out", idx, "acc")
    stage1 = StageProgram(1, "merge", b.finish())

    queues = [
        QueueSpec(QI_AC, ("stage", 0), ("ra", 0), 24, "a_crd bounds"),
        QueueSpec(QI_AV, ("stage", 0), ("ra", 1), 24, "a_val bounds"),
        QueueSpec(QI_BC, ("stage", 0), ("ra", 2), 24, "bt_crd bounds"),
        QueueSpec(QI_BV, ("stage", 0), ("ra", 3), 24, "bt_val bounds"),
        QueueSpec(QA_C, ("ra", 0), ("stage", 1), 24, "a crd"),
        QueueSpec(QA_V, ("ra", 1), ("stage", 1), 24, "a val"),
        QueueSpec(QB_C, ("ra", 2), ("stage", 1), 24, "b crd"),
        QueueSpec(QB_V, ("ra", 3), ("stage", 1), 24, "b val"),
    ]
    ras = [
        RASpec(0, RA_SCAN, "@a_crd", QI_AC, QA_C),
        RASpec(1, RA_SCAN, "@a_val", QI_AV, QA_V),
        RASpec(2, RA_SCAN, "@bt_crd", QI_BC, QB_C),
        RASpec(3, RA_SCAN, "@bt_val", QI_BV, QB_V),
    ]
    return PipelineProgram(
        "spmm_manual",
        [stage0, stage1],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        meta={"manual": True},
    )


def data_parallel(nthreads):
    """Hand-written data-parallel SpMM: output rows striped across threads."""
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        with b.for_("i", tid, "m", nthreads):
            ra0 = b.load("@a_pos", "i")
            rae = b.load("@a_pos", b.binop("add", "i", 1))
            base = b.binop("mul", "i", "p")
            with b.for_("j", 0, "p"):
                pb0 = b.load("@bt_pos", "j")
                pbe = b.load("@bt_pos", b.binop("add", "j", 1))
                b.mov(ra0, dst="pa")
                b.mov(pb0, dst="pb")
                b.mov(0.0, dst="acc")
                with b.loop():
                    more_a = b.binop("lt", "pa", rae)
                    more_b = b.binop("lt", "pb", pbe)
                    more = b.binop("and", more_a, more_b)
                    stop = b.assign("not", [more])
                    with b.if_(stop):
                        b.break_()
                    ka = b.load("@a_crd", "pa")
                    kb = b.load("@bt_crd", "pb")
                    eq = b.binop("eq", ka, kb)
                    with b.if_(eq):
                        va = b.load("@a_val", "pa")
                        vb = b.load("@bt_val", "pb")
                        b.binop("add", "acc", b.binop("mul", va, vb), dst="acc")
                        b.binop("add", "pa", 1, dst="pa")
                        b.binop("add", "pb", 1, dst="pb")
                        b.continue_()
                    lt = b.binop("lt", ka, kb)
                    with b.if_(lt):
                        b.binop("add", "pa", 1, dst="pa")
                        b.continue_()
                    b.binop("add", "pb", 1, dst="pb")
                nz = b.binop("ne", "acc", 0.0)
                with b.if_(nz):
                    idx = b.binop("add", base, "j")
                    b.store("@out", idx, "acc")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))
    return PipelineProgram(
        "spmm_dp%d" % nthreads,
        stages,
        [],
        [],
        func.arrays,
        func.scalar_params + ["nthreads"],
        meta={"data_parallel": True},
    )


def make_env_dp(a, nthreads, bt=None):
    arrays, scalars = make_env(a, bt)
    scalars["nthreads"] = nthreads
    return arrays, scalars
