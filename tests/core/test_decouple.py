"""Decoupling driver: selection, fallback, assembly, stage management."""

from repro import ir
from repro.core.decouple import decouple_function, drop_trivial_stages, renumber_stages
from repro.workloads import bfs, spmm


def test_bfs_full_depth():
    pipeline, points = decouple_function(bfs.function(), 3)
    assert len(pipeline.stages) == 4
    assert len(points) == 3
    # Points applied in program order: nodes before edges before distances.
    classes = [p.cls for p in points]
    assert classes == ["@nodes", "@edges", "@distances"]


def test_queue_endpoints_assembled():
    pipeline, _ = decouple_function(bfs.function(), 3)
    for q in pipeline.queues.values():
        assert q.producer[0] == "stage" and q.consumer[0] == "stage"
        assert q.producer[1] < q.consumer[1]  # feed-forward only


def test_zero_points_serial():
    pipeline, points = decouple_function(bfs.function(), 0)
    assert len(pipeline.stages) == 1
    assert points == []
    assert pipeline.queues == {}


def test_rejection_fallback_spmm():
    """SpMM's merge points are unsplittable; the driver falls back to the
    pos-fetch points instead of failing."""
    pipeline, points = decouple_function(spmm.function(), 2)
    assert len(pipeline.stages) >= 2
    assert all(p.cls in ("@a_pos", "@bt_pos") for p in points)


def test_stage_names():
    pipeline, _ = decouple_function(bfs.function(), 3)
    names = [s.name for s in pipeline.stages]
    assert names[0].startswith("fetch_")
    assert names[-1] == "update"


def test_renumber_stages():
    pipeline, _ = decouple_function(bfs.function(), 3)
    del pipeline.stages[1]
    # Remove queues touching the deleted stage so renumbering is coherent.
    pipeline.queues = {
        qid: q
        for qid, q in pipeline.queues.items()
        if 1 not in (q.producer[1], q.consumer[1])
    }
    renumber_stages(pipeline)
    assert [s.index for s in pipeline.stages] == [0, 1, 2]
    for q in pipeline.queues.values():
        assert q.producer[1] in (0, 1, 2)


def test_drop_trivial_stages():
    pipeline, _ = decouple_function(bfs.function(), 3)
    trivial = ir.StageProgram(99, "noop", [ir.Assign("x", "mov", [1])])
    pipeline.stages.append(trivial)
    drop_trivial_stages(pipeline)
    assert all(s.name != "noop" for s in pipeline.stages)
    assert [s.index for s in pipeline.stages] == list(range(len(pipeline.stages)))


def test_meta_points_recorded():
    pipeline, points = decouple_function(bfs.function(), 2)
    assert len(pipeline.meta["points"]) == 2
