"""Parsing of Phloem's ``#pragma`` annotations (paper Table II).

============  =============================================================
``phloem``     mark the function for automatic pipeline parallelization
``decouple``   force a stage boundary at the next irregular access
``replicate``  ``replicate N`` — make N copies of the pipeline
``distribute`` send values crossing the next decoupled boundary to the
               replica selected by bits of the value (data-centric
               partitioning, Sec. IV-C)
============  =============================================================
"""

from ..errors import ParseError

#: Text used in an IR Comment statement to mark an in-body decouple hint.
DECOUPLE_MARK = "pragma:decouple"

#: Text marking where a ``#pragma distribute`` appeared in the body.
DISTRIBUTE_MARK = "pragma:distribute"


def parse_pragma(text):
    """Parse one pragma body (the text after ``#pragma``) into (name, args).

    ``args`` is a dict of ``key=value`` pairs; bare words become
    ``{"value": word}`` entries (so ``replicate 4`` yields
    ``("replicate", {"value": 4})``).
    """
    parts = text.split()
    if not parts:
        raise ParseError("empty #pragma")
    name = parts[0]
    if name not in ("phloem", "decouple", "replicate", "distribute"):
        raise ParseError("unknown #pragma %r" % name)
    args = {}
    for part in parts[1:]:
        if "=" in part:
            key, _, raw = part.partition("=")
        else:
            key, raw = "value", part
        try:
            args[key] = int(raw)
        except ValueError:
            args[key] = raw
    return name, args


def collect_function_pragmas(pragma_texts):
    """Fold the pragmas preceding a function into one annotation dict."""
    annotations = {}
    for text in pragma_texts:
        name, args = parse_pragma(text)
        if name == "phloem":
            annotations["phloem"] = True
        elif name == "replicate":
            count = args.get("value")
            if not isinstance(count, int) or count < 1:
                raise ParseError("#pragma replicate requires a positive count")
            annotations["replicate"] = count
        elif name == "distribute":
            annotations["distribute"] = args
        else:
            raise ParseError("#pragma %s is only valid inside a function body" % name)
    return annotations
