"""Thin synchronous client for the compile-and-simulate daemon.

Speaks the NDJSON protocol of :mod:`repro.service.protocol` over a unix or
TCP socket: one connection per job, streamed records surfaced through a
callback as they arrive, the final typed :class:`~repro.api.Response`
returned with the streamed records re-attached. This is what the
``repro submit`` verb uses; it is deliberately dependency-free (stdlib
``socket`` only) so external tooling can lift it verbatim.
"""

import socket
import time

from .api.requests import ApiError, Response
from .errors import PhloemError
from .service import protocol


class ServiceError(PhloemError):
    """A connection or protocol failure talking to the daemon."""


class ServiceClient:
    """One daemon endpoint (unix socket path, or TCP host/port).

    ``client_id`` is the identity the daemon rate-limits and quotas on;
    every caller sharing an id shares its budget.
    """

    def __init__(self, socket_path=None, host=None, port=0, client_id="cli", timeout=300.0):
        if socket_path is None and host is None:
            raise ServiceError("give a unix socket path or a TCP host/port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _connect(self):
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ServiceError(
                "cannot reach daemon at %s: %s"
                % (self.socket_path or "%s:%d" % (self.host, self.port), exc)
            ) from exc
        return sock

    def _roundtrip(self, envelope, on_message):
        """Send one envelope, feed every reply line to ``on_message``."""
        sock = self._connect()
        try:
            sock.sendall(protocol.encode(envelope))
            reader = sock.makefile("rb")
            try:
                for line in reader:
                    message = protocol.decode(line)
                    if on_message(message):
                        return
            finally:
                reader.close()
        except OSError as exc:
            raise ServiceError("connection to daemon lost: %s" % exc) from exc
        finally:
            sock.close()
        raise ServiceError("daemon closed the connection without a final response")

    # -- API ----------------------------------------------------------------

    def submit(self, request, on_record=None):
        """Run one API request on the daemon; returns its :class:`Response`.

        ``on_record`` observes each streamed record dict as it arrives;
        the returned response carries the full record list either way.
        """
        records = []
        final = []

        def on_message(message):
            kind = message.get("kind")
            if kind == "record":
                payload = message.get("payload")
                records.append(payload)
                if on_record is not None:
                    on_record(payload)
                return False
            if kind == "response":
                final.append(message.get("payload"))
                return True
            raise ApiError("unexpected message kind %r" % (kind,))

        self._roundtrip(protocol.request_envelope(request, client=self.client_id), on_message)
        response = Response.from_wire(final[0])
        if not response.records:
            response.records = records
        return response

    def control(self, action):
        """Run one control action (``ping``/``stats``/``shutdown``)."""
        reply = []

        def on_message(message):
            if message.get("kind") == "control-reply":
                reply.append(message.get("payload"))
                return True
            if message.get("kind") == "response":
                payload = (message.get("payload") or {}).get("payload") or {}
                error = payload.get("error") or {"message": "request rejected"}
                raise ServiceError("control failed: %s" % error.get("message"))
            raise ApiError("unexpected message kind %r" % (message.get("kind"),))

        self._roundtrip(protocol.control_envelope(action, client=self.client_id), on_message)
        return reply[0]

    def ping(self):
        """Liveness probe; returns the daemon's identity payload."""
        return self.control("ping")

    def server_stats(self):
        """The daemon's counters, governor snapshot, and cache stats."""
        return self.control("stats")

    def telemetry(self):
        """Prometheus text exposition of the daemon's telemetry.

        Returns the text payload directly — pipe it to a file and any
        Prometheus scraper (or :func:`repro.service.telemetry.parse_prometheus`)
        can read it.
        """
        return self.control("telemetry")["text"]

    def shutdown(self):
        """Ask the daemon to stop (it answers, then exits)."""
        return self.control("shutdown")

    def wait_ready(self, timeout=30.0, interval=0.1):
        """Poll :meth:`ping` until the daemon answers or ``timeout`` passes."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.ping()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)
