"""Gshare branch predictor.

The serial baselines' pain on irregular control flow (paper Sec. II-A) comes
from data-dependent branches; a real history-based predictor reproduces that
behaviour faithfully and deterministically — runs of positive ``A[i]`` values
predict well, alternating values mispredict, exactly the phenomenon the
paper's introduction describes.
"""


class GsharePredictor:
    """Global-history XOR-indexed table of 2-bit saturating counters."""

    def __init__(self, table_bits=12, history_bits=12):
        self.mask = (1 << table_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        self.table = [2] * (1 << table_bits)  # initialized weakly-taken
        self.history = 0

    def predict_and_update(self, pc, taken):
        """Predict the branch at ``pc``, update state, return True if correct."""
        index = (pc ^ self.history) & self.mask
        counter = self.table[index]
        prediction = counter >= 2
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask
        return prediction == taken
