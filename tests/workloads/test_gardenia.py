"""GARDENIA suite: generator properties and golden-oracle agreement.

Two layers. The generator layer pins the synthetic-input contracts:
``with_weights`` is seeded and hash-independent, weights stay in range,
and ``canonicalize`` produces the canonical undirected form (symmetric,
sorted, deduplicated, self-loop-free, idempotent) every workload that
requires undirectedness (TC, BC) relies on. The oracle layer runs every
workload variant — serial kernel, compiled static pipeline, manual
pipeline, data-parallel — against its pure-Python golden reference, plus
hypothesis sweeps over small random instances and hand-checked edge
cases (disconnected graphs, known triangle counts, path-graph
centrality).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_function
from repro.core.compiler import ALL_PASSES
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bc, pr, spmv, sssp, tc
from repro.workloads.graphs import (
    CSRGraph,
    WeightedCSRGraph,
    canonicalize,
    power_law,
    uniform_random,
    with_weights,
)
from repro.workloads.matrices import random_matrix

GRAPH_MODULES = [sssp, pr, tc, bc]


# ---------------------------------------------------------------------------
# Generator properties


class TestWithWeights:
    def test_deterministic(self):
        g = power_law(150, 4, seed=3)
        a = with_weights(g, max_weight=64, seed=5)
        b = with_weights(g, max_weight=64, seed=5)
        assert a.weights == b.weights
        assert a.nodes == g.nodes and a.edges == g.edges

    def test_seeds_differ(self):
        g = power_law(150, 4, seed=3)
        assert with_weights(g, seed=1).weights != with_weights(g, seed=2).weights

    def test_distributions_differ_and_skew(self):
        g = power_law(400, 6, seed=3)
        uni = with_weights(g, max_weight=64, seed=1).weights
        par = with_weights(g, max_weight=64, seed=1, distribution="powerlaw").weights
        assert uni != par
        # The powerlaw weights are heavy-tailed: most mass near 1, while
        # uniform weights center mid-range.
        assert sorted(par)[len(par) // 2] < sorted(uni)[len(uni) // 2]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 60), st.integers(1, 5), st.integers(0, 4), st.integers(0, 4))
    def test_always_in_range(self, n, deg, gseed, wseed):
        g = uniform_random(n, deg, seed=gseed)
        w = with_weights(g, max_weight=32, seed=wseed)
        assert isinstance(w, WeightedCSRGraph)
        assert len(w.weights) == w.m
        assert all(1 <= x <= 32 for x in w.weights)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WeightedCSRGraph(2, [0, 1, 1], [1], [3, 3])


class TestCanonicalize:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 60), st.integers(1, 5), st.integers(0, 5))
    def test_canonical_form(self, n, deg, seed):
        g = uniform_random(n, deg, seed=seed)
        c = canonicalize(g)
        assert c.n == g.n
        adj = [c.neighbors(v) for v in range(c.n)]
        for v, ngh in enumerate(adj):
            assert ngh == sorted(set(ngh)), "sorted, deduplicated"
            assert v not in ngh, "no self-loops"
            for w in ngh:
                assert v in adj[w], "symmetric"
        # Every original non-self edge survives (in both directions).
        for v in range(g.n):
            for w in g.neighbors(v):
                if w != v:
                    assert w in adj[v]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 40), st.integers(1, 4), st.integers(0, 3))
    def test_idempotent(self, n, deg, seed):
        c = canonicalize(uniform_random(n, deg, seed=seed))
        cc_ = canonicalize(c)
        assert cc_.nodes == c.nodes and cc_.edges == c.edges

    def test_strips_self_loops_and_dups(self):
        g = CSRGraph.from_adjacency([[0, 1, 1], [2], [0]])
        c = canonicalize(g)
        assert c.neighbors(0) == [1, 2]
        assert c.neighbors(1) == [0, 2]
        assert c.neighbors(2) == [0, 1]


def test_make_env_deterministic():
    """Environments are bit-identical across calls (seeded generators,
    no hash-order dependence): the premise of every baseline comparison."""
    g = power_law(100, 4, seed=9)
    m = random_matrix(40, 4, seed=9)
    for module, data in [(sssp, g), (pr, g), (tc, g), (bc, g), (spmv, m)]:
        a1, s1 = module.make_env(data)
        a2, s2 = module.make_env(data)
        assert a1 == a2 and s1 == s2, module.NAME


# ---------------------------------------------------------------------------
# Golden-oracle agreement: every variant of every workload


@pytest.fixture(scope="module")
def graph():
    return uniform_random(120, 4, seed=13)


@pytest.fixture(scope="module")
def matrix():
    return random_matrix(40, 4, seed=17)


def _data(module, graph, matrix):
    return matrix if module is spmv else graph


@pytest.mark.parametrize("module", GRAPH_MODULES + [spmv], ids=lambda m: m.NAME)
def test_serial_matches_oracle(module, graph, matrix, tiny_config):
    data = _data(module, graph, matrix)
    arrays, scalars = module.make_env(data)
    result = run_serial(module.function(), arrays, scalars, config=tiny_config)
    assert module.check(result.arrays, data)


@pytest.mark.parametrize("module", GRAPH_MODULES + [spmv], ids=lambda m: m.NAME)
def test_compiled_pipeline_matches_oracle(module, graph, matrix, tiny_config):
    data = _data(module, graph, matrix)
    arrays, scalars = module.make_env(data)
    pipe = compile_function(module.function(), num_stages=4, passes=ALL_PASSES)
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert module.check(result.arrays, data)


@pytest.mark.parametrize("module", GRAPH_MODULES + [spmv], ids=lambda m: m.NAME)
def test_manual_pipeline_matches_oracle(module, graph, matrix, tiny_config):
    data = _data(module, graph, matrix)
    arrays, scalars = module.make_env(data)
    result = run_pipeline(module.manual_pipeline(), arrays, scalars, config=tiny_config)
    assert module.check(result.arrays, data)


@pytest.mark.parametrize("module", GRAPH_MODULES + [spmv], ids=lambda m: m.NAME)
@pytest.mark.parametrize("nthreads", [2, 4])
def test_data_parallel_matches_oracle(module, graph, matrix, tiny_config, nthreads):
    data = _data(module, graph, matrix)
    arrays, scalars = module.make_env_dp(data, nthreads)
    result = run_pipeline(
        module.data_parallel(nthreads), arrays, scalars, config=tiny_config
    )
    # pr and bc reassociate float sums across threads; sssp, tc, and spmv
    # are exact in every interleaving (integer arithmetic / private rows).
    check = getattr(module, "check_dp", module.check)
    assert check(result.arrays, data)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 40), st.integers(1, 4), st.integers(0, 5))
def test_oracles_on_random_instances(n, deg, seed):
    """Serial kernel ≡ golden oracle on arbitrary small random graphs."""
    g = uniform_random(n, deg, seed=seed)
    for module in GRAPH_MODULES:
        arrays, scalars = module.make_env(g)
        result = run_serial(module.function(), arrays, scalars)
        assert module.check(result.arrays, g), module.NAME


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 30), st.integers(1, 4), st.integers(0, 5))
def test_spmv_oracle_on_random_matrices(n, nnz, seed):
    m = random_matrix(n, nnz, seed=seed)
    arrays, scalars = spmv.make_env(m)
    result = run_serial(spmv.function(), arrays, scalars)
    assert spmv.check(result.arrays, m)


# ---------------------------------------------------------------------------
# Hand-checked edge cases


def test_sssp_disconnected_component_stays_inf(tiny_config):
    g = CSRGraph.from_adjacency([[1], [0], [3], [2]])
    arrays, scalars = sssp.make_env(g, root=0)
    result = run_serial(sssp.function(), arrays, scalars, config=tiny_config)
    assert sssp.check(result.arrays, g, root=0)
    assert result.arrays["dist"][2] == sssp.INF
    assert result.arrays["dist"][3] == sssp.INF


def test_sssp_single_vertex(tiny_config):
    g = CSRGraph.from_adjacency([[]])
    arrays, scalars = sssp.make_env(g, root=0)
    result = run_serial(sssp.function(), arrays, scalars, config=tiny_config)
    assert result.arrays["dist"] == [0]


def test_tc_counts_k4(tiny_config):
    k4 = CSRGraph.from_adjacency(
        [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]]
    )
    arrays, scalars = tc.make_env(k4)
    result = run_serial(tc.function(), arrays, scalars, config=tiny_config)
    assert result.arrays["total"][0] == 4
    assert tc.check(result.arrays, k4)


def test_tc_triangle_free_is_zero(tiny_config):
    path = CSRGraph.from_adjacency([[1], [0, 2], [1, 3], [2]])
    arrays, scalars = tc.make_env(path)
    result = run_serial(tc.function(), arrays, scalars, config=tiny_config)
    assert result.arrays["total"][0] == 0


def test_tc_directed_input_is_symmetrized(tiny_config):
    """Asymmetric adjacency (the uniform_random generator) counts the same
    triangles as its canonical undirected form — both paths canonicalize."""
    g = uniform_random(50, 3, seed=21)
    arrays, scalars = tc.make_env(g)
    result = run_serial(tc.function(), arrays, scalars, config=tiny_config)
    assert tc.check(result.arrays, g)
    assert result.arrays["total"][0] == tc.reference(canonicalize(g))


def test_bc_path_graph_centrality(tiny_config):
    path = CSRGraph.from_adjacency([[1], [0, 2], [1, 3], [2]])
    arrays, scalars = bc.make_env(path, root=0)
    result = run_serial(bc.function(), arrays, scalars, config=tiny_config)
    assert bc.check(result.arrays, path, root=0)
    # From root 0 on 0-1-2-3: vertex 1 carries paths to {2, 3}, vertex 2
    # carries the path to {3}, endpoints carry none.
    assert result.arrays["centrality"] == [0.0, 2.0, 1.0, 0.0]


def test_pr_ranks_form_distribution(tiny_config):
    g = power_law(80, 3, seed=4)
    arrays, scalars = pr.make_env(g)
    result = run_serial(pr.function(), arrays, scalars, config=tiny_config)
    assert pr.check(result.arrays, g)
    ranks = result.arrays["rank"]
    assert all(r > 0 for r in ranks)
    assert abs(sum(ranks) - 1.0) < 1e-6


def test_spmv_empty_rows(tiny_config):
    from repro.workloads.matrices import CSRMatrix

    a = CSRMatrix(3, 3, [0, 0, 2, 2], [0, 2], [1.0, 2.0])
    arrays, scalars = spmv.make_env(a)
    result = run_serial(spmv.function(), arrays, scalars, config=tiny_config)
    assert spmv.check(result.arrays, a)
    assert result.arrays["y"][0] == 0.0 and result.arrays["y"][2] == 0.0
