"""Benchmark harness: runs paper-style comparisons and aggregates results.

Wraps each benchmark module behind one uniform adapter (inputs in, arrays +
oracle check out), runs the variants the paper compares — Serial,
Data-parallel, Phloem (profile-guided and static), Manually pipelined —
and aggregates per-input speedups with geometric means, as every figure in
Sec. VII does.

The harness leans on :mod:`repro.cache` (compiled pipelines, serial
baselines, and search scores are memoized across calls and process
restarts) and on :mod:`repro.bench.parallel` (``run_suite`` fans its
per-input work out over a worker pool; results are bit-identical to the
serial path).
"""

import os
import warnings

from .. import cache
from ..core.autotune import SearchPoint, gmean, search_pipelines
from ..core.compiler import ALL_PASSES, CompileOptions
from ..errors import PhloemError
from ..pipette.config import SCALED_1CORE
from ..runtime.executor import run_pipeline
from .parallel import Job, run_jobs

#: Environment switch: REPRO_QUICK=1 shrinks the evaluation (fewer inputs).
QUICK = bool(os.environ.get("REPRO_QUICK"))

#: SMT width used for single-core data-parallel baselines.
DP_THREADS = 4


class VariantRun:
    """One (variant, input) execution."""

    __slots__ = ("variant", "input_name", "cycles", "ok", "breakdown", "energy", "meta")

    def __init__(self, variant, input_name, cycles, ok, breakdown, energy, meta=None):
        self.variant = variant
        self.input_name = input_name
        self.cycles = cycles
        self.ok = ok
        self.breakdown = breakdown
        self.energy = energy
        self.meta = meta or {}

    def __repr__(self):
        return "VariantRun(%s/%s: %.0f cycles, ok=%s)" % (
            self.variant,
            self.input_name,
            self.cycles,
            self.ok,
        )


class BenchAdapter:
    """The uniform adapter over every benchmark module (graph or matrix).

    A benchmark module provides ``NAME``, ``function()``, ``make_env``,
    ``data_parallel``/``make_env_dp``, ``manual_pipeline``, and ``check``;
    a module whose data-parallel variant needs a looser oracle (PRD's
    float reductions reassociate) additionally provides ``check_dp``.
    That tolerance lives in the benchmark module, not here: the adapter is
    pure plumbing and is identical for all five benchmarks.
    """

    def __init__(self, module):
        self.module = module
        self.name = module.NAME

    def function(self):
        """The serial kernel the compiler transforms."""
        return self.module.function()

    def env(self, data):
        """``(arrays, scalars)`` environment for one built input."""
        return self.module.make_env(data)

    def dp_pipeline(self, nthreads):
        """The hand-written data-parallel baseline pipeline."""
        return self.module.data_parallel(nthreads)

    def dp_env(self, data, nthreads):
        """Environment for the data-parallel baseline."""
        return self.module.make_env_dp(data, nthreads)

    def manual(self):
        """The hand-tuned manually pipelined variant."""
        return self.module.manual_pipeline()

    def check(self, arrays, data):
        """Exact output validation against the benchmark's oracle."""
        return self.module.check(arrays, data)

    def check_dp(self, arrays, data):
        """Validation for data-parallel outputs (module may loosen it)."""
        check = getattr(self.module, "check_dp", None)
        if check is not None:
            return check(arrays, data)
        return self.module.check(arrays, data)


#: Back-compat aliases: the graph/SpMM adapters were merged into one.
GraphBenchAdapter = BenchAdapter
SpmmBenchAdapter = BenchAdapter


def adapter_for(bench):
    """Adapter for a benchmark name (bfs/cc/prd/radii/spmm) or module."""
    if isinstance(bench, str):
        from ..workloads import ALL_BENCHMARKS

        return BenchAdapter(ALL_BENCHMARKS[bench])
    return BenchAdapter(bench)


def _record(variant, input_name, result, ok):
    run = VariantRun(
        variant,
        input_name,
        result.cycles,
        ok,
        result.breakdown(),
        result.energy().as_dict(),
    )
    # Full SimStats summary, for the structured metrics pipeline
    # (repro.obs.record). Live runs carry stats; cached baselines recorded
    # before the summary field existed return None and are simply omitted.
    stats = getattr(result, "stats", None)
    summary = stats.summary() if stats is not None else result.summary()
    if summary is not None:
        run.meta["summary"] = summary
    return run


def profile_guided_pipeline(adapter, train_inputs, config=SCALED_1CORE, max_stages=4, top_k=5, limit=40, passes=ALL_PASSES, recorder=None, prune_static=None):
    """Run the paper's profile-guided search; returns (best, all results).

    The evaluator scores each candidate by gmean speedup over serial on the
    training inputs, mirroring Sec. VI-C. Scores are memoized in the search
    cache (training simulations dominate suite wall-clock), and ``results``
    are pipeline-free :class:`SearchPoint` summaries — small enough to ship
    across process boundaries and to pickle to disk; ``best`` carries a
    real pipeline, recompiled through the pipeline cache on warm hits.

    ``prune_static`` enables the static pre-filter
    (:func:`repro.core.autotune.search_pipelines`): statically-dominated
    candidates are dropped before any training simulation. It joins the
    search-cache key — a pruned and an exhaustive search score different
    candidate sets, so they must not share cache entries.

    ``recorder`` (a :class:`repro.obs.SearchRecorder`) observes the search.
    On a warm cache hit the scored candidates and verdict are replayed from
    the cached payload (failed and pruned candidates are not cached, so
    the replay shows scores only).
    """
    function = adapter.function()
    baselines = {}
    envs = {}
    env_prints = []
    for item in train_inputs:
        arrays, scalars = adapter.env(item.build())
        envs[item.name] = (arrays, scalars)
        env_prints.append(cache.fingerprint_env(arrays, scalars))

    key_parts = (
        cache.fingerprint(function),
        sorted(env_prints),
        cache.fingerprint_config(config),
        {"max_stages": max_stages, "top_k": top_k, "limit": limit, "passes": list(passes)},
    )
    if prune_static:
        # Joins the key only when enabled so pre-existing exhaustive-search
        # cache entries keep their keys.
        key_parts = key_parts + ({"prune_static": prune_static},)

    def compute():
        for item in train_inputs:
            arrays, scalars = envs[item.name]
            baselines[item.name] = cache.cached_serial_run(
                function, arrays, scalars, config
            ).cycles

        def evaluate(pipeline):
            speeds = []
            for item in train_inputs:
                arrays, scalars = envs[item.name]
                result = run_pipeline(pipeline, arrays, scalars, config=config)
                speeds.append(baselines[item.name] / result.cycles)
            return gmean(speeds)

        best, results = search_pipelines(
            function, evaluate, max_stages=max_stages, top_k=top_k, limit=limit,
            passes=passes, recorder=recorder, prune_static=prune_static
        )
        return {
            "points": [(list(r.indices), r.num_units, r.speedup) for r in results],
            "best": None if best is None else list(best.indices),
        }

    payload = cache.cached_search(key_parts, compute)
    if recorder is not None and not recorder.candidates:
        # Warm hit: compute() never ran, so replay the cached scores.
        for indices, units, speedup in payload["points"]:
            recorder.scored(indices, units, speedup)
        recorder.decide(payload["best"])
    results = [
        SearchPoint(tuple(indices), units, speedup)
        for indices, units, speedup in payload["points"]
    ]
    best = None
    if payload["best"] is not None:
        indices = tuple(payload["best"])
        options = CompileOptions(
            num_stages=len(indices) + 1, passes=passes, point_indices=indices
        )
        pipeline = cache.cached_compile(function, options)
        speedup = next(r.speedup for r in results if r.indices == indices)
        best = SearchPoint(indices, pipeline.num_units, speedup, pipeline=pipeline)
    return best, results


def run_suite(
    adapter,
    test_inputs,
    train_inputs,
    config=SCALED_1CORE,
    variants=None,
    num_stages=None,
    options=None,
    jobs=None,
    recorder=None,
):
    """Run all requested variants on all test inputs.

    ``options`` is a :class:`~repro.core.compiler.CompileOptions` shaping
    the Phloem compilations (``num_stages`` is a deprecated shim for its
    stage count and warns; pass ``options=CompileOptions(num_stages=...)``
    instead). ``jobs`` fans the per-input work out over a worker pool
    (default: the ``REPRO_JOBS`` environment variable); parallel runs
    produce cycle-identical results to serial ones.

    Returns ``{variant: [VariantRun, ...]}`` plus the search results under
    the key ``"_search"`` when the profile-guided variant ran, and pipeline
    summaries under ``"_meta"``. ``recorder`` (a
    :class:`repro.obs.SearchRecorder`) observes the profile-guided search
    when the ``"phloem"`` variant is requested.
    """
    variants = variants or ("serial", "data-parallel", "phloem", "phloem-static", "manual")
    if num_stages is not None:
        warnings.warn(
            "run_suite(num_stages=...) is deprecated; pass "
            "options=CompileOptions(num_stages=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    options = (options or CompileOptions()).merge(num_stages=num_stages)
    function = adapter.function()
    out = {v: [] for v in variants}

    static_pipeline = None
    if "phloem-static" in variants or "phloem" in variants:
        static_pipeline = cache.cached_compile(function, options)

    best = None
    if "phloem" in variants:
        try:
            best, results = profile_guided_pipeline(
                adapter,
                train_inputs,
                config=config,
                max_stages=options.num_stages,
                passes=options.passes,
                recorder=recorder,
            )
            out["_search"] = results
        except PhloemError:
            best = None
    pgo_pipeline = best.pipeline if best is not None else static_pipeline

    manual_pipeline = adapter.manual() if "manual" in variants else None
    dp_pipeline = adapter.dp_pipeline(DP_THREADS) if "data-parallel" in variants else None

    def run_input(item):
        data = item.build()
        arrays, scalars = adapter.env(data)
        serial_result = cache.cached_serial_run(function, arrays, scalars, config)
        serial_ok = adapter.check(serial_result.arrays, data)
        records = []
        if "serial" in variants:
            record = _record("serial", item.name, serial_result, serial_ok)
            record.meta["speedup"] = 1.0
            records.append(record)

        if "data-parallel" in variants:
            dp_arrays, dp_scalars = adapter.dp_env(data, DP_THREADS)
            result = run_pipeline(dp_pipeline, dp_arrays, dp_scalars, config=config)
            record = _record("data-parallel", item.name, result, adapter.check_dp(result.arrays, data))
            record.meta["speedup"] = serial_result.cycles / result.cycles
            records.append(record)

        for variant, pipeline in (("phloem", pgo_pipeline), ("phloem-static", static_pipeline), ("manual", manual_pipeline)):
            if variant not in variants or pipeline is None:
                continue
            result = run_pipeline(pipeline, arrays, scalars, config=config)
            record = _record(variant, item.name, result, adapter.check(result.arrays, data))
            record.meta["speedup"] = serial_result.cycles / result.cycles
            records.append(record)
        return records

    job_list = [
        Job("%s/%s" % (adapter.name, item.name), run_input, item) for item in test_inputs
    ]
    for job_result in run_jobs(job_list, workers=jobs):
        for record in job_result.value:
            out[record.variant].append(record)

    out["_meta"] = {
        variant: pipeline
        for variant, pipeline in (
            ("phloem", pgo_pipeline),
            ("phloem-static", static_pipeline),
            ("manual", manual_pipeline),
            ("data-parallel", dp_pipeline),
        )
        if pipeline is not None
    }
    return out


def gmean_speedup(runs):
    """Geometric-mean speedup over serial across a variant's runs."""
    speeds = [r.meta.get("speedup") for r in runs if "speedup" in r.meta]
    if not speeds:
        return float("nan")
    return gmean(speeds)


def normalized_breakdowns(suite):
    """Average cycle breakdowns normalized to the serial baseline (Fig. 10)."""
    serial_cycles = {r.input_name: r.cycles for r in suite.get("serial", [])}
    out = {}
    for variant, runs in suite.items():
        if variant.startswith("_"):
            continue
        rows = []
        for run in runs:
            base = serial_cycles.get(run.input_name)
            if not base:
                continue
            rows.append({k: v / base for k, v in run.breakdown.items()})
        if rows:
            keys = rows[0].keys()
            out[variant] = {k: sum(r[k] for r in rows) / len(rows) for k in keys}
    return out


def normalized_energy(suite):
    """Average energy normalized to serial (Fig. 11)."""
    serial_energy = {
        r.input_name: sum(r.energy.values()) for r in suite.get("serial", [])
    }
    out = {}
    for variant, runs in suite.items():
        if variant.startswith("_"):
            continue
        rows = []
        for run in runs:
            base = serial_energy.get(run.input_name)
            if not base:
                continue
            rows.append({k: v / base for k, v in run.energy.items()})
        if rows:
            keys = rows[0].keys()
            out[variant] = {k: sum(r[k] for r in rows) / len(rows) for k in keys}
    return out
