"""Compiler pass instrumentation.

A :class:`PassProfiler` handed to :func:`repro.core.compiler.compile_function`
records, for every pass in the pipeline (decoupling included), its wall
time and the IR deltas it caused — statement, queue, stage, and RA counts
before and after — and can optionally keep full before/after IR snapshots
(:mod:`repro.ir.printer` text) for diffing what a pass actually did.

The profiler is pure observation: it never alters what the compiler does,
and ``compile_function(profiler=None)`` (the default) costs nothing.
"""

import time

from ..ir.printer import format_function, format_pipeline
from ..ir.stmts import walk


def ir_counts(subject):
    """Size counters for a Function or PipelineProgram."""
    stages = getattr(subject, "stages", None)
    if stages is None:
        return {
            "stmts": sum(1 for _ in walk(subject.body)),
            "stages": 1,
            "queues": 0,
            "ras": 0,
        }
    stmts = sum(1 for stage in stages for _ in walk(stage.body))
    stmts += sum(
        1
        for stage in stages
        for handler in stage.handlers.values()
        for _ in walk(handler)
    )
    return {
        "stmts": stmts,
        "stages": len(stages),
        "queues": len(subject.queues),
        "ras": len(subject.ras),
    }


def _snapshot(subject):
    if getattr(subject, "stages", None) is None:
        return format_function(subject)
    return format_pipeline(subject)


class PassRecord:
    """One instrumented pass: timings, IR deltas, optional snapshots."""

    __slots__ = ("name", "wall_s", "before", "after", "ir_before", "ir_after")

    def __init__(self, name, wall_s, before, after, ir_before=None, ir_after=None):
        self.name = name
        self.wall_s = wall_s
        self.before = before
        self.after = after
        self.ir_before = ir_before
        self.ir_after = ir_after

    def delta(self, key):
        """Signed change a pass made to one counter (e.g. ``"stmts"``)."""
        return self.after.get(key, 0) - self.before.get(key, 0)

    def as_dict(self):
        d = {
            "pass": self.name,
            "wall_s": self.wall_s,
            "before": dict(self.before),
            "after": dict(self.after),
        }
        if self.ir_before is not None:
            d["ir_before"] = self.ir_before
            d["ir_after"] = self.ir_after
        return d

    def __repr__(self):
        return "PassRecord(%s, %.1fms, stmts %+d)" % (
            self.name,
            self.wall_s * 1e3,
            self.delta("stmts"),
        )


class PassProfiler:
    """Records every pass a compilation runs.

    ``snapshots=True`` additionally keeps the printed IR before and after
    each pass (costly on big kernels; meant for ``--profile-passes`` style
    debugging, not for the benchmark hot path).
    """

    def __init__(self, snapshots=False):
        self.snapshots = snapshots
        self.records = []

    def measure(self, name, subject, fn, result_of=None):
        """Run ``fn()`` as pass ``name`` over ``subject``.

        ``subject`` is measured before and after; a pass that *returns* its
        result (rather than mutating in place) passes ``result_of`` to pick
        the object measured afterwards. Returns ``fn()``'s result.
        """
        before = ir_counts(subject)
        ir_before = _snapshot(subject) if self.snapshots else None
        start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - start
        measured = result_of(result) if result_of is not None else subject
        self.records.append(
            PassRecord(
                name,
                wall,
                before,
                ir_counts(measured),
                ir_before,
                _snapshot(measured) if self.snapshots else None,
            )
        )
        return result

    def as_dicts(self):
        """Plain-data view (what :mod:`repro.obs.record` embeds)."""
        return [record.as_dict() for record in self.records]

    def total_wall_s(self):
        return sum(record.wall_s for record in self.records)

    def render(self):
        """ASCII table of the recorded passes."""
        lines = [
            "%-12s %9s %7s %7s %7s %7s"
            % ("pass", "wall", "stmts", "stages", "queues", "RAs")
        ]
        for r in self.records:
            lines.append(
                "%-12s %7.2fms %7s %7s %7s %7s"
                % (
                    r.name,
                    r.wall_s * 1e3,
                    "%+d" % r.delta("stmts"),
                    "%+d" % r.delta("stages"),
                    "%+d" % r.delta("queues"),
                    "%+d" % r.delta("ras"),
                )
            )
        lines.append("total %.2fms over %d passes" % (self.total_wall_s() * 1e3, len(self.records)))
        return "\n".join(lines)
