"""Admission control with a hand-driven clock."""

from repro.service import QUOTA_EXCEEDED, RATE_LIMITED, ClientGovernor, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire(), "burst exhausted"
    clock.advance(1.0)
    assert bucket.try_acquire(), "one token refilled after one second"
    assert not bucket.try_acquire()


def test_bucket_level_capped_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
    clock.advance(1000.0)
    granted = sum(1 for _ in range(10) if bucket.try_acquire())
    assert granted == 3


def test_zero_rate_disables_metering():
    bucket = TokenBucket(rate=0.0, burst=0.0, clock=FakeClock())
    assert all(bucket.try_acquire() for _ in range(100))


def test_governor_rate_limits_third_request():
    clock = FakeClock()
    governor = ClientGovernor(rate=1.0, burst=2.0, quota=0, clock=clock)
    assert governor.admit("alice") == (True, None)
    assert governor.admit("alice") == (True, None)
    assert governor.admit("alice") == (False, RATE_LIMITED)
    # Budgets are per client: bob is unaffected by alice's burn.
    assert governor.admit("bob") == (True, None)
    assert governor.snapshot()["rejected"][RATE_LIMITED] == 1


def test_governor_quota_bounds_in_flight():
    governor = ClientGovernor(rate=0.0, burst=0.0, quota=2, clock=FakeClock())
    assert governor.admit("c")[0] and governor.admit("c")[0]
    assert governor.admit("c") == (False, QUOTA_EXCEEDED)
    governor.release("c")
    assert governor.admit("c") == (True, None)


def test_release_clears_in_flight_entry():
    governor = ClientGovernor(rate=0.0, burst=0.0, quota=2, clock=FakeClock())
    governor.admit("c")
    governor.release("c")
    assert governor.snapshot()["in_flight"] == {}


def test_bucket_peek_refills_without_consuming():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
    assert bucket.try_acquire() and bucket.try_acquire()
    assert bucket.peek() == 2.0
    assert bucket.peek() == 2.0, "peek must not consume"
    clock.advance(1.5)
    assert bucket.peek() == 3.5
    assert bucket.try_acquire()


def test_snapshot_exposes_per_client_bucket_state():
    clock = FakeClock()
    governor = ClientGovernor(rate=1.0, burst=3.0, quota=4, clock=clock)
    governor.admit("alice")
    governor.admit("alice")
    governor.admit("bob")
    snapshot = governor.snapshot()
    assert snapshot["buckets"]["alice"] == {"level": 1.0, "in_flight": 2}
    assert snapshot["buckets"]["bob"] == {"level": 2.0, "in_flight": 1}
    governor.release("alice")
    governor.release("alice")
    clock.advance(10.0)  # refill is capped at burst
    snapshot = governor.snapshot()
    assert snapshot["buckets"]["alice"] == {"level": 3.0, "in_flight": 0}
    assert sorted(snapshot["buckets"]) == snapshot["clients"]
