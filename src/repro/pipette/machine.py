"""The simulated multicore machine: cores, memory, queues, RAs, threads.

:class:`Machine` assembles a simulation from one or more
:class:`~repro.ir.program.PipelineProgram` instances (replicated pipelines
pass several, one per replica), binds arrays to simulated addresses, maps
stages to SMT thread slots, and runs the discrete-event scheduler to
completion. The result carries final array contents, cycle counts, and the
full statistics the evaluation figures need.
"""

from ..errors import ResourceError, SimulationError
from ..ir.verifier import verify_pipeline
from .batchpath import BatchStageInterp
from .fastpath import FastStageInterp, resolve_engine
from .interp import ArrayBinding, StageInterp, ThreadCtx
from .mem import AddressMap, MemorySystem
from .queues import HWQueue
from .refaccel import RAEngine
from .sched import BarrierSync, IssueLedger, Scheduler, SharedCells, Task
from .stats import SimStats


class RunSpec:
    """One pipeline instance to run: program + data bindings + placement.

    ``arrays`` maps array names to Python lists (mutated in place);
    ``scalars`` maps scalar parameter names to values. ``core`` places all
    stages on one core; ``stage_cores`` optionally places stage i on
    ``stage_cores[i]`` (pipelines may span cores, Sec. V).
    """

    def __init__(self, pipeline, arrays, scalars, core=0, stage_cores=None):
        self.pipeline = pipeline
        self.arrays = arrays
        self.scalars = scalars
        self.core = core
        self.stage_cores = stage_cores

    def core_of_stage(self, index):
        if self.stage_cores is not None:
            return self.stage_cores[index]
        return self.core


class RunEnv:
    """Per-replica runtime environment shared by that replica's stages/RAs."""

    def __init__(self, machine, replica_index, spec, stats):
        self.machine = machine
        self.replica_index = replica_index
        self.spec = spec
        self.stats = stats
        self.arrays = {}
        self.queues = {}
        self.shared = None  # installed by the machine (global across replicas)
        self.intrinsics = spec.pipeline.intrinsics
        self.barrier = None  # installed by the machine (global)
        self.core = spec.core
        self.atomic_overhead = 15
        self.stage_cores = {}

    def queue_of(self, interp, qid):
        return self.queues[qid]

    def remote_queue(self, interp, qid, replica):
        """Resolve a distribute target: queue ``qid`` of ``replica``."""
        envs = self.machine.envs
        if not 0 <= replica < len(envs):
            raise SimulationError("enq_dist to replica %d of %d" % (replica, len(envs)))
        target = envs[replica]
        queue = target.queues[qid]
        extra = 0.0
        if target.core_of_queue_consumer(qid) != interp.ctx.core:
            extra = max(0.0, self.machine.config.xcore_queue_latency - queue.latency)
        return queue, extra

    def all_replica_queues(self, interp, qid):
        for replica in range(len(self.machine.envs)):
            yield self.remote_queue(interp, qid, replica)

    def core_of_queue_consumer(self, qid):
        consumer = self.spec.pipeline.queues[qid].consumer
        if consumer[0] == "stage":
            return self.spec.core_of_stage(consumer[1])
        return self.core

    def on_thread_done(self, interp):
        if self.barrier is not None:
            self.barrier.drop_participant()


class SimResult:
    """Outcome of one simulation run."""

    def __init__(self, cycles, stats, envs):
        self.cycles = cycles
        self.stats = stats
        self._envs = envs

    def arrays(self, replica=0):
        """Final array contents (name -> list) of one replica."""
        return {name: b.data for name, b in self._envs[replica].arrays.items()}

    def __repr__(self):
        return "SimResult(%.0f cycles, %d uops)" % (self.cycles, self.stats.total_uops)


def _static_deadlock_verdict(specs):
    """One report line cross-linking the static analyzer's verdict.

    Called only when the scheduler is already raising a deadlock, so cost
    does not matter; imported lazily because the simulator must stay
    importable without the analysis stack.
    """
    try:
        from ..analysis.sanitize import sanitize_pipeline
    except ImportError:  # pragma: no cover - analysis stack always ships
        return None
    findings = []
    for spec in specs:
        try:
            diags = sanitize_pipeline(spec.pipeline)
        except Exception:  # pragma: no cover - a broken pipeline: no verdict
            return None
        findings.extend(
            d for d in diags if d.severity == "error" or d.code.startswith("PHL2")
        )
    if findings:
        return "static analysis predicted this: %s" % "; ".join(
            d.render() for d in findings[:4]
        )
    return (
        "static analysis found no topology cycle or token imbalance; "
        "suspect undersized queues for this input (queue depths come from "
        "pipette.config) or data-dependent token loss"
    )


class Machine:
    """A Pipette multicore machine ready to run pipeline programs.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) opts the whole run into
    cycle-domain event tracing: scheduler spans, stall intervals, queue
    occupancy samples, and RA loads. With the default ``None`` no event
    buffer exists and the simulation is unchanged.

    ``engine`` selects the stage execution engine by name (``"reference"``,
    ``"fastpath"``, ``"batch"``); ``fastpath`` is the legacy boolean spelling
    of the first two. ``None`` defers to ``REPRO_SLOWPATH`` / ``REPRO_ENGINE``
    / each pipeline's ``meta`` (see
    :func:`~repro.pipette.fastpath.resolve_engine`). All engines produce
    bit-identical :class:`SimStats`.
    """

    _ENGINE_CLASSES = {
        "reference": StageInterp,
        "fastpath": FastStageInterp,
        "batch": BatchStageInterp,
    }

    def __init__(self, config, tracer=None, fastpath=None, engine=None):
        self.config = config
        self.stats = None
        self.mem = None
        self.envs = []
        self.tracer = tracer
        self.fastpath = fastpath
        self.engine = engine

    def run(self, specs, barrier_cost=30.0):
        """Run the given :class:`RunSpec` list to completion.

        All specs run concurrently (replicas, or co-scheduled independent
        pipelines); a single global barrier spans every stage thread, which
        is how program phases stay aligned across replicas.
        """
        if isinstance(specs, RunSpec):
            specs = [specs]
        config = self.config
        stats = SimStats()
        self.stats = stats
        self.mem = MemorySystem(config, stats)
        addr_map = AddressMap()
        ledgers = [IssueLedger(config.issue_width) for _ in range(config.cores)]
        tracer = self.tracer
        topology = {"task_replica": {}, "producer": {}, "consumer": {}}
        scheduler = Scheduler(
            tracer=tracer,
            topology=topology,
            deadlock_hint=lambda: _static_deadlock_verdict(specs),
        )
        self.envs = []

        threads_per_core = [0] * config.cores
        stage_tasks = []
        buffer_bases = {}
        # Shared scalar cells span replicas: replicated pipelines exchange
        # per-replica fringe sizes through distinct keys.
        shared_cells = SharedCells()

        for replica, spec in enumerate(specs):
            pipeline = spec.pipeline
            verify_pipeline(pipeline, max_queues=config.max_queues, max_ras=config.max_ras)
            engine = self._ENGINE_CLASSES[
                resolve_engine(pipeline, self.engine, self.fastpath)
            ]
            env = RunEnv(self, replica, spec, stats)
            env.shared = shared_cells
            self.envs.append(env)

            for name, decl in pipeline.arrays.items():
                if name not in spec.arrays:
                    raise SimulationError("run: array %r not bound" % name)
                data = spec.arrays[name]
                key = id(data)
                if key in buffer_bases:
                    base = buffer_bases[key]
                else:
                    base = addr_map.register(
                        "r%d.%s" % (replica, name), len(data) * decl.elem_size
                    )
                    buffer_bases[key] = base
                env.arrays[name] = ArrayBinding(name, data, base, decl.elem_size, decl.is_float)

            for q in pipeline.queues.values():
                latency = config.queue_latency
                prod_core = env.core
                cons_core = env.core
                if q.producer[0] == "stage":
                    prod_core = spec.core_of_stage(q.producer[1])
                if q.consumer[0] == "stage":
                    cons_core = spec.core_of_stage(q.consumer[1])
                if prod_core != cons_core:
                    latency = config.xcore_queue_latency
                env.queues[q.qid] = HWQueue(
                    q.qid,
                    q.capacity,
                    latency,
                    tracer=tracer,
                    label="r%d.q%d" % (replica, q.qid),
                )

            for stage in pipeline.stages:
                core = spec.core_of_stage(stage.index)
                if not 0 <= core < config.cores:
                    raise ResourceError("stage mapped to core %d of %d" % (core, config.cores))
                threads_per_core[core] += 1
                name = "r%d.s%d.%s" % (replica, stage.index, stage.name)
                task = Task(name)
                tstats = stats.new_thread(name)
                ctx = ThreadCtx(config, core, ledgers[core], self.mem, tstats, task, tracer=tracer)
                for pname, value in spec.scalars.items():
                    ctx.regs[pname] = value
                missing = [p for p in pipeline.scalar_params if p not in spec.scalars]
                if missing:
                    raise SimulationError("run: scalar params %s not bound" % missing)
                interp = engine(stage, ctx, env)
                task.clock_ref = lambda c=ctx: c.cursor
                scheduler.add(task, interp.run())
                stage_tasks.append((task, ctx))

            for spec_ra in pipeline.ras:
                name = "r%d.ra%d" % (replica, spec_ra.raid)
                task = Task(name, daemon=True)
                engine = RAEngine(spec_ra, env, task)
                task.clock_ref = lambda e=engine: e.clock
                scheduler.add(task, engine.run())

            # Queue-endpoint topology for the scheduler's deadlock report:
            # which task sits at each end of each queue of this replica.
            stage_names = {
                s.index: "r%d.s%d.%s" % (replica, s.index, s.name)
                for s in pipeline.stages
            }
            ra_names = {r.raid: "r%d.ra%d" % (replica, r.raid) for r in pipeline.ras}
            for name in list(stage_names.values()) + list(ra_names.values()):
                topology["task_replica"][name] = replica
            for q in pipeline.queues.values():
                for role, (ekind, eidx) in (("producer", q.producer), ("consumer", q.consumer)):
                    owner = stage_names.get(eidx) if ekind == "stage" else ra_names.get(eidx)
                    if ekind != "extern" and owner is not None:
                        topology[role][(replica, q.qid)] = owner

        for core, used in enumerate(threads_per_core):
            if used > config.smt_threads:
                raise ResourceError(
                    "core %d assigned %d stage threads but supports %d SMT threads"
                    % (core, used, config.smt_threads)
                )

        barrier = BarrierSync(len(stage_tasks), cost=barrier_cost)
        for env in self.envs:
            env.barrier = barrier

        scheduler.run()

        wall = max((ctx.stats.end_cycle for _, ctx in stage_tasks), default=0.0)
        stats.wall_cycles = wall
        for replica, env in enumerate(self.envs):
            for qid in sorted(env.queues):
                stats.register_queue("r%d.q%d" % (replica, qid), env.queues[qid])
        if tracer is not None:
            tracer.meta.setdefault("wall_cycles", wall)
        return SimResult(wall, stats, self.envs)
