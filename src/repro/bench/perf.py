"""Simulator perf-regression harness (``repro bench perf``).

Times the *simulator itself* — not the simulated programs — by running the
five paper kernels under both execution engines: the closure-compiled fast
path (:mod:`repro.pipette.fastpath`) and the reference interpreter it must
match bit-for-bit. Each run produces a versioned perf record (wall time,
simulated cycles per second, per-phase breakdown) and the set rolls up to
one aggregate speedup, ``sum(slow walls) / sum(fast walls)``.

Records are compared against a committed baseline (``BENCH_pipette.json``
at the repo root):

* **cycles must match the baseline exactly** — a mismatch means the
  simulator's behaviour changed (or went nondeterministic), which is an
  error, never a warning;
* **wall time is hardware-dependent**, so regressions beyond the threshold
  only warn by default (CI boxes are noisy neighbours).

Methodology notes, so the numbers mean the same thing everywhere: inputs
are built from fixed seeds; every run gets a fresh copy of the input
arrays; the GC is collected and disabled around each timed window; each
engine runs ``repeats`` times and the minimum wall time is kept (the
minimum estimates the noise-free cost; means smear scheduler jitter into
the record). Within one invocation every repeat must report identical
cycles — any spread is a determinism bug and fails the run.
"""

import gc
import json
import os
import subprocess
import time

from ..cache import cached_compile
from ..core.compiler import CompileOptions
from .harness import adapter_for

#: Schema identity stamped on every perf record / baseline file.
PERF_SCHEMA = "repro.bench/perf-record"
BASELINE_SCHEMA = "repro.bench/perf-baseline"
PERF_VERSION = 1

#: Default committed baseline, resolved against the working directory.
BASELINE_FILE = "BENCH_pipette.json"

#: History entries kept in a baseline file (oldest dropped beyond this).
HISTORY_LIMIT = 50

#: Fractional wall-time tolerance before a regression warning.
DEFAULT_THRESHOLD = 0.25

#: QUICK-scale inputs: small enough that the whole suite (both engines,
#: several repeats) stays in CI-smoke territory, large enough that each
#: kernel simulates for seconds — at tiny sizes the fixed setup cost
#: (machine build, closure compilation) dilutes the engine ratio.
QUICK_INPUTS = {
    "bfs": ("power_law", {"n": 6000, "deg": 8, "seed": 7}),
    "cc": ("power_law", {"n": 4000, "deg": 8, "seed": 7}),
    "prd": ("power_law", {"n": 2000, "deg": 4, "seed": 7}),
    "radii": ("power_law", {"n": 4000, "deg": 8, "seed": 7}),
    "spmm": ("random_matrix", {"n": 128, "nnz_per_row": 6, "seed": 7}),
}

#: FULL-scale inputs for local, patient measurement runs.
FULL_INPUTS = {
    "bfs": ("power_law", {"n": 20000, "deg": 8, "seed": 7}),
    "cc": ("power_law", {"n": 12000, "deg": 8, "seed": 7}),
    "prd": ("power_law", {"n": 6000, "deg": 4, "seed": 7}),
    "radii": ("power_law", {"n": 12000, "deg": 8, "seed": 7}),
    "spmm": ("random_matrix", {"n": 256, "nnz_per_row": 6, "seed": 7}),
}

SCALES = {"quick": QUICK_INPUTS, "full": FULL_INPUTS}


class PerfError(Exception):
    """A conformance/determinism failure while measuring (never a slowdown)."""


def build_input(spec):
    """Materialize one ``(kind, params)`` input spec deterministically."""
    kind, params = spec
    if kind == "power_law":
        from ..workloads import graphs

        return graphs.power_law(params["n"], params["deg"], seed=params["seed"])
    if kind == "random_matrix":
        from ..workloads import matrices

        return matrices.random_matrix(
            params["n"], params["nnz_per_row"], seed=params["seed"]
        )
    raise PerfError("unknown input kind %r" % (kind,))


def input_label(spec):
    kind, params = spec
    inner = ",".join("%s=%s" % (k, params[k]) for k in sorted(params))
    return "%s(%s)" % (kind, inner)


def _timed_run(pipeline, arrays, scalars, fastpath):
    """One timed simulation: fresh input copy, GC quiesced, wall + result."""
    from ..runtime.executor import run_pipeline

    fresh = {name: list(values) for name, values in arrays.items()}
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_pipeline(pipeline, fresh, dict(scalars), fastpath=fastpath)
        wall = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return result, wall


def measure_bench(bench, scale="quick", repeats=2):
    """Measure one kernel under both engines; returns a perf record dict.

    Raises :class:`PerfError` when the engines disagree on any
    :meth:`~repro.pipette.stats.SimStats.summary` field or when repeated
    runs of one engine disagree on cycles.
    """
    spec = SCALES[scale][bench]
    phase_start = time.perf_counter()
    data = build_input(spec)
    input_s = time.perf_counter() - phase_start

    adapter = adapter_for(bench)
    arrays, scalars = adapter.env(data)
    phase_start = time.perf_counter()
    pipeline = cached_compile(adapter.function(), CompileOptions())
    compile_s = time.perf_counter() - phase_start

    walls = {True: [], False: []}
    results = {True: None, False: None}
    for _ in range(max(1, repeats)):
        # Alternate engines within each repeat so slow drift (thermal,
        # neighbours) hits both sides of the ratio evenly.
        for fastpath in (False, True):
            result, wall = _timed_run(pipeline, arrays, scalars, fastpath)
            walls[fastpath].append(wall)
            previous = results[fastpath]
            if previous is not None and previous.cycles != result.cycles:
                raise PerfError(
                    "%s: %s engine is nondeterministic (cycles %r then %r)"
                    % (
                        bench,
                        "fast" if fastpath else "reference",
                        previous.cycles,
                        result.cycles,
                    )
                )
            results[fastpath] = result

    slow, fast = results[False], results[True]
    if slow.stats.summary() != fast.stats.summary() or slow.cycles != fast.cycles:
        raise PerfError(
            "%s: fast path diverged from the reference interpreter "
            "(run both under tests/pipette/test_fastpath_conformance.py "
            "to localize)" % bench
        )

    # Rounded before deriving ratios, so the record is internally
    # consistent: recomputing speedup from the stored walls reproduces the
    # stored speedup.
    slow_wall = round(min(walls[False]), 4)
    fast_wall = round(min(walls[True]), 4)
    cycles = fast.cycles
    return {
        "schema": PERF_SCHEMA,
        "version": PERF_VERSION,
        "bench": bench,
        "scale": scale,
        "input": input_label(spec),
        "repeats": max(1, repeats),
        "cycles": cycles,
        "slow_wall_s": round(slow_wall, 4),
        "fast_wall_s": round(fast_wall, 4),
        "speedup": round(slow_wall / fast_wall, 3),
        "sim_mcycles_per_s": round(cycles / fast_wall / 1e6, 3),
        "phases": {
            "input_s": round(input_s, 4),
            "compile_s": round(compile_s, 4),
            "sim_slow_s": round(slow_wall, 4),
            "sim_fast_s": round(fast_wall, 4),
        },
    }


def aggregate(records):
    """Roll records up to the headline ratio: total slow wall / total fast."""
    slow = sum(r["slow_wall_s"] for r in records)
    fast = sum(r["fast_wall_s"] for r in records)
    return {
        "slow_wall_s": round(slow, 4),
        "fast_wall_s": round(fast, 4),
        "speedup": round(slow / fast, 3) if fast else 0.0,
    }


def run_perf(benches=None, scale="quick", repeats=2, jobs=1):
    """Measure ``benches`` (default: all five); returns the record list.

    ``jobs > 1`` fans kernels out over the :mod:`repro.bench.parallel`
    worker pool. Cycles are unaffected (that is what the determinism tests
    pin down); wall times measured under contention are only comparable to
    other contended runs, so baselines should be recorded with ``jobs=1``.
    """
    if benches is None:
        benches = sorted(SCALES[scale])
    if jobs > 1:
        from .parallel import Job, run_jobs

        job_list = [
            Job(("perf", scale, bench), measure_bench, bench, scale, repeats)
            for bench in benches
        ]
        return [res.value for res in run_jobs(job_list, workers=jobs)]
    return [measure_bench(bench, scale, repeats) for bench in benches]


def baseline_payload(records, scale):
    return {
        "schema": BASELINE_SCHEMA,
        "version": PERF_VERSION,
        "scale": scale,
        "records": records,
        "aggregate": aggregate(records),
    }


def git_describe(cwd=None):
    """The working tree's ``git describe`` identity, or ``"unknown"``.

    Keys history entries: two updates from the same commit replace each
    other instead of piling up.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    text = out.stdout.strip()
    return text if out.returncode == 0 and text else "unknown"


def history_entry(records, scale, git=None, engine="fastpath"):
    """One compact trajectory point for the baseline's ``history`` list."""
    return {
        "git": git_describe() if git is None else git,
        "engine": engine,
        "scale": scale,
        "recorded": time.strftime("%Y-%m-%d", time.gmtime()),
        "aggregate": aggregate(records),
        "benches": {
            r["bench"]: {
                "cycles": r["cycles"],
                "fast_wall_s": r["fast_wall_s"],
                "slow_wall_s": r["slow_wall_s"],
                "speedup": r["speedup"],
                "sim_mcycles_per_s": r["sim_mcycles_per_s"],
            }
            for r in records
        },
    }


def append_history(history, entry, limit=HISTORY_LIMIT):
    """``history`` plus ``entry``, replacing any same-key prior point.

    The key is ``(engine, git, scale)`` — re-recording from the same
    commit updates that point in place (walls drift with the machine),
    while a new commit appends a new trajectory point.
    """
    key = (entry.get("engine"), entry.get("git"), entry.get("scale"))
    kept = [
        e
        for e in history
        if (e.get("engine"), e.get("git"), e.get("scale")) != key
    ]
    kept.append(entry)
    return kept[-limit:]


def write_baseline(records, scale, path=BASELINE_FILE, git=None):
    """Write the regression baseline, growing its measurement history.

    The top-level ``records``/``aggregate`` are always the *latest*
    measurement (the regression baseline the checker reads); ``history``
    accumulates one compact entry per ``(engine, git, scale)`` so the
    report's trajectory sparklines have real data. A pre-history baseline
    file contributes its records as one synthesized point before being
    superseded.
    """
    history = []
    if os.path.exists(path):
        try:
            previous = read_baseline(path)
        except (PerfError, ValueError, OSError):
            previous = None
        if previous is not None:
            history = list(previous.get("history") or [])
            if not history and previous.get("records"):
                history = [
                    history_entry(
                        previous["records"], previous.get("scale"), git="(pre-history)"
                    )
                ]
    payload = baseline_payload(records, scale)
    payload["history"] = append_history(history, history_entry(records, scale, git=git))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def read_baseline(path=BASELINE_FILE):
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise PerfError("%s: not a %s file" % (path, BASELINE_SCHEMA))
    return payload


def check_against_baseline(records, baseline, threshold=DEFAULT_THRESHOLD):
    """Compare fresh records to a baseline; returns ``(errors, warnings)``.

    Errors are behaviour changes (cycle counts differ from the committed
    baseline — the simulator no longer computes the same timing, or has
    gone nondeterministic). Warnings are wall-time movements beyond
    ``threshold``, which may just be the machine.
    """
    errors, warnings = [], []
    by_bench = {r["bench"]: r for r in baseline.get("records", [])}
    for record in records:
        base = by_bench.get(record["bench"])
        if base is None:
            warnings.append("%s: no baseline record" % record["bench"])
            continue
        if base.get("scale") != record["scale"] or base.get("input") != record["input"]:
            warnings.append(
                "%s: baseline measured %s at scale %s, current is %s at %s; "
                "skipping comparison"
                % (
                    record["bench"],
                    base.get("input"),
                    base.get("scale"),
                    record["input"],
                    record["scale"],
                )
            )
            continue
        if base["cycles"] != record["cycles"]:
            errors.append(
                "%s: simulated cycles changed from baseline (%r -> %r); "
                "timing behaviour moved — if intentional, re-record with "
                "--update-baseline"
                % (record["bench"], base["cycles"], record["cycles"])
            )
        limit = base["fast_wall_s"] * (1.0 + threshold)
        if record["fast_wall_s"] > limit:
            warnings.append(
                "%s: fast-path wall %.3fs exceeds baseline %.3fs by more "
                "than %d%%"
                % (
                    record["bench"],
                    record["fast_wall_s"],
                    base["fast_wall_s"],
                    round(threshold * 100),
                )
            )
        if record["speedup"] < base["speedup"] * (1.0 - threshold):
            warnings.append(
                "%s: speedup %.2fx fell more than %d%% below baseline %.2fx"
                % (
                    record["bench"],
                    record["speedup"],
                    round(threshold * 100),
                    base["speedup"],
                )
            )
    return errors, warnings


def render_table(records, agg):
    """Human-readable summary table (stdout payload of ``bench perf``)."""
    lines = []
    header = "%-7s %-6s %12s %9s %9s %8s %10s" % (
        "bench", "scale", "cycles", "slow(s)", "fast(s)", "speedup", "Mcyc/s",
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in records:
        lines.append(
            "%-7s %-6s %12.0f %9.3f %9.3f %7.2fx %10.2f"
            % (
                r["bench"],
                r["scale"],
                r["cycles"],
                r["slow_wall_s"],
                r["fast_wall_s"],
                r["speedup"],
                r["sim_mcycles_per_s"],
            )
        )
    lines.append("-" * len(header))
    lines.append(
        "%-7s %-6s %12s %9.3f %9.3f %7.2fx"
        % (
            "total", "", "", agg["slow_wall_s"], agg["fast_wall_s"], agg["speedup"],
        )
    )
    return "\n".join(lines)


def obs_records(records):
    """Perf results as :mod:`repro.obs.record` RunRecords (one per engine)."""
    from ..obs.record import run_record

    out = []
    for r in records:
        for variant, wall in (
            ("engine-reference", r["slow_wall_s"]),
            ("engine-fastpath", r["fast_wall_s"]),
        ):
            out.append(
                run_record(
                    r["bench"],
                    variant,
                    r["input"],
                    r["cycles"],
                    ok=True,
                    extra={
                        "wall_s": wall,
                        "perf_scale": r["scale"],
                        "perf_speedup": r["speedup"],
                    },
                )
            )
    return out


def run_cli(args):
    """``repro bench perf`` driver; returns ``(status, records)``.

    ``args`` is any object with the perf options as attributes — the
    argparse namespace of the one-shot CLI or a
    :class:`repro.api.BenchPerfRequest` (which carries ``scale`` directly
    instead of the ``--quick``/``--full`` flag pair).
    """
    from ..obs import log

    scale = getattr(args, "scale", None)
    if scale not in SCALES:
        scale = "full" if getattr(args, "full", False) else "quick"
        if getattr(args, "quick", False):
            scale = "quick"
    benches = list(args.benches) or None
    started = time.perf_counter()
    try:
        records = run_perf(
            benches=benches, scale=scale, repeats=args.repeats, jobs=args.jobs or 1
        )
    except PerfError as exc:
        print("perf: ERROR: %s" % exc)
        return 1, []
    agg = aggregate(records)

    if args.json:
        print(json.dumps(baseline_payload(records, scale), indent=2, sort_keys=True))
    else:
        print(render_table(records, agg))

    if args.metrics_out:
        from ..obs.record import write_jsonl

        write_jsonl(obs_records(records), args.metrics_out)
        log("perf: %d RunRecords -> %s", 2 * len(records), args.metrics_out)

    status = 0
    if args.update_baseline:
        payload = write_baseline(records, scale, path=args.baseline)
        # Advisory chatter goes through the obs.log funnel (stderr,
        # silenced by --quiet/REPRO_QUIET) — the table/JSON above is the
        # stdout payload; errors below stay on stdout because they *are*
        # the result of a failed check.
        log(
            "perf: baseline updated -> %s (%d history points)",
            args.baseline,
            len(payload.get("history", [])),
        )
    elif args.check_baseline:
        if not os.path.exists(args.baseline):
            print("perf: ERROR: baseline %s not found" % args.baseline)
            return 1, records
        try:
            baseline = read_baseline(args.baseline)
        except (PerfError, ValueError) as exc:
            print("perf: ERROR: %s" % exc)
            return 1, records
        errors, warnings = check_against_baseline(
            records, baseline, threshold=args.threshold
        )
        strict = getattr(args, "strict", False)
        for line in warnings:
            # Warnings are telemetry unless --strict promotes them to the
            # failure payload.
            if strict:
                print("perf: WARNING: %s" % line)
            else:
                log("perf: WARNING: %s", line)
        for line in errors:
            print("perf: ERROR: %s" % line)
        if errors:
            status = 1
        elif strict and warnings:
            status = 1
        else:
            log(
                "perf: baseline check ok (%d records, aggregate %.2fx vs "
                "baseline %.2fx)",
                len(records), agg["speedup"], baseline["aggregate"]["speedup"],
            )
    log("perf: %.1fs total", time.perf_counter() - started)
    return status, records


def main_cli(args):
    """Status-only wrapper over :func:`run_cli` (the original entry point)."""
    status, _records = run_cli(args)
    return status
