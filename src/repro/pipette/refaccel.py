"""Reference accelerator (RA) engines (Pipette Sec. III, "Offloading
memory accesses").

An RA is a runtime-configured FSM that interposes on the queue interface:
it dequeues values from its input queue, launches the configured memory
accesses (INDIRECT: value is an index; SCAN: value pairs are start/end of a
linear sweep), and delivers loaded elements *in order* to its output queue.
It can keep several loads in flight (``ra_mshrs``), which is where the
memory-level parallelism of a decoupled pipeline comes from.

Chaining (the paper's extension for e.g. BFS's nodes->edges indirection
sequence) needs no special support here: a chained RA is simply an RA whose
input queue is another RA's output queue.

RAs run as daemon tasks: they loop forever and the simulation ends when all
stage threads are done. Control values are forwarded downstream unchanged
so end-of-stream markers survive offloading.

``run()`` is a single generator with the queue fast paths inlined: an RA
moves one value per resume in steady state, so paying a fresh sub-generator
(plus ``yield from`` plumbing) per value tripled the interpreter overhead
of every offloaded load. Only the *blocked* branches remain loops around
``yield BLOCKED``; the logic and timing arithmetic are unchanged.

Hot engine state lives in frame locals while the generator runs: the front
clock (externally visible through ``task.clock_ref``), the in-order
delivery watermark, and the shared counters (``ra_loads``, queue
enq/deq totals, output occupancy high-water). Locals are flushed back
before **every** ``yield`` — the only points where the scheduler, other
tasks, or stats collection can observe the engine — so external state is
reference-identical at every observable instant. Counters flush additively
(``+=`` deltas / max-merge) because the blocked retry paths go through the
real queue methods, which update the shared attributes directly.
"""

from collections import deque

from ..errors import SimulationError
from ..ir.program import RA_INDIRECT, RA_SCAN
from ..ir.values import Ctrl, is_control
from .sched import BLOCKED


class RAEngine:
    """One reference accelerator instance bound to a simulation run."""

    def __init__(self, spec, env, task):
        self.spec = spec
        self.env = env
        self.task = task
        self.clock = 0.0
        self.inflight = deque()  # completion times of outstanding loads
        self.last_delivery = 0.0
        self.tracer = env.machine.tracer

    def next_event_cycle(self):
        """Event-horizon contract: the earliest cycle the RA front clock can
        sit at. The clock is the baseline; with all MSHRs in flight the next
        accepted request would first wait for the oldest completion — the
        same closed form the issue loop advances the clock by. Meaningful
        between resumes (``run`` flushes ``self.clock`` before yielding)."""
        t = self.clock
        inflight = self.inflight
        if len(inflight) >= self.env.machine.config.ra_mshrs and inflight[0] > t:
            t = inflight[0]
        return t

    def run(self):
        """Main RA loop (a daemon task generator).

        ``self.clock`` is the engine's *front* clock: it advances with input
        consumption and load issue, throttled only by the MSHR bound, so up
        to ``ra_mshrs`` loads overlap — the memory-level parallelism an RA
        exists to provide. Deliveries carry their own (in-order) timestamps.
        """
        env = self.env
        spec = self.spec
        task = self.task
        in_queue = env.queues[spec.in_queue]
        out_queue = env.queues[spec.out_queue]
        try_deq = in_queue.try_deq
        try_enq = out_queue.try_enq
        deq_block = ("ra-deq", in_queue.qid)
        enq_block = ("ra-enq", out_queue.qid)
        binding = env.arrays.get(spec.array[1:] if spec.array.startswith("@") else spec.array)
        if binding is None:
            raise SimulationError("RA %d bound to unknown array %s" % (spec.raid, spec.array))
        scan = spec.mode == RA_SCAN
        if not scan and spec.mode != RA_INDIRECT:
            raise SimulationError("RA %d: unknown mode %r" % (spec.raid, spec.mode))
        tracer = self.tracer
        tname = task.name
        stats = env.stats
        inflight = self.inflight
        mshr_cap = env.machine.config.ra_mshrs
        core = env.core
        base = binding.base
        esize = binding.elem_size
        data = binding.data
        sname = binding.name
        # Inline L1 lookup + prefetch observation (MemorySystem.access):
        # same block the fast-path load closures use; only the below-L1
        # miss walk stays a call. Tag state and counters match exactly.
        mem = env.machine.mem
        mcfg = mem.config
        shift = mem.LINE_SHIFT
        l1 = mem.l1[core]
        l1_sets = l1.sets
        scount = l1.sets_count
        l1_ways = l1.ways
        l1_stats = l1.stats
        l1_lat = mcfg.l1.latency
        l2 = mem.l2[core]
        l2_sets = l2.sets
        l2_scount = l2.sets_count
        l2_ways = l2.ways
        l2_stats = l2.stats
        l2_lat = mcfg.l2.latency
        pf_on = mcfg.prefetch_enabled
        pf_deg = mcfg.prefetch_degree
        below_l2 = mem.miss_below_l2
        pf_streams = mem.prefetchers[core].streams
        max_stride = mem.prefetchers[core].MAX_STRIDE
        prefetch_one = mem._prefetch
        # Inline queue fast paths (queues.py try_deq/try_enq): the RA moves
        # one value per iteration in steady state, so the per-value call
        # overhead is pure dispatch tax. Blocked/retry paths keep the calls.
        in_entries = in_queue.entries
        in_slot_free = in_queue.slot_free
        in_tracer = in_queue.tracer
        out_slot_free = out_queue.slot_free
        out_entries = out_queue.entries
        out_lat = out_queue.latency
        out_tracer = out_queue.tracer
        # Frame-local engine state + shared-counter deltas (see module
        # docstring); flushed before every yield.
        clock = self.clock
        last_del = self.last_delivery
        ral = 0  # stats.ra_loads delta
        ind = 0  # in_queue.total_deqs delta
        oute = 0  # out_queue.total_enqs delta
        out_mo = out_queue.max_occupancy

        while True:
            # deq one input value (blocking); try_deq inlined
            if in_entries:
                value, avail = in_entries.popleft()
                t = avail if avail > clock else clock
                in_slot_free.append(t)
                ind += 1
                if in_tracer is not None:
                    in_tracer.counter(in_queue.label, t, len(in_entries))
                if in_queue.waiting_producers:
                    waiters = in_queue.waiting_producers
                    in_queue.waiting_producers = []
                    for waiter in waiters:
                        waiter.wake()
            else:
                in_queue.empty_blocks += 1
                self.clock = clock
                self.last_delivery = last_del
                stats.ra_loads += ral
                ral = 0
                in_queue.total_deqs += ind
                ind = 0
                out_queue.total_enqs += oute
                oute = 0
                if out_mo > out_queue.max_occupancy:
                    out_queue.max_occupancy = out_mo
                res = None
                while res is None:
                    task.block(deq_block)
                    in_queue.waiting_consumers.append(task)
                    yield BLOCKED
                    res = try_deq(clock)
                value, t = res
            if t > clock:
                clock = t

            if type(value) is Ctrl:
                if spec.forward_ctrl:
                    # forward the marker downstream (blocking enq)
                    t = try_enq(clock, value)
                    if t is None:
                        self.clock = clock
                        self.last_delivery = last_del
                        stats.ra_loads += ral
                        ral = 0
                        in_queue.total_deqs += ind
                        ind = 0
                        out_queue.total_enqs += oute
                        oute = 0
                        if out_mo > out_queue.max_occupancy:
                            out_queue.max_occupancy = out_mo
                        while t is None:
                            task.block(enq_block)
                            out_queue.waiting_producers.append(task)
                            yield BLOCKED
                            t = try_enq(clock, value)
                    if t > clock:
                        clock = t
                continue

            if scan:
                # second half of the (start, end) pair
                res = try_deq(clock)
                if res is None:
                    self.clock = clock
                    self.last_delivery = last_del
                    stats.ra_loads += ral
                    ral = 0
                    in_queue.total_deqs += ind
                    ind = 0
                    out_queue.total_enqs += oute
                    oute = 0
                    if out_mo > out_queue.max_occupancy:
                        out_queue.max_occupancy = out_mo
                    while res is None:
                        task.block(deq_block)
                        in_queue.waiting_consumers.append(task)
                        yield BLOCKED
                        res = try_deq(clock)
                end, t = res
                if t > clock:
                    clock = t
                if is_control(end):
                    raise SimulationError(
                        "RA %d (scan): control value arrived mid-pair" % spec.raid
                    )
                indices = range(value, end)
            else:
                indices = (value,)

            for index in indices:
                # issue one load: MSHR throttle, L1 lookup, in-order delivery
                if len(inflight) >= mshr_cap:
                    oldest = inflight.popleft()
                    if oldest > clock:
                        clock = oldest
                start = clock
                addr = base + index * esize
                line = addr >> shift
                sindex = line % scount
                tag = line // scount
                entry = l1_sets.get(sindex)
                if entry is not None and entry[0] == tag:
                    l1_stats.hits += 1
                    latency = l1_lat
                elif entry is not None and tag in entry:
                    pos = entry.index(tag, 1)
                    del entry[pos]
                    entry.insert(0, tag)
                    l1_stats.hits += 1
                    latency = l1_lat
                else:
                    if entry is None:
                        l1_sets[sindex] = [tag]
                    else:
                        entry.insert(0, tag)
                        if len(entry) > l1_ways:
                            entry.pop()
                    l1_stats.misses += 1
                    # L2 lookup inlined too (Cache.access, same discipline
                    # as the L1 block); only the below-L2 walk is a call.
                    s2 = line % l2_scount
                    t2 = line // l2_scount
                    e2 = l2_sets.get(s2)
                    if e2 is not None and e2[0] == t2:
                        l2_stats.hits += 1
                        latency = l2_lat
                    elif e2 is not None and t2 in e2:
                        pos = e2.index(t2, 1)
                        del e2[pos]
                        e2.insert(0, t2)
                        l2_stats.hits += 1
                        latency = l2_lat
                    else:
                        if e2 is None:
                            l2_sets[s2] = [t2]
                        else:
                            e2.insert(0, t2)
                            if len(e2) > l2_ways:
                                e2.pop()
                        l2_stats.misses += 1
                        latency = below_l2(core, line, start)
                if pf_on:
                    # stride observe (_StreamTable.observe, mem.py), inlined
                    sentry = pf_streams.get(sname)
                    if sentry is None:
                        pf_streams[sname] = (line, 0, 0)
                    else:
                        last_line, pstride, prun = sentry
                        delta = line - last_line
                        if delta != 0:
                            if delta == pstride and 0 < abs(pstride) <= max_stride:
                                prun = prun + 1 if prun < 8 else 8
                                pf_streams[sname] = (line, pstride, prun)
                                if prun >= 2:
                                    later = start + latency
                                    for k in range(1, pf_deg + 1):
                                        prefetch_one(core, line + pstride * k, later)
                            else:
                                pf_streams[sname] = (line, delta, 1)
                completion = start + latency
                if tracer is not None:
                    tracer.ra_load(tname, start, completion)
                inflight.append(completion)
                clock += 1  # one engine slot per accepted request
                try:
                    loaded = data[index]
                except IndexError:
                    raise SimulationError(
                        "RA %d: load %s[%d] out of bounds (len %d)"
                        % (spec.raid, spec.array, index, len(data))
                    )
                delivery = last_del
                if completion > delivery:
                    delivery = completion
                ral += 1
                # enq the delivery (blocking); try_enq inlined
                if out_slot_free:
                    freed_at = out_slot_free.popleft()
                    t = freed_at if freed_at > delivery else delivery
                    out_entries.append((loaded, t + out_lat))
                    oute += 1
                    occupancy = len(out_entries)
                    if occupancy > out_mo:
                        out_mo = occupancy
                    if out_tracer is not None:
                        out_tracer.counter(out_queue.label, t, occupancy)
                    if out_queue.waiting_consumers:
                        waiters = out_queue.waiting_consumers
                        out_queue.waiting_consumers = []
                        for waiter in waiters:
                            waiter.wake()
                else:
                    out_queue.full_blocks += 1
                    self.clock = clock
                    self.last_delivery = last_del
                    stats.ra_loads += ral
                    ral = 0
                    in_queue.total_deqs += ind
                    ind = 0
                    out_queue.total_enqs += oute
                    oute = 0
                    if out_mo > out_queue.max_occupancy:
                        out_queue.max_occupancy = out_mo
                    t = None
                    while t is None:
                        task.block(enq_block)
                        out_queue.waiting_producers.append(task)
                        yield BLOCKED
                        t = try_enq(delivery, loaded)
                last_del = delivery if delivery > t else t
                if t > delivery and t - latency > clock:
                    # Output backpressure: stall the front correspondingly.
                    clock = t - latency
