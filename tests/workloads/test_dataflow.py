"""The dataflow-style baseline: correct, and not faster than serial."""

from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs
from repro.workloads.dataflow import dataflow_variant


def test_dataflow_correct(tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    pipe = dataflow_variant(bfs.function())
    result = run_pipeline(pipe, arrays, scalars, config=tiny_config)
    assert bfs.check(result.arrays, tiny_graph)


def test_dataflow_not_faster_than_serial(tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    serial = run_serial(bfs.function(), arrays, scalars, config=tiny_config)
    df = run_pipeline(dataflow_variant(bfs.function()), arrays, scalars, config=tiny_config)
    assert df.cycles >= serial.cycles * 0.95  # at best break-even


def test_dataflow_meta_flag():
    pipe = dataflow_variant(bfs.function())
    assert pipe.meta["dataflow"]
    assert pipe.name.endswith("_dataflow")
