"""Graph substrate: CSR graphs and synthetic generators.

The paper's inputs (Table IV) are real road networks, internet topologies,
collaboration and simulation graphs. Those files are unavailable offline,
so each generator below reproduces the *statistics that drive performance
behaviour* — degree distribution, diameter class, and scale — for its
domain:

* ``road_network`` — near-planar grid with diagonals removed; low uniform
  degree (~2.5-3), huge diameter. Stands in for USA-road-d.* inputs.
* ``power_law`` — preferential-attachment; heavy-tailed degrees, tiny
  diameter. Stands in for as-Skitter / internet / coAuthors inputs.
* ``mesh3d`` — 3-D lattice; uniform degree ~6, large diameter. Stands in
  for hugetrace/Freescale simulation graphs.
* ``uniform_random`` — Erdős–Rényi-ish fixed out-degree, used for
  miscellaneous tests.

All generators are deterministic given a seed.
"""

import random


class CSRGraph:
    """Compressed Sparse Row graph (paper Sec. II, Fig. 1)."""

    __slots__ = ("n", "nodes", "edges")

    def __init__(self, n, nodes, edges):
        if len(nodes) != n + 1:
            raise ValueError("nodes array must have n+1 entries")
        self.n = n
        self.nodes = nodes  # offsets, len n+1
        self.edges = edges  # neighbor ids, len m

    @property
    def m(self):
        return len(self.edges)

    @property
    def avg_degree(self):
        return self.m / self.n if self.n else 0.0

    def neighbors(self, v):
        return self.edges[self.nodes[v] : self.nodes[v + 1]]

    def degree(self, v):
        return self.nodes[v + 1] - self.nodes[v]

    @classmethod
    def from_adjacency(cls, adj):
        nodes = [0]
        edges = []
        for neighbors in adj:
            edges.extend(neighbors)
            nodes.append(len(edges))
        return cls(len(adj), nodes, edges)

    def __repr__(self):
        return "CSRGraph(n=%d, m=%d, deg=%.1f)" % (self.n, self.m, self.avg_degree)


def road_network(width, height, seed=0):
    """Grid-like road network: degree <= 4 with ~20%% of edges removed."""
    rng = random.Random(seed)
    n = width * height
    adj = [[] for _ in range(n)]

    def vid(x, y):
        return y * width + x

    for y in range(height):
        for x in range(width):
            v = vid(x, y)
            if x + 1 < width and rng.random() > 0.2:
                w = vid(x + 1, y)
                adj[v].append(w)
                adj[w].append(v)
            if y + 1 < height and rng.random() > 0.2:
                w = vid(x, y + 1)
                adj[v].append(w)
                adj[w].append(v)
    return CSRGraph.from_adjacency(adj)


def power_law(n, edges_per_vertex=8, seed=0):
    """Preferential-attachment graph with heavy-tailed degrees."""
    rng = random.Random(seed)
    adj = [[] for _ in range(n)]
    targets = []
    for v in range(n):
        batch = min(edges_per_vertex, max(1, v))
        chosen = set()
        for _ in range(batch):
            if targets and rng.random() < 0.75:
                w = targets[rng.randrange(len(targets))]
            else:
                w = rng.randrange(max(1, v)) if v else 0
            if w != v:
                chosen.add(w)
        for w in chosen:
            adj[v].append(w)
            adj[w].append(v)
            targets.append(w)
            targets.append(v)
    return CSRGraph.from_adjacency(adj)


def mesh3d(side, seed=0):
    """3-D lattice: uniform degree ~6, large diameter."""
    n = side**3
    adj = [[] for _ in range(n)]

    def vid(x, y, z):
        return (z * side + y) * side + x

    for z in range(side):
        for y in range(side):
            for x in range(side):
                v = vid(x, y, z)
                if x + 1 < side:
                    w = vid(x + 1, y, z)
                    adj[v].append(w)
                    adj[w].append(v)
                if y + 1 < side:
                    w = vid(x, y + 1, z)
                    adj[v].append(w)
                    adj[w].append(v)
                if z + 1 < side:
                    w = vid(x, y, z + 1)
                    adj[v].append(w)
                    adj[w].append(v)
    return CSRGraph.from_adjacency(adj)


def uniform_random(n, degree=6, seed=0):
    """Fixed out-degree random graph."""
    rng = random.Random(seed)
    adj = [[rng.randrange(n) for _ in range(degree)] for _ in range(n)]
    return CSRGraph.from_adjacency(adj)
