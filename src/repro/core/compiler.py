"""The Phloem compiler driver.

``compile_function`` turns a serial :class:`~repro.ir.Function` into a
:class:`~repro.ir.PipelineProgram` by running the paper's passes in order:

1. decouple + add queues (Sec. IV-B pass 1, always on),
2. recompute (pass 2),
3. use control values (pass 4),
4. inter-stage dead code elimination (pass 6),
5. control-value handlers (pass 5),
6. accelerate accesses with RAs + chaining (pass 3).

RA offloading runs last because chaining feeds on the streamlined queue
protocol the control-value passes leave behind; the *pass set* is exposed
so the Fig. 6 ablation can reproduce each intermediate configuration.
"""

from ..errors import CompileError
from ..frontend.lowering import compile_source
from ..ir.stmts import walk
from ..ir.verifier import verify_pipeline
from .accelerate import apply_reference_accelerators
from .cleanup import cleanup_stage
from .ctrl import apply_control_handlers, apply_control_values, apply_interstage_dce
from .decouple import decouple_function, drop_trivial_stages
from .recompute import apply_recompute

#: Every optional pass, in application order. "queues" (pass 1) is implied
#: by decoupling itself and always on.
ALL_PASSES = ("recompute", "cv", "dce", "handlers", "ra")


def _remove_dead_queues(pipeline):
    """Delete point-to-point queues whose dequeued value is never used."""
    changed = True
    while changed:
        changed = False
        for qid in list(pipeline.queues):
            enqs, deqs, others = [], [], []
            for stage in pipeline.stages:
                for stmt in stage.all_stmts():
                    if getattr(stmt, "queue", None) != qid:
                        continue
                    if stmt.kind == "enq":
                        enqs.append((stage, stmt))
                    elif stmt.kind == "deq":
                        deqs.append((stage, stmt))
                    else:
                        others.append((stage, stmt))
            if others or len(enqs) != 1 or len(deqs) != 1:
                continue
            cons_stage, deq = deqs[0]
            used = any(
                deq.dst in stmt.uses() for stmt in cons_stage.all_stmts() if stmt is not deq
            )
            if used:
                continue
            _strip(cons_stage.body, deq)
            _strip(enqs[0][0].body, enqs[0][1])
            del pipeline.queues[qid]
            changed = True
    return pipeline


def _strip(body, target):
    kept = []
    for stmt in body:
        if stmt is target:
            continue
        for block in stmt.blocks():
            _strip(block, target)
        kept.append(stmt)
    body[:] = kept


def compile_function(
    function,
    num_stages=4,
    passes=ALL_PASSES,
    max_ras=4,
    queue_capacity=24,
    max_queues=16,
    point_indices=None,
):
    """Compile a serial function into a pipeline with up to ``num_stages`` stages.

    ``point_indices`` selects specific ranked decoupling points (the
    profile-guided search drives this); by default the static cost model's
    top choices are used.
    """
    if num_stages < 1:
        raise CompileError("num_stages must be >= 1")
    passes = tuple(passes)
    for name in passes:
        if name not in ALL_PASSES:
            raise CompileError("unknown pass %r" % name)

    pipeline, _points = decouple_function(
        function, num_stages - 1, capacity=queue_capacity, point_indices=point_indices
    )

    if "recompute" in passes:
        apply_recompute(pipeline)
    if "cv" in passes:
        apply_control_values(pipeline)
    if "dce" in passes:
        apply_interstage_dce(pipeline)
    if "handlers" in passes:
        apply_control_handlers(pipeline)
    if "ra" in passes:
        # Clean first: the chain matcher wants copy-propagated plumbing.
        for stage in pipeline.stages:
            cleanup_stage(stage)
        apply_reference_accelerators(pipeline, max_ras=max_ras, capacity=queue_capacity)

    _remove_dead_queues(pipeline)
    for stage in pipeline.stages:
        cleanup_stage(stage)
    drop_trivial_stages(pipeline)
    pipeline.meta["requested_stages"] = num_stages
    pipeline.meta["pass_set"] = list(passes)
    if function.pragmas.get("replicate"):
        # `#pragma replicate N`: record the request; the caller materializes
        # the replicas with core.replicate.replicate_pipeline (Sec. IV-C).
        pipeline.meta["replicate"] = function.pragmas["replicate"]
    verify_pipeline(pipeline, max_queues=max_queues, max_ras=max_ras)
    return pipeline


def compile_c(source, name=None, num_stages=4, passes=ALL_PASSES, **kwargs):
    """Parse mini-C source and compile the (named) kernel into a pipeline."""
    function = compile_source(source, name=name)
    return compile_function(function, num_stages=num_stages, passes=passes, **kwargs)


def pipeline_summary(pipeline):
    """One-line description used by the evaluation harness logs."""
    stmts = sum(1 for stage in pipeline.stages for _ in walk(stage.body))
    return "%s: %d stages + %d RAs, %d queues, %d stmts" % (
        pipeline.name,
        len(pipeline.stages),
        len(pipeline.ras),
        len(pipeline.queues),
        stmts,
    )
