"""Backward slicing across a region tree."""

from repro import ir
from repro.analysis.slicing import backward_slice


def test_simple_chain():
    body = [
        ir.Assign("a", "mov", [1]),
        ir.Assign("b", "add", ["a", 2]),
        ir.Assign("c", "add", ["b", 3]),
        ir.Assign("unrelated", "mov", [9]),
    ]
    ids, regs = backward_slice(body, ["c"])
    assert {id(body[0]), id(body[1]), id(body[2])} <= ids
    assert id(body[3]) not in ids
    assert {"a", "b", "c"} <= regs


def test_slice_through_loads():
    body = [
        ir.Assign("i", "mov", [0]),
        ir.Load("v", "@a", "i"),
        ir.Assign("addr", "add", ["v", 1]),
    ]
    ids, _ = backward_slice(body, ["addr"])
    assert id(body[1]) in ids and id(body[0]) in ids


def test_for_bounds_pulled_in():
    bound = ir.Load("hi", "@a", 0)
    body = [bound, ir.For("i", 0, "hi", 1, [ir.Assign("x", "add", ["i", 1])])]
    ids, regs = backward_slice(body, ["x"])
    assert id(bound) in ids
    assert "hi" in regs


def test_constants_dont_slice():
    body = [ir.Assign("x", "mov", [5])]
    ids, _ = backward_slice(body, [7])
    assert ids == set()
