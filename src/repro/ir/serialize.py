"""Canonical serialization and content hashing of Phloem IR.

The printer (:mod:`repro.ir.printer`) renders IR for humans; this module
renders it for *machines*: a canonical, version-stable text form whose
SHA-256 digest identifies a :class:`~repro.ir.Function` or
:class:`~repro.ir.PipelineProgram` by content. The evaluation harness keys
its compiled-pipeline and serial-baseline caches on these fingerprints, so
two requirements drive the format:

* **Stability across processes.** No ``id()``, no builtin ``hash()`` (both
  vary per process), and every unordered container is emitted sorted.
* **Completeness.** Every statement kind serializes every semantic field;
  an unknown kind raises rather than silently hashing a partial view.

Pipeline ``meta`` is deliberately excluded: it records provenance (which
passes ran, selected points), not behaviour, and including it would split
cache entries that execute identically.
"""

import hashlib

from ..errors import PhloemError
from .program import Function, PipelineProgram
from .values import Ctrl

#: Serialized per statement kind, in order. Fields holding nested statement
#: lists (``body``/``then_body``/``else_body``) are handled structurally by
#: :func:`_stmt_lines` and must not appear here.
_STMT_FIELDS = {
    "assign": ("dst", "op", "args"),
    "load": ("dst", "array", "index"),
    "store": ("array", "index", "value"),
    "prefetch": ("array", "index"),
    "enq": ("queue", "value"),
    "enq_ctrl": ("queue", "ctrl"),
    "deq": ("dst", "queue"),
    "peek": ("dst", "queue"),
    "is_control": ("dst", "src"),
    "for": ("var", "lo", "hi", "step"),
    "loop": (),
    "if": ("cond",),
    "break": ("levels",),
    "continue": (),
    "barrier": ("tag",),
    "read_shared": ("dst", "var"),
    "write_shared": ("var", "value"),
    "call": ("dst", "func", "args"),
    "atomic_rmw": ("dst", "op", "array", "index", "value"),
    "enq_dist": ("queue", "value", "replica"),
    "enq_ctrl_dist": ("queue", "ctrl"),
    "comment": ("text",),
}


def _operand(value):
    """Canonical text of one operand; type-tagged so ``1`` != ``"1"``."""
    if value is None:
        return "none"
    if isinstance(value, Ctrl):
        return "ctrl:%s" % value.name
    if isinstance(value, bool):
        return "b:%d" % value
    if isinstance(value, int):
        return "i:%d" % value
    if isinstance(value, float):
        return "f:%s" % repr(value)
    if isinstance(value, str):
        return "s:%s" % value
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_operand(v) for v in value) + "]"
    raise PhloemError("cannot serialize operand %r" % (value,))


def _stmt_lines(stmt, indent, out):
    pad = " " * indent
    try:
        fields = _STMT_FIELDS[stmt.kind]
    except KeyError:
        raise PhloemError("cannot serialize statement kind %r" % (stmt.kind,))
    parts = [stmt.kind]
    for name in fields:
        parts.append(_operand(getattr(stmt, name)))
    out.append(pad + " ".join(parts))
    if stmt.kind == "if":
        _body_lines(stmt.then_body, indent + 1, out)
        if stmt.else_body:
            out.append(pad + "else")
            _body_lines(stmt.else_body, indent + 1, out)
    elif stmt.kind in ("for", "loop"):
        _body_lines(stmt.body, indent + 1, out)


def _body_lines(body, indent, out):
    for stmt in body:
        _stmt_lines(stmt, indent, out)


def _array_line(name, decl):
    return "array %s size=%d readonly=%d restrict=%d float=%d" % (
        name,
        decl.elem_size,
        bool(decl.readonly),
        bool(decl.restrict),
        bool(decl.is_float),
    )


def canonical_function(function):
    """Canonical multi-line text of a serial :class:`Function`.

    Intrinsic *implementations* are opaque Python callables and cannot be
    hashed; an intrinsic contributes its name and cost, which is what the
    timing model sees. Callers swapping an intrinsic's behaviour without
    renaming it must bypass the caches.
    """
    out = ["function %s" % function.name]
    out.append("scalars " + ",".join(function.scalar_params))
    for name in sorted(function.arrays):
        out.append(_array_line(name, function.arrays[name]))
    for key in sorted(function.pragmas):
        out.append("pragma %s=%s" % (key, _operand(function.pragmas[key])))
    for name in sorted(function.intrinsics):
        out.append("intrinsic %s cost=%d" % (name, function.intrinsics[name].cost))
    out.append("body")
    _body_lines(function.body, 1, out)
    return "\n".join(out)


def canonical_pipeline(pipeline):
    """Canonical multi-line text of a :class:`PipelineProgram` (sans meta)."""
    out = ["pipeline %s" % pipeline.name]
    out.append("scalars " + ",".join(pipeline.scalar_params))
    for name in sorted(pipeline.arrays):
        out.append(_array_line(name, pipeline.arrays[name]))
    for name in sorted(pipeline.shared_vars):
        out.append("shared %s" % name)
    for name in sorted(pipeline.intrinsics):
        out.append("intrinsic %s cost=%d" % (name, pipeline.intrinsics[name].cost))
    for qid in sorted(pipeline.queues):
        q = pipeline.queues[qid]
        out.append(
            "queue %d cap=%d %s->%s label=%s"
            % (q.qid, q.capacity, _operand(q.producer), _operand(q.consumer), q.label)
        )
    for ra in pipeline.ras:
        out.append(
            "ra %d mode=%s array=%s in=%d out=%d fwd=%d"
            % (ra.raid, ra.mode, ra.array, ra.in_queue, ra.out_queue, bool(ra.forward_ctrl))
        )
    for stage in pipeline.stages:
        out.append("stage %d %s" % (stage.index, stage.name))
        _body_lines(stage.body, 1, out)
        for qid in sorted(stage.handlers):
            out.append(" handler %d" % qid)
            _body_lines(stage.handlers[qid], 2, out)
    return "\n".join(out)


def fingerprint(obj):
    """SHA-256 content hash of a Function or PipelineProgram.

    Stable across processes and Python versions; two objects with the same
    fingerprint execute identically under the simulator.
    """
    if isinstance(obj, Function):
        text = canonical_function(obj)
    elif isinstance(obj, PipelineProgram):
        text = canonical_pipeline(obj)
    else:
        raise PhloemError("cannot fingerprint %r" % (type(obj).__name__,))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
