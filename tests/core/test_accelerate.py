"""RA pass edge cases beyond the BFS happy path."""

from repro import ir
from repro.core.accelerate import apply_reference_accelerators


def _pipe(stages, queues, arrays=("a", "out")):
    decls = {name: ir.ArrayDecl(name) for name in arrays}
    return ir.PipelineProgram("t", stages, queues, [], decls, ["n"])


def test_whole_loop_stream_becomes_scan():
    """A loop that only streams a[i] collapses into a single scan request."""
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        v = b0.load("@a", "i", dst="v")
        b0.enq(0, "v")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0, dst="x")
        b1.store("@out", "i", "x")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
    apply_reference_accelerators(pipe)
    assert len(pipe.ras) == 1
    assert pipe.ras[0].mode == ir.RA_SCAN
    enq_values = [s.value for s in pipe.stages[0].all_stmts() if s.kind == "enq"]
    assert enq_values == [0, "n"]  # one (start, end) pair replaces the loop


def test_indirect_pattern_offloaded():
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        idx = b0.load("@idx", "i", dst="j")
        v = b0.load("@a", "j", dst="v")
        b0.enq(0, "v")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0, dst="x")
        b1.store("@out", "i", "x")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe(
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("stage", 1))],
        arrays=("a", "idx", "out"),
    )
    apply_reference_accelerators(pipe)
    indirect = [ra for ra in pipe.ras if ra.mode == ir.RA_INDIRECT]
    assert indirect and indirect[0].array == "@a"
    # The producer now enqueues the *index* into the RA's input queue.
    loads_a = [
        s for s in pipe.stages[0].all_stmts() if s.kind == "load" and s.array == "@a"
    ]
    assert not loads_a


def test_value_with_other_uses_not_offloaded():
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        v = b0.load("@a", "i", dst="v")
        b0.enq(0, "v")
        b0.store("@out", "i", "v")  # second use blocks offload
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0, dst="x")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
    apply_reference_accelerators(pipe)
    assert pipe.ras == []


def test_pointer_array_not_offloaded():
    """RAs are configured with static bases: pointer-register loads stay."""
    b0 = ir.IRBuilder()
    b0.mov("@a", dst="ptr")
    with b0.for_("i", 0, "n"):
        v = b0.load("ptr", "i", dst="v")
        b0.enq(0, "v")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0, dst="x")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
    apply_reference_accelerators(pipe)
    assert pipe.ras == []


def test_mixed_queue_not_offloaded():
    """A queue also fed by non-load values cannot move behind an RA."""
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        v = b0.load("@a", "i", dst="v")
        b0.enq(0, "v")
        b0.enq(0, "i")  # raw data interleaved
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0, dst="x")
        b1.deq(0, dst="y")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = _pipe([s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))])
    apply_reference_accelerators(pipe)
    assert pipe.ras == []


def test_scan_pattern_offloaded():
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        lo = b0.load("@bounds", "i", dst="lo")
        hi = b0.load("@bounds", b0.binop("add", "i", 1), dst="hi")
        with b0.for_("e", "lo", "hi"):
            x = b0.load("@a", "e", dst="x")
            b0.enq(0, "x")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.loop():
        b1.deq(0, dst="v")
    s1 = ir.StageProgram(1, "c", b1.finish(), handlers={0: [ir.Break(1)]})
    pipe = _pipe(
        [s0, s1],
        [ir.QueueSpec(0, ("stage", 0), ("stage", 1))],
        arrays=("a", "bounds", "out"),
    )
    apply_reference_accelerators(pipe)
    scan = [ra for ra in pipe.ras if ra.mode == ir.RA_SCAN]
    assert scan and scan[0].array == "@a"
    # The inner For was replaced by a bounds pair.
    inner_fors = [
        s for s in pipe.stages[0].all_stmts() if s.kind == "for" and s.var == "e"
    ]
    assert not inner_fors


def test_ra_budget_respected():
    stages = []
    queues = []
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        for q in range(6):
            b0.load("@a", "i", dst="v%d" % q)
            b0.enq(q, "v%d" % q)
    stages.append(ir.StageProgram(0, "p", b0.finish()))
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        for q in range(6):
            b1.deq(q, dst="x%d" % q)
    stages.append(ir.StageProgram(1, "c", b1.finish()))
    queues = [ir.QueueSpec(q, ("stage", 0), ("stage", 1)) for q in range(6)]
    pipe = _pipe(stages, queues)
    apply_reference_accelerators(pipe, max_ras=4)
    assert len(pipe.ras) <= 4
