"""Static analyses backing the Phloem compiler passes."""

from .access import INDIRECT, OTHER, SEQUENTIAL, AccessInfo, affine_root, classify_loads
from .alias import AliasInfo, access_class
from .costmodel import DecouplePoint, rank_decouple_points
from .defs import DefUse, pure_regs
from .loops import LoopNestInfo, estimated_trip_weight, find_phase_loop
from .perfmodel import (
    EdgeEstimate,
    PerfReport,
    StageEstimate,
    analyze_pipeline,
    measured_stage_busy,
    perf_advisories,
    static_score,
    validate_prediction,
)
from .sanitize import (
    classify_cross_stage,
    lint_source,
    sanitize_function,
    sanitize_pipeline,
)
from .slicing import backward_slice

__all__ = [
    "INDIRECT",
    "OTHER",
    "SEQUENTIAL",
    "AccessInfo",
    "affine_root",
    "classify_loads",
    "AliasInfo",
    "access_class",
    "DecouplePoint",
    "rank_decouple_points",
    "DefUse",
    "pure_regs",
    "LoopNestInfo",
    "estimated_trip_weight",
    "find_phase_loop",
    "EdgeEstimate",
    "PerfReport",
    "StageEstimate",
    "analyze_pipeline",
    "measured_stage_busy",
    "perf_advisories",
    "static_score",
    "validate_prediction",
    "classify_cross_stage",
    "lint_source",
    "sanitize_function",
    "sanitize_pipeline",
    "backward_slice",
]
