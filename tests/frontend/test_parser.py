"""Mini-C parser: grammar coverage and error reporting."""

import pytest

from repro.errors import ParseError
from repro.frontend import cast
from repro.frontend.parser import parse


def _body(src):
    (fn,) = parse("void k(int n) { %s }" % src)
    return fn.body


def _expr(src):
    (stmt,) = _body("%s;" % src)
    return stmt.expr


def test_function_signature():
    (fn,) = parse("void bfs(const int* restrict nodes, int n) {}")
    assert fn.name == "bfs"
    assert fn.params[0].type.is_pointer
    assert fn.params[0].type.const
    assert fn.params[0].type.restrict
    assert not fn.params[1].type.is_pointer


def test_array_param_syntax():
    (fn,) = parse("void k(int a[]) {}")
    assert fn.params[0].type.is_pointer


def test_precedence_mul_over_add():
    e = _expr("1 + 2 * 3")
    assert isinstance(e, cast.Binary) and e.op == "+"
    assert isinstance(e.rhs, cast.Binary) and e.rhs.op == "*"


def test_precedence_compare_over_and():
    e = _expr("a < 1 && b > 2")
    assert e.op == "&&"
    assert e.lhs.op == "<"


def test_ternary():
    e = _expr("a ? b : c")
    assert isinstance(e, cast.Ternary)


def test_unary_chain():
    e = _expr("-!a")
    assert isinstance(e, cast.Unary) and e.op == "neg"
    assert isinstance(e.operand, cast.Unary) and e.operand.op == "not"


def test_cast_is_noop():
    e = _expr("(int) x")
    assert isinstance(e, cast.Name)


def test_index_and_call_postfix():
    e = _expr("f(a[i], 3)")
    assert isinstance(e, cast.CallExpr)
    assert isinstance(e.args[0], cast.Index)


def test_compound_assignment():
    e = _expr("x += 2")
    assert isinstance(e, cast.Assign) and e.op == "add"


def test_incdec_forms():
    post = _expr("x++")
    pre = _expr("--x")
    assert isinstance(post, cast.IncDec) and not post.is_prefix and post.delta == 1
    assert isinstance(pre, cast.IncDec) and pre.is_prefix and pre.delta == -1


def test_if_else():
    (stmt,) = _body("if (a) { x = 1; } else x = 2;")
    assert isinstance(stmt, cast.IfStmt)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_while():
    (stmt,) = _body("while (a < 3) a = a + 1;")
    assert isinstance(stmt, cast.WhileStmt)


def test_for_full_header():
    (stmt,) = _body("for (int i = 0; i < n; i++) { }")
    assert isinstance(stmt, cast.ForStmt)
    assert isinstance(stmt.init[0], cast.VarDecl)


def test_for_empty_clauses():
    (stmt,) = _body("for (;;) break;")
    assert stmt.init == [] and stmt.cond is None and stmt.post is None


def test_multi_declarator():
    body = _body("int a = 1, b = 2;")
    assert [d.name for d in body] == ["a", "b"]


def test_pragma_inside_body():
    body = _body("#pragma decouple\n x = 1;")
    assert isinstance(body[0], cast.PragmaStmt)


def test_pragmas_attach_to_function():
    (fn,) = parse("#pragma phloem\n#pragma replicate 4\nvoid k() {}")
    assert fn.pragmas == ["phloem", "replicate 4"]


def test_dangling_pragma_rejected():
    with pytest.raises(ParseError, match="dangling"):
        parse("#pragma phloem\n")


def test_missing_semicolon():
    with pytest.raises(ParseError, match="expected"):
        parse("void k() { x = 1 }")


def test_invalid_assignment_target():
    with pytest.raises(ParseError, match="assignment target"):
        parse("void k() { 3 = x; }")


def test_true_false_literals():
    e = _expr("true")
    assert isinstance(e, cast.Number) and e.value == 1
