"""Program-phase transform: shared cells, barriers, preserved semantics."""

from repro import ir
from repro.core.phases import prepare_phases
from repro.frontend import compile_source
from repro.runtime import run_serial
from repro.workloads import bfs


def test_bfs_gets_next_size_cell():
    f = compile_source(bfs.SOURCE)
    shared = prepare_phases(f)
    assert shared == ["next_size"]
    kinds = [s.kind for s in ir.walk(f.body)]
    assert kinds.count("barrier") == 2
    assert "write_shared" in kinds and "read_shared" in kinds


def test_write_before_first_barrier_read_between():
    f = compile_source(bfs.SOURCE)
    prepare_phases(f)
    phase_body = next(s for s in f.body if s.kind == "loop").body
    order = [s.kind for s in phase_body]
    w = order.index("write_shared")
    b1 = order.index("barrier")
    r = order.index("read_shared")
    b2 = order.index("barrier", b1 + 1)
    assert w < b1 < r < b2


def test_downstream_uses_renamed():
    f = compile_source(bfs.SOURCE)
    prepare_phases(f)
    reads = [s for s in ir.walk(f.body) if s.kind == "read_shared"]
    assert reads[0].dst == "next_size__phase"
    # The epilogue assignment consumes the renamed value.
    uses = [
        s
        for s in ir.walk(f.body)
        if s.kind == "assign" and "next_size__phase" in s.uses()
    ]
    assert uses


def test_serial_semantics_preserved(tiny_graph, tiny_config):
    plain = bfs.function()
    transformed = bfs.function()
    prepare_phases(transformed)
    arrays, scalars = bfs.make_env(tiny_graph)
    r1 = run_serial(plain, arrays, scalars, config=tiny_config)
    r2 = run_serial(transformed, arrays, scalars, config=tiny_config)
    assert r1.arrays["distances"] == r2.arrays["distances"]


def test_kernel_without_phase_loop_untouched():
    src = """
    void k(const int* restrict a, int* restrict out, int n) {
      for (int i = 0; i < n; i++) { out[i] = a[i]; }
    }
    """
    f = compile_source(src)
    before = ir.count_stmts(f.body)
    assert prepare_phases(f) == []
    assert ir.count_stmts(f.body) == before


def test_phase_loop_without_cross_scalars_gets_barrier():
    src = """
    void k(int* restrict out, int n) {
      int r = n;
      while (r > 0) {
        for (int i = 0; i < n; i++) { out[i] = r; }
        r = r - 1;
      }
    }
    """
    f = compile_source(src)
    assert prepare_phases(f) == []
    kinds = [s.kind for s in ir.walk(f.body)]
    assert "barrier" in kinds
