"""The diagnostics funnel: one switch silences all telemetry."""

import io

import pytest

from repro.obs import is_quiet, log, set_quiet


@pytest.fixture(autouse=True)
def _reset_quiet(monkeypatch):
    monkeypatch.delenv("REPRO_QUIET", raising=False)
    set_quiet(None)
    yield
    set_quiet(None)


def test_log_formats_to_stderr_by_default(capsys):
    log("ran %d jobs in %.1fs", 3, 2.0)
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == "ran 3 jobs in 2.0s\n"


def test_set_quiet_silences_everything():
    set_quiet(True)
    sink = io.StringIO()
    log("should not appear", file=sink)
    assert sink.getvalue() == ""
    assert is_quiet()


def test_env_var_quiets_unless_overridden(monkeypatch):
    monkeypatch.setenv("REPRO_QUIET", "1")
    assert is_quiet()
    sink = io.StringIO()
    log("suppressed", file=sink)
    assert sink.getvalue() == ""
    # An explicit False beats the environment.
    set_quiet(False)
    assert not is_quiet()
    log("visible", file=sink)
    assert sink.getvalue() == "visible\n"


def test_log_without_args_passes_literal_percent(capsys):
    log("100% done")
    assert capsys.readouterr().err == "100% done\n"
