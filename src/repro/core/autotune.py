"""Profile-guided pipeline search (paper Sec. V, "Autotuning decoupling
points", and Fig. 8's shaded flow).

The static cost model is necessarily approximate: cache behaviour and loop
lengths are input-dependent. The profile-guided mode takes more candidate
decoupling points than stages, builds *every* pipeline from combinations of
the top-ranked points, profiles each on small training inputs, and keeps
the best. This module is generic over how a pipeline is scored: the caller
supplies ``evaluate(pipeline) -> gmean speedup`` (the bench harness closes
over the training inputs, mirroring the paper's internet/USA-road-d-NY and
email-Enron/wiki-Vote training sets).
"""

import itertools
import math

from ..analysis.costmodel import rank_decouple_points
from ..errors import CompileError, PhloemError
from .compiler import ALL_PASSES, CompileOptions, compile_function
from .phases import prepare_phases


class CandidateResult:
    """One profiled pipeline from the search."""

    __slots__ = ("indices", "pipeline", "num_units", "speedup")

    def __init__(self, indices, pipeline, speedup):
        self.indices = indices
        self.pipeline = pipeline
        self.num_units = pipeline.num_units
        self.speedup = speedup

    def __repr__(self):
        return "Candidate(points=%s, units=%d, speedup=%.2f)" % (
            list(self.indices),
            self.num_units,
            self.speedup,
        )


class SearchPoint:
    """A pipeline-free candidate summary: point indices, unit count, score.

    What the search cache stores and what the harness ships across worker
    boundaries — everything Fig. 13 plots, without pickling a pipeline.
    ``pipeline`` is attached only on the winning candidate (recompiled
    through the pipeline cache when the scores came from a warm hit).
    """

    __slots__ = ("indices", "num_units", "speedup", "pipeline")

    def __init__(self, indices, num_units, speedup, pipeline=None):
        self.indices = tuple(indices)
        self.num_units = num_units
        self.speedup = speedup
        self.pipeline = pipeline

    def __repr__(self):
        return "Candidate(points=%s, units=%d, speedup=%.2f)" % (
            list(self.indices),
            self.num_units,
            self.speedup,
        )


def candidate_count(function, top_k=7):
    """How many ranked points the search can draw from."""
    work = function.clone()
    prepare_phases(work)
    return min(top_k, len(rank_decouple_points(work)))


def search_pipelines(
    function,
    evaluate,
    max_stages=4,
    top_k=7,
    passes=ALL_PASSES,
    limit=80,
    keep_failures=False,
    recorder=None,
):
    """Enumerate, compile, and profile candidate pipelines.

    Returns ``(best, results)`` where ``best`` is the highest-speedup
    :class:`CandidateResult` (None if nothing compiled) and ``results``
    holds every profiled candidate — the distribution Fig. 13 plots.
    Combinations the compiler rejects (alias races, backward control) are
    skipped, exactly as untransformable candidates should be.

    ``recorder`` (a :class:`repro.obs.SearchRecorder`) logs every candidate
    — scored, compile-rejected, or evaluation-failed — and the selection
    verdict; it observes the search without altering it.
    """
    k = candidate_count(function, top_k)
    combos = []
    for size in range(1, max_stages):
        combos.extend(itertools.combinations(range(k), size))
    if limit is not None:
        combos = combos[:limit]

    results = []
    failures = []
    for indices in combos:
        try:
            pipeline = compile_function(
                function,
                options=CompileOptions(
                    num_stages=len(indices) + 1, passes=passes, point_indices=indices
                ),
            )
        except PhloemError as exc:
            failures.append((indices, str(exc)))
            if recorder is not None:
                recorder.failed(indices, "compile", exc)
            continue
        try:
            speedup = evaluate(pipeline)
        except PhloemError as exc:
            failures.append((indices, str(exc)))
            if recorder is not None:
                recorder.failed(indices, "evaluate", exc)
            continue
        results.append(CandidateResult(indices, pipeline, speedup))
        if recorder is not None:
            recorder.scored(indices, pipeline.num_units, speedup)

    best = max(results, key=lambda r: r.speedup) if results else None
    if recorder is not None:
        recorder.decide(None if best is None else best.indices)
    if keep_failures:
        return best, results, failures
    return best, results


def gmean(values):
    """Geometric mean (the paper's aggregate everywhere)."""
    values = list(values)
    if not values:
        raise CompileError("gmean of no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_distribution(results):
    """Group results by unit count (stages + RAs): Fig. 13's x-axis."""
    by_units = {}
    for result in results:
        by_units.setdefault(result.num_units, []).append(result.speedup)
    return {units: sorted(speeds) for units, speeds in sorted(by_units.items())}
