"""Profile-guided search mechanics."""

import pytest

from repro.core.autotune import candidate_count, gmean, search_pipelines, speedup_distribution
from repro.errors import CompileError
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs


def test_gmean():
    assert gmean([2.0, 8.0]) == pytest.approx(4.0)
    assert gmean([3.0]) == pytest.approx(3.0)
    with pytest.raises(CompileError):
        gmean([])


def test_candidate_count_bfs():
    assert candidate_count(bfs.function(), top_k=7) == 4  # BFS has 4 ranked points


def test_search_returns_distribution(tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    base = run_serial(bfs.function(), arrays, scalars, config=tiny_config).cycles

    def evaluate(pipeline):
        return base / run_pipeline(pipeline, arrays, scalars, config=tiny_config).cycles

    best, results = search_pipelines(bfs.function(), evaluate, max_stages=3, top_k=3)
    assert best is not None
    assert best.speedup == max(r.speedup for r in results)
    assert len(results) >= 3
    dist = speedup_distribution(results)
    assert all(speeds == sorted(speeds) for speeds in dist.values())
    assert sum(len(v) for v in dist.values()) == len(results)


def test_search_skips_bad_combos(tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)

    def evaluate(pipeline):
        return 1.0

    _, results, failures = search_pipelines(
        bfs.function(), evaluate, max_stages=4, top_k=4, keep_failures=True
    )
    # Every enumerated combination either compiled or was recorded.
    assert len(results) + len(failures) == 4 + 6 + 4  # C(4,1)+C(4,2)+C(4,3)


def test_limit_caps_enumeration(tiny_graph):
    def evaluate(pipeline):
        return 1.0

    _, results = search_pipelines(bfs.function(), evaluate, max_stages=4, top_k=4, limit=2)
    assert len(results) <= 2
