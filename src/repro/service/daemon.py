"""The long-lived compile-and-simulate daemon (``repro serve``).

An asyncio socket server (unix domain by default, TCP optional) that
accepts :mod:`repro.api` request envelopes, admits them through the
per-client governor (:mod:`repro.service.ratelimit`), executes them on
the fork worker pool (:mod:`repro.service.pool`), and streams the
structured records followed by the final response back as NDJSON
(:mod:`repro.service.protocol`).

Why a daemon at all: the one-shot CLI re-pays interpreter start, imports,
and cache warm-up on every verb — exactly the dispatch overhead that
dominates when jobs are small. Here those costs are paid once; after the
first request every worker holds warm in-memory memo layers over the one
shared on-disk content-addressed store, so every client's compile warms
every other client's.

Shutdown: a ``shutdown`` control message, SIGINT, or SIGTERM. The unix
socket file is removed on exit.
"""

import asyncio
import contextlib
import os
import signal
import time

from .. import cache
from ..api.requests import REQUEST_TYPES, error_response
from ..errors import PhloemError
from ..obs import log
from . import protocol
from .pool import RequestPool
from .ratelimit import ClientGovernor
from .telemetry import ServiceTelemetry, render_prometheus

#: Exit code stamped on rejected (rate-limited / over-quota) requests;
#: EX_TEMPFAIL — the client may retry later.
REJECTED_EXIT_CODE = 75

#: Seconds a connection may sit silent before its request line times out.
READ_TIMEOUT = 60.0


class Daemon:
    """One serving instance: listener + governor + worker pool + counters.

    Construct it *before* any event loop runs (the fork pool must fork a
    quiet process), then drive :meth:`serve` with ``asyncio.run``.
    """

    def __init__(
        self,
        socket_path=None,
        host=None,
        port=0,
        workers=2,
        rate=10.0,
        burst=20.0,
        quota=4,
    ):
        if socket_path is None and host is None:
            raise PhloemError("daemon needs a unix socket path or a TCP host/port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.pool = RequestPool(workers)
        self.governor = ClientGovernor(rate=rate, burst=burst, quota=quota)
        self.started = time.time()
        self.counts = {"requests": 0, "completed": 0, "failed": 0, "rejected": 0}
        self.verbs = {}
        self.telemetry = ServiceTelemetry()
        self._server = None
        self._shutdown = None

    # -- lifecycle ----------------------------------------------------------

    async def serve(self, ready=None):
        """Listen until shutdown; ``ready`` (an Event) is set once bound."""
        self._shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            # RuntimeError/ValueError: signal handlers only install from the
            # main thread (tests run the daemon on a side thread).
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(signum, self._shutdown.set)
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.socket_path, limit=protocol.MAX_LINE
            )
            where = self.socket_path
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port, limit=protocol.MAX_LINE
            )
            addr = self._server.sockets[0].getsockname()
            self.port = addr[1]
            where = "%s:%d" % (self.host, self.port)
        log(
            "serve: listening on %s (%s)",
            where,
            "inline" if self.pool.inline else "%d workers" % self.pool.workers,
        )
        if ready is not None:
            ready.set()
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self.pool.close()
            if self.socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self.socket_path)
            log("serve: stopped (%d requests, %d rejected)",
                self.counts["requests"], self.counts["rejected"])

    def stop(self):
        """Request shutdown (idempotent; safe from the event loop only)."""
        if self._shutdown is not None:
            self._shutdown.set()

    # -- connection handling ------------------------------------------------

    async def _on_connection(self, reader, writer):
        try:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=READ_TIMEOUT)
                wire = protocol.decode(line)
            except (PhloemError, asyncio.TimeoutError, ValueError) as exc:
                await self._send(
                    writer,
                    protocol.response_message(
                        error_response(None, "bad-request", str(exc), exit_code=2).to_wire()
                    ),
                )
                return
            if protocol.is_control(wire):
                await self._on_control(wire, writer)
            else:
                await self._on_request(wire, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client went away; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _on_control(self, wire, writer):
        action = wire.get("action")
        if action == "ping":
            payload = {
                "ok": True,
                "pid": os.getpid(),
                "workers": self.pool.workers,
                "inline": self.pool.inline,
            }
        elif action == "stats":
            payload = self.stats()
        elif action == "telemetry":
            payload = {
                "ok": True,
                "content_type": "text/plain; version=0.0.4",
                "text": render_prometheus(self.telemetry.snapshot()),
            }
        elif action == "shutdown":
            payload = {"ok": True, "stopping": True}
        else:
            payload = {"ok": False, "error": "unknown control action %r" % (action,)}
        await self._send(writer, protocol.control_reply(payload))
        if action == "shutdown":
            self.stop()

    async def _on_request(self, wire, writer):
        verb = wire.get("verb")
        client = wire.get("client") or "anon"
        self.counts["requests"] += 1
        self.verbs[verb] = self.verbs.get(verb, 0) + 1
        if verb not in REQUEST_TYPES:
            await self._send(
                writer,
                protocol.response_message(
                    error_response(
                        verb, "unsupported-verb", "no handler for verb %r" % (verb,), exit_code=2
                    ).to_wire()
                ),
            )
            self.counts["failed"] += 1
            return
        admitted, code = self.governor.admit(client)
        if not admitted:
            self.counts["rejected"] += 1
            self.telemetry.rejected(verb, code)
            await self._send(
                writer,
                protocol.response_message(
                    error_response(
                        verb,
                        code,
                        "client %r rejected: %s (limits %r)"
                        % (client, code, self.governor.snapshot()["limits"]),
                        exit_code=REJECTED_EXIT_CODE,
                    ).to_wire()
                ),
            )
            return
        started = self.telemetry.begin(verb)
        failed = True
        try:
            loop = asyncio.get_running_loop()
            response_wire, delta = await self.pool.submit(wire, loop)
            cache.merge_stats(delta)
            payload = response_wire.get("payload") or {}
            self.telemetry.cache_delta(payload.get("cache"))
            failed = payload.get("error") is not None
            records = payload.get("records") or []
            for record in records:
                await self._send(writer, protocol.record_message(record))
            await self._send(
                writer, protocol.response_message(response_wire, streamed=len(records))
            )
            if failed:
                self.counts["failed"] += 1
            else:
                self.counts["completed"] += 1
        finally:
            self.governor.release(client)
            self.telemetry.finish(verb, started, failed=failed)

    async def _send(self, writer, message):
        writer.write(protocol.encode(message))
        await writer.drain()

    # -- introspection -------------------------------------------------------

    def stats(self):
        """Plain-data daemon stats (the ``stats`` control reply).

        ``governor`` includes per-client token-bucket state, ``telemetry``
        the full :mod:`repro.service.telemetry` snapshot (per-verb
        counters, latency histograms, cache-delta aggregates) — save it to
        a JSON file and ``repro report`` renders it like any offline
        experiment artifact.
        """
        return {
            "ok": True,
            "uptime_s": round(time.time() - self.started, 3),
            "counts": dict(self.counts),
            "verbs": dict(self.verbs),
            "governor": self.governor.snapshot(),
            "cache": cache.stats(),
            "workers": self.pool.workers,
            "inline": self.pool.inline,
            "telemetry": self.telemetry.snapshot(),
        }


def serve_main(
    socket_path=None,
    host=None,
    port=0,
    workers=2,
    rate=10.0,
    burst=20.0,
    quota=4,
):
    """Blocking entry point behind ``repro serve``; returns an exit code."""
    try:
        daemon = Daemon(
            socket_path=socket_path,
            host=host,
            port=port,
            workers=workers,
            rate=rate,
            burst=burst,
            quota=quota,
        )
    except PhloemError as exc:
        log("serve: error: %s", exc)
        return 2
    try:
        asyncio.run(daemon.serve())
    except KeyboardInterrupt:
        pass
    return 0
