"""Regenerates paper Fig. 14: replicated pipelines on 4 cores.

Expected shape: replicated Phloem pipelines scale well beyond a single
core and beat the 16-thread data-parallel versions on BFS; the
no-distribute ablation collapses (all discovered work lands on one
replica), demonstrating why the data-centric distribute step matters.
"""

from repro.bench.experiments import fig14_replication


def test_fig14(once):
    result = once(fig14_replication)
    print(result["text"])
    table = result["speedups"]
    for app in ("bfs", "cc", "prd", "radii"):
        assert table[app]["phloem"] > 3.0, app  # scales beyond one core
    assert table["bfs"]["phloem"] > table["bfs"]["data-parallel"]
    assert table["bfs"]["no-distribute"] < 0.5 * table["bfs"]["phloem"]
