"""Data-parallel variants of Taco kernels (the Fig. 12 "Data-parallel" bars).

Taco's own parallel backend stripes the outermost loop across threads; we
reproduce that as an IR transform: each worker clone iterates
``for (i = tid; i < n; i += nthreads)`` in every top-level loop, with a
barrier between consecutive nests (they may touch the same arrays with
different partitionings). Scatter outputs (MTMul's ``y[j] +=``) need
fetch-and-add, which is exactly the instruction-count overhead the paper
blames for data parallelism's poor showing on these kernels.
"""

from ..errors import CompileError
from ..ir import stmts as S
from ..ir.program import PipelineProgram, StageProgram


def _stripe_body(body, tid, nthreads_reg):
    """Rewrite top-level For loops to stride across workers; add barriers."""
    out = []
    first_loop = True
    for stmt in body:
        if stmt.kind == "for":
            if not first_loop:
                out.append(S.Barrier("dp-nest"))
            first_loop = False
            lo_reg = "%stripe_lo_" + stmt.var
            out.append(S.Assign(lo_reg, "add", [stmt.lo, tid]))
            out.append(S.For(stmt.var, lo_reg, stmt.hi, nthreads_reg, stmt.body))
        else:
            out.append(stmt)
    out.append(S.Barrier("dp-end"))
    return out


def _atomicize(body, arrays):
    """Rewrite ``t = load arr[i]; s = t + v; store arr[i] = s`` to atomics."""
    index = 0
    while index < len(body):
        stmt = body[index]
        for block in stmt.blocks():
            _atomicize(block, arrays)
        replaced = False
        if stmt.kind == "load" and stmt.array in arrays:
            # Scan a short window for `s = t + v; store arr[i] = s`, with
            # value-producing statements allowed in between.
            add_stmt = None
            for j in range(index + 1, min(index + 8, len(body))):
                later = body[j]
                if later.kind == "assign" and later.op == "add" and stmt.dst in later.args:
                    add_stmt = later
                    add_at = j
                elif (
                    add_stmt is not None
                    and later.kind == "store"
                    and later.array == stmt.array
                    and later.index == stmt.index
                    and later.value == add_stmt.dst
                ):
                    addend = [a for a in add_stmt.args if a != stmt.dst]
                    if len(addend) == 1:
                        # The atomic replaces the *store* (the addend's
                        # producers execute before it); the load and the
                        # plain add disappear.
                        body[j] = S.AtomicRMW(None, "add", stmt.array, stmt.index, addend[0])
                        del body[add_at]
                        del body[index]
                        replaced = True
                    break
                elif later.kind in ("store", "load") and later.array == stmt.array:
                    break
        if not replaced:
            index += 1
        else:
            index += 1


def stripe_data_parallel(function, nthreads, atomic_arrays=()):
    """Build an ``nthreads``-worker data-parallel pipeline from a serial kernel."""
    if not function.body:
        raise CompileError("empty kernel")
    atomic_arrays = {("@" + a) if not a.startswith("@") else a for a in atomic_arrays}
    stages = []
    for tid in range(nthreads):
        clone = [s.clone() for s in function.body]
        if atomic_arrays:
            _atomicize(clone, atomic_arrays)
        striped = _stripe_body(clone, tid, "nthreads")
        stages.append(StageProgram(tid, "worker%d" % tid, striped))
    return PipelineProgram(
        "%s_dp%d" % (function.name, nthreads),
        stages,
        [],
        [],
        function.arrays,
        function.scalar_params + ["nthreads"],
        intrinsics=function.intrinsics,
        meta={"data_parallel": True},
    )
