"""Pass 2 (recompute) in isolation: rematerialize instead of queueing."""

from repro import ir
from repro.core.recompute import apply_recompute


def _pipeline_with_forwarded_increment():
    """Producer computes v and v+1, queues both; v+1 is recomputable."""
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        v = b0.load("@a", "i", dst="v")
        b0.enq(0, "v")
        w = b0.binop("add", "v", 1, dst="w")
        b0.enq(1, "w")
    s0 = ir.StageProgram(0, "p", b0.finish())

    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        v = b1.deq(0, dst="v")
        w = b1.deq(1, dst="w")
        b1.store("@out", "v", "w")
    s1 = ir.StageProgram(1, "c", b1.finish())

    return ir.PipelineProgram(
        "t",
        [s0, s1],
        [
            ir.QueueSpec(0, ("stage", 0), ("stage", 1)),
            ir.QueueSpec(1, ("stage", 0), ("stage", 1)),
        ],
        [],
        {"a": ir.ArrayDecl("a"), "out": ir.ArrayDecl("out")},
        ["n"],
    )


def test_recompute_eliminates_queue():
    pipe = _pipeline_with_forwarded_increment()
    apply_recompute(pipe)
    # The v+1 queue is gone; v still flows.
    assert list(pipe.queues) == [0]
    consumer = pipe.stages[1]
    kinds = [s.kind for s in consumer.all_stmts()]
    assert kinds.count("deq") == 1
    # The consumer recomputes w = v + 1 locally.
    recomputed = [
        s for s in consumer.all_stmts() if s.kind == "assign" and s.op == "add"
    ]
    assert recomputed and recomputed[0].dst == "w"
    assert pipe.meta["recomputed_queues"] == [1]


def test_recompute_still_correct():
    from repro.pipette import Machine, MachineConfig, RunSpec

    a = [3, 0, 2, 1]
    for transform in (False, True):
        pipe = _pipeline_with_forwarded_increment()
        if transform:
            apply_recompute(pipe)
        out = [0] * 4
        res = Machine(MachineConfig()).run(
            RunSpec(pipe, {"a": list(a), "out": out}, {"n": 4})
        )
        assert res.arrays()["out"] == [1, 2, 3, 4]  # out[a[i]] = a[i]+1


def test_recompute_skips_load_values():
    """A queued value produced by a load cannot be rematerialized."""
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        b0.load("@a", "i", dst="v")
        b0.enq(0, "v")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0, dst="v")
        b1.store("@out", "i", "v")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [],
        {"a": ir.ArrayDecl("a"), "out": ir.ArrayDecl("out")}, ["n"],
    )
    apply_recompute(pipe)
    assert 0 in pipe.queues  # untouched


def test_recompute_requires_operands_in_consumer():
    """w = v + k with k producer-only must keep its queue."""
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, "n"):
        b0.load("@a", "i", dst="k")  # producer-only value
        b0.binop("add", "i", "k", dst="w")
        b0.enq(0, "w")
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    with b1.for_("i", 0, "n"):
        b1.deq(0, dst="w")
        b1.store("@out", "i", "w")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [],
        {"a": ir.ArrayDecl("a"), "out": ir.ArrayDecl("out")}, ["n"],
    )
    apply_recompute(pipe)
    assert 0 in pipe.queues
