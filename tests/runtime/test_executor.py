"""Executor conveniences: copy semantics, result packaging."""

from repro import ir
from repro.runtime import run_pipeline, run_serial


def _identity_func():
    b = ir.IRBuilder()
    with b.for_("i", 0, "n"):
        v = b.load("@a", "i")
        b.store("@a", "i", b.binop("add", v, 1))
    return ir.Function("inc", ["n"], {"a": ir.ArrayDecl("a")}, b.finish())


def test_inputs_not_mutated_by_default(tiny_config):
    data = [1, 2, 3]
    result = run_serial(_identity_func(), {"a": data}, {"n": 3}, config=tiny_config)
    assert data == [1, 2, 3]
    assert result.arrays["a"] == [2, 3, 4]


def test_copy_false_mutates(tiny_config):
    data = [1, 2, 3]
    run_serial(_identity_func(), {"a": data}, {"n": 3}, config=tiny_config, copy=False)
    assert data == [2, 3, 4]


def test_result_carries_stats_and_energy(tiny_config):
    result = run_serial(_identity_func(), {"a": [0] * 10}, {"n": 10}, config=tiny_config)
    assert result.cycles > 0
    assert result.energy().total > 0
    breakdown = result.breakdown()
    assert set(breakdown) == {"issue", "backend", "queue", "other", "branch", "barrier"}


def test_stage_cores_passthrough(tiny_config):
    from dataclasses import replace

    func = _identity_func()
    pipe = ir.serial_pipeline(func)
    cfg = replace(tiny_config, cores=2)
    result = run_pipeline(pipe, {"a": [0]}, {"n": 1}, config=cfg, stage_cores=[1])
    assert result.arrays["a"] == [1]
    assert result.active_cores == 1
