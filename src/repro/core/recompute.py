"""Pass 2 — Recompute (paper Sec. IV-B).

Some queued values "change infrequently, or can be determined without
communication from another stage"; rematerializing them in the consumer is
cheaper than a queue. This pass finds forward queues whose value is a
single scalar operation over operands the consumer already has (constants,
cloned pure scalars, other values it dequeues) and replaces the dequeue
with the recomputation, deleting the queue.
"""

from ..ir import stmts as S
from ..ir.stmts import walk


def _queue_ops(pipeline):
    """qid -> {"enq": [(stage, stmt)], "deq": [(stage, stmt)]}."""
    table = {}
    for stage in pipeline.stages:
        for stmt in stage.all_stmts():
            if stmt.kind == "enq":
                table.setdefault(stmt.queue, {}).setdefault("enq", []).append((stage, stmt))
            elif stmt.kind == "deq":
                table.setdefault(stmt.queue, {}).setdefault("deq", []).append((stage, stmt))
            elif stmt.kind in ("enq_ctrl", "peek", "enq_dist", "enq_ctrl_dist"):
                table.setdefault(stmt.queue, {}).setdefault("other", []).append((stage, stmt))
    return table


def _defs_in(body):
    defs = {}
    for stmt in walk(body):
        for reg in stmt.defs():
            defs.setdefault(reg, []).append(stmt)
    return defs


def _remove_stmt(body, target):
    removed = False
    kept = []
    for stmt in body:
        if stmt is target:
            removed = True
            continue
        for block in stmt.blocks():
            if _remove_stmt(block, target):
                removed = True
        kept.append(stmt)
    body[:] = kept
    return removed


def _replace_with(body, target, replacement):
    for index, stmt in enumerate(body):
        if stmt is target:
            body[index] = replacement
            return True
        for block in stmt.blocks():
            if _replace_with(block, target, replacement):
                return True
    return False


def apply_recompute(pipeline):
    """Run the recompute pass over every producer/consumer queue pair."""
    table = _queue_ops(pipeline)
    removed = []
    for qid, ops in sorted(table.items()):
        if "other" in ops or len(ops.get("enq", [])) != 1 or len(ops.get("deq", [])) != 1:
            continue
        prod_stage, enq = ops["enq"][0]
        cons_stage, deq = ops["deq"][0]
        reg = enq.value
        if type(reg) is not str:
            continue
        prod_defs = _defs_in(prod_stage.body)
        defining = prod_defs.get(reg, [])
        if len(defining) != 1 or defining[0].kind != "assign":
            continue
        definition = defining[0]
        cons_defs = _defs_in(cons_stage.body)
        # Every operand must already exist in the consumer under the same
        # name (cloned pure scalars and dequeued values keep their names).
        available = True
        for arg in definition.args:
            if type(arg) is str and not arg.startswith("@"):
                if arg not in cons_defs and arg not in pipeline.scalar_params:
                    available = False
                    break
        if not available:
            continue
        # Replace the consumer's Deq with the recomputation and drop the
        # producer's Enq + the queue.
        recomputed = S.Assign(deq.dst, definition.op, list(definition.args))
        if definition.dst != deq.dst and deq.dst != reg:
            recomputed = S.Assign(deq.dst, definition.op, list(definition.args))
        _replace_with(cons_stage.body, deq, recomputed)
        _remove_stmt(prod_stage.body, enq)
        del pipeline.queues[qid]
        removed.append(qid)
    if removed:
        pipeline.meta.setdefault("recomputed_queues", []).extend(removed)
        pipeline.meta.setdefault("passes", []).append("recompute")
    return pipeline
