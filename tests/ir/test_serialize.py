"""Canonical IR serialization: stability, completeness, process-invariance."""

import subprocess
import sys

import pytest

from repro.core import compile_function
from repro.errors import PhloemError
from repro.ir import canonical_function, canonical_pipeline, fingerprint
from repro.workloads import bfs, spmm


def test_fingerprint_stable_under_clone():
    fn = bfs.function()
    assert fingerprint(fn) == fingerprint(fn.clone())


def test_pipeline_fingerprint_stable_under_clone():
    pipeline = compile_function(bfs.function(), num_stages=3)
    assert fingerprint(pipeline) == fingerprint(pipeline.clone())


def test_fingerprint_distinguishes_functions():
    assert fingerprint(bfs.function()) != fingerprint(spmm.function())


def test_fingerprint_tracks_pipeline_shape():
    fn = bfs.function()
    p2 = compile_function(fn, num_stages=2)
    p4 = compile_function(fn, num_stages=4)
    assert fingerprint(p2) != fingerprint(p4)


def test_pipeline_meta_excluded():
    fn = bfs.function()
    a = compile_function(fn, num_stages=3)
    b = compile_function(fn, num_stages=3)
    b.meta["provenance"] = "different"
    assert fingerprint(a) == fingerprint(b)


def test_canonical_text_covers_queues_and_stages():
    text = canonical_pipeline(compile_function(bfs.function(), num_stages=3))
    assert text.startswith("pipeline ")
    assert "queue " in text and "stage " in text


def test_canonical_function_lists_arrays_sorted():
    text = canonical_function(bfs.function())
    arrays = [line.split()[1] for line in text.splitlines() if line.startswith("array ")]
    assert arrays == sorted(arrays)


def test_unknown_object_raises():
    with pytest.raises(PhloemError):
        fingerprint(object())


def test_unknown_statement_kind_raises():
    class Mystery:
        kind = "mystery"

    fn = bfs.function()
    fn.body.append(Mystery())
    with pytest.raises(PhloemError):
        fingerprint(fn)


def test_fingerprint_stable_across_processes():
    """The cache key must not depend on per-process state (PYTHONHASHSEED)."""
    code = (
        "from repro.ir import fingerprint\n"
        "from repro.workloads import bfs\n"
        "print(fingerprint(bfs.function()))\n"
    )
    prints = set()
    for seed in ("1", "2"):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            cwd="/root/repo",
            check=True,
        )
        prints.add(proc.stdout.strip())
    assert prints == {fingerprint(bfs.function())}
