"""Discrete-event scheduler for simulated threads.

Each stage thread and reference accelerator is a :class:`Task` wrapping a
Python generator. Tasks run until they *block* (yielding control when a
queue is full/empty or at a barrier) or finish. The scheduler always resumes
the runnable task with the smallest local clock, which keeps timestamped
resources (issue ledgers, DRAM controllers) consistent, and detects
deadlocks: if no task can run and undone work remains, it reports who is
blocked on what.
"""

import heapq

from ..errors import DeadlockError

#: Yielded by a task generator when it must wait for an external event.
BLOCKED = "blocked"


class Task:
    """A schedulable simulated thread.

    ``daemon`` tasks (reference accelerators) do not keep the simulation
    alive: the run ends when every non-daemon task has finished.
    """

    __slots__ = ("name", "gen", "clock_ref", "runnable", "done", "daemon", "blocked_on", "_sched")

    def __init__(self, name, daemon=False):
        self.name = name
        self.gen = None
        self.clock_ref = None  # callable returning the task's local cycle
        self.runnable = True
        self.done = False
        self.daemon = daemon
        self.blocked_on = None
        self._sched = None

    @property
    def time(self):
        # Always a float: heap keys must never mix int clocks (an RA's
        # integer cycle counter) with float stage cursors, or ordering ties
        # would compare tuples of unlike-typed keys.
        clock = self.clock_ref
        return float(clock()) if clock is not None else 0.0

    def wake(self):
        if not self.done and not self.runnable:
            self.runnable = True
            self.blocked_on = None
            if self._sched is not None:
                self._sched._push(self)

    def block(self, reason):
        self.runnable = False
        self.blocked_on = reason

    def __repr__(self):
        state = "done" if self.done else ("runnable" if self.runnable else "blocked:%s" % (self.blocked_on,))
        return "Task(%s, %s)" % (self.name, state)


class BarrierSync:
    """Synchronizes all participating tasks (paper Sec. IV-A, program phases)."""

    def __init__(self, participants, cost=30.0):
        self.participants = participants
        self.cost = cost
        self.arrived = {}
        self.generation = 0
        self.last_release = 0.0

    def arrive(self, task, now):
        """Register arrival; returns release cycle if this arrival completes
        the barrier, else None (the task must block)."""
        self.arrived[task] = now
        if len(self.arrived) < self.participants:
            return None
        release = max(self.arrived.values()) + self.cost
        waiters = [t for t in self.arrived if t is not task]
        self.arrived = {}
        self.generation += 1
        self.last_release = release
        for t in waiters:
            t.wake()
        return release

    def next_event_cycle(self, now):
        """Event-horizon contract: when the barrier next releases anyone.

        None while a generation is open (arrivals, not time, complete it);
        otherwise the last release cycle bounded below by ``now`` — the
        stall target ``arrive`` handed the final arriver."""
        if self.arrived:
            return None
        release = self.last_release
        return release if release > now else now

    def drop_participant(self):
        """A participating task finished; shrink the barrier.

        If the remaining arrivals now complete a generation, release them.
        """
        self.participants -= 1
        if self.arrived and len(self.arrived) >= self.participants > 0:
            release = max(self.arrived.values()) + self.cost
            waiters = list(self.arrived)
            self.arrived = {}
            self.generation += 1
            self.last_release = release
            for t in waiters:
                t.wake()
            return release
        return None


class SharedCells:
    """Cross-stage scalar cells, coherent only across barriers."""

    def __init__(self):
        self.values = {}

    def read(self, name):
        return self.values.get(name, 0)

    def write(self, name, value):
        self.values[name] = value


class Scheduler:
    """Runs tasks to completion; min-local-time scheduling with wakeups.

    With a :class:`~repro.obs.tracer.Tracer` attached, every residency of a
    task (resume cycle to yield cycle, with the blocking reason) is
    recorded as a span on that task's track; tracing off costs one ``is
    None`` check per resume.
    """

    def __init__(self, tracer=None, topology=None, deadlock_hint=None):
        self.tasks = []
        self._heap = []
        self._counter = 0
        self.tracer = tracer
        #: Optional queue-endpoint topology for deadlock reports:
        #: ``{"task_replica": {task name: replica},
        #:    "producer"/"consumer": {(replica, qid): task name}}``.
        #: With it, a deadlock report names the actual wait cycle
        #: (stage -> queue -> stage chain) instead of just listing waiters.
        self.topology = topology
        #: Optional zero-argument callable returning one extra report line
        #: (the machine wires the static analyzer's verdict through this).
        self.deadlock_hint = deadlock_hint

    def add(self, task, gen):
        task.gen = gen
        task._sched = self
        self.tasks.append(task)
        if self.tracer is not None:
            self.tracer.register_thread(task.name)
        self._push(task)

    def _push(self, task):
        self._counter += 1
        clock = task.clock_ref
        key = float(clock()) if clock is not None else 0.0
        heapq.heappush(self._heap, (key, self._counter, task))

    def run(self, max_resumes=200_000_000):
        pending = sum(1 for t in self.tasks if not t.daemon)
        resumes = 0
        tracer = self.tracer
        heap = self._heap
        next_task = None
        while pending > 0:
            if next_task is not None:
                task, next_task = next_task, None
            else:
                task = self._pop_runnable()
                if task is None:
                    self._report_deadlock()
            resumes += 1
            if resumes > max_resumes:
                raise DeadlockError("simulation exceeded %d task resumes; likely livelock" % max_resumes)
            if tracer is not None:
                resumed_at = task.time
            try:
                task.gen.send(None)
            except StopIteration:
                task.done = True
                task.runnable = False
                if tracer is not None:
                    tracer.span(task.name, resumed_at, task.time, "done")
                if not task.daemon:
                    pending -= 1
            else:
                # The generator yielded BLOCKED; it has already registered
                # itself as a waiter (queue list or barrier) before yielding.
                if tracer is not None:
                    reason = "preempted" if task.runnable else task.blocked_on
                    tracer.span(task.name, resumed_at, task.time, reason)
                if task.runnable:
                    # Woken while blocking (enq/deq raced with wake): rerun.
                    # Lazy re-push: while the task's clock is strictly below
                    # every heap key it would be popped right back, so skip
                    # the push/pop pair. Strictness matters — at equal times
                    # the earlier-pushed entry must win the counter tie-break.
                    if not heap or task.time < heap[0][0]:
                        next_task = task
                    else:
                        self._push(task)

    def _pop_runnable(self):
        while self._heap:
            _, _, task = heapq.heappop(self._heap)
            if task.runnable and not task.done:
                return task
        return None

    def next_event_horizon(self):
        """Event-horizon contract: the cycle of the next task resume, or
        None when no task is runnable (deadlock or completion).

        Dead heap entries (tasks that finished or re-blocked since their
        push) are lazily discarded, exactly like :meth:`_pop_runnable`, but
        the live head stays queued — this is a pure query. ``run()`` then
        advances the simulation straight to this horizon: there is no
        per-cycle loop anywhere, quiescent cycles are skipped by
        construction."""
        heap = self._heap
        while heap:
            key, _, task = heap[0]
            if task.runnable and not task.done:
                return key
            heapq.heappop(heap)
        return None

    def _report_deadlock(self):
        blocked = [t for t in self.tasks if not t.done and not t.runnable and not t.daemon]
        lines = ["all threads blocked:"]
        for t in blocked:
            lines.append("  %s waiting on %s at cycle %.0f" % (t.name, t.blocked_on, t.time))
        chain = self._wait_chain(blocked)
        if chain:
            lines.append("wait cycle: %s" % chain)
        if self.deadlock_hint is not None:
            hint = self.deadlock_hint()
            if hint:
                lines.append(hint)
        raise DeadlockError("\n".join(lines))

    def _peer_of(self, task):
        """The task that ``task``'s blocking reason is waiting on, plus an
        edge label — blocked on a full queue waits for its consumer, blocked
        on an empty queue waits for its producer."""
        reason = task.blocked_on
        if self.topology is None or not isinstance(reason, tuple) or len(reason) != 2:
            return None, None
        kind, key = reason
        replica = self.topology.get("task_replica", {}).get(task.name)
        if kind in ("enq", "ra-enq"):
            peer = self.topology.get("consumer", {}).get((replica, key))
            label = "enq q%s" % key
        elif kind in ("deq", "peek", "ra-deq"):
            peer = self.topology.get("producer", {}).get((replica, key))
            label = "%s q%s" % ("deq" if kind != "peek" else "peek", key)
        else:
            return None, None  # barriers wait on everyone, not one peer
        return peer, label

    def _wait_chain(self, blocked):
        """Chase blocked-on edges to find and render a wait cycle, if any."""
        by_name = {t.name: t for t in self.tasks}
        for start in blocked:
            visited = []  # [(task, edge label)] along the chase
            names = {}
            task = start
            while task is not None and not task.done and not task.runnable:
                if task.name in names:
                    cycle = visited[names[task.name]:]
                    parts = ["%s -(%s)->" % (t.name, lbl) for t, lbl in cycle]
                    return " ".join(parts + [cycle[0][0].name])
                peer_name, label = self._peer_of(task)
                if peer_name is None:
                    break
                names[task.name] = len(visited)
                visited.append((task, label))
                task = by_name.get(peer_name)
        return None


class IssueLedger:
    """Per-core shared issue bandwidth: ``width`` micro-ops per cycle.

    ``acquire(t)`` returns the first cycle >= t with a free slot and
    consumes it. Threads at different local times share one ledger, which is
    what models SMT contention among co-scheduled pipeline stages.
    """

    __slots__ = ("width", "slots", "low_water")

    def __init__(self, width):
        self.width = width
        self.slots = {}
        self.low_water = 0

    def acquire(self, t):
        c = int(t)
        if c < t:
            c += 1
        slots = self.slots
        width = self.width
        n = slots.get(c, 0)
        while n >= width:
            c += 1
            n = slots.get(c, 0)
        slots[c] = n + 1
        return float(c)

    def prune(self, horizon):
        """Drop bookkeeping for cycles below ``horizon`` (all threads past it)."""
        if horizon - self.low_water < 4096:
            return
        self.slots = {c: n for c, n in self.slots.items() if c >= horizon}
        self.low_water = int(horizon)
