"""Def/use maps and the purity analysis."""

from repro import ir
from repro.analysis.defs import DefUse, pure_regs
from repro.frontend import compile_source


def test_defuse_counts():
    body = [
        ir.Assign("x", "mov", [0]),
        ir.Assign("x", "add", ["x", 1]),
        ir.Assign("y", "add", ["x", "x"]),
    ]
    du = DefUse(body)
    assert len(du.defining_stmts("x")) == 2
    assert du.single_def("x") is None
    assert du.single_def("y") is body[2]
    assert du.use_count("x") == 3


def test_defuse_sees_nested():
    body = [ir.For("i", 0, "n", 1, [ir.Load("v", "@a", "i")])]
    du = DefUse(body)
    assert du.single_def("v").kind == "load"
    assert du.defining_stmts("i")[0].kind == "for"


def test_pure_params_and_consts():
    body = [ir.Assign("x", "add", ["n", 1]), ir.Assign("y", "mul", ["x", 2])]
    pure = pure_regs(body, ["n"])
    assert {"n", "x", "y"} <= pure


def test_load_breaks_purity():
    body = [ir.Load("v", "@a", 0), ir.Assign("x", "add", ["v", 1])]
    pure = pure_regs(body, [])
    assert "v" not in pure and "x" not in pure


def test_accumulator_not_pure():
    # acc = 0; acc = acc + v (v impure): the self-referential add is impure.
    body = [
        ir.Load("v", "@a", 0),
        ir.Assign("acc", "mov", [0]),
        ir.Assign("acc", "add", ["acc", "v"]),
    ]
    assert "acc" not in pure_regs(body, [])


def test_self_counter_not_pure_via_lfp():
    # i = 0; i = i + 1 inside a loop: conservatively impure under LFP
    # (its trip-dependent value cannot be recomputed without the loop).
    body = [
        ir.Assign("i", "mov", [0]),
        ir.Loop([ir.Assign("%t", "add", ["i", 1]), ir.Assign("i", "mov", ["%t"])]),
    ]
    pure = pure_regs(body, [])
    assert "%t" not in pure


def test_pointer_swap_cycle_is_pure():
    """The BFS fringe swap: a mov cycle of array handles must be replicable."""
    src = """
    void k(int* restrict f0, int* restrict f1, int n) {
      int* restrict cur = f0;
      int* restrict nxt = f1;
      while (n > 0) {
        int* restrict tmp = cur;
        cur = nxt;
        nxt = tmp;
        n = n - 1;
        cur[0] = n;
      }
    }
    """
    f = compile_source(src)
    pure = pure_regs(f.body, f.scalar_params)
    assert {"cur", "nxt", "tmp"} <= pure


def test_read_shared_is_pure():
    body = [ir.ReadShared("x", "total"), ir.Assign("y", "add", ["x", 1])]
    assert {"x", "y"} <= pure_regs(body, [])


def test_for_var_with_pure_bounds_is_pure():
    body = [ir.For("i", 0, "n", 1, [ir.Assign("x", "add", ["i", 1])])]
    pure = pure_regs(body, ["n"])
    assert {"i", "x"} <= pure


def test_for_var_with_impure_bounds_not_pure():
    body = [
        ir.Load("hi", "@a", 0),
        ir.For("i", 0, "hi", 1, [ir.Assign("x", "add", ["i", 1])]),
    ]
    pure = pure_regs(body, [])
    assert "i" not in pure and "x" not in pure
