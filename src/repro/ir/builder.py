"""Convenience builder for constructing Phloem IR by hand.

Used by the frontend's lowering, by the compiler passes when they synthesize
new code, and by the hand-written "manually pipelined" benchmark variants
(the paper's `Manual` bars), which are built directly at this level just as
the paper's were written directly against the Pipette API.

Example::

    b = IRBuilder()
    with b.for_("i", 0, "n"):
        v = b.load("@A", "i")
        with b.if_(b.binop("gt", v, 0)):
            w = b.load("@B", v)
            b.call(None, "work", [w])
    body = b.finish()
"""

from contextlib import contextmanager

from . import stmts
from .values import Ctrl


class IRBuilder:
    """Builds a statement list with nested control flow via context managers."""

    def __init__(self, temp_prefix="t"):
        self._stack = [[]]
        self._temp_prefix = temp_prefix
        self._next_temp = 0
        self.span = None  # current source span; stamped onto emitted stmts

    # -- plumbing ---------------------------------------------------------

    def fresh(self, hint=None):
        """Return a fresh temporary register name."""
        name = "%s%d" % (hint or self._temp_prefix, self._next_temp)
        self._next_temp += 1
        return name

    def at(self, span):
        """Set the source span stamped onto subsequently emitted statements.

        The frontend's lowering sets this per source statement; ``None``
        (the default) leaves statements span-free, which is what compiler
        passes synthesizing new code want.
        """
        self.span = span
        return span

    def emit(self, stmt):
        """Append a statement to the current block and return it."""
        if self.span is not None and stmt.span is None:
            stmt.span = self.span
        self._stack[-1].append(stmt)
        return stmt

    def finish(self):
        """Return the completed top-level body."""
        if len(self._stack) != 1:
            raise RuntimeError("unclosed block in IRBuilder")
        return self._stack[0]

    # -- straight-line statements -----------------------------------------

    def assign(self, op, args, dst=None):
        dst = dst or self.fresh()
        self.emit(stmts.Assign(dst, op, args))
        return dst

    def binop(self, op, a, b, dst=None):
        return self.assign(op, [a, b], dst)

    def mov(self, src, dst=None):
        return self.assign("mov", [src], dst)

    def const(self, value, dst=None):
        """Materialize a constant into a register (a ``mov`` from a literal)."""
        return self.assign("mov", [value], dst)

    def load(self, array, index, dst=None):
        dst = dst or self.fresh()
        self.emit(stmts.Load(dst, array, index))
        return dst

    def store(self, array, index, value):
        self.emit(stmts.Store(array, index, value))

    def prefetch(self, array, index):
        self.emit(stmts.Prefetch(array, index))

    def enq(self, queue, value):
        self.emit(stmts.Enq(queue, value))

    def enq_ctrl(self, queue, ctrl):
        if isinstance(ctrl, str):
            ctrl = Ctrl(ctrl)
        self.emit(stmts.EnqCtrl(queue, ctrl))

    def deq(self, queue, dst=None):
        dst = dst or self.fresh()
        self.emit(stmts.Deq(dst, queue))
        return dst

    def peek(self, queue, dst=None):
        dst = dst or self.fresh()
        self.emit(stmts.Peek(dst, queue))
        return dst

    def is_control(self, src, dst=None):
        dst = dst or self.fresh()
        self.emit(stmts.IsControl(dst, src))
        return dst

    def call(self, dst, func, args):
        self.emit(stmts.Call(dst, func, args))
        return dst

    def atomic_rmw(self, op, array, index, value, dst=None):
        dst = dst or self.fresh()
        self.emit(stmts.AtomicRMW(dst, op, array, index, value))
        return dst

    def atomic_add(self, array, index, value, dst=None):
        return self.atomic_rmw("add", array, index, value, dst)

    def atomic_min(self, array, index, value, dst=None):
        return self.atomic_rmw("min", array, index, value, dst)

    def atomic_or(self, array, index, value, dst=None):
        return self.atomic_rmw("or", array, index, value, dst)

    def enq_dist(self, queue, value, replica):
        self.emit(stmts.EnqDist(queue, value, replica))

    def enq_ctrl_dist(self, queue, ctrl):
        if isinstance(ctrl, str):
            ctrl = Ctrl(ctrl)
        self.emit(stmts.EnqCtrlDist(queue, ctrl))

    def barrier(self, tag="phase"):
        self.emit(stmts.Barrier(tag))

    def read_shared(self, var, dst=None):
        dst = dst or self.fresh()
        self.emit(stmts.ReadShared(dst, var))
        return dst

    def write_shared(self, var, value):
        self.emit(stmts.WriteShared(var, value))

    def break_(self, levels=1):
        self.emit(stmts.Break(levels))

    def continue_(self):
        self.emit(stmts.Continue())

    def comment(self, text):
        self.emit(stmts.Comment(text))

    # -- control flow -----------------------------------------------------

    @contextmanager
    def for_(self, var, lo, hi, step=1):
        """Build a counted loop; yields the induction variable name."""
        body = []
        self._stack.append(body)
        try:
            yield var
        finally:
            self._stack.pop()
        self.emit(stmts.For(var, lo, hi, step, body))

    @contextmanager
    def loop(self):
        """Build an unbounded loop (exit with ``break_``)."""
        body = []
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()
        self.emit(stmts.Loop(body))

    @contextmanager
    def if_(self, cond):
        """Build the then-arm of a conditional."""
        then_body = []
        self._stack.append(then_body)
        try:
            yield
        finally:
            self._stack.pop()
        self.emit(stmts.If(cond, then_body, []))

    @contextmanager
    def if_else(self, cond):
        """Build both arms: yields ``(then_ctx, else_ctx)`` context managers."""
        node = stmts.If(cond, [], [])

        @contextmanager
        def arm(body):
            self._stack.append(body)
            try:
                yield
            finally:
                self._stack.pop()

        yield arm(node.then_body), arm(node.else_body)
        self.emit(node)

    @contextmanager
    def block(self):
        """Collect statements into a detached list (for handlers)."""
        body = []
        self._stack.append(body)
        try:
            yield body
        finally:
            self._stack.pop()
