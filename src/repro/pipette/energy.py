"""Energy model (stands in for the paper's McPAT-22nm + DDR3L models).

Per-event energies and static power are representative 22 nm-class
constants. Absolute joules are not meaningful for a reproduction; what the
evaluation (Fig. 11) compares is the *relative* energy of program variants,
which is driven by the event counts and runtime measured by the simulator.
"""

#: Per-event dynamic energy, picojoules.
ENERGY_PJ = {
    "uop": 60.0,  # fetch/decode/rename/execute/retire of one micro-op
    "l1": 15.0,
    "l2": 45.0,
    "l3": 180.0,
    "dram": 2800.0,
    "queue_op": 4.0,  # register-file-based queue access
    "ra_load": 8.0,  # RA FSM control overhead (its cache traffic is counted)
}

#: Static (leakage + clock) power per core, picojoules per cycle.
STATIC_PJ_PER_CYCLE = 120.0


class EnergyBreakdown:
    """Energy totals in picojoules, split the way Fig. 11 plots them."""

    def __init__(self, core_dynamic, core_static, cache, dram):
        self.core_dynamic = core_dynamic
        self.core_static = core_static
        self.cache = cache
        self.dram = dram

    @property
    def total(self):
        return self.core_dynamic + self.core_static + self.cache + self.dram

    def as_dict(self):
        return {
            "core_dynamic": self.core_dynamic,
            "core_static": self.core_static,
            "cache": self.cache,
            "dram": self.dram,
        }

    def __repr__(self):
        return "EnergyBreakdown(total=%.3g pJ)" % self.total


def energy_of(stats, config, active_cores=None):
    """Compute the energy breakdown of a finished run.

    ``active_cores`` defaults to the configured core count; single-pipeline
    runs on a multicore config may pass fewer.
    """
    if active_cores is None:
        active_cores = config.cores

    core_dynamic = ENERGY_PJ["uop"] * stats.total_uops
    core_dynamic += ENERGY_PJ["queue_op"] * (stats.queue_enqs + stats.queue_deqs)
    core_dynamic += ENERGY_PJ["ra_load"] * stats.ra_loads

    cache = 0.0
    for name, key in (("L1", "l1"), ("L2", "l2"), ("L3", "l3")):
        level = stats.cache_levels.get(name)
        if level is not None:
            cache += ENERGY_PJ[key] * (level.accesses + level.prefetch_fills)

    dram = ENERGY_PJ["dram"] * stats.dram_accesses
    core_static = STATIC_PJ_PER_CYCLE * stats.wall_cycles * active_cores
    return EnergyBreakdown(core_dynamic, core_static, cache, dram)
