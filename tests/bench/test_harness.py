"""Bench harness: adapters, suites, normalization (on micro inputs)."""

import pytest

from repro.bench.harness import (
    GraphBenchAdapter,
    VariantRun,
    gmean_speedup,
    normalized_breakdowns,
    normalized_energy,
    profile_guided_pipeline,
    run_suite,
)
from repro.workloads import bfs
from repro.workloads.datasets import GraphInput
from repro.workloads.graphs import uniform_random


@pytest.fixture(scope="module")
def micro_inputs():
    return [
        GraphInput("t1", "test", lambda: uniform_random(80, 3, seed=1)),
        GraphInput("t2", "test", lambda: uniform_random(90, 3, seed=2)),
    ]


def test_gmean_speedup():
    runs = [
        VariantRun("v", "a", 10, True, {}, {}, {"speedup": 2.0}),
        VariantRun("v", "b", 10, True, {}, {}, {"speedup": 8.0}),
    ]
    assert gmean_speedup(runs) == pytest.approx(4.0)


def test_profile_guided_pipeline(micro_inputs, tiny_config):
    adapter = GraphBenchAdapter(bfs)
    best, results = profile_guided_pipeline(
        adapter, micro_inputs, config=tiny_config, max_stages=3, top_k=3
    )
    assert best is not None
    assert results


def test_run_suite_end_to_end(micro_inputs, tiny_config):
    adapter = GraphBenchAdapter(bfs)
    suite = run_suite(
        adapter,
        micro_inputs[:1],
        micro_inputs[1:],
        config=tiny_config,
        variants=("serial", "data-parallel", "phloem-static", "manual"),
    )
    for variant in ("serial", "data-parallel", "phloem-static", "manual"):
        assert len(suite[variant]) == 1
        assert all(r.ok for r in suite[variant])
    assert suite["serial"][0].meta["speedup"] == 1.0
    assert suite["phloem-static"][0].meta["speedup"] > 0

    breakdowns = normalized_breakdowns(suite)
    assert abs(sum(breakdowns["serial"].values()) - 1.0) < 1e-9
    energy = normalized_energy(suite)
    assert abs(sum(energy["serial"].values()) - 1.0) < 1e-9
