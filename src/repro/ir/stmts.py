"""Statement nodes of the Phloem IR.

The IR is a *region tree*: a stage body is a list of statements, and the
control-flow statements (``For``, ``Loop``, ``If``) own nested statement
lists. Phloem's passes manipulate this tree directly — decoupling slices it,
the queue passes splice ``Enq``/``Deq`` nodes into it, and the control-value
passes restructure its loops.

Every node knows its ``uses()`` (registers read), ``defs()`` (registers
written), sub-``blocks()``, and how to ``clone()`` itself, which is all the
passes need to stay simple.
"""

from . import ops
from .values import is_reg


def _clone_body(body):
    return [s.clone() for s in body]


class Stmt:
    """Base class for all IR statements.

    ``span`` (a :class:`repro.diag.Span`, default None) is the source
    position the statement was lowered from. The frontend stamps it via
    :class:`~repro.ir.builder.IRBuilder`; compiler-synthesized statements
    have none. Spans ride through every ``clone()`` automatically (see
    ``__init_subclass__``) so diagnostics on decoupled pipelines still
    point at the original mini-C line.
    """

    kind = "stmt"
    span = None  # class-level default; instances carry their own when known

    def __init_subclass__(cls, **kwargs):
        # Wrap each subclass's clone() so the span (statement metadata, not
        # operand state) is copied without every clone body repeating it.
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("clone")
        if impl is None:
            return

        def clone(self, _impl=impl):
            new = _impl(self)
            if self.span is not None:
                new.span = self.span
            return new

        clone.__doc__ = impl.__doc__
        cls.clone = clone

    def uses(self):
        """Registers this statement reads."""
        return ()

    def defs(self):
        """Registers this statement writes."""
        return ()

    def blocks(self):
        """Nested statement lists owned by this statement."""
        return ()

    def clone(self):
        raise NotImplementedError

    def __repr__(self):
        from .printer import format_stmt

        return format_stmt(self)


class Assign(Stmt):
    """``dst = op(args...)`` — one fine-grain scalar operation."""

    kind = "assign"
    __slots__ = ("dst", "op", "args")

    def __init__(self, dst, op, args):
        if op not in ops.ALL_OPS:
            raise ValueError("unknown op %r" % (op,))
        if len(args) != ops.arity(op):
            raise ValueError("op %r expects %d args, got %d" % (op, ops.arity(op), len(args)))
        self.dst = dst
        self.op = op
        self.args = list(args)

    def uses(self):
        return [a for a in self.args if is_reg(a)]

    def defs(self):
        return (self.dst,)

    def clone(self):
        return Assign(self.dst, self.op, list(self.args))


class Load(Stmt):
    """``dst = array[index]`` — the unit of irregularity the paper decouples at."""

    kind = "load"
    __slots__ = ("dst", "array", "index")

    def __init__(self, dst, array, index):
        self.dst = dst
        self.array = array
        self.index = index

    def uses(self):
        used = []
        if is_reg(self.array):
            used.append(self.array)
        if is_reg(self.index):
            used.append(self.index)
        return used

    def defs(self):
        return (self.dst,)

    def clone(self):
        return Load(self.dst, self.array, self.index)


class Store(Stmt):
    """``array[index] = value``."""

    kind = "store"
    __slots__ = ("array", "index", "value")

    def __init__(self, array, index, value):
        self.array = array
        self.index = index
        self.value = value

    def uses(self):
        return [a for a in (self.array, self.index, self.value) if is_reg(a)]

    def clone(self):
        return Store(self.array, self.index, self.value)


class Prefetch(Stmt):
    """Issue a load for timing only; the value is discarded.

    Emitted by the decoupler when the aliasing rule forbids forwarding a
    loaded value across stages (paper Sec. IV-A: "Phloem may still
    *prefetch* data in this case").
    """

    kind = "prefetch"
    __slots__ = ("array", "index")

    def __init__(self, array, index):
        self.array = array
        self.index = index

    def uses(self):
        return [a for a in (self.array, self.index) if is_reg(a)]

    def clone(self):
        return Prefetch(self.array, self.index)


class Enq(Stmt):
    """``enq(queue, value)`` — blocking enqueue of a data value."""

    kind = "enq"
    __slots__ = ("queue", "value")

    def __init__(self, queue, value):
        self.queue = queue
        self.value = value

    def uses(self):
        return [self.value] if is_reg(self.value) else ()

    def clone(self):
        return Enq(self.queue, self.value)


class EnqCtrl(Stmt):
    """``enq_ctrl(queue, cv)`` — enqueue an in-band control value."""

    kind = "enq_ctrl"
    __slots__ = ("queue", "ctrl")

    def __init__(self, queue, ctrl):
        self.queue = queue
        self.ctrl = ctrl  # a values.Ctrl

    def clone(self):
        return EnqCtrl(self.queue, self.ctrl)


class Deq(Stmt):
    """``dst = deq(queue)`` — blocking dequeue."""

    kind = "deq"
    __slots__ = ("dst", "queue")

    def __init__(self, dst, queue):
        self.dst = dst
        self.queue = queue

    def defs(self):
        return (self.dst,)

    def clone(self):
        return Deq(self.dst, self.queue)


class Peek(Stmt):
    """``dst = peek(queue)`` — read the head without consuming it."""

    kind = "peek"
    __slots__ = ("dst", "queue")

    def __init__(self, dst, queue):
        self.dst = dst
        self.queue = queue

    def defs(self):
        return (self.dst,)

    def clone(self):
        return Peek(self.dst, self.queue)


class IsControl(Stmt):
    """``dst = is_control(src)`` — test whether a dequeued value is a control value."""

    kind = "is_control"
    __slots__ = ("dst", "src")

    def __init__(self, dst, src):
        self.dst = dst
        self.src = src

    def uses(self):
        return [self.src] if is_reg(self.src) else ()

    def defs(self):
        return (self.dst,)

    def clone(self):
        return IsControl(self.dst, self.src)


class For(Stmt):
    """Counted loop: ``for (var = lo; var < hi; var += step) body``."""

    kind = "for"
    __slots__ = ("var", "lo", "hi", "step", "body")

    def __init__(self, var, lo, hi, step, body):
        self.var = var
        self.lo = lo
        self.hi = hi
        self.step = step
        self.body = body

    def uses(self):
        return [a for a in (self.lo, self.hi, self.step) if is_reg(a)]

    def defs(self):
        return (self.var,)

    def blocks(self):
        return (self.body,)

    def clone(self):
        return For(self.var, self.lo, self.hi, self.step, _clone_body(self.body))


class Loop(Stmt):
    """Unbounded loop (``while (true)``); exits only via ``Break``.

    Pass 4 (use control values) rewrites counted consumer loops into this
    form, exactly as the paper describes ("any loop that uses a control
    value becomes a while (true) {...} statement").
    """

    kind = "loop"
    __slots__ = ("body",)

    def __init__(self, body):
        self.body = body

    def blocks(self):
        return (self.body,)

    def clone(self):
        return Loop(_clone_body(self.body))


class If(Stmt):
    """Two-armed conditional on a register/constant condition."""

    kind = "if"
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond, then_body, else_body=None):
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body if else_body is not None else []

    def uses(self):
        return [self.cond] if is_reg(self.cond) else ()

    def blocks(self):
        return (self.then_body, self.else_body)

    def clone(self):
        return If(self.cond, _clone_body(self.then_body), _clone_body(self.else_body))


class Break(Stmt):
    """Break out of ``levels`` enclosing loops (default 1)."""

    kind = "break"
    __slots__ = ("levels",)

    def __init__(self, levels=1):
        self.levels = levels

    def clone(self):
        return Break(self.levels)


class Continue(Stmt):
    """Continue the innermost enclosing loop."""

    kind = "continue"
    __slots__ = ()

    def clone(self):
        return Continue()


class Barrier(Stmt):
    """Synchronize all stages of a pipeline (paper Sec. IV-A, program phases)."""

    kind = "barrier"
    __slots__ = ("tag",)

    def __init__(self, tag="phase"):
        self.tag = tag

    def clone(self):
        return Barrier(self.tag)


class ReadShared(Stmt):
    """``dst = shared[var]`` — read a cross-stage scalar cell.

    Shared cells carry phase-level scalars (e.g. the next fringe size in
    BFS). They are only coherent across a ``Barrier``; the verifier enforces
    that the writer and readers are separated by one.
    """

    kind = "read_shared"
    __slots__ = ("dst", "var")

    def __init__(self, dst, var):
        self.dst = dst
        self.var = var

    def defs(self):
        return (self.dst,)

    def clone(self):
        return ReadShared(self.dst, self.var)


class WriteShared(Stmt):
    """``shared[var] = value`` — write a cross-stage scalar cell."""

    kind = "write_shared"
    __slots__ = ("var", "value")

    def __init__(self, var, value):
        self.var = var
        self.value = value

    def uses(self):
        return [self.value] if is_reg(self.value) else ()

    def clone(self):
        return WriteShared(self.var, self.value)


class Call(Stmt):
    """``dst = func(args...)`` — call an opaque intrinsic.

    Phloem does not decouple inside calls (paper Sec. IV-A); intrinsics carry
    a cost (in issue slots) used by the timing model, and a Python callable
    giving their functional semantics.
    """

    kind = "call"
    __slots__ = ("dst", "func", "args")

    def __init__(self, dst, func, args):
        self.dst = dst
        self.func = func
        self.args = list(args)

    def uses(self):
        return [a for a in self.args if is_reg(a)]

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    def clone(self):
        return Call(self.dst, self.func, list(self.args))


class AtomicRMW(Stmt):
    """``dst = atomic_op(array[index], value)`` returning the *old* value.

    Used by the hand-written data-parallel baselines (Ligra/PBFS-style
    ports) for fetch-and-add / fetch-and-min on shared arrays. Not emitted
    by the Phloem compiler — decoupled pipelines need no atomics, which is
    part of the paper's point.
    """

    kind = "atomic_rmw"
    __slots__ = ("dst", "op", "array", "index", "value")

    def __init__(self, dst, op, array, index, value):
        if op not in ("add", "min", "max", "or", "and"):
            raise ValueError("unsupported atomic op %r" % (op,))
        self.dst = dst
        self.op = op
        self.array = array
        self.index = index
        self.value = value

    def uses(self):
        return [a for a in (self.array, self.index, self.value) if is_reg(a)]

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    def clone(self):
        return AtomicRMW(self.dst, self.op, self.array, self.index, self.value)


class EnqDist(Stmt):
    """``enq`` into queue ``queue`` of the replica selected by ``replica``.

    The distribution primitive of replicated pipelines (paper Sec. IV-C):
    a stage may enqueue work to the corresponding stage of *any* replica.
    ``replica`` is an operand evaluated at runtime (e.g. bits of a vertex
    id, per the paper's BFS example).
    """

    kind = "enq_dist"
    __slots__ = ("queue", "value", "replica")

    def __init__(self, queue, value, replica):
        self.queue = queue
        self.value = value
        self.replica = replica

    def uses(self):
        return [a for a in (self.value, self.replica) if is_reg(a)]

    def clone(self):
        return EnqDist(self.queue, self.value, self.replica)


class EnqCtrlDist(Stmt):
    """Broadcast a control value to queue ``queue`` of *all* replicas."""

    kind = "enq_ctrl_dist"
    __slots__ = ("queue", "ctrl")

    def __init__(self, queue, ctrl):
        self.queue = queue
        self.ctrl = ctrl

    def clone(self):
        return EnqCtrlDist(self.queue, self.ctrl)


class Comment(Stmt):
    """No-op annotation preserved by passes; helps debugging emitted code."""

    kind = "comment"
    __slots__ = ("text",)

    def __init__(self, text):
        self.text = text

    def clone(self):
        return Comment(self.text)


def walk(body):
    """Yield every statement in ``body``, pre-order, recursively."""
    for stmt in body:
        yield stmt
        for block in stmt.blocks():
            for inner in walk(block):
                yield inner


def walk_with_depth(body, depth=0):
    """Yield ``(stmt, loop_depth)`` pairs; depth counts enclosing loops."""
    for stmt in body:
        yield stmt, depth
        extra = 1 if stmt.kind in ("for", "loop") else 0
        for block in stmt.blocks():
            for pair in walk_with_depth(block, depth + extra):
                yield pair


def count_stmts(body):
    """Total number of statements in the region tree."""
    return sum(1 for _ in walk(body))
