"""Search instrumentation: what the autotuner scored and why the winner won.

The profile-guided search (:mod:`repro.core.autotune`) compiles and
profiles tens of candidate pipelines and keeps one; without a record of the
also-rans there is no way to tell whether the winner won comfortably or by
noise, nor why a candidate dropped out. A :class:`SearchRecorder` captures
every candidate (scored, compile-rejected, or evaluation-failed) and a
verdict explaining the selection.
"""


class SearchRecorder:
    """Records one profile-guided search."""

    def __init__(self):
        self.candidates = []
        self.verdict = None

    # -- hooks driven by the search ------------------------------------------

    def scored(self, indices, num_units, speedup):
        self.candidates.append(
            {
                "points": list(indices),
                "units": num_units,
                "speedup": speedup,
                "status": "scored",
            }
        )

    def failed(self, indices, stage, error):
        """A candidate that never produced a score.

        ``stage`` is ``"compile"`` (the transform rejected the combination —
        alias races, backward control) or ``"evaluate"`` (the simulation
        raised).
        """
        self.candidates.append(
            {
                "points": list(indices),
                "units": None,
                "speedup": None,
                "status": "failed:%s" % stage,
                "error": str(error),
            }
        )

    def pruned(self, indices, num_units, score, reason):
        """A candidate the static performance model dropped before
        simulation (``search_pipelines(prune_static=...)``): it compiled,
        was scored statically, and lost to better-predicted candidates.
        """
        self.candidates.append(
            {
                "points": list(indices),
                "units": num_units,
                "speedup": None,
                "static_score": score,
                "status": "pruned",
                "reason": reason,
            }
        )

    def decide(self, best_indices):
        """Record the selection verdict once scoring is done."""
        scored = [c for c in self.candidates if c["status"] == "scored"]
        if best_indices is None or not scored:
            self.verdict = {
                "winner": None,
                "reason": "no candidate both compiled and evaluated",
            }
            return
        ranked = sorted(scored, key=lambda c: -c["speedup"])
        winner = next(c for c in ranked if tuple(c["points"]) == tuple(best_indices))
        runner_up = next(
            (c for c in ranked if tuple(c["points"]) != tuple(best_indices)), None
        )
        margin = (
            winner["speedup"] - runner_up["speedup"] if runner_up is not None else None
        )
        self.verdict = {
            "winner": list(best_indices),
            "speedup": winner["speedup"],
            "units": winner["units"],
            "runner_up": None if runner_up is None else list(runner_up["points"]),
            "margin": margin,
            "reason": "highest gmean training speedup among %d scored candidates"
            % len(scored),
        }

    # -- views ---------------------------------------------------------------

    def as_dict(self):
        return {
            "candidates": [dict(c) for c in self.candidates],
            "verdict": None if self.verdict is None else dict(self.verdict),
        }

    def render(self):
        """ASCII rendering: every candidate, then the verdict."""
        lines = ["%-16s %6s %9s  %s" % ("points", "units", "speedup", "status")]
        for c in self.candidates:
            status = c["status"]
            if "error" in c:
                status += ": " + c["error"]
            elif "reason" in c:
                status += ": " + c["reason"]
            lines.append(
                "%-16s %6s %9s  %s"
                % (
                    c["points"],
                    "-" if c["units"] is None else c["units"],
                    "-" if c["speedup"] is None else "%.2fx" % c["speedup"],
                    status,
                )
            )
        v = self.verdict
        if v is not None:
            if v["winner"] is None:
                lines.append("verdict: %s" % v["reason"])
            else:
                margin = (
                    "sole scored candidate"
                    if v["margin"] is None
                    else "+%.3f over %s" % (v["margin"], v["runner_up"])
                )
                lines.append(
                    "verdict: %s at %.2fx (%s; %s)"
                    % (v["winner"], v["speedup"], margin, v["reason"])
                )
        return "\n".join(lines)
