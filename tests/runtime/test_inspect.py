"""Run introspection reports."""

from repro.core import ALL_PASSES, compile_function
from repro.runtime import describe_run, queue_report, run_pipeline, stage_report
from repro.workloads import bfs


def _result(tiny_graph, tiny_config):
    arrays, scalars = bfs.make_env(tiny_graph)
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    return run_pipeline(pipe, arrays, scalars, config=tiny_config)


def test_stage_report_rows(tiny_graph, tiny_config):
    result = _result(tiny_graph, tiny_config)
    rows = stage_report(result)
    assert len(rows) == len(result.stats.threads)
    for row in rows:
        total_pct = row["issue_pct"] + row["backend_pct"] + row["queue_pct"] + row["other_pct"]
        assert abs(total_pct - 100.0) < 1.0 or row["cycles"] == 0


def test_queue_report_balanced_traffic(tiny_graph, tiny_config):
    result = _result(tiny_graph, tiny_config)
    rows = queue_report(result.machine)
    assert rows
    for row in rows:
        assert row["enqs"] == row["deqs"]  # streams fully drained
        assert 0 <= row["peak"] <= row["capacity"]


def test_describe_run_text(tiny_graph, tiny_config):
    result = _result(tiny_graph, tiny_config)
    text = describe_run(result, result.machine)
    assert "thread" in text
    assert "DRAM:" in text
    assert "update" in text
