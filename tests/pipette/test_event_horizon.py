"""Property tests for the ``next_event_cycle`` event-horizon contracts.

The batch-advance engine never steps the clock cycle by cycle: every
resource exposes a pure query returning the next cycle at which something
can happen, and the engine jumps straight to it. These properties pin the
contract that makes the jump sound — *skipping N quiescent cycles is
indistinguishable from stepping N times*: for every cycle strictly before
the reported horizon the resource is unavailable (stepping would observe no
transition), at the horizon it is available, and acting early completes at
exactly the horizon (the skip changes no timestamp).

Covered resources: :class:`HWQueue` (both endpoints), the
:class:`ThreadCtx` MSHR and ROB timers, the :class:`IssueLedger`
scoreboard, :class:`BarrierSync`, and the DRAM bandwidth windows.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipette import MachineConfig
from repro.pipette.interp import ThreadCtx
from repro.pipette.mem import MemorySystem
from repro.pipette.queues import HWQueue
from repro.pipette.sched import BarrierSync, IssueLedger, Scheduler, Task
from repro.pipette.stats import SimStats


def _queue_with_traffic(ops, capacity, latency):
    """Replay an op sequence to land a queue in an arbitrary live state."""
    q = HWQueue(0, capacity, latency)
    clock = 0
    for kind, gap in ops:
        clock += gap
        if kind == "enq":
            q.try_enq(clock, clock)
        else:
            q.try_deq(clock)
    return q, clock


queue_ops = st.lists(
    st.tuples(st.sampled_from(["enq", "deq"]), st.integers(0, 7)),
    min_size=0, max_size=20,
)


class TestQueueHorizon:
    @settings(max_examples=60, deadline=None)
    @given(queue_ops, st.integers(1, 4), st.integers(0, 5), st.integers(0, 30))
    def test_deq_horizon_equals_stepping(self, ops, capacity, latency, gap):
        q, clock = _queue_with_traffic(ops, capacity, latency)
        now = clock + gap
        horizon = q.next_deq_cycle(now)
        if horizon is None:
            # Quiescent: only an enqueue can unblock the consumer; no
            # amount of waiting changes that.
            assert not q.entries
            assert q.try_peek(now) is None
            return
        # Stepping one cycle at a time: at every cycle before the horizon a
        # dequeue would still complete at the horizon (nothing to observe),
        # never earlier.
        step = now
        while True:
            peek = q.try_peek(step)
            assert peek is not None
            assert peek[1] == max(horizon, step)
            if peek[1] <= step:
                break
            step += 1
        assert step == max(horizon, now)
        # Acting at ``now`` directly completes at the same cycle the
        # stepped consumer reached: the skip is exact, and it is what
        # try_deq's own ``avail if avail > now else now`` computes.
        value, done = q.try_deq(now)
        assert done == horizon

    @settings(max_examples=60, deadline=None)
    @given(queue_ops, st.integers(1, 4), st.integers(0, 5), st.integers(0, 30))
    def test_enq_horizon_equals_stepping(self, ops, capacity, latency, gap):
        q, clock = _queue_with_traffic(ops, capacity, latency)
        now = clock + gap
        horizon = q.next_enq_cycle(now)
        if horizon is None:
            # Full: only a dequeue frees a slot; waiting cannot.
            assert not q.slot_free
            assert q.try_enq(now, 0) is None
            return
        step = now
        while q.slot_free[0] > step:
            step += 1
        assert step == max(horizon, now)
        t = q.try_enq(now, 0)
        assert t == horizon

    @settings(max_examples=60, deadline=None)
    @given(queue_ops, st.integers(1, 4), st.integers(0, 5), st.integers(0, 30))
    def test_event_horizon_is_min_of_endpoints(self, ops, capacity, latency, gap):
        q, clock = _queue_with_traffic(ops, capacity, latency)
        now = clock + gap
        d = q.next_deq_cycle(now)
        e = q.next_enq_cycle(now)
        both = [h for h in (d, e) if h is not None]
        assert q.next_event_cycle(now) == (min(both) if both else None)


class _StubStats:
    """Just enough surface for the ThreadCtx scoreboard methods."""

    def __init__(self):
        self.name = "t0"
        self.mem_stall = 0.0


def _ctx(cursor):
    ctx = ThreadCtx(MachineConfig(), 0, IssueLedger(4), None, _StubStats(), None)
    ctx.cursor = float(cursor)
    return ctx


class TestThreadHorizon:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(0, 100), min_size=0, max_size=40),
        st.integers(0, 60),
    )
    def test_mshr_horizon_equals_claim_stall(self, completions, cursor):
        ctx = _ctx(cursor)
        for done in sorted(completions):
            ctx.mshr.append(done)
        full = len(ctx.mshr) >= ctx.config.mshrs
        horizon = ctx.next_event_cycle()
        expected = ctx.cursor
        if full and ctx.mshr[0] > expected:
            expected = ctx.mshr[0]
        assert horizon == expected
        # Acting: one claim stalls the cursor exactly to the horizon — the
        # per-cycle wait the contract summarizes — and charges the stall.
        before = ctx.cursor
        ctx.mshr_claim(200.0)
        if full:
            assert ctx.cursor == max(horizon, before)
            assert ctx.stats.mem_stall == ctx.cursor - before
        else:
            assert ctx.cursor == before

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(0, 100), min_size=0, max_size=80),
        st.integers(0, 60),
    )
    def test_rob_horizon_equals_retire_stall(self, completions, cursor):
        ctx = _ctx(cursor)
        for done in sorted(completions):
            ctx.rob.append(done)
        full = len(ctx.rob) >= ctx.rob_size
        horizon = ctx.next_event_cycle()
        expected = ctx.cursor
        if full and ctx.rob[0] > expected:
            expected = ctx.rob[0]
        assert horizon == expected
        before = ctx.cursor
        ctx.retire(500.0)
        if full:
            assert ctx.cursor == max(horizon, before)
        else:
            assert ctx.cursor == before


class TestLedgerScoreboard:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 4),
        st.lists(st.floats(0, 40), min_size=0, max_size=60),
        st.floats(0, 50),
    )
    def test_acquire_equals_per_cycle_scan(self, width, warmup, t):
        """The ledger's closed-form slot probe == scanning cycle by cycle."""
        ledger = IssueLedger(width)
        for w in warmup:
            ledger.acquire(w)
        # Naive per-cycle model of the same scoreboard state.
        shadow = dict(ledger.slots)
        c = math.ceil(t)
        while shadow.get(c, 0) >= width:
            c += 1  # stepping one quiescent cycle at a time
        got = ledger.acquire(t)
        assert got == float(c)
        assert ledger.slots[c] == shadow.get(c, 0) + 1


class TestBarrierHorizon:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 50), min_size=2, max_size=5),
        st.integers(0, 80),
    )
    def test_release_horizon(self, arrivals, now):
        barrier = BarrierSync(len(arrivals), cost=30.0)
        tasks = [Task("t%d" % i) for i in range(len(arrivals))]
        release = None
        for task, when in zip(tasks, arrivals):
            if barrier.arrived:
                # While a generation is open, time alone releases nobody:
                # arrivals, not cycles, complete the barrier.
                assert barrier.next_event_cycle(now) is None
            release = barrier.arrive(task, float(when))
        assert release == max(arrivals) + 30.0
        # Closed generation: the horizon is the release cycle every waiter
        # was told, clamped below by the querying clock.
        assert barrier.next_event_cycle(now) == max(release, now)


class TestSchedulerHorizon:
    def test_horizon_matches_next_resume_and_is_pure(self):
        sched = Scheduler()

        def gen():
            yield

        clocks = {"a": 5.0, "b": 2.0, "c": 9.0}
        tasks = {}
        for name, when in clocks.items():
            task = Task(name)
            task.clock_ref = (lambda w: (lambda: w))(when)
            sched.add(task, gen())
            tasks[name] = task
        # Dead entries (blocked tasks) are pruned; the live minimum wins.
        tasks["b"].block("deq")
        assert sched.next_event_horizon() == 5.0
        # Pure query: asking again returns the same answer, and the popper
        # still finds the same task at that cycle.
        assert sched.next_event_horizon() == 5.0
        popped = sched._pop_runnable()
        assert popped is tasks["a"] and popped.time == 5.0

    def test_horizon_none_when_nothing_runnable(self):
        sched = Scheduler()

        def gen():
            yield

        task = Task("only")
        task.clock_ref = lambda: 3.0
        sched.add(task, gen())
        task.block("enq")
        assert sched.next_event_horizon() is None


class TestDramWindows:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 40)),
            min_size=1, max_size=60,
        )
    )
    def test_window_horizon_predicts_queue_delay(self, accesses):
        """The pure window query == the delay ``_dram`` actually charges."""
        config = MachineConfig()
        mem = MemorySystem(config, SimStats())
        clock = 0.0
        for line, gap in accesses:
            clock += gap
            predicted = mem.next_dram_window_cycle(line, clock)
            assert predicted >= clock
            latency = mem._dram(line, clock)
            assert latency == (predicted - clock) + config.dram_latency
