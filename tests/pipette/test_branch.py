"""Gshare predictor behaviour."""

import random

from repro.pipette.branch import GsharePredictor


def test_learns_always_taken():
    p = GsharePredictor()
    correct = [p.predict_and_update(0x40, True) for _ in range(100)]
    assert all(correct[10:])  # converges quickly


def test_learns_loop_pattern():
    """Taken x3 then not-taken, repeatedly: history disambiguates."""
    p = GsharePredictor()
    pattern = [True, True, True, False] * 100
    correct = [p.predict_and_update(0x7, t) for t in pattern]
    assert sum(correct[100:]) / len(correct[100:]) > 0.95


def test_random_branches_mispredict_often():
    p = GsharePredictor()
    rng = random.Random(3)
    outcomes = [rng.random() < 0.5 for _ in range(2000)]
    correct = [p.predict_and_update(0x9, t) for t in outcomes]
    accuracy = sum(correct) / len(correct)
    assert 0.3 < accuracy < 0.7  # no predictor wins on a coin flip


def test_distinct_pcs_train_after_history_settles():
    p = GsharePredictor()
    for _ in range(50):
        p.predict_and_update(0x100, True)
    # A second, oppositely-biased branch: once the global history settles
    # its gshare entries converge (not instantly — history is shared).
    correct = [p.predict_and_update(0x200, False) for _ in range(60)]
    assert sum(correct[30:]) / len(correct[30:]) > 0.9
