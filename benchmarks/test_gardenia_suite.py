"""GARDENIA-style workload suite: speedups over serial (extension table).

Expected shape: the data-parallel baselines win everywhere (these kernels
have abundant vertex/row parallelism); the manually pipelined decoupled
variants beat serial on the streaming-heavy kernels (PageRank, TC, BC,
SpMV); and the static compiler extracts real speedup only where control
flow is analyzable (SpMV) — SSSP's value-dependent bucket loops defeat
automatic stage splitting, mirroring the paper's SpMM negative result.
SSSP's manual pipeline is also a documented negative result: the
bucket-synchronized double RA chain serializes on its barriers and runs
slower than serial (the delta-stepping wavefronts are too short to fill
the decoupled queues).

Every row is validated against the workload's golden CPU oracle inside
``gardenia_suite`` itself; a wrong output raises before any assertion
here runs.
"""

from repro.bench.experiments import gardenia_suite


def test_gardenia(once):
    result = once(gardenia_suite)
    print(result["text"])
    table = result["speedups"]
    assert set(table) == {"sssp", "pr", "tc", "bc", "spmv"}

    # Data-parallel wins on every workload.
    for name in table:
        assert table[name]["data-parallel"] > 1.2, (name, table[name])

    # Decoupled manual pipelines beat serial on the streaming kernels.
    for name in ("pr", "tc", "bc", "spmv"):
        assert table[name]["manual"] > 1.1, (name, table[name])

    # SpMV: the gather is fully offloadable, so the *automatic* static
    # flow wins too.
    assert table["spmv"]["phloem-static"] > 1.5, table["spmv"]

    # SSSP: negative results — static compilation can't split the
    # value-dependent bucket loops (falls back near 1.0x), and the
    # barrier-synchronized manual pipeline pays for its synchronization.
    assert table["sssp"]["phloem-static"] < 1.5, table["sssp"]
    assert table["sssp"]["manual"] < 1.0, table["sssp"]
