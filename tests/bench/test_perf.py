"""The simulator perf harness: record shape, baseline checks, determinism.

The determinism tests are the load-bearing ones: they run the harness in
fresh subprocesses with *different* ``PYTHONHASHSEED`` values and different
worker counts and require identical ``cycles`` in every record — the guard
against dict-iteration-order (or any other hash-randomized state) leaking
into simulated time.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.bench import perf

REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])

#: Tiny inputs so harness tests cost milliseconds, not benchmark minutes.
TINY_INPUTS = {
    "bfs": ("power_law", {"n": 120, "deg": 3, "seed": 7}),
    "spmm": ("random_matrix", {"n": 16, "nnz_per_row": 3, "seed": 7}),
}


@pytest.fixture
def tiny_scale(monkeypatch):
    monkeypatch.setitem(perf.SCALES, "quick", TINY_INPUTS)


def _record(bench="bfs", cycles=1000, slow=2.0, fast=1.0, **over):
    record = {
        "schema": perf.PERF_SCHEMA,
        "version": perf.PERF_VERSION,
        "bench": bench,
        "scale": "quick",
        "input": "power_law(deg=3,n=120,seed=7)",
        "repeats": 2,
        "cycles": cycles,
        "slow_wall_s": slow,
        "fast_wall_s": fast,
        "speedup": round(slow / fast, 3),
        "sim_mcycles_per_s": round(cycles / fast / 1e6, 3),
        "phases": {},
    }
    record.update(over)
    return record


def _multi_record(bench="bfs", cycles=1000, slow=4.0, fast=2.0, batch=1.0, **over):
    """A record as the multi-engine harness emits it (``--engine all``)."""

    def per(wall):
        return {
            "wall_s": wall,
            "speedup": round(slow / wall, 3),
            "sim_mcycles_per_s": round(cycles / wall / 1e6, 3),
        }

    return _record(
        bench=bench,
        cycles=cycles,
        slow=slow,
        fast=batch,  # legacy fast side tracks the primary (last) engine
        engines={
            "reference": per(slow),
            "fastpath": per(fast),
            "batch": per(batch),
        },
        **over,
    )


class TestMeasure:
    def test_measure_bench_record_shape(self, tiny_scale):
        record = perf.measure_bench("bfs", scale="quick", repeats=1)
        assert record["schema"] == perf.PERF_SCHEMA
        assert record["bench"] == "bfs"
        assert record["cycles"] > 0
        assert record["slow_wall_s"] > 0 and record["fast_wall_s"] > 0
        assert record["speedup"] == round(
            record["slow_wall_s"] / record["fast_wall_s"], 3
        )
        assert set(record["phases"]) == {
            "input_s", "compile_s", "sim_slow_s", "sim_fast_s",
        }

    def test_repeats_agree_on_cycles(self, tiny_scale):
        one = perf.measure_bench("spmm", scale="quick", repeats=1)
        two = perf.measure_bench("spmm", scale="quick", repeats=2)
        assert one["cycles"] == two["cycles"]

    def test_measure_all_engines(self, tiny_scale):
        record = perf.measure_bench("bfs", scale="quick", repeats=1, engines="all")
        assert set(record["engines"]) == {"reference", "fastpath", "batch"}
        assert record["engines"]["reference"]["speedup"] == 1.0
        # Legacy flat keys track the primary (last, most advanced) engine.
        assert record["fast_wall_s"] == record["engines"]["batch"]["wall_s"]
        assert record["speedup"] == record["engines"]["batch"]["speedup"]

    def test_single_engine_selection_keeps_reference(self, tiny_scale):
        record = perf.measure_bench("spmm", scale="quick", repeats=1, engines="batch")
        assert set(record["engines"]) == {"reference", "batch"}

    def test_normalize_engines(self):
        assert perf.normalize_engines() == ("reference", "fastpath")
        assert perf.normalize_engines("all") == ("reference", "fastpath", "batch")
        assert perf.normalize_engines("batch") == ("reference", "batch")
        assert perf.normalize_engines(["batch", "fastpath"]) == (
            "reference", "fastpath", "batch",
        )
        with pytest.raises(perf.PerfError):
            perf.normalize_engines("warp-drive")


class TestAggregate:
    def test_aggregate_is_total_ratio(self):
        records = [_record(slow=3.0, fast=1.0), _record(bench="cc", slow=1.0, fast=1.0)]
        agg = perf.aggregate(records)
        assert agg["slow_wall_s"] == 4.0
        assert agg["fast_wall_s"] == 2.0
        assert agg["speedup"] == 2.0

    def test_aggregate_per_engine(self):
        records = [
            _multi_record(slow=4.0, fast=2.0, batch=1.0),
            _multi_record(bench="cc", slow=2.0, fast=1.0, batch=1.0),
        ]
        agg = perf.aggregate(records)
        assert agg["engines"]["reference"]["speedup"] == 1.0
        assert agg["engines"]["fastpath"] == {"wall_s": 3.0, "speedup": 2.0}
        assert agg["engines"]["batch"] == {"wall_s": 2.0, "speedup": 3.0}

    def test_aggregate_mixed_records_uses_common_engines(self):
        # A legacy record has no batch measurement: the batch aggregate
        # would be meaningless, so only the common engine set is rolled up.
        records = [_multi_record(), _record(bench="cc")]
        agg = perf.aggregate(records)
        assert set(agg["engines"]) == {"reference", "fastpath"}


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        records = [_record()]
        written = perf.write_baseline(records, "quick", path=path)
        loaded = perf.read_baseline(path)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["schema"] == perf.BASELINE_SCHEMA
        assert loaded["aggregate"]["speedup"] == 2.0

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something-else"}')
        with pytest.raises(perf.PerfError):
            perf.read_baseline(str(path))

    def test_cycles_mismatch_is_error(self):
        baseline = perf.baseline_payload([_record(cycles=1000)], "quick")
        errors, warnings = perf.check_against_baseline(
            [_record(cycles=1001)], baseline
        )
        assert len(errors) == 1 and "cycles changed" in errors[0]

    def test_wall_regression_is_warning_only(self):
        baseline = perf.baseline_payload([_record(fast=1.0)], "quick")
        errors, warnings = perf.check_against_baseline(
            [_record(fast=2.0, slow=4.0)], baseline, threshold=0.25
        )
        assert not errors
        assert any("exceeds baseline" in w for w in warnings)

    def test_within_threshold_is_clean(self):
        baseline = perf.baseline_payload([_record()], "quick")
        errors, warnings = perf.check_against_baseline(
            [_record(fast=1.1, slow=2.2)], baseline, threshold=0.25
        )
        assert not errors and not warnings

    def test_input_change_skips_comparison(self):
        baseline = perf.baseline_payload([_record()], "quick")
        errors, warnings = perf.check_against_baseline(
            [_record(cycles=999, input="power_law(deg=9,n=9,seed=9)")], baseline
        )
        assert not errors
        assert any("skipping comparison" in w for w in warnings)

    def test_missing_bench_warns(self):
        baseline = perf.baseline_payload([_record()], "quick")
        errors, warnings = perf.check_against_baseline(
            [_record(bench="radii")], baseline
        )
        assert not errors
        assert any("no baseline record" in w for w in warnings)

    def test_per_engine_wall_regression_names_the_engine(self):
        baseline = perf.baseline_payload([_multi_record()], "quick")
        fresh = _multi_record(fast=2.0, batch=3.0)  # batch got slower
        errors, warnings = perf.check_against_baseline(
            [fresh], baseline, threshold=0.25
        )
        assert not errors
        assert any("bfs (batch)" in w and "exceeds baseline" in w for w in warnings)
        assert not any("bfs (fastpath)" in w and "exceeds" in w for w in warnings)

    def test_multi_engine_within_threshold_is_clean(self):
        baseline = perf.baseline_payload([_multi_record()], "quick")
        errors, warnings = perf.check_against_baseline(
            [_multi_record(fast=2.1, batch=1.1)], baseline, threshold=0.25
        )
        assert not errors and not warnings

    def test_legacy_record_against_multi_engine_baseline(self):
        # A fresh legacy record has no per-engine map: the comparison falls
        # back to the flat keys rather than crashing or double-counting.
        baseline = perf.baseline_payload([_multi_record()], "quick")
        errors, warnings = perf.check_against_baseline(
            [_record(slow=4.0, fast=1.0)], baseline, threshold=0.25
        )
        assert not errors and not warnings


class TestHistory:
    def test_history_entry_is_compact_and_keyed(self):
        entry = perf.history_entry([_record()], "quick", git="abc1234")
        assert entry["git"] == "abc1234"
        assert entry["engine"] == "fastpath"
        assert entry["scale"] == "quick"
        assert entry["aggregate"]["speedup"] == 2.0
        assert entry["benches"]["bfs"]["cycles"] == 1000
        json.dumps(entry)

    def test_append_history_replaces_same_key_point(self):
        first = perf.history_entry([_record(fast=1.0)], "quick", git="abc")
        rerun = perf.history_entry([_record(fast=0.9)], "quick", git="abc")
        history = perf.append_history([], first)
        history = perf.append_history(history, rerun)
        assert len(history) == 1
        assert history[0]["benches"]["bfs"]["fast_wall_s"] == 0.9
        newer = perf.history_entry([_record()], "quick", git="def")
        history = perf.append_history(history, newer)
        assert [e["git"] for e in history] == ["abc", "def"]

    def test_append_history_caps_at_limit(self):
        history = []
        for i in range(5):
            entry = perf.history_entry([_record()], "quick", git="g%d" % i)
            history = perf.append_history(history, entry, limit=3)
        assert [e["git"] for e in history] == ["g2", "g3", "g4"]

    def test_write_baseline_grows_history_keeps_latest_on_top(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        perf.write_baseline([_record(fast=1.0)], "quick", path=path, git="aaa")
        payload = perf.write_baseline([_record(fast=0.5, slow=2.0)], "quick",
                                      path=path, git="bbb")
        loaded = perf.read_baseline(path)
        assert loaded == json.loads(json.dumps(payload))
        assert [e["git"] for e in loaded["history"]] == ["aaa", "bbb"]
        # Top-level records stay the latest measurement: the regression
        # baseline the checker reads.
        assert loaded["records"][0]["fast_wall_s"] == 0.5
        assert loaded["aggregate"]["speedup"] == 4.0

    def test_pre_history_baseline_contributes_one_synthesized_point(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        with open(path, "w") as handle:
            json.dump(perf.baseline_payload([_record(fast=2.0, slow=2.0)], "quick"),
                      handle)
        loaded = json.loads(
            json.dumps(perf.write_baseline([_record()], "quick", path=path, git="ccc"))
        )
        assert [e["git"] for e in loaded["history"]] == ["(pre-history)", "ccc"]
        assert loaded["history"][0]["benches"]["bfs"]["fast_wall_s"] == 2.0

    def test_git_describe_never_raises(self, tmp_path):
        assert perf.git_describe(cwd=str(tmp_path)) == "unknown"
        assert isinstance(perf.git_describe(cwd=REPO_ROOT), str)

    def test_write_baseline_multi_engine_grows_one_point_per_engine(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        loaded = json.loads(json.dumps(
            perf.write_baseline([_multi_record()], "quick", path=path, git="abc")
        ))
        keys = {(e["engine"], e["git"]) for e in loaded["history"]}
        assert keys == {("fastpath", "abc"), ("batch", "abc")}
        by_engine = {e["engine"]: e for e in loaded["history"]}
        assert by_engine["fastpath"]["benches"]["bfs"]["fast_wall_s"] == 2.0
        assert by_engine["batch"]["benches"]["bfs"]["fast_wall_s"] == 1.0
        assert by_engine["batch"]["aggregate"]["speedup"] == 4.0


class _FakeCompleted:
    def __init__(self, returncode=0, stdout=""):
        self.returncode = returncode
        self.stdout = stdout


class TestGitDescribeHardening:
    """``git describe`` fails in shallow clones and exported trees; the
    history key must degrade to the short hash, never embed error text."""

    def _patch(self, monkeypatch, outcomes):
        def fake_run(argv, **kwargs):
            result = outcomes.get(argv[1])
            if isinstance(result, Exception):
                raise result
            return result

        monkeypatch.setattr(perf.subprocess, "run", fake_run)

    def test_clean_describe_wins(self, monkeypatch):
        self._patch(monkeypatch, {
            "describe": _FakeCompleted(0, "v1.2-4-gabc123-dirty\n"),
        })
        assert perf.git_describe() == "v1.2-4-gabc123-dirty"

    def test_failed_describe_falls_back_to_short_hash(self, monkeypatch):
        self._patch(monkeypatch, {
            "describe": _FakeCompleted(128, "fatal: no names found\n"),
            "rev-parse": _FakeCompleted(0, "abc123\n"),
        })
        assert perf.git_describe() == "abc123"

    def test_error_text_on_stdout_is_rejected(self, monkeypatch):
        # Some git builds/wrappers print diagnostics to stdout with rc 0.
        self._patch(monkeypatch, {
            "describe": _FakeCompleted(0, "fatal: not a git repository\n"),
            "rev-parse": _FakeCompleted(0, "error: bad object\n"),
        })
        assert perf.git_describe() == "unknown"

    def test_multiline_or_multiword_output_is_rejected(self, monkeypatch):
        self._patch(monkeypatch, {
            "describe": _FakeCompleted(0, "warning: shallow\nv1.0\n"),
            "rev-parse": _FakeCompleted(0, "deadbee\n"),
        })
        assert perf.git_describe() == "deadbee"

    def test_missing_git_binary_is_unknown(self, monkeypatch):
        self._patch(monkeypatch, {
            "describe": OSError("no git"),
            "rev-parse": OSError("no git"),
        })
        assert perf.git_describe() == "unknown"


class TestRendering:
    def test_table_mentions_every_bench_and_total(self):
        records = [_record(), _record(bench="cc")]
        table = perf.render_table(records, perf.aggregate(records))
        assert "bfs" in table and "cc" in table and "total" in table

    def test_table_grows_engine_columns(self):
        records = [_multi_record(), _multi_record(bench="cc")]
        table = perf.render_table(records, perf.aggregate(records))
        assert "batch(s)" in table and "batch(x)" in table
        assert "4.00x" in table  # the batch speedup column

    def test_obs_records_one_per_engine(self):
        out = perf.obs_records([_record()])
        assert len(out) == 2
        assert {r["variant"] for r in out} == {"engine-reference", "engine-fastpath"}
        assert all(r["schema"] == "repro.obs/run-record" for r in out)
        assert all(r["cycles"] == 1000 for r in out)

    def test_obs_records_cover_batch(self):
        out = perf.obs_records([_multi_record()])
        assert {r["variant"] for r in out} == {
            "engine-reference", "engine-fastpath", "engine-batch",
        }


#: Runs the harness on tiny inputs and prints {bench: cycles} as JSON.
#: sssp and spmv represent the GARDENIA suite: sssp exercises the weighted
#: input path and bucket loops; spmv the matrix path with an RA chain.
_DETERMINISM_SCRIPT = """
import json, sys
from repro.bench import perf
perf.SCALES["quick"] = {
    "bfs": ("power_law", {"n": 120, "deg": 3, "seed": 7}),
    "spmm": ("random_matrix", {"n": 16, "nnz_per_row": 3, "seed": 7}),
    "sssp": ("power_law_weighted", {"n": 120, "deg": 3, "seed": 7, "wseed": 1}),
    "spmv": ("random_matrix", {"n": 48, "nnz_per_row": 3, "seed": 7}),
}
records = perf.run_perf(scale="quick", repeats=1, jobs=int(sys.argv[1]))
print(json.dumps({r["bench"]: r["cycles"] for r in records}, sort_keys=True))
"""


def _run_harness(jobs, hashseed, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONHASHSEED"] = str(hashseed)
    env["REPRO_QUIET"] = "1"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    proc = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SCRIPT, str(jobs)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


class TestDeterminism:
    def test_cycles_identical_across_processes_and_hashseeds(self, tmp_path):
        first = _run_harness(jobs=1, hashseed=1, tmp_path=tmp_path)
        second = _run_harness(jobs=1, hashseed=271828, tmp_path=tmp_path)
        assert first == second
        assert set(first) == {"bfs", "spmm", "sssp", "spmv"}

    def test_cycles_identical_across_worker_counts(self, tmp_path):
        serial = _run_harness(jobs=1, hashseed=5, tmp_path=tmp_path)
        fanned = _run_harness(jobs=2, hashseed=5, tmp_path=tmp_path)
        assert serial == fanned
