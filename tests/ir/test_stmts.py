"""Statement node invariants: uses/defs/blocks/clone for every kind."""

import pytest

from repro import ir


def test_assign_uses_defs():
    s = ir.Assign("x", "add", ["a", 3])
    assert list(s.uses()) == ["a"]
    assert s.defs() == ("x",)


def test_assign_rejects_bad_op():
    with pytest.raises(ValueError):
        ir.Assign("x", "frobnicate", ["a"])


def test_assign_rejects_bad_arity():
    with pytest.raises(ValueError):
        ir.Assign("x", "add", ["a"])


def test_load_uses_pointer_register():
    direct = ir.Load("v", "@arr", "i")
    via_ptr = ir.Load("v", "ptr", "i")
    assert "i" in direct.uses() and "@arr" not in direct.uses()
    assert set(via_ptr.uses()) == {"ptr", "i"}
    assert direct.defs() == ("v",)


def test_store_uses():
    s = ir.Store("@arr", "i", "v")
    assert set(s.uses()) == {"i", "v"}
    assert s.defs() == ()


def test_prefetch_uses():
    assert set(ir.Prefetch("@a", "i").uses()) == {"i"}


def test_queue_ops():
    assert list(ir.Enq(1, "v").uses()) == ["v"]
    assert ir.Enq(1, 7).uses() == ()
    assert ir.Deq("x", 2).defs() == ("x",)
    assert ir.Peek("x", 2).defs() == ("x",)
    assert list(ir.IsControl("c", "v").uses()) == ["v"]


def test_enq_ctrl_holds_ctrl():
    s = ir.EnqCtrl(3, ir.Ctrl("NEXT"))
    assert s.ctrl == ir.Ctrl("NEXT")
    assert s.clone().ctrl == s.ctrl


def test_for_structure():
    body = [ir.Assign("x", "mov", [1])]
    loop = ir.For("i", 0, "n", 1, body)
    assert loop.defs() == ("i",)
    assert list(loop.uses()) == ["n"]
    assert loop.blocks() == (body,)


def test_if_blocks():
    s = ir.If("c", [ir.Break()], [ir.Continue()])
    assert list(s.uses()) == ["c"]
    assert len(s.blocks()) == 2


def test_break_levels():
    assert ir.Break().levels == 1
    assert ir.Break(2).clone().levels == 2


def test_atomic_rmw():
    s = ir.AtomicRMW("old", "add", "@a", "i", "v")
    assert set(s.uses()) == {"i", "v"}
    assert s.defs() == ("old",)
    with pytest.raises(ValueError):
        ir.AtomicRMW("old", "xor", "@a", "i", "v")


def test_atomic_rmw_no_dst():
    s = ir.AtomicRMW(None, "add", "@a", "i", "v")
    assert s.defs() == ()


def test_enq_dist():
    s = ir.EnqDist(4, "v", "r")
    assert set(s.uses()) == {"v", "r"}


def test_shared_cells_stmts():
    w = ir.WriteShared("total", "x")
    r = ir.ReadShared("y", "total")
    assert list(w.uses()) == ["x"]
    assert r.defs() == ("y",)


def test_clone_is_deep():
    inner = ir.Assign("x", "mov", [1])
    loop = ir.Loop([ir.If("c", [inner], [])])
    copy = loop.clone()
    copy.body[0].then_body[0].args[0] = 99
    assert inner.args[0] == 1


def test_walk_visits_nested():
    body = [
        ir.For("i", 0, 10, 1, [ir.If("c", [ir.Assign("x", "mov", [1])], [ir.Break()])]),
        ir.Barrier(),
    ]
    kinds = [s.kind for s in ir.walk(body)]
    assert kinds == ["for", "if", "assign", "break", "barrier"]


def test_walk_with_depth():
    body = [ir.Loop([ir.For("i", 0, 2, 1, [ir.Assign("x", "mov", [0])])])]
    depths = {s.kind: d for s, d in ir.walk_with_depth(body)}
    assert depths["loop"] == 0
    assert depths["for"] == 1
    assert depths["assign"] == 2


def test_count_stmts():
    body = [ir.Loop([ir.Assign("x", "mov", [0]), ir.Break()])]
    assert ir.count_stmts(body) == 3


def test_repr_does_not_crash():
    for stmt in (
        ir.Assign("x", "add", ["a", 1]),
        ir.Load("v", "@a", "i"),
        ir.EnqCtrl(0, ir.Ctrl("DONE")),
        ir.Barrier("phase"),
        ir.Call("r", "work", ["x"]),
        ir.EnqCtrlDist(1, ir.Ctrl("NEXT")),
    ):
        assert isinstance(repr(stmt), str)
