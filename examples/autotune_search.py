"""Profile-guided pipeline search (paper Sec. V and Fig. 13).

The static cost model picks good decoupling points, but cache behaviour is
input-dependent; the profile-guided mode compiles *every* pipeline built
from combinations of the top-ranked points and profiles each on small
training inputs. This script runs that search for BFS and prints the
Fig. 13-style distribution: speedup vs pipeline length, with the chosen
pipeline marked.

Run:  python examples/autotune_search.py
"""

from repro.bench.harness import GraphBenchAdapter, profile_guided_pipeline
from repro.core import pipeline_summary
from repro.core.autotune import speedup_distribution
from repro.pipette import SCALED_1CORE
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs, datasets


def main():
    adapter = GraphBenchAdapter(bfs)
    train = datasets.TRAIN_GRAPHS
    print("training inputs: %s" % ", ".join(g.name for g in train))
    best, results = profile_guided_pipeline(adapter, train, config=SCALED_1CORE)

    print("\nprofiled %d candidate pipelines:" % len(results))
    print("%8s  %6s  %s" % ("points", "units", "training gmean speedup"))
    for result in sorted(results, key=lambda r: (r.num_units, -r.speedup)):
        marker = "  <-- selected" if result.indices == best.indices else ""
        print(
            "%8s  %6d  %5.2fx%s"
            % (str(list(result.indices)), result.num_units, result.speedup, marker)
        )

    dist = speedup_distribution(results)
    print("\ndistribution by pipeline length (stages + RAs):")
    for units, speeds in dist.items():
        bar = " ".join("%.2f" % s for s in speeds)
        print("  %d units: %s" % (units, bar))

    print("\nselected pipeline: %s" % pipeline_summary(best.pipeline))

    # Validate the winner on an unseen test input, as Sec. VI-C prescribes.
    test_graph = datasets.graph_by_name("freescale").build()
    arrays, scalars = bfs.make_env(test_graph)
    serial = run_serial(bfs.function(), arrays, scalars, config=SCALED_1CORE)
    tuned = run_pipeline(best.pipeline, arrays, scalars, config=SCALED_1CORE)
    assert bfs.check(tuned.arrays, test_graph)
    print(
        "on the unseen test input %r: %.2fx over serial"
        % (test_graph, serial.cycles / tuned.cycles)
    )


if __name__ == "__main__":
    main()
