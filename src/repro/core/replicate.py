"""Automatic pipeline replication + distribution (paper Sec. IV-C).

``replicate_pipeline`` takes a compiled pipeline whose final stage consumes
one flat, control-value-terminated element stream (the shape the full pass
stack produces for BFS) and builds R replicas with the data-centric
distribute step:

* the stage feeding the final stage routes each element to its *owner*
  replica (``owner(v) = min(v / chunk, R-1)`` — "inspecting bits of the
  neighbor id"), so every write in the final stage is owner-exclusive;
* end-of-phase control values broadcast to all replicas, and the final
  stage's handler counts R of them before ending its phase;
* per-phase shared scalars split into per-replica cells: each stage reads
  its own replica's value for loop bounds and sums all replicas' values
  for the global phase-termination test.

Pipelines without the flat shape (e.g. CC's paired vertex+neighbor
streams) are rejected — for those the structured builders in
``repro.workloads.replicated`` construct the replicated form directly.
"""

from ..errors import CompileError
from ..ir import stmts as S
from ..ir.stmts import walk

#: Scalar parameters replication adds to the pipeline.
REPLICATE_SCALARS = ["replicas", "chunk", "total_init"]


def _find_flat_stream(pipeline):
    """The queue whose consumer is the last stage, dequeued at the head of
    a control-terminated loop with a handler attached."""
    last = pipeline.stages[-1]
    # Flatness requires the final stage to consume *only* the stream being
    # distributed: a second incoming queue (e.g. CC's per-vertex labels)
    # would desynchronize once elements are re-routed by owner.
    incoming = {s.queue for s in last.all_stmts() if s.kind in ("deq", "peek")}
    for qid, handler in last.handlers.items():
        spec = pipeline.queues.get(qid)
        if spec is None or spec.consumer != ("stage", last.index):
            continue
        if incoming != {qid}:
            continue
        for stmt in walk(last.body):
            if stmt.kind == "loop" and stmt.body and stmt.body[0].kind == "deq" and stmt.body[0].queue == qid:
                return qid, stmt, handler
    raise CompileError(
        "pipeline %s has no flat distributable stream into its final stage"
        % pipeline.name
    )


def _rewrite_producer(pipeline, qid):
    """Route enqueues by owner; broadcast control values."""
    spec = pipeline.queues[qid]
    if spec.producer[0] != "stage":
        raise CompileError("distributed queue %d is fed by an RA" % qid)
    producer = next(s for s in pipeline.stages if s.index == spec.producer[1])

    def rewrite(body):
        out = []
        for stmt in body:
            for block in stmt.blocks():
                block[:] = rewrite(block)
            if stmt.kind == "enq" and stmt.queue == qid:
                out.append(S.Assign("%repl_d0", "div", [stmt.value, "chunk"]))
                out.append(S.Assign("%repl_last", "sub", ["replicas", 1]))
                out.append(S.Assign("%repl_dest", "min", ["%repl_d0", "%repl_last"]))
                out.append(S.EnqDist(qid, stmt.value, "%repl_dest"))
            elif stmt.kind == "enq_ctrl" and stmt.queue == qid:
                out.append(S.EnqCtrlDist(qid, stmt.ctrl))
            else:
                out.append(stmt)
        return out

    producer.body[:] = rewrite(producer.body)
    handlers = {}
    for hqid, handler in producer.handlers.items():
        handlers[hqid] = rewrite(handler)
    producer.handlers = handlers


def _rewrite_consumer(pipeline, qid, loop, handler):
    """Counting handler: the phase ends after one marker per replica."""
    last = pipeline.stages[-1]
    if not (len(handler) == 1 and handler[0].kind == "break" and handler[0].levels == 1):
        raise CompileError("final-stage handler is not a simple phase break")
    last.handlers[qid] = [
        S.Assign("%repl_dones", "add", ["%repl_dones", 1]),
        S.Assign("%repl_all", "ge", ["%repl_dones", "replicas"]),
        S.If("%repl_all", [S.Break(1)], []),
    ]

    # Reset the counter right before the stream loop, once per phase.
    def insert_reset(body):
        for index, stmt in enumerate(body):
            if stmt is loop:
                body.insert(index, S.Assign("%repl_dones", "mov", [0]))
                return True
            for block in stmt.blocks():
                if insert_reset(block):
                    return True
        return False

    if not insert_reset(last.body):
        raise CompileError("could not anchor the marker counter")


def _rewrite_shared(pipeline, rid, replicas):
    """Per-replica shared cells + global totals for phase termination."""
    if not pipeline.shared_vars:
        return
    renames = {var: "%s@%d" % (var, rid) for var in sorted(pipeline.shared_vars)}

    for stage in pipeline.stages:
        for stmt in walk(stage.body):
            if stmt.kind == "write_shared" and stmt.var in renames:
                stmt.var = renames[stmt.var]

        # Each ReadShared keeps feeding the local value, and a global total
        # accumulates alongside for the phase condition.
        def rewrite(body):
            out = []
            for stmt in body:
                for block in stmt.blocks():
                    block[:] = rewrite(block)
                if stmt.kind == "read_shared" and stmt.var in renames:
                    var = stmt.var
                    out.append(S.ReadShared(stmt.dst, renames[var]))
                    out.append(S.Assign("%repl_total", "mov", [0]))
                    for other in range(replicas):
                        tmp = "%%repl_r%d" % other
                        out.append(S.ReadShared(tmp, "%s@%d" % (var, other)))
                        out.append(S.Assign("%repl_total", "add", ["%repl_total", tmp]))
                else:
                    out.append(stmt)
            return out

        stage.body[:] = rewrite(stage.body)

        # Phase condition: test the *global* total. The compiled shape is
        # `c = gt(fs, 0); nc = not(c); if (nc) break` at the phase-loop head.
        phase_loops = [s for s in stage.body if s.kind == "loop"]
        for ploop in phase_loops:
            if ploop.body and ploop.body[0].kind == "assign" and ploop.body[0].op in ("gt", "le"):
                cond = ploop.body[0]
                if cond.args[1] == 0:
                    cond.args[0] = "%repl_total"
        # Seed the total before the first phase-condition evaluation.
        stage.body.insert(0, S.Assign("%repl_total", "mov", ["total_init"]))

    pipeline.shared_vars = {
        "%s@%d" % (var, r) for var in renames for r in range(replicas)
    }


def replicate_pipeline(pipeline, replicas):
    """Build ``replicas`` distributing clones of a flat-stream pipeline."""
    if replicas < 1:
        raise CompileError("replicas must be >= 1")
    qid, _, _ = _find_flat_stream(pipeline)  # validate shape once

    clones = []
    for rid in range(replicas):
        clone = pipeline.clone()
        clone.name = "%s_repl%d" % (pipeline.name, rid)
        qid, loop, handler = _find_flat_stream(clone)
        _rewrite_producer(clone, qid)
        _rewrite_consumer(clone, qid, loop, handler)
        _rewrite_shared(clone, rid, replicas)
        for scalar in REPLICATE_SCALARS:
            if scalar not in clone.scalar_params:
                clone.scalar_params.append(scalar)
        clone.meta["replicated"] = replicas
        clone.meta["distributed_queue"] = qid
        clones.append(clone)
    return clones
