"""Unified diagnostics for the Phloem toolchain.

Every finding of the static pipeline-safety analyzer
(:mod:`repro.analysis.sanitize`), and every frontend/verifier failure the
``repro lint`` CLI reports, flows through this module: a stable error code
(``PHL001``...), a severity, a message, and an optional source
:class:`Span` threaded from the frontend AST through lowering onto the IR
statements themselves.

The code registry is append-only: codes are stable identifiers that tests,
CI jobs, and editor integrations key on, so a code is never renumbered or
reused once shipped.
"""

import json

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
NOTE = "note"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, NOTE: 2}

#: Stable diagnostic codes: code -> (default severity, summary).
#: Grouped by hundreds: 0xx toolchain wrappers, 1xx token balance,
#: 2xx deadlock, 3xx cross-stage races.
CODES = {
    "PHL001": (ERROR, "IR structural verification failure"),
    "PHL002": (ERROR, "mini-C parse failure"),
    "PHL003": (ERROR, "AST lowering failure"),
    "PHL004": (ERROR, "compiler pass failure"),
    "PHL101": (ERROR, "queue is produced but never consumed"),
    "PHL102": (ERROR, "queue is consumed but never produced"),
    "PHL103": (ERROR, "control-terminated consumer has no producer sentinel"),
    "PHL104": (WARNING, "conditional token imbalance between branch arms"),
    "PHL105": (ERROR, "enqueue/dequeue multiplicity mismatch"),
    "PHL201": (WARNING, "cyclic stage/queue topology"),
    "PHL202": (ERROR, "capacity-infeasible queue cycle"),
    "PHL203": (ERROR, "fan-in queue ordering can deadlock bounded queues"),
    "PHL301": (ERROR, "array written by multiple stages (write-write race)"),
    "PHL302": (ERROR, "cross-stage read of a written array (read-write race)"),
    "PHL303": (WARNING, "non-commutative reduction under replication"),
    "PHL304": (ERROR, "shared scalar crosses stages without a barrier"),
}


class Span:
    """A source position: 1-based line, optional column, optional file."""

    __slots__ = ("line", "col", "file")

    def __init__(self, line, col=None, file=None):
        self.line = line
        self.col = col
        self.file = file

    @classmethod
    def from_error(cls, exc, file=None):
        """Lift the line/col of a :class:`~repro.errors.SpannedError`."""
        line = getattr(exc, "line", None)
        if line is None:
            return None
        return cls(line, getattr(exc, "col", None), file)

    def render(self):
        pos = "line %d" % self.line if self.col is None else "%d:%d" % (self.line, self.col)
        return "%s:%s" % (self.file, pos) if self.file else pos

    def as_dict(self):
        d = {"line": self.line}
        if self.col is not None:
            d["col"] = self.col
        if self.file is not None:
            d["file"] = self.file
        return d

    def __eq__(self, other):
        return (
            isinstance(other, Span)
            and (self.line, self.col, self.file) == (other.line, other.col, other.file)
        )

    def __repr__(self):
        return "Span(%s)" % self.render()


class Diagnostic:
    """One finding: a coded, severity-ranked message with optional position.

    ``where`` carries pipeline context that is not a source position (e.g.
    ``"stage 1 (fetch_edges)"`` or ``"queue 3"``) so findings on compiler-
    synthesized statements stay actionable even without a span.
    """

    __slots__ = ("code", "severity", "message", "span", "where")

    def __init__(self, code, message, span=None, where=None, severity=None):
        if code not in CODES:
            raise ValueError("unknown diagnostic code %r" % (code,))
        self.code = code
        self.severity = severity if severity is not None else CODES[code][0]
        if self.severity not in _SEVERITY_RANK:
            raise ValueError("unknown severity %r" % (self.severity,))
        self.message = message
        self.span = span
        self.where = where

    def render(self):
        parts = []
        if self.span is not None:
            parts.append(self.span.render() + ":")
        parts.append("%s[%s]:" % (self.severity, self.code))
        parts.append(self.message)
        if self.where:
            parts.append("[%s]" % self.where)
        return " ".join(parts)

    def as_dict(self):
        d = {"code": self.code, "severity": self.severity, "message": self.message}
        if self.span is not None:
            d["span"] = self.span.as_dict()
        if self.where is not None:
            d["where"] = self.where
        return d

    def __repr__(self):
        return "Diagnostic(%s)" % self.render()


class DiagnosticSet:
    """An ordered collection of findings with severity-aware helpers."""

    def __init__(self, diagnostics=()):
        self.diagnostics = list(diagnostics)

    def add(self, code, message, span=None, where=None, severity=None):
        diag = Diagnostic(code, message, span=span, where=where, severity=severity)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other):
        self.diagnostics.extend(other)
        return self

    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    def codes(self):
        return [d.code for d in self.diagnostics]

    @property
    def has_errors(self):
        return any(d.severity == ERROR for d in self.diagnostics)

    def sorted(self):
        """Diagnostics ordered most-severe-first, then by position."""
        def key(d):
            line = d.span.line if d.span is not None else 1 << 30
            return (_SEVERITY_RANK[d.severity], line, d.code)

        return sorted(self.diagnostics, key=key)

    def render_text(self):
        if not self.diagnostics:
            return "no diagnostics"
        lines = [d.render() for d in self.sorted()]
        n_err, n_warn = len(self.errors()), len(self.warnings())
        lines.append("%d error(s), %d warning(s)" % (n_err, n_warn))
        return "\n".join(lines)

    def render_json(self):
        return json.dumps(
            {
                "diagnostics": [d.as_dict() for d in self.sorted()],
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
            },
            sort_keys=True,
            indent=2,
        )

    def raise_if_errors(self, prefix="static analysis failed"):
        """Raise :class:`~repro.errors.SanitizeError` when errors are present."""
        errors = self.errors()
        if not errors:
            return self
        from .errors import SanitizeError

        message = "%s:\n%s" % (prefix, "\n".join(d.render() for d in errors))
        raise SanitizeError(message, diagnostics=errors)

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self):
        return "DiagnosticSet(%d errors, %d warnings)" % (
            len(self.errors()),
            len(self.warnings()),
        )


def from_exception(exc, file=None):
    """Wrap a toolchain exception as a one-diagnostic set (lint CLI path)."""
    from .errors import CompileError, IRVerificationError, LoweringError, ParseError

    if isinstance(exc, ParseError):
        code = "PHL002"
    elif isinstance(exc, LoweringError):
        code = "PHL003"
    elif isinstance(exc, IRVerificationError):
        code = "PHL001"
    elif isinstance(exc, CompileError):
        code = "PHL004"
    else:
        raise TypeError("not a diagnosable toolchain error: %r" % (exc,))
    diags = DiagnosticSet()
    # SpannedError already formats "line L:C:" into str(exc); strip it so the
    # rendered diagnostic does not repeat the position.
    message = str(exc)
    span = Span.from_error(exc, file=file)
    if span is not None:
        prefix = "line %d:%d: " % (span.line, span.col if span.col is not None else 0)
        if message.startswith(prefix):
            message = message[len(prefix):]
    diags.add(code, message, span=span)
    return diags
