"""Batch-advance execution engine: whole-stage compilation to one generator.

The fast path (:mod:`repro.pipette.fastpath`) removed per-statement *kind*
dispatch but still pays one specialized-closure call, several ``dict``
lookups (registers, ready times), and the three-mode step protocol per
statement. Profiling a QUICK ``bfs`` run shows those per-statement costs —
not the scheduler — dominate: ~9M closure calls and ~2.6M ``dict.get``
calls against only ~19k scheduler resumes.

This engine removes the remaining per-statement machinery by compiling each
stage's whole region tree into **one generated Python generator function**:

* registers and their ready cycles become *frame locals* (name-mangled
  ``R<n>``/``Y<n>``), so dependence tracking is local-variable access, not
  dict traffic; generator frames preserve locals across ``yield``;
* control flow (``if``/``for``/``loop``/``break``/``continue``, control
  handlers) becomes native Python control flow; multi-level breaks
  propagate through a ``_sig`` counter that mirrors the interpreter's
  ``('break', n)`` / ``('continue', 1)`` signals exactly;
* the timing primitives (issue-ledger acquire, ROB retire, MSHR claim, L1
  lookup + stride-prefetcher observe, gshare predict) are emitted inline,
  transcribed from the reference interpreter — the same arithmetic in the
  same order on the same shared structures;
* machine-configuration constants (issue width, ROB/MSHR sizes, cache
  geometry, latencies, branch PCs) are baked into the source as literals;
* the generator ``yield``\\ s only at true blocking points (queue
  full/empty, barrier). Between those *interesting events* the stage runs
  as straight-line compiled Python: the clock advances in closed form
  through the very timestamps the components expose via their
  ``next_event_cycle()`` contracts (a queue entry's visibility cycle, an
  MSHR/ROB head's completion, a DRAM window boundary, a branch redirect
  target), never by stepping cycles.

Bit-identical stats discipline
------------------------------

Thread-private hot state is mirrored in frame locals (``cur`` for
``ctx.cursor``, ``rlast`` for ``ctx.rob_last``, the gshare history, and the
:class:`~repro.pipette.stats.ThreadStats` counters listed in
``stats.MIRROR_COUNTERS`` / ``stats.MIRROR_STALLS``). Mirrors are flushed
back to the context before **every** ``yield`` and at stage completion, so
anything that can observe the thread from outside between resumes — the
scheduler's heap key (``task.time`` -> ``ctx.cursor``), tracer spans,
deadlock reports — sees exactly the state the reference interpreter would
expose. Shared structures (issue-ledger slots, queues, caches, DRAM
windows, ``SimStats``) are never mirrored; the generated code mutates them
directly with the interpreter's exact update sequences, so stall/occupancy
accrual stays a *closed-form replay* of the per-statement arithmetic — the
float additions happen in the same order on the same values, which is why
the accrued buckets are bit-identical rather than merely close.

Stages the compiler cannot express (recursive control handlers, unknown
statement kinds) fall back to :class:`~repro.pipette.fastpath.
FastStageInterp` per stage; the run then mixes engines per stage but stays
bit-identical, since every engine replays the same arithmetic.

The reference interpreter remains the conformance oracle: see
``tests/pipette/test_fastpath_conformance.py`` (engine matrix) and the
engine-differential fuzzer in ``tests/test_compiler_fuzz.py``.
"""

from ..errors import SimulationError
from ..ir.ops import TERNARY_OPS, _checked_div, _checked_mod
from ..ir.values import Ctrl
from .fastpath import FastStageInterp, _is_reg
from .interp import _assign_pcs
from .sched import BLOCKED
from .stats import MIRROR_COUNTERS, MIRROR_STALLS

__all__ = ["BatchStageInterp", "UnsupportedStage"]


class UnsupportedStage(Exception):
    """Raised by the stage compiler when a stage shape cannot be expressed;
    the factory falls back to the fast path for that stage."""


#: Compiled code objects keyed by generated source text. The source bakes in
#: every structural and configuration literal, so text equality is exactly
#: compile-compatibility; captures (queues, arrays, ctx) bind per run.
_CODE_CACHE = {}
_CODE_CACHE_MAX = 512

#: Generated-source size guard: a pathological handler-inline blowup falls
#: back to the fast path instead of compiling a megabyte of Python.
_MAX_LINES = 20000

#: Mirror-local names for the ThreadStats counters, in field order.
_STAT_LOCALS = {
    "uops": "u",
    "loads": "ld",
    "stores": "st",
    "branches": "br",
    "mispredicts": "mp",
    "queue_ops": "qo",
    "queue_stall": "qs",
    "mem_stall": "ms",
    "branch_stall": "bs",
    "barrier_stall": "bars",
}

#: ``assign`` ops as source expressions over operand expressions a/b/c.
#: div/mod call the shared checked helpers so error behavior (and C
#: truncation semantics) is the interpreter's own code, not a copy.
_BINARY_EXPR = {
    "add": "({a} + {b})",
    "sub": "({a} - {b})",
    "mul": "({a} * {b})",
    "div": "_div({a}, {b})",
    "mod": "_mod({a}, {b})",
    "and": "(int({a}) & int({b}))",
    "or": "(int({a}) | int({b}))",
    "xor": "(int({a}) ^ int({b}))",
    "shl": "(int({a}) << int({b}))",
    "shr": "(int({a}) >> int({b}))",
    "lt": "(1 if {a} < {b} else 0)",
    "le": "(1 if {a} <= {b} else 0)",
    "gt": "(1 if {a} > {b} else 0)",
    "ge": "(1 if {a} >= {b} else 0)",
    "eq": "(1 if {a} == {b} else 0)",
    "ne": "(1 if {a} != {b} else 0)",
    "min": "({a} if {a} < {b} else {b})",
    "max": "({a} if {a} > {b} else {b})",
    "pack2": "({a}, {b})",
}

_UNARY_EXPR = {
    "neg": "(-{a})",
    "not": "(0 if {a} else 1)",
    "mov": "{a}",
    "fst": "{a}[0]",
    "snd": "{a}[1]",
}


def _oob_raiser(stage_name, array_op, data):
    """Builds the exact out-of-bounds SimulationError the interpreter raises."""

    def raiser(idx):
        return SimulationError(
            "stage %s: load %s[%d] out of bounds (len %d)"
            % (stage_name, array_op, idx, len(data))
        )

    return raiser


def _resolve_handle(arrays, operand, value):
    """Pointer-register -> ArrayBinding, mirroring StageInterp.array_binding."""
    if not isinstance(value, str) or not value.startswith("@"):
        raise SimulationError("register %r used as pointer holds %r" % (operand, value))
    found = arrays.get(value[1:])
    if found is None:
        raise SimulationError("unbound array %s" % value)
    return found


def _dangling(stage_name, sig):
    signal = ("continue", 1) if sig < 0 else ("break", sig)
    return SimulationError(
        "stage %s finished with dangling control signal %r" % (stage_name, signal)
    )


class _StageCompiler:
    """Emits the generator-function source for one stage on one thread.

    Loop contexts track what the innermost *generated Python loop* is, so a
    pending control signal (``_sig`` > 0: break that many IR loops;
    ``_sig`` < 0: continue the nearest IR loop) is consumed or propagated
    with exactly the interpreter's semantics:

    * ``for``/``loop`` contexts consume a continue (restart, for-loops
      re-running their increment first) and exit on break, decrementing the
      level count in their epilogue;
    * synthetic loops (the deq handler-retry loop, the top-level body
      wrapper) are transparent: they just break outward, leaving ``_sig``
      for the enclosing context — the interpreter's "return the signal
      verbatim" behavior for non-loop frames.
    """

    def __init__(self, stage, ctx, runenv):
        self.stage = stage
        self.ctx = ctx
        self.env = runenv
        self.pcs = _assign_pcs(stage)
        self.traced = ctx.tracer is not None
        self.lines = []
        self.indent = 2
        self._fresh = 0
        self.regmap = {}
        self.captures = {
            "ctx": ctx,
            "task": ctx.task,
            "env": runenv,
            "tstats": ctx.stats,
            "sstats": runenv.stats,
            "ledger": ctx.ledger,
            "rob": ctx.rob,
            "mshr": ctx.mshr,
            "pred": ctx.pred,
            "_div": _checked_div,
            "_mod": _checked_mod,
            "_rh": _resolve_handle,
            "_dangle": _dangling,
            "SN": stage.name,
            # Hot builtins rebound as frame locals: the prologue's
            # ``int = C['int']`` turns every use into a LOAD_FAST instead
            # of a namespace-then-builtins LOAD_GLOBAL chain.
            "int": int,
            "max": max,
            "len": len,
            "type": type,
            "range": range,
        }
        if self.traced:
            self.captures["tracer"] = ctx.tracer
            self.captures["TN"] = ctx.stats.name
        self._queue_locals = set()
        self._enq_qids = set()  # queues enqueued inline (counter deltas live)
        self._deq_qids = set()  # queues dequeued inline
        self._oob_raisers = {}
        self._loop_stack = []  # ("for", inc_src) | ("loop", None) | ("syn", None)
        self._handler_stack = []  # qids currently being inlined (recursion guard)
        # Config literals baked into the source.
        cfg = ctx.config
        self.W = cfg.issue_width
        self.ROB = cfg.rob_size
        self.MSHRS = cfg.mshrs
        self.PEN = cfg.mispredict_penalty
        self.cfg = cfg
        mem = ctx.mem
        self.SHIFT = mem.LINE_SHIFT
        l1 = mem.l1[ctx.core]
        self.SCOUNT = l1.sets_count
        self.L1WAYS = l1.ways
        self.L1LAT = cfg.l1.latency
        self.PF_ON = cfg.prefetch_enabled
        self.PF_DEG = cfg.prefetch_degree
        self.MAXSTRIDE = mem.prefetchers[ctx.core].MAX_STRIDE
        l2 = mem.l2[ctx.core]
        self.L2SCOUNT = l2.sets_count
        self.L2WAYS = l2.ways
        self.L2LAT = cfg.l2.latency
        self.captures["l1_sets"] = l1.sets
        self.captures["l1_stats"] = l1.stats
        self.captures["l2_sets"] = l2.sets
        self.captures["l2_stats"] = l2.stats
        self.captures["below_l2"] = mem.miss_below_l2
        self.captures["pf_streams"] = mem.prefetchers[ctx.core].streams
        self.captures["pf_one"] = mem._prefetch

    # -- emission helpers ---------------------------------------------------

    def w(self, text):
        self.lines.append("    " * self.indent + text)
        if len(self.lines) > _MAX_LINES:
            raise UnsupportedStage("generated stage body too large")

    def push(self):
        self.indent += 1

    def pop(self):
        self.indent -= 1

    def fresh(self, base):
        self._fresh += 1
        return "%s%d" % (base, self._fresh)

    def cap(self, name, obj):
        existing = self.captures.get(name)
        if existing is not None and existing is not obj:
            raise UnsupportedStage("capture name collision %r" % name)
        self.captures[name] = obj
        return name

    # -- operand expressions ------------------------------------------------

    def reg(self, name):
        """(value local, ready local) for a register name, allocating once."""
        pair = self.regmap.get(name)
        if pair is None:
            k = len(self.regmap)
            pair = self.regmap[name] = ("R%d" % k, "Y%d" % k)
        return pair

    def val(self, operand):
        if _is_reg(operand):
            return self.reg(operand)[0]
        return repr(operand)

    def rdy(self, operand):
        if _is_reg(operand):
            return self.reg(operand)[1]
        return "0.0"

    def dep2(self, a, b):
        """max(ready(a), ready(b)) as an expression."""
        ra, rb = self.rdy(a), self.rdy(b)
        if ra == "0.0":
            return rb
        if rb == "0.0":
            return ra
        return "(%s if %s > %s else %s)" % (ra, ra, rb, rb)

    # -- inline timing blocks (transcribed from interp.py / sched.py) -------

    def emit_acquire(self, n=1):
        """IssueLedger.acquire x n + ThreadCtx.issue bookkeeping; leaves ``t``.

        ``slots`` is bound once in the prologue (IssueLedger.prune would
        rebind the dict, but nothing calls it during a machine run).
        ``c + 0.0`` == ``float(c)`` exactly for any cycle count below 2**53.

        The ledger dict is shared with co-scheduled threads, but those only
        run after this generator yields: the current cycle's count lives in
        the ``(lc, ln)`` locals and the dict write is deferred until the
        cycle fills, the cycle changes, or a sync point / direct
        ``ledger.acquire`` call needs the dict authoritative again.
        """
        self.w("c = int(cur)")
        self.w("if c < cur:")
        self.w("    c += 1")
        # (lc, ln) cache the true slot count of the last acquired cycle
        # with the dict write deferred: between yields no other thread
        # runs, so the dict only needs to be correct again at the next
        # sync (or before a real ledger.acquire call). The common case
        # (same cycle, slots left) touches no dict at all.
        self.w("if c == lc and ln < %d:" % self.W)
        self.w("    ln += 1")
        self.w("else:")
        self.w("    if ln:")
        self.w("        slots[lc] = ln")
        self.w("    n = sget(c, 0)")
        self.w("    while n >= %d:" % self.W)
        self.w("        c += 1")
        self.w("        n = sget(c, 0)")
        self.w("    lc = c")
        self.w("    ln = n + 1")
        for _ in range(n - 1):
            # ``cur`` is untouched since the previous acquire landed on
            # ``lc``, so the reference's int()/ceil probe would recompute
            # exactly ``lc``; only the slot-count check remains.
            self.w("if ln < %d:" % self.W)
            self.w("    ln += 1")
            self.w("else:")
            self.w("    slots[lc] = ln")
            self.w("    c = lc + 1")
            self.w("    n = sget(c, 0)")
            self.w("    while n >= %d:" % self.W)
            self.w("        c += 1")
            self.w("        n = sget(c, 0)")
            self.w("    lc = c")
            self.w("    ln = n + 1")
        # Only the final slot's cycle is observable (ThreadCtx.issue
        # threads ``t`` through the chain and stores the last).
        self.w("t = cur = lc + 0.0")
        self.w("u += %d" % n)

    def emit_comp(self, dep_src, latency=1):
        """``comp = max(t, dep) + latency``; a statically-zero dep folds
        away (``t`` is a cursor value, never negative)."""
        if dep_src == "0.0":
            self.w("comp = t + %d" % latency)
        elif dep_src.isidentifier():
            self.w("comp = (t if t > %s else %s) + %d" % (dep_src, dep_src, latency))
        else:
            self.w("dep = %s" % dep_src)
            self.w("comp = (t if t > dep else dep) + %d" % latency)

    def emit_start(self, dep_src):
        """``start = max(t, dep)`` with the same zero-dep fold."""
        if dep_src == "0.0":
            self.w("start = t")
        elif dep_src.isidentifier():
            self.w("start = t if t > %s else %s" % (dep_src, dep_src))
        else:
            self.w("dep = %s" % dep_src)
            self.w("start = t if t > dep else dep")

    def emit_retire(self, comp_expr):
        """ThreadCtx.retire, on the ``rlast``/ring mirrors.

        The ROB deque (pop oldest once at capacity, else just grow) is a
        ring of the last ``rob_size`` retire times. The ring starts
        prefilled with 0.0: cursors are never negative, so popping a
        sentinel is exactly the reference's not-yet-full no-pop case. The
        deque itself is thread-private and observed by nothing else, so the
        ring never needs flushing back.
        """
        r = comp_expr
        if not comp_expr.isidentifier():
            self.w("r = %s" % comp_expr)
            r = "r"
        self.w("if %s > rlast:" % r)
        self.w("    rlast = %s" % r)
        self.w("oldest = ring[ri]")
        self.w("if oldest > cur:")
        self.w("    ms += oldest - cur")
        if self.traced:
            self.w("    tracer.stall(TN, 'mem', cur, oldest)")
        self.w("    cur = oldest")
        self.w("ring[ri] = rlast")
        self.w("ri += 1")
        self.w("if ri == %d:" % self.ROB)
        self.w("    ri = 0")

    def emit_mshr(self, comp_expr):
        """ThreadCtx.mshr_claim, as a prefilled ring like the ROB."""
        self.w("oldest = mring[mi]")
        self.w("if oldest > cur:")
        self.w("    ms += oldest - cur")
        if self.traced:
            self.w("    tracer.stall(TN, 'mem', cur, oldest)")
        self.w("    cur = oldest")
        self.w("mring[mi] = %s" % comp_expr)
        self.w("mi += 1")
        self.w("if mi == %d:" % self.MSHRS)
        self.w("    mi = 0")

    def emit_predict(self, pc):
        """GsharePredictor.predict_and_update on the ``ph`` mirror; needs a
        ``taken`` local in scope, leaves ``correct``."""
        self.w("pidx = (%d ^ ph) & pmask" % pc)
        self.w("pctr = ptable[pidx]")
        # Counter update, history shift, and direction check folded into the
        # taken arms: ``(pctr >= 2) == taken`` is ``pctr >= 2`` when taken
        # and ``pctr < 2`` when not.
        self.w("if taken:")
        self.w("    if pctr < 3:")
        self.w("        ptable[pidx] = pctr + 1")
        self.w("    ph = ((ph << 1) | 1) & hmask")
        self.w("    correct = pctr >= 2")
        self.w("else:")
        self.w("    if pctr > 0:")
        self.w("        ptable[pidx] = pctr - 1")
        self.w("    ph = (ph << 1) & hmask")
        self.w("    correct = pctr < 2")

    def emit_sync(self):
        """Flush every mirrored local back to the context/stats objects.

        Emitted before every ``yield`` (and at completion), so external
        observers between resumes — scheduler heap keys, tracer spans,
        deadlock reports — see reference-identical state.

        Emits a placeholder: queue-counter deltas are part of the flush but
        the full queue set is only known once the whole body has been
        emitted, so :meth:`compile` expands the marker afterwards.
        """
        self.w("#SYNC#")

    def sync_lines(self):
        """The real flush block (see emit_sync). Thread-private mirrors
        write back absolute values; counters shared with other threads
        (SimStats queue totals, HWQueue counters) accumulate as deltas and
        flush with ``+=`` / max-merge so concurrent method-path updates are
        never overwritten."""
        out = [
            "ctx.cursor = cur",
            "ctx.rob_last = rlast",
            "pred.history = ph",
            # Deferred ledger write (see emit_acquire): other threads read
            # the slot dict while this one is suspended, so make it
            # authoritative and drop the cache.
            "if ln:",
            "    slots[lc] = ln",
            "    lc = -1",
            "    ln = 0",
            # Cache hit/miss deltas: the counters are shared with RAs and
            # co-scheduled threads, so they accumulate locally and flush
            # additively (ints: exact in any interleaving).
            "l1_stats.hits += l1h",
            "l1_stats.misses += l1m",
            "l2_stats.hits += l2h",
            "l2_stats.misses += l2m",
            "l1h = l1m = l2h = l2m = 0",
        ]
        for field in MIRROR_COUNTERS + MIRROR_STALLS:
            out.append("tstats.%s = %s" % (field, _STAT_LOCALS[field]))
        if self._enq_qids or self._deq_qids:
            out.append("sstats.queue_enqs += sqe")
            out.append("sqe = 0")
            out.append("sstats.queue_deqs += sqd")
            out.append("sqd = 0")
        for qid in sorted(self._enq_qids):
            base = "q%d" % qid
            out.append("%s.total_enqs += %s_enqs" % (base, base))
            out.append("%s_enqs = 0" % base)
            out.append("if %s_mo > %s.max_occupancy:" % (base, base))
            out.append("    %s.max_occupancy = %s_mo" % (base, base))
        for qid in sorted(self._deq_qids):
            base = "q%d" % qid
            out.append("%s.total_deqs += %s_deqs" % (base, base))
            out.append("%s_deqs = 0" % base)
        return out

    def emit_l1_access(self, start="start", stream="sname", store=False):
        """Inline L1 lookup (+ stride observe unless a store); leaves
        ``latency``. ``stream`` names a local holding the stream id; the
        address line must already be in ``line``. Transcribed from
        MemorySystem.access via fastpath's audited inline block."""
        self.w("sindex = line %% %d" % self.SCOUNT)
        self.w("tag = line // %d" % self.SCOUNT)
        self.w("entry = l1get(sindex)")
        self.w("if entry is not None and entry[0] == tag:")
        self.w("    l1h += 1")
        self.w("    latency = %d" % self.L1LAT)
        self.w("elif entry is not None and tag in entry:")
        self.w("    pos = entry.index(tag, 1)")
        self.w("    del entry[pos]")
        self.w("    entry.insert(0, tag)")
        self.w("    l1h += 1")
        self.w("    latency = %d" % self.L1LAT)
        self.w("else:")
        self.w("    if entry is None:")
        self.w("        l1_sets[sindex] = [tag]")
        self.w("    else:")
        self.w("        entry.insert(0, tag)")
        self.w("        if len(entry) > %d:" % self.L1WAYS)
        self.w("            entry.pop()")
        self.w("    l1m += 1")
        # L2 lookup inlined too (Cache.access, same discipline as the L1
        # block); only the below-L2 walk stays a call.
        self.w("    e2 = l2get(line %% %d)" % self.L2SCOUNT)
        self.w("    t2 = line // %d" % self.L2SCOUNT)
        self.w("    if e2 is not None and e2[0] == t2:")
        self.w("        l2h += 1")
        self.w("        latency = %d" % self.L2LAT)
        self.w("    elif e2 is not None and t2 in e2:")
        self.w("        pos = e2.index(t2, 1)")
        self.w("        del e2[pos]")
        self.w("        e2.insert(0, t2)")
        self.w("        l2h += 1")
        self.w("        latency = %d" % self.L2LAT)
        self.w("    else:")
        self.w("        if e2 is None:")
        self.w("            l2_sets[line %% %d] = [t2]" % self.L2SCOUNT)
        self.w("        else:")
        self.w("            e2.insert(0, t2)")
        self.w("            if len(e2) > %d:" % self.L2WAYS)
        self.w("                e2.pop()")
        self.w("        l2m += 1")
        self.w("        latency = below_l2(%d, line, %s)" % (self.ctx.core, start))
        if self.PF_ON and not store:
            self.w("sentry = pfget(%s)" % stream)
            self.w("if sentry is None:")
            self.w("    pf_streams[%s] = (line, 0, 0)" % stream)
            self.w("else:")
            self.w("    last_line, pstride, prun = sentry")
            self.w("    delta = line - last_line")
            self.w("    if delta != 0:")
            self.w(
                "        if delta == pstride and"
                " 0 < (pstride if pstride > 0 else -pstride) <= %d:" % self.MAXSTRIDE
            )
            self.w("            prun = prun + 1 if prun < 8 else 8")
            self.w("            pf_streams[%s] = (line, pstride, prun)" % stream)
            self.w("            if prun >= 2:")
            self.w("                later = %s + latency" % start)
            self.w("                for k in range(1, %d):" % (self.PF_DEG + 1))
            self.w("                    pf_one(%d, line + pstride * k, later)" % self.ctx.core)
            self.w("        else:")
            self.w("            pf_streams[%s] = (line, delta, 1)" % stream)

    # -- signal propagation -------------------------------------------------

    def emit_signal_check(self):
        """Consume/propagate a pending control signal at the innermost
        generated Python loop; emitted after every can-signal statement."""
        kind, inc = self._loop_stack[-1]
        self.w("if _sig:")
        if kind == "syn":
            self.w("    break")
        elif kind == "loop":
            self.w("    if _sig < 0:")
            self.w("        _sig = 0")
            self.w("        continue")
            self.w("    break")
        else:  # for: a consumed continue re-runs the increment first
            self.w("    if _sig < 0:")
            self.w("        _sig = 0")
            self.w("        %s" % inc)
            self.w("        continue")
            self.w("    break")

    # -- queue helpers ------------------------------------------------------

    def queue_locals(self, qid):
        """Capture queue ``qid`` and register its per-run locals; returns the
        base name. Queue latency resolves at machine setup (xcore placement),
        so it binds as a capture rather than a literal."""
        base = "q%d" % qid
        queue = self.env.queues[qid]
        self.cap(base, queue)
        if qid not in self._queue_locals:
            self._queue_locals.add(qid)
        return base

    def queue_prologue_lines(self):
        out = []
        for qid in sorted(self._queue_locals):
            base = "q%d" % qid
            out.append("%s_entries = %s.entries" % (base, base))
            out.append("%s_free = %s.slot_free" % (base, base))
            out.append("%s_lat = %s.latency" % (base, base))
            if self.traced:
                out.append("%s_tr = %s.tracer" % (base, base))
                out.append("%s_lbl = %s.label" % (base, base))
        if self._enq_qids or self._deq_qids:
            out.append("sqe = 0")
            out.append("sqd = 0")
        for qid in sorted(self._enq_qids):
            base = "q%d" % qid
            out.append("%s_enqs = 0" % base)
            out.append("%s_mo = %s.max_occupancy" % (base, base))
        for qid in sorted(self._deq_qids):
            out.append("q%d_deqs = 0" % qid)
        return out

    def emit_queue_counter(self, base, t_expr):
        if self.traced:
            self.w("if %s_tr is not None:" % base)
            self.w("    %s_tr.counter(%s_lbl, %s, len(%s_entries))" % (base, base, t_expr, base))

    def emit_wake(self, base, side):
        self.w("if %s.%s:" % (base, side))
        self.w("    _ws = %s.%s" % (base, side))
        self.w("    %s.%s = []" % (base, side))
        self.w("    for _wt in _ws:")
        self.w("        _wt.wake()")

    # -- statement emitters -------------------------------------------------
    # Each returns True when a control signal may be pending afterwards.

    def emit_body(self, body):
        can_signal = False
        for stmt in body:
            if stmt.kind == "comment":
                continue
            stepped = self.emit_stmt(stmt)
            if stepped:
                self.emit_signal_check()
                can_signal = True
        return can_signal

    def emit_stmt(self, stmt):
        method = getattr(self, "_emit_" + stmt.kind, None)
        if method is None:
            raise UnsupportedStage("unknown statement kind %r" % stmt.kind)
        return method(stmt)

    def _emit_assign(self, stmt):
        op = stmt.op
        args = stmt.args
        if op in _BINARY_EXPR:
            expr = _BINARY_EXPR[op].format(a=self.val(args[0]), b=self.val(args[1]))
            dep = self.dep2(args[0], args[1])
        elif op in TERNARY_OPS:
            expr = "(%s if %s else %s)" % (self.val(args[1]), self.val(args[0]), self.val(args[2]))
            regs = [a for a in args if _is_reg(a)]
            if not regs:
                dep = "0.0"
            elif len(regs) == 1:
                dep = self.rdy(regs[0])
            else:
                dep = "max(%s)" % ", ".join(self.rdy(a) for a in regs)
        elif op in _UNARY_EXPR:
            expr = _UNARY_EXPR[op].format(a=self.val(args[0]))
            dep = self.rdy(args[0])
        else:
            raise UnsupportedStage("unknown assign op %r" % op)
        rd, ry = self.reg(stmt.dst)
        latency = self.cfg.op_latency(op)
        # Evaluation happens after issue+dep, like the interpreter: even a
        # div-by-zero propagates with the slot already consumed.
        self.emit_acquire(1)
        self.emit_comp(dep, latency)
        self.w("%s = %s" % (rd, expr))
        self.w("%s = comp" % ry)
        self.emit_retire("comp")
        return False

    def _binding_locals(self, operand):
        """Static ``@name`` binding -> (data, base, esize, sname, oob) capture
        names, or None for a pointer register."""
        if not (type(operand) is str and operand.startswith("@")):
            return None
        binding = self.env.arrays.get(operand[1:])
        if binding is None:
            # Unbound symbol: fall back so the error surfaces at execution
            # time with the reference engine's message, not at bind time.
            raise UnsupportedStage("unbound array %s" % operand)
        tag = operand[1:]
        d = self.cap("d_" + tag, binding.data)
        b = self.cap("b_" + tag, binding.base)
        z = self.cap("z_" + tag, binding.elem_size)
        s = self.cap("s_" + tag, binding.name)
        # One raiser per array: _oob_raiser builds a fresh closure, so a
        # second access to the same array must reuse the first one or the
        # cap() identity check would reject it as a collision.
        raiser = self._oob_raisers.get(tag)
        if raiser is None:
            raiser = self._oob_raisers[tag] = _oob_raiser(
                self.stage.name, operand, binding.data
            )
        oob = self.cap("oob_" + tag, raiser)
        return d, b, z, s, oob

    def _emit_load(self, stmt):
        static = self._binding_locals(stmt.array)
        rd, ry = self.reg(stmt.dst)
        iv = self.val(stmt.index)
        idep = self.rdy(stmt.index)
        if static is not None:
            d, b, z, s, oob = static
            self.w("idx = %s" % iv)
            self.emit_acquire(1)
            self.emit_start(idep)
            self.w("line = (%s + idx * %s) >> %d" % (b, z, self.SHIFT))
            self.emit_l1_access(stream=s)
            self.w("comp = start + latency")
            self.w("try:")
            self.w("    v = %s[idx]" % d)
            self.w("except IndexError:")
            self.w("    raise %s(idx)" % oob)
        else:
            # Pointer-register load: binding resolves per execution; the
            # pointer register's ready time joins the dependence, exactly
            # like the interpreter's array-operand ready lookup.
            self.cap("arrays", self.env.arrays)
            pr, py = self.reg(stmt.array)
            aop = self.cap("ao%d" % self.pcs[id(stmt)], stmt.array)
            self.w("bind = _rh(arrays, %s, %s)" % (aop, pr))
            self.w("idx = %s" % iv)
            self.emit_acquire(1)
            self.w("dep = %s" % idep)
            self.w("pr = %s" % py)
            self.w("if pr > dep:")
            self.w("    dep = pr")
            self.w("start = t if t > dep else dep")
            self.w("line = (bind.base + idx * bind.elem_size) >> %d" % self.SHIFT)
            self.emit_l1_access(stream="bind.name")
            self.w("comp = start + latency")
            self.w("try:")
            self.w("    v = bind.data[idx]")
            self.w("except IndexError:")
            self.w(
                "    raise SimulationError('stage %%s: load %%s[%%d] out of bounds "
                "(len %%d)' %% (SN, %s, idx, len(bind.data)))" % aop
            )
        self.w("%s = v" % rd)
        self.w("%s = comp" % ry)
        self.w("ld += 1")
        self.emit_mshr("comp")
        self.emit_retire("comp")
        return False

    def _emit_store(self, stmt):
        static = self._binding_locals(stmt.array)
        iv = self.val(stmt.index)
        vv = self.val(stmt.value)
        dep = self.dep2(stmt.index, stmt.value)
        if static is None:
            self.cap("arrays", self.env.arrays)
            pr, py = self.reg(stmt.array)
            aop = self.cap("ao%d" % self.pcs[id(stmt)], stmt.array)
            self.w("bind = _rh(arrays, %s, %s)" % (aop, pr))
        self.w("idx = %s" % iv)
        self.w("v = %s" % vv)
        self.emit_acquire(1)
        if static is None:
            self.emit_start(dep)
            self.w("line = (bind.base + idx * bind.elem_size) >> %d" % self.SHIFT)
            self.emit_l1_access(store=True)
            self.w("try:")
            self.w("    bind.data[idx] = v")
            self.w("except IndexError:")
            self.w(
                "    raise SimulationError('stage %%s: store %%s[%%d] out of bounds "
                "(len %%d)' %% (SN, %s, idx, len(bind.data)))" % aop
            )
        else:
            d, b, z, s, _ = static
            self.emit_start(dep)
            self.w("line = (%s + idx * %s) >> %d" % (b, z, self.SHIFT))
            self.emit_l1_access(store=True)
            self.w("try:")
            self.w("    %s[idx] = v" % d)
            self.w("except IndexError:")
            self.w(
                "    raise SimulationError('stage %%s: store %%s[%%d] out of bounds "
                "(len %%d)' %% (SN, %r, idx, len(%s)))" % (stmt.array, d)
            )
        self.w("st += 1")
        self.emit_retire("start + 1")
        return False

    def _emit_prefetch(self, stmt):
        static = self._binding_locals(stmt.array)
        iv = self.val(stmt.index)
        if static is None:
            self.cap("arrays", self.env.arrays)
            pr, _ = self.reg(stmt.array)
            aop = self.cap("ao%d" % self.pcs[id(stmt)], stmt.array)
            self.w("bind = _rh(arrays, %s, %s)" % (aop, pr))
        self.w("idx = %s" % iv)
        self.emit_acquire(1)
        self.emit_start(self.rdy(stmt.index))
        if static is None:
            self.w("if 0 <= idx < len(bind.data):")
            self.push()
            self.w("line = (bind.base + idx * bind.elem_size) >> %d" % self.SHIFT)
            self.emit_l1_access(stream="bind.name")
        else:
            d, b, z, s, _ = static
            self.w("if 0 <= idx < len(%s):" % d)
            self.push()
            self.w("line = (%s + idx * %s) >> %d" % (b, z, self.SHIFT))
            self.emit_l1_access(stream=s)
        self.w("comp = start + latency")
        self.w("ld += 1")
        self.emit_mshr("comp")
        self.emit_retire("comp")
        self.pop()
        return False

    def _emit_if(self, stmt):
        pc = self.pcs[id(stmt)]
        self.w("v = %s" % self.val(stmt.cond))
        self.w("taken = True if v else False")
        self.emit_acquire(1)
        self.w("br += 1")
        self.emit_predict(pc)
        cdy = self.rdy(stmt.cond)
        self.w("if not correct:")
        if cdy == "0.0":
            self.w("    resolve = t")
        else:
            self.w("    resolve = t if t > %s else %s" % (cdy, cdy))
        self.w("    target = resolve + %d" % self.PEN)
        self.w("    mp += 1")
        self.w("    bs += target - cur")
        if self.traced:
            self.w("    if target > cur:")
            self.w("        tracer.stall(TN, 'branch', cur, target)")
        self.w("    cur = target")
        then_body = [s for s in stmt.then_body if s.kind != "comment"]
        else_body = [s for s in (stmt.else_body or []) if s.kind != "comment"]
        can_signal = False
        if then_body and else_body:
            self.w("if taken:")
            self.push()
            can_signal |= self.emit_body(stmt.then_body)
            self.pop()
            self.w("else:")
            self.push()
            can_signal |= self.emit_body(stmt.else_body)
            self.pop()
        elif then_body:
            self.w("if taken:")
            self.push()
            can_signal |= self.emit_body(stmt.then_body)
            self.pop()
        elif else_body:
            self.w("if not taken:")
            self.push()
            can_signal |= self.emit_body(stmt.else_body)
            self.pop()
        return can_signal

    def _emit_for(self, stmt):
        pc = self.pcs[id(stmt)]
        i = self.fresh("i")
        hi = self.fresh("hi")
        step = self.fresh("stp")
        bd = self.fresh("bd")
        rv, ry = self.reg(stmt.var)
        self.w("%s = %s" % (i, self.val(stmt.lo)))
        self.w("%s = %s" % (hi, self.val(stmt.hi)))
        self.w("%s = %s" % (step, self.val(stmt.step)))
        self.w("%s = %s" % (bd, self.dep2(stmt.lo, stmt.hi)))
        inc = "%s += %s" % (i, step)
        self.w("while True:")
        self.push()
        self.w("taken = %s < %s" % (i, hi))
        # Loop control costs real instructions (interp.exec_for): inc,
        # compare, branch — issue(3) then the gshare predict.
        self.emit_acquire(3)
        self.w("br += 1")
        self.emit_predict(pc)
        self.w("if not correct:")
        self.w("    resolve = t if t > %s else %s" % (bd, bd))
        self.w("    target = resolve + %d" % self.PEN)
        self.w("    mp += 1")
        self.w("    d = target - cur")
        self.w("    bs += d if d > 0.0 else 0.0")
        self.w("    if target > cur:")
        if self.traced:
            self.w("        tracer.stall(TN, 'branch', cur, target)")
        self.w("        cur = target")
        self.w("if not taken:")
        self.w("    break")
        self.w("%s = %s" % (rv, i))
        self.w("%s = cur" % ry)
        self._loop_stack.append(("for", inc))
        body_signals = self.emit_body(stmt.body)
        self._loop_stack.pop()
        self.w(inc)
        self.pop()
        if body_signals:
            self.w("if _sig:")
            self.w("    _sig -= 1")
            return True
        return False

    def _emit_loop(self, stmt):
        self.w("while True:")
        self.push()
        self._loop_stack.append(("loop", None))
        body_signals = self.emit_body(stmt.body)
        self._loop_stack.pop()
        self.pop()
        if not body_signals:
            raise UnsupportedStage("loop with no reachable break")
        self.w("if _sig:")
        self.w("    _sig -= 1")
        return True

    def _emit_break(self, stmt):
        self.w("_sig = %d" % stmt.levels)
        return True

    def _emit_continue(self, stmt):
        self.w("_sig = -1")
        return True

    # -- queue statements ---------------------------------------------------

    def _emit_try_enq_inline(self, base, start_expr, value_expr, extra=None):
        """HWQueue.try_enq inlined; ``qt`` holds the completion or the
        blocked path runs. Follows StageInterp.do_enq exactly."""
        lat = "%s_lat" % base
        if extra:
            lat = "%s + %s" % (lat, extra)
        self._enq_qids.add(int(base[1:]))
        self.w("if %s_free:" % base)
        self.push()
        self.w("freed = %s_free.popleft()" % base)
        self.w("qt = freed if freed > %s else %s" % (start_expr, start_expr))
        self.w("%s_entries.append((%s, qt + %s))" % (base, value_expr, lat))
        self.w("%s_enqs += 1" % base)
        self.w("occ = len(%s_entries)" % base)
        self.w("if occ > %s_mo:" % base)
        self.w("    %s_mo = occ" % base)
        self.emit_queue_counter(base, "qt")
        self.emit_wake(base, "waiting_consumers")
        # The slot existed only in the future: effectively full now.
        self.w("if qt > start:")
        self.w("    qs += qt - cur")
        if self.traced:
            self.w("    tracer.stall(TN, 'queue', cur, qt)")
        self.w("    cur = qt")
        self.pop()
        self.w("else:")
        self.push()
        self.w("%s.full_blocks += 1" % base)
        self.w("wait_from = cur")
        self.emit_sync()
        self.w("while True:")
        self.w("    task.block(('enq', %d))" % self.env.queues[int(base[1:])].qid)
        self.w("    %s.waiting_producers.append(task)" % base)
        self.w("    yield BLOCKED")
        self.w(
            "    qt = %s.try_enq(start if start > cur else cur, %s%s)"
            % (base, value_expr, (", " + extra) if extra else "")
        )
        self.w("    if qt is not None:")
        self.w("        break")
        self.w("if qt > cur:")
        self.w("    qs += qt - wait_from")
        if self.traced:
            self.w("    tracer.stall(TN, 'queue', wait_from, qt)")
        self.w("    cur = qt")
        self.pop()

    def _emit_enq_common(self, qid, value_expr, dep_expr):
        base = self.queue_locals(qid)
        self.w("ev = %s" % value_expr)
        self.emit_acquire(1)
        self.emit_start(dep_expr)
        self._emit_try_enq_inline(base, "start", "ev")
        self.w("qo += 1")
        self.w("sqe += 1")
        self.emit_retire("(qt if qt > start else start) + 1")

    def _emit_enq(self, stmt):
        self._emit_enq_common(stmt.queue, self.val(stmt.value), self.rdy(stmt.value))
        return False

    def _emit_enq_ctrl(self, stmt):
        ctrl = self.cap("ctrl%d" % self.pcs[id(stmt)], stmt.ctrl)
        self._emit_enq_common(stmt.queue, ctrl, "0.0")
        self.w("sstats.ctrl_values += 1")
        return False

    def _emit_deq_once(self, base, qid):
        """One dequeue attempt incl. the blocked path; leaves ``dv``/``qt``."""
        self._deq_qids.add(qid)
        self.emit_acquire(1)
        self.w("if %s_entries:" % base)
        self.push()
        self.w("dv, avail = %s_entries.popleft()" % base)
        self.w("qt = avail if avail > t else t")
        self.w("%s_free.append(qt)" % base)
        self.w("%s_deqs += 1" % base)
        self.emit_queue_counter(base, "qt")
        self.emit_wake(base, "waiting_producers")
        self.pop()
        self.w("else:")
        self.push()
        self.w("%s.empty_blocks += 1" % base)
        self.w("wait_from = cur")
        self.emit_sync()
        self.w("while True:")
        self.w("    task.block(('deq', %d))" % qid)
        self.w("    %s.waiting_consumers.append(task)" % base)
        self.w("    yield BLOCKED")
        self.w("    res = %s.try_deq(cur)" % base)
        self.w("    if res is not None:")
        self.w("        break")
        self.w("dv, qt = res")
        self.w("if qt > cur:")
        self.w("    d = qt - wait_from")
        self.w("    qs += d if d > 0.0 else 0.0")
        if self.traced:
            self.w("    if qt > wait_from:")
            self.w("        tracer.stall(TN, 'queue', wait_from, qt)")
        self.w("    cur = qt")
        self.pop()
        self.w("qo += 1")
        self.w("sqd += 1")
        self.emit_retire("qt + 1")

    def _emit_deq(self, stmt):
        qid = stmt.queue
        base = self.queue_locals(qid)
        rd, ry = self.reg(stmt.dst)
        handler = self.stage.handlers.get(qid)
        if handler is None:
            self._emit_deq_once(base, qid)
            self.w("%s = dv" % rd)
            self.w("%s = qt" % ry)
            return False
        if qid in self._handler_stack:
            raise UnsupportedStage("recursive control handler on queue %d" % qid)
        cr, cy = self.reg("%ctrl")
        self.w("while True:")
        self.push()
        self._emit_deq_once(base, qid)
        self.w("if type(dv) is Ctrl:")
        self.push()
        self.w("%s = dv" % cr)
        self.w("%s = qt" % cy)
        self._handler_stack.append(qid)
        self._loop_stack.append(("syn", None))
        handler_signals = self.emit_body(handler)
        self._loop_stack.pop()
        self._handler_stack.pop()
        self.w("continue")  # handler fell through: retry the dequeue
        self.pop()
        self.w("%s = dv" % rd)
        self.w("%s = qt" % ry)
        self.w("break")
        self.pop()
        return handler_signals

    def _emit_peek(self, stmt):
        qid = stmt.queue
        base = self.queue_locals(qid)
        rd, ry = self.reg(stmt.dst)
        self.emit_acquire(1)
        self.w("if %s_entries:" % base)
        self.w("    dv, avail = %s_entries[0]" % base)
        self.w("    qt = avail if avail > t else t")
        self.w("else:")
        self.push()
        self.w("wait_from = cur")
        self.emit_sync()
        self.w("while True:")
        self.w("    task.block(('peek', %d))" % qid)
        self.w("    %s.waiting_consumers.append(task)" % base)
        self.w("    yield BLOCKED")
        self.w("    res = %s.try_peek(cur)" % base)
        self.w("    if res is not None:")
        self.w("        break")
        self.w("dv, qt = res")
        self.w("if qt > cur:")
        self.w("    d = qt - wait_from")
        self.w("    qs += d if d > 0.0 else 0.0")
        if self.traced:
            self.w("    if qt > wait_from:")
            self.w("        tracer.stall(TN, 'queue', wait_from, qt)")
        self.w("    cur = qt")
        self.pop()
        self.w("%s = dv" % rd)
        self.w("%s = qt" % ry)
        self.emit_retire("qt + 1")
        return False

    def _emit_is_control(self, stmt):
        rd, ry = self.reg(stmt.dst)
        self.w("v = %s" % self.val(stmt.src))
        self.emit_acquire(1)
        self.emit_comp(self.rdy(stmt.src))
        self.w("%s = 1 if type(v) is Ctrl else 0" % rd)
        self.w("%s = comp" % ry)
        self.emit_retire("comp")
        return False

    def _emit_call(self, stmt):
        self.cap("intrinsics", self.env.intrinsics)
        self.cap("acquire", self.ctx.ledger.acquire)
        vals = ", ".join(self.val(a) for a in stmt.args)
        regs = [a for a in stmt.args if _is_reg(a)]
        self.w("fn = intrinsics.get(%r)" % stmt.func)
        self.w("if fn is None:")
        self.w("    raise SimulationError('unbound intrinsic %%r' %% (%r,))" % stmt.func)
        self.w("k = fn.cost")
        self.w("if k < 1:")
        self.w("    k = 1")
        # Intrinsic cost is a runtime property of the binding; the generic
        # acquire chain mirrors ThreadCtx.issue(n). The real ledger method
        # reads the slot dict, so the deferred write must land first.
        self.w("if ln:")
        self.w("    slots[lc] = ln")
        self.w("    lc = -1")
        self.w("    ln = 0")
        self.w("t = acquire(cur)")
        self.w("for _ in range(k - 1):")
        self.w("    t = acquire(t)")
        self.w("cur = t")
        self.w("u += k")
        if not regs:
            dep = "0.0"
        elif len(regs) == 1:
            dep = self.rdy(regs[0])
        else:
            dep = "max(%s)" % ", ".join(self.rdy(a) for a in regs)
        self.emit_comp(dep)
        self.w("res = fn.fn(%s)" % vals)
        if stmt.dst is not None:
            rd, ry = self.reg(stmt.dst)
            self.w("%s = res if res is not None else 0" % rd)
            self.w("%s = comp" % ry)
        self.emit_retire("comp")
        return False

    def _emit_barrier(self, stmt):
        self.cap("barrier_of", _barrier_of)
        self.w("bobj = barrier_of(env)")
        self.w("rel = bobj.arrive(task, cur)")
        self.w("if rel is None:")
        self.push()
        self.w("task.block(('barrier', %r))" % stmt.tag)
        self.emit_sync()
        self.w("yield BLOCKED")
        self.w("rel = bobj.last_release")
        self.pop()
        self.w("if rel > cur:")
        self.w("    bars += rel - cur")
        if self.traced:
            self.w("    tracer.stall(TN, 'barrier', cur, rel)")
        self.w("    cur = rel")
        return False

    def _emit_read_shared(self, stmt):
        self.cap("shared", self.env.shared)
        rd, ry = self.reg(stmt.dst)
        self.emit_acquire(1)
        self.w("%s = shared.read(%r)" % (rd, stmt.var))
        self.w("%s = t + 1" % ry)
        self.emit_retire("t + 1")
        return False

    def _emit_write_shared(self, stmt):
        self.cap("shared", self.env.shared)
        self.w("v = %s" % self.val(stmt.value))
        self.emit_acquire(1)
        self.w("shared.write(%r, v)" % stmt.var)
        self.emit_comp(self.rdy(stmt.value))
        self.emit_retire("comp")
        return False

    def _emit_atomic_rmw(self, stmt):
        self.cap("mem_access", self.ctx.mem.access)
        static = self._binding_locals(stmt.array)
        if stmt.op not in _BINARY_EXPR:
            raise UnsupportedStage("unknown atomic op %r" % stmt.op)
        if static is None:
            self.cap("arrays", self.env.arrays)
            pr, _ = self.reg(stmt.array)
            aop = self.cap("ao%d" % self.pcs[id(stmt)], stmt.array)
            self.w("bind = _rh(arrays, %s, %s)" % (aop, pr))
        self.w("idx = %s" % self.val(stmt.index))
        self.w("v = %s" % self.val(stmt.value))
        self.emit_acquire(3)
        self.emit_start(self.dep2(stmt.index, stmt.value))
        if static is None:
            self.w("addr = bind.base + idx * bind.elem_size")
            self.w("latency = mem_access(%d, addr, start, stream_id=bind.name)" % self.ctx.core)
            self.w("comp = start + latency + env.atomic_overhead")
            self.w("old = bind.data[idx]")
            self.w("bind.data[idx] = %s" % _BINARY_EXPR[stmt.op].format(a="old", b="v"))
        else:
            d, b, z, s, _ = static
            self.w("addr = %s + idx * %s" % (b, z))
            self.w("latency = mem_access(%d, addr, start, stream_id=%s)" % (self.ctx.core, s))
            self.w("comp = start + latency + env.atomic_overhead")
            self.w("old = %s[idx]" % d)
            self.w("%s[idx] = %s" % (d, _BINARY_EXPR[stmt.op].format(a="old", b="v")))
        if stmt.dst is not None:
            rd, ry = self.reg(stmt.dst)
            self.w("%s = old" % rd)
            self.w("%s = comp" % ry)
        self.w("ld += 1")
        self.w("st += 1")
        self.emit_mshr("comp")
        self.emit_retire("comp")
        return False

    def _emit_do_enq_dynamic(self, queue_var, value_expr, dep_expr, extra_var):
        """StageInterp.do_enq on a runtime-resolved queue (method calls)."""
        self.w("ev = %s" % value_expr)
        self.emit_acquire(1)
        self.emit_start(dep_expr)
        self.w("qt = %s.try_enq(start, ev, %s)" % (queue_var, extra_var))
        self.w("if qt is None:")
        self.push()
        self.w("wait_from = cur")
        self.emit_sync()
        self.w("while True:")
        self.w("    task.block(('enq', %s.qid))" % queue_var)
        self.w("    %s.waiting_producers.append(task)" % queue_var)
        self.w("    yield BLOCKED")
        self.w(
            "    qt = %s.try_enq(start if start > cur else cur, ev, %s)"
            % (queue_var, extra_var)
        )
        self.w("    if qt is not None:")
        self.w("        break")
        self.w("if qt > cur:")
        self.w("    qs += qt - wait_from")
        if self.traced:
            self.w("    tracer.stall(TN, 'queue', wait_from, qt)")
        self.w("    cur = qt")
        self.pop()
        self.w("elif qt > start:")
        self.w("    qs += qt - cur")
        if self.traced:
            self.w("    tracer.stall(TN, 'queue', cur, qt)")
        self.w("    cur = qt")
        self.w("qo += 1")
        self.w("sstats.queue_enqs += 1")
        self.emit_retire("(qt if qt > start else start) + 1")

    def _emit_enq_dist(self, stmt):
        self.cap("remote_queue", self.env.remote_queue)
        self.cap("self_interp", None)  # patched post-construction
        self.w("rq, rx = remote_queue(self_interp, %d, %s)" % (stmt.queue, self.val(stmt.replica)))
        self._emit_do_enq_dynamic("rq", self.val(stmt.value), self.rdy(stmt.value), "rx")
        return False

    def _emit_enq_ctrl_dist(self, stmt):
        self.cap("all_replica_queues", self.env.all_replica_queues)
        self.cap("self_interp", None)  # patched post-construction
        ctrl = self.cap("ctrl%d" % self.pcs[id(stmt)], stmt.ctrl)
        self.w("for rq, rx in all_replica_queues(self_interp, %d):" % stmt.queue)
        self.push()
        self._emit_do_enq_dynamic("rq", ctrl, "0.0", "rx")
        self.w("sstats.ctrl_values += 1")
        self.pop()
        return False

    # -- whole-stage assembly ----------------------------------------------

    def compile(self):
        """Emit the full generator-function source; returns (source, captures)."""
        # Body first (at indent 2, inside the top-level synthetic loop):
        # emission discovers registers, queues, and captures as it goes.
        self._loop_stack.append(("syn", None))
        self.emit_body(self.stage.body)
        self._loop_stack.pop()
        # Expand sync markers now that the full queue set is known.
        sync = self.sync_lines()
        body_lines = []
        for line in self.lines:
            text = line.lstrip()
            if text == "#SYNC#":
                pad = line[: len(line) - len(text)]
                body_lines.extend(pad + s for s in sync)
            else:
                body_lines.append(line)
        self.cap("self_interp", None)  # patched with the interp object per run

        head = ["def __batch_stage(C):"]

        def p(text):
            head.append("    " + text)

        for name in sorted(self.captures):
            p("%s = C[%r]" % (name, name))
        p("regs = ctx.regs")
        p("ready = ctx.ready")
        p("ptable = pred.table")
        p("pmask = pred.mask")
        p("hmask = pred.history_mask")
        # Hot structures bound once: the ledger's slot dict is only rebound
        # by IssueLedger.prune, which no machine-run path calls. The ROB and
        # MSHR live as prefilled rings (see emit_retire); ThreadCtx always
        # hands the engine freshly-empty deques, so the rings start at zero.
        p("slots = ledger.slots")
        p("sget = slots.get")
        p("lc = -1")
        p("ln = 0")
        p("l1h = l1m = l2h = l2m = 0")
        p("l1get = l1_sets.get")
        p("l2get = l2_sets.get")
        p("pfget = pf_streams.get")
        p("ring = [0.0] * %d" % self.ROB)
        p("ri = 0")
        p("mring = [0.0] * %d" % self.MSHRS)
        p("mi = 0")
        for line in self.queue_prologue_lines():
            p(line)
        p("cur = ctx.cursor")
        p("rlast = ctx.rob_last")
        p("ph = pred.history")
        for field in MIRROR_COUNTERS + MIRROR_STALLS:
            p("%s = tstats.%s" % (_STAT_LOCALS[field], field))
        p("_sig = 0")
        p("tstats.start_cycle = cur")
        # Registers live as frame locals; scalar parameters were bound into
        # ctx.regs before engine construction, everything else starts unset.
        for name in sorted(self.regmap):
            rd, ry = self.regmap[name]
            p("%s = regs.get(%r)" % (rd, name))
            p("%s = ready.get(%r, 0.0)" % (ry, name))
        p("if False:")
        p("    yield BLOCKED  # makes this a generator even for never-blocking stages")
        # The top-level body runs inside a transparent one-shot loop so a
        # (dangling) signal can skip the remaining statements, exactly like
        # exec_body returning early.
        p("while True:")

        tail = []

        def q(text):
            tail.append("    " + text)

        q("    break")
        q("if _sig:")
        q("    raise _dangle(SN, _sig)")
        # Normal completion: flush mirrors, write registers back, finish.
        for line in sync:
            q(line)
        for name in sorted(self.regmap):
            rd, ry = self.regmap[name]
            q("regs[%r] = %s" % (name, rd))
            q("ready[%r] = %s" % (name, ry))
        q("tstats.end_cycle = cur")
        q("env.on_thread_done(self_interp)")

        source = "\n".join(head + body_lines + tail) + "\n"
        return source, self.captures


def _barrier_of(env):
    return env.barrier


class _CompiledStage:
    """One compiled stage thread; public surface mirrors StageInterp."""

    def __init__(self, stage, ctx, runenv, source, captures):
        self.stage = stage
        self.ctx = ctx
        self.env = runenv
        self.handlers = stage.handlers
        captures = dict(captures)
        captures["self_interp"] = self
        self._captures = captures
        code = _CODE_CACHE.get(source)
        if code is None:
            if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
                _CODE_CACHE.clear()
            code = compile(source, "<batchpath:%s>" % stage.name, "exec")
            _CODE_CACHE[source] = code
        namespace = {
            "BLOCKED": BLOCKED,
            "Ctrl": Ctrl,
            "SimulationError": SimulationError,
        }
        exec(code, namespace)
        self._fn = namespace["__batch_stage"]
        self.source = source  # kept for introspection/debugging

    def run(self):
        return self._fn(self._captures)


def BatchStageInterp(stage, ctx, runenv):
    """Factory: the batch-compiled stage thread, or the fast path when the
    stage's shape is outside the compiler (drop-in for StageInterp)."""
    try:
        compiler = _StageCompiler(stage, ctx, runenv)
        source, captures = compiler.compile()
        return _CompiledStage(stage, ctx, runenv, source, captures)
    except UnsupportedStage:
        return FastStageInterp(stage, ctx, runenv)
