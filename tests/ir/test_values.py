"""Operand conventions and control values."""

from repro.ir import values


def test_is_reg():
    assert values.is_reg("x")
    assert values.is_reg("%t0")
    assert not values.is_reg("@arr")
    assert not values.is_reg(3)


def test_is_array_symbol():
    assert values.is_array_symbol("@arr")
    assert not values.is_array_symbol("arr")


def test_is_const():
    assert values.is_const(3)
    assert values.is_const(2.5)
    assert not values.is_const(True)  # booleans are not IR constants
    assert not values.is_const("x")


def test_array_name():
    assert values.array_name("@edges") == "edges"


def test_array_name_rejects_reg():
    import pytest

    with pytest.raises(ValueError):
        values.array_name("edges")


def test_ctrl_equality_and_hash():
    a, b = values.Ctrl("NEXT"), values.Ctrl("NEXT")
    assert a == b and hash(a) == hash(b)
    assert values.Ctrl("NEXT") != values.Ctrl("DONE")


def test_is_control():
    assert values.is_control(values.Ctrl("DONE"))
    assert not values.is_control(5)
    assert not values.is_control("DONE")


def test_wellknown_names():
    assert values.Ctrl.NEXT == "NEXT"
    assert values.Ctrl.DONE == "DONE"
