"""Regenerates paper Fig. 12: Taco benchmark speedups.

Expected shape: Phloem parallelizes SpMV/Residual/MTMul (~1.5x gmean in
the paper) while data parallelism barely helps them; SDDMM inverts — its
regular dense inner loop favors the data-parallel version.
"""

from repro.bench.experiments import fig12_taco


def test_fig12(once):
    result = once(fig12_taco)
    print(result["text"])
    table = result["speedups"]
    for name in ("spmv", "residual", "mtmul"):
        assert table[name]["phloem-static"] > 1.2, name
        assert table[name]["phloem-static"] > table[name]["data-parallel"], name
    # SDDMM: data-parallel wins (paper Sec. VII, Taco results).
    assert table["sddmm"]["data-parallel"] > table["sddmm"]["phloem-static"]
