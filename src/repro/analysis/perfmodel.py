"""Static whole-pipeline performance model (the PHL4xx advisory family).

Predicts, without simulating, where a compiled pipeline's steady-state
bottleneck sits and how its queues will behave. The model walks each
stage's IR, weights every statement by how often it executes relative to
one *source unit* of work (the trip-weight heuristic of
:mod:`repro.analysis.loops`, propagated along the queue topology so a
consumer's frequency is driven by its producers' token rates), and prices
each statement with per-kind service costs mirroring the Pipette timing
model (:mod:`repro.pipette.interp`): indirect loads pay a miss-like
latency, streaming loads are nearly free behind the prefetcher, queue ops
cost an issue slot plus transfer latency, and so on.

Solving the resulting per-stage work totals gives:

* the predicted bottleneck stage (the paper's "serial stage limits
  pipeline throughput" argument, Sec. VII) and a relative throughput
  estimate (``1 / bottleneck work``);
* per-edge queue pressure — whether an edge is expected to *full-stall*
  its producer (producer outpaces consumer) or *empty-stall* its consumer
  — plus burst-aware capacity advisories;
* the aggregate issue-bandwidth demand the co-resident stage threads put
  on one core's shared :class:`~repro.pipette.sched.IssueLedger`.

Everything here is **advisory**: the analyzer never changes compilation
outputs, cache keys, or simulated results. Findings surface as the
PHL401-PHL405 diagnostics (all NOTE/WARNING), through ``repro lint
--perf``, and as the static score the autotuner's ``prune_static`` mode
uses to drop dominated candidates before simulation.

Calibration contract (DESIGN.md section 8): the per-kind costs below were
calibrated once against measured ``SimStats`` busy times on the shipped
bench/dp/manual/taco kernels and are pinned by the conformance tests in
``tests/analysis/test_perfmodel.py``; the prediction is considered correct
when the predicted stage's measured busy time is within tolerance of the
busiest stage's.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Optional

from ..diag import NOTE, WARNING, DiagnosticSet
from ..ir.stmts import walk, walk_with_depth
from .access import INDIRECT, OTHER, SEQUENTIAL, _depends_on_load, classify_loads
from .defs import DefUse
from .loops import estimated_trip_weight
from .sanitize import _first_span, _stage_label, resolve_stage_producer

#: Extra latency of ALU ops beyond one issue slot (mirrors
#: ``MachineConfig.op_latency``: mul 3, div/mod 12, default 1).
OP_COST = {"mul": 3.0, "div": 12.0, "mod": 12.0}
DEFAULT_OP_COST = 1.0

#: Per-load service cost by access kind. Streaming loads ride the
#: prefetcher; indirect loads pay an amortized miss (bounded by MSHR-level
#: memory parallelism, hence far below the raw DRAM latency); ``other``
#: (queue-fed/opaque) indices land in between.
LOAD_COST = {SEQUENTIAL: 2.0, OTHER: 6.0, INDIRECT: 12.0}

#: Extra cost per additional chained-load level feeding an address.
INDIRECTION_COST = 4.0

#: Trip-weight base: estimated iterations of a loop whose bounds are
#: unknown (shared with the decoupling cost model).
TRIP_BASE = 8.0

#: Token expansion of a SCAN reference accelerator: it consumes *two*
#: input tokens (start, end) per scan and emits an estimated TRIP_BASE
#: elements, so output rate = input rate * TRIP_BASE / 2.
SCAN_OUT_PER_IN = TRIP_BASE / 2.0

QUEUE_OP_COST = 2.0  # one issue slot + amortized transfer latency
STORE_COST = 2.0
PREFETCH_COST = 1.0
ATOMIC_COST = 20.0  # 3 slots + atomic_overhead(15) + tag access
FOR_HEADER_COST = 3.0  # per-iteration loop bookkeeping (3 uops)
LOOP_HEADER_COST = 1.0
BRANCH_COST = 1.0
SHARED_ACCESS_COST = 1.0
DEFAULT_CALL_COST = 10.0

#: Relative work margin below which two stages count as balanced.
PRESSURE_MARGIN = 0.10

#: PHL403 fires when capacity exceeds this multiple of the burst estimate.
OVERSIZE_FACTOR = 8.0

#: Validation tolerance: the predicted bottleneck must have measured busy
#: time within this fraction of the busiest stage's (ties between
#: symmetric stages — data-parallel workers — are expected).
VALIDATE_TOL = 0.15

_THREAD_RE = re.compile(r"^r(\d+)\.s(\d+)\.")


class StageEstimate:
    """Predicted steady-state profile of one stage."""

    __slots__ = ("index", "name", "drive_rate", "work", "uops", "share", "bottleneck")

    def __init__(self, index: int, name: str, drive_rate: float, work: float, uops: float) -> None:
        self.index = index
        self.name = name
        #: Executions of the stage's reference (shallowest dequeue) level
        #: per source unit of work.
        self.drive_rate = drive_rate
        #: Predicted busy cycles per source unit.
        self.work = work
        #: Predicted issue slots consumed per source unit.
        self.uops = uops
        self.share = 0.0
        self.bottleneck = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "drive_rate": self.drive_rate,
            "work": self.work,
            "uops": self.uops,
            "share": self.share,
            "bottleneck": self.bottleneck,
        }

    def __repr__(self) -> str:
        return "StageEstimate(s%d %s: work %.1f, share %.0f%%%s)" % (
            self.index,
            self.name,
            self.work,
            100.0 * self.share,
            ", bottleneck" if self.bottleneck else "",
        )


class EdgeEstimate:
    """Predicted pressure on one stage-consumed queue."""

    __slots__ = (
        "qid",
        "label",
        "producer_index",
        "consumer_index",
        "token_rate",
        "pressure",
        "burst",
        "capacity",
    )

    def __init__(
        self,
        qid: int,
        label: str,
        producer_index: int,
        consumer_index: int,
        token_rate: float,
        pressure: str,
        burst: float,
        capacity: int,
    ) -> None:
        self.qid = qid
        self.label = label
        self.producer_index = producer_index
        self.consumer_index = consumer_index
        self.token_rate = token_rate
        #: "full" (producer outpaces consumer: expect full_blocks),
        #: "empty" (consumer outpaces producer: expect empty_blocks), or
        #: "balanced".
        self.pressure = pressure
        self.burst = burst
        self.capacity = capacity

    def as_dict(self) -> dict[str, Any]:
        return {
            "qid": self.qid,
            "label": self.label,
            "producer": self.producer_index,
            "consumer": self.consumer_index,
            "token_rate": self.token_rate,
            "pressure": self.pressure,
            "burst": self.burst,
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:
        return "EdgeEstimate(q%d s%d->s%d: %s)" % (
            self.qid,
            self.producer_index,
            self.consumer_index,
            self.pressure,
        )


class PerfReport:
    """The model's output: per-stage estimates plus the topology solve."""

    def __init__(
        self,
        pipeline: Any,
        stages: list[StageEstimate],
        edges: list[EdgeEstimate],
        issue_width: float,
    ) -> None:
        self.pipeline = pipeline
        self.pipeline_name = str(pipeline.name)
        self.stages = stages
        self.edges = edges
        self.issue_width = issue_width
        total = sum(s.work for s in stages) or 1.0
        peak = max((s.work for s in stages), default=0.0)
        for s in stages:
            s.share = s.work / total
            s.bottleneck = s.index == self.bottleneck_index
        #: Cycles per source unit at steady state = the slowest stage.
        self.bottleneck_work = peak
        #: Source units retired per cycle, relative scale only.
        self.throughput = (1.0 / peak) if peak > 0 else 0.0
        #: Aggregate issue slots demanded per cycle on a shared core when
        #: every stage runs at the bottleneck's pace.
        self.issue_demand = (sum(s.uops for s in stages) / peak) if peak > 0 else 0.0

    @property
    def bottleneck_index(self) -> Optional[int]:
        if not self.stages:
            return None
        best = max(self.stages, key=lambda s: (s.work, -s.index))
        return best.index

    def stage(self, index: int) -> Optional[StageEstimate]:
        for s in self.stages:
            if s.index == index:
                return s
        return None

    def static_score(self) -> float:
        """The autotuner's pruning score: predicted throughput.

        Across candidate pipelines of the *same* function, the serial work
        is a constant, so predicted speedup over serial ranks identically
        to predicted throughput ``1 / bottleneck work`` — a candidate wins
        by shrinking its slowest stage (splitting well, offloading loads
        to RAs), and loses by concentrating work or adding queue overhead
        to the critical stage. Only the ranking is meaningful.
        """
        return self.throughput

    def as_dict(self) -> dict[str, Any]:
        return {
            "pipeline": self.pipeline_name,
            "stages": [s.as_dict() for s in self.stages],
            "edges": [e.as_dict() for e in self.edges],
            "bottleneck": self.bottleneck_index,
            "throughput": self.throughput,
            "issue_demand": self.issue_demand,
            "static_score": self.static_score(),
        }

    def render(self) -> str:
        lines = ["perf model: %s" % self.pipeline_name]
        lines.append("%-5s %-20s %10s %8s %7s" % ("stage", "name", "work", "share", ""))
        for s in self.stages:
            lines.append(
                "s%-4d %-20s %10.1f %7.0f%% %7s"
                % (s.index, s.name, s.work, 100.0 * s.share, "<-- bn" if s.bottleneck else "")
            )
        for e in self.edges:
            lines.append(
                "q%-4d s%d->s%d %-16s pressure=%s" % (e.qid, e.producer_index, e.consumer_index, e.label or "", e.pressure)
            )
        lines.append(
            "throughput %.4f /cycle (rel), issue demand %.1f/%g"
            % (self.throughput, self.issue_demand, self.issue_width)
        )
        return "\n".join(lines)

    # -- advisories ----------------------------------------------------------

    def advisories(self, diags: Optional[DiagnosticSet] = None) -> DiagnosticSet:
        """The PHL401-PHL405 findings this prediction supports."""
        if diags is None:
            diags = DiagnosticSet()
        self._advise_bottleneck(diags)
        self._advise_queues(diags)
        self._advise_distribution(diags)
        self._advise_issue(diags)
        return diags

    def _advise_bottleneck(self, diags: DiagnosticSet) -> None:
        if len(self.stages) < 2:
            return
        index = self.bottleneck_index
        est = self.stage(index) if index is not None else None
        if est is None:
            return
        stage = _stage_of(self.pipeline, est.index)
        diags.add(
            "PHL401",
            "predicted bottleneck: %.0f%% of pipeline work is serialized here "
            "(predicted relative throughput %.4f/cycle)" % (100.0 * est.share, self.throughput),
            span=_first_span(walk(stage.body)) if stage is not None else None,
            where=_stage_label(stage) if stage is not None else ("stage %d" % est.index),
            severity=NOTE,
        )

    def _advise_queues(self, diags: DiagnosticSet) -> None:
        for e in self.edges:
            spec = self.pipeline.queues.get(e.qid)
            if spec is None:
                continue
            where = "queue %d (%s)" % (e.qid, e.label) if e.label else "queue %d" % e.qid
            if e.pressure == "full" and e.capacity < e.burst:
                diags.add(
                    "PHL402",
                    "producer stage %d outpaces consumer stage %d and enqueues "
                    "bursts of ~%.0f tokens into capacity %d: expect full-queue stalls"
                    % (e.producer_index, e.consumer_index, e.burst, e.capacity),
                    where=where,
                    severity=WARNING,
                )
            elif e.pressure == "empty" and e.capacity >= OVERSIZE_FACTOR * e.burst:
                diags.add(
                    "PHL403",
                    "consumer stage %d outpaces producer stage %d (bursts of "
                    "~%.0f tokens): capacity %d is mostly unused buffer"
                    % (e.consumer_index, e.producer_index, e.burst, e.capacity),
                    where=where,
                    severity=NOTE,
                )

    def _advise_distribution(self, diags: DiagnosticSet) -> None:
        for stage in self.pipeline.stages:
            du: Optional[DefUse] = None
            for stmt in walk(stage.body):
                if stmt.kind not in ("enq_dist", "enq_ctrl_dist"):
                    continue
                replica = getattr(stmt, "replica", None)
                if type(replica) is not str:
                    continue
                if du is None:
                    du = DefUse(stage.body)
                if _depends_on_load(replica, du) > 0:
                    diags.add(
                        "PHL404",
                        "distribution key %r is data-dependent: replica load "
                        "follows the key distribution and may be imbalanced" % replica,
                        span=stmt.span,
                        where=_stage_label(stage),
                        severity=WARNING,
                    )
                    break

    def _advise_issue(self, diags: DiagnosticSet) -> None:
        if len(self.stages) < 2:
            return
        if self.issue_demand > self.issue_width:
            diags.add(
                "PHL405",
                "co-resident stage threads demand %.1f issue slots/cycle of a "
                "%g-wide core: stages will starve for issue credits"
                % (self.issue_demand, self.issue_width),
                where="pipeline %s" % self.pipeline_name,
                severity=WARNING,
            )


# ---------------------------------------------------------------------------
# Per-statement service costs


def _stmt_cost(stmt: Any, access_kind: dict[int, Any], intrinsics: dict[str, Any]) -> float:
    """Service cost in cycles of one execution of ``stmt`` (headers count
    per iteration; block contents are priced separately)."""
    kind = stmt.kind
    if kind == "assign":
        return OP_COST.get(stmt.op, DEFAULT_OP_COST)
    if kind == "load":
        info = access_kind.get(id(stmt))
        if info is None:
            return LOAD_COST[OTHER]
        base = LOAD_COST[info.kind]
        if info.kind == INDIRECT and info.indirection > 1:
            base += INDIRECTION_COST * (info.indirection - 1)
        return base
    if kind == "store":
        return STORE_COST
    if kind == "prefetch":
        return PREFETCH_COST
    if kind in ("enq", "enq_ctrl", "deq", "peek", "enq_dist", "enq_ctrl_dist"):
        return QUEUE_OP_COST
    if kind == "is_control":
        return DEFAULT_OP_COST
    if kind == "for":
        return FOR_HEADER_COST
    if kind == "loop":
        return LOOP_HEADER_COST
    if kind == "if":
        return BRANCH_COST
    if kind in ("read_shared", "write_shared"):
        return SHARED_ACCESS_COST
    if kind == "call":
        intrinsic = intrinsics.get(stmt.func)
        cost = getattr(intrinsic, "cost", None)
        return float(cost) if cost else DEFAULT_CALL_COST
    if kind == "atomic_rmw":
        return ATOMIC_COST
    return 0.0  # barrier, break, continue, comment


def _issue_slots(stmt: Any, intrinsics: dict[str, Any]) -> float:
    """Issue slots one execution of ``stmt`` claims from the IssueLedger."""
    kind = stmt.kind
    if kind == "for":
        return 3.0
    if kind == "call":
        intrinsic = intrinsics.get(stmt.func)
        cost = getattr(intrinsic, "cost", None)
        return float(cost) if cost else DEFAULT_CALL_COST
    if kind == "atomic_rmw":
        return 3.0
    if kind in ("barrier", "break", "continue", "comment"):
        return 0.0
    return 1.0


# ---------------------------------------------------------------------------
# Topology solve


def _stage_of(pipeline: Any, index: int) -> Any:
    for stage in pipeline.stages:
        if stage.index == index:
            return stage
    return None


def _consumed_specs(pipeline: Any, stage_index: int) -> list[Any]:
    return [
        spec
        for qid, spec in sorted(pipeline.queues.items())
        if spec.consumer == ("stage", stage_index)
    ]


def _topo_order(pipeline: Any) -> list[Any]:
    """Stages ordered producers-first (Kahn); cycle members fall back to
    index order, matching the PHL201 warning's tolerance for feedback."""
    indices = [s.index for s in pipeline.stages]
    preds: dict[int, set[int]] = {i: set() for i in indices}
    for qid, spec in sorted(pipeline.queues.items()):
        ckind, cidx = spec.consumer
        if ckind != "stage" or cidx not in preds:
            continue
        origin, _origin_qid, _ctrl, _exact = resolve_stage_producer(pipeline, qid)
        if origin is not None and origin.index != cidx:
            preds[cidx].add(origin.index)
    order: list[int] = []
    ready = sorted(i for i, p in preds.items() if not p)
    placed: set[int] = set()
    while ready:
        i = ready.pop(0)
        order.append(i)
        placed.add(i)
        newly = sorted(
            j
            for j, p in preds.items()
            if j not in placed and j not in ready and not (p - placed)
        )
        ready.extend(newly)
    order.extend(i for i in indices if i not in placed)
    return [_stage_of(pipeline, i) for i in order]


def _scan_multiplier(pipeline: Any, qid: int) -> tuple[Optional[int], float]:
    """Walk ``qid`` back to its producing stage; returns (origin qid at the
    stage boundary, token-rate multiplier across the RA chain)."""
    mult = 1.0
    seen: set[int] = set()
    while True:
        spec = pipeline.queues.get(qid)
        if spec is None or qid in seen:
            return None, mult
        seen.add(qid)
        kind, idx = spec.producer
        if kind == "stage":
            return qid, mult
        if kind == "ra":
            ra = next((r for r in pipeline.ras if r.raid == idx), None)
            if ra is None:
                return None, mult
            if ra.mode == "scan":
                mult *= SCAN_OUT_PER_IN
            qid = ra.in_queue
            continue
        return None, mult  # extern producer


def analyze_pipeline(pipeline: Any, config: Any = None) -> PerfReport:
    """Run the static performance model over a compiled pipeline.

    ``config`` only supplies machine parameters the advisories compare
    against (``issue_width``, currently); the per-statement costs are the
    calibrated constants above. Pure analysis: no simulation, no mutation.
    """
    issue_width = float(getattr(config, "issue_width", 6))
    intrinsics = dict(getattr(pipeline, "intrinsics", {}) or {})

    queue_rate: dict[int, float] = {}  # stage-produced qid -> tokens/source-unit
    enq_depth: dict[int, int] = {}  # stage-produced qid -> max producing loop depth
    estimates: list[StageEstimate] = []
    drive_depth: dict[int, int] = {}

    def rate_of(qid: int) -> tuple[Optional[float], float]:
        origin_qid, mult = _scan_multiplier(pipeline, qid)
        if origin_qid is None or origin_qid not in queue_rate:
            return None, mult
        return queue_rate[origin_qid] * mult, mult

    for stage in _topo_order(pipeline):
        if stage is None:
            continue
        access = {id(info.stmt): info for info in classify_loads(stage.body)}
        depths = {id(stmt): depth for stmt, depth in walk_with_depth(stage.body)}

        # Each consumed queue *drives* the loop level its dequeue sits at:
        # statements at that level execute once per arriving token. Deeper
        # undriven loops multiply by the trip-weight base; levels above the
        # first driven one run correspondingly less often. A stage with no
        # resolvable producers (a source, or a feedback cycle) falls back
        # to treating its loop nest as real.
        level_rate: dict[int, float] = {}
        for spec in _consumed_specs(pipeline, stage.index):
            q_deq_depths = [
                depths[id(stmt)]
                for stmt in walk(stage.body)
                if stmt.kind in ("deq", "peek") and stmt.queue == spec.qid
            ]
            if not q_deq_depths:
                continue
            level = min(q_deq_depths)
            rate, _mult = rate_of(spec.qid)
            if rate is None:
                rate = estimated_trip_weight(level, base=int(TRIP_BASE))
            level_rate[level] = max(level_rate.get(level, 0.0), rate)
        driven = sorted(level_rate)

        def weight_at(depth: int) -> float:
            if not driven:
                return estimated_trip_weight(depth, base=int(TRIP_BASE))
            below = [d for d in driven if d <= depth]
            if below:
                dd = max(below)
                return max(1.0, level_rate[dd] * TRIP_BASE ** float(depth - dd))
            d0 = driven[0]
            return max(1.0, level_rate[d0] / TRIP_BASE ** float(d0 - depth))

        drive_depth[stage.index] = driven[0] if driven else 0
        drive = level_rate[driven[0]] if driven else 1.0

        work = 0.0
        uops = 0.0
        for stmt, depth in walk_with_depth(stage.body):
            weight = weight_at(depth)
            work += weight * _stmt_cost(stmt, access, intrinsics)
            uops += weight * _issue_slots(stmt, intrinsics)
            if stmt.kind in ("enq", "enq_dist") and stmt.value != "%ctrl":
                queue_rate[stmt.queue] = queue_rate.get(stmt.queue, 0.0) + weight
                enq_depth[stmt.queue] = max(enq_depth.get(stmt.queue, 0), depth)
        for handler in getattr(stage, "handlers", {}).values():
            # Handlers run once per delivered control value: rare relative
            # to the data stream, so weight them at the phase level (1.0).
            for stmt in walk(handler):
                work += _stmt_cost(stmt, access, intrinsics)
                uops += _issue_slots(stmt, intrinsics)
        estimates.append(StageEstimate(stage.index, stage.name, drive, work, uops))

    estimates.sort(key=lambda s: s.index)
    work_of = {s.index: s.work for s in estimates}

    edges: list[EdgeEstimate] = []
    for qid, spec in sorted(pipeline.queues.items()):
        ckind, cidx = spec.consumer
        if ckind != "stage" or cidx not in work_of:
            continue
        origin, origin_qid, _ctrl, exact = resolve_stage_producer(pipeline, qid)
        if origin is None or origin.index not in work_of:
            continue
        rate, mult = rate_of(qid)
        wp, wc = work_of[origin.index], work_of[cidx]
        if wp < wc * (1.0 - PRESSURE_MARGIN):
            pressure = "full"
        elif wc < wp * (1.0 - PRESSURE_MARGIN):
            pressure = "empty"
        else:
            pressure = "balanced"
        # Burst estimate: tokens the producer emits back-to-back before its
        # enclosing loop level yields — one trip of the innermost enqueueing
        # loop, expanded by any SCAN RA on the way down.
        depth = enq_depth.get(origin_qid, 0)
        burst = (TRIP_BASE if depth > 0 else 1.0) * mult
        edges.append(
            EdgeEstimate(
                qid,
                spec.label or "",
                origin.index,
                cidx,
                rate if rate is not None else 0.0,
                pressure,
                burst,
                int(spec.capacity),
            )
        )

    return PerfReport(pipeline, estimates, edges, issue_width)


def perf_advisories(
    pipeline: Any, config: Any = None, diags: Optional[DiagnosticSet] = None
) -> DiagnosticSet:
    """One-call wrapper: model the pipeline, return its PHL4xx findings."""
    return analyze_pipeline(pipeline, config=config).advisories(diags)


def static_score(pipeline: Any) -> float:
    """The autotuner's pruning score (higher predicts faster)."""
    return analyze_pipeline(pipeline).static_score()


# ---------------------------------------------------------------------------
# Validation against measured SimStats


def measured_stage_busy(stats: Any) -> dict[int, float]:
    """Measured busy cycles per stage index, from a run's ``SimStats``.

    Busy = issue + backend + branch: time the stage thread was doing or
    waiting on its *own* work, excluding queue stalls (waiting on peers)
    and barriers (phase sync) — the quantity the static model predicts.
    Replicas aggregate by stage index.
    """
    busy: dict[int, float] = {}
    for thread in getattr(stats, "threads", []):
        match = _THREAD_RE.match(getattr(thread, "name", "") or "")
        if match is None:
            continue
        parts = thread.breakdown()
        index = int(match.group(2))
        busy[index] = busy.get(index, 0.0) + parts["issue"] + parts["backend"] + parts["branch"]
    return busy


def validate_prediction(
    pipeline: Any, stats: Any, tol: float = VALIDATE_TOL
) -> dict[str, Any]:
    """Cross-check the model's bottleneck against a measured run.

    The prediction *holds* when either side agrees up to ``tol``:

    * the predicted stage's measured busy time is within ``tol`` of the
      busiest stage's, or
    * the measured busiest stage is in the *predicted-peak set* — stages
      whose predicted work is within ``tol`` of the predicted maximum.
      (Symmetric stages — data-parallel workers — tie statically; which
      one measures busiest is decided by data skew the static model
      cannot see.)

    Returns a dict with the verdict and both sides' evidence.
    """
    report = analyze_pipeline(pipeline, config=getattr(stats, "config", None))
    busy = measured_stage_busy(stats)
    predicted = report.bottleneck_index
    work = {s.index: s.work for s in report.stages}
    peak_work = max(work.values()) if work else 0.0
    predicted_set = sorted(
        i for i, w in work.items() if w >= (1.0 - tol) * peak_work
    )
    measured: Optional[int] = None
    if busy:
        peak = max(busy.values())
        measured = min(i for i, b in busy.items() if b == peak)
    ok = False
    if predicted is not None and busy and measured is not None:
        peak = max(busy.values())
        ok = (
            busy.get(predicted, 0.0) >= (1.0 - tol) * peak
            or measured in predicted_set
        )
    return {
        "pipeline": report.pipeline_name,
        "predicted": predicted,
        "predicted_set": predicted_set,
        "measured": measured,
        "ok": ok,
        "tolerance": tol,
        "busy": busy,
        "work": work,
    }


def validate_on_run(
    pipeline: Any, result: Any, tol: float = VALIDATE_TOL
) -> dict[str, Any]:
    """Convenience: validate against a :class:`RunResult` (has ``.stats``)."""
    return validate_prediction(pipeline, result.stats, tol=tol)


__all__ = [
    "EdgeEstimate",
    "PerfReport",
    "StageEstimate",
    "analyze_pipeline",
    "measured_stage_busy",
    "perf_advisories",
    "static_score",
    "validate_on_run",
    "validate_prediction",
]
