"""The static performance model (PHL4xx advisories + autotune pruning).

Three halves mirror the model's contract (DESIGN.md Sec. 8):

* shape and advisory tests on compiled pipelines — report structure,
  stable PHL4xx codes, and the advisory-only guarantee (the analyzer
  never changes what the compiler produces or how it is cached);
* the pinned conformance sweep: on every shipped kernel — compiled,
  manual, data-parallel, and TACO-lowered — the predicted bottleneck
  stage must match the simulator's busiest stage (tie-aware, see
  ``validate_prediction``). These pins are the model's calibration
  contract: a cost-constant change that breaks one is a regression;
* autotune pruning: ``search_pipelines(prune_static=True)`` must pick
  the exact winner the exhaustive search picks on every shipped
  benchmark while simulating >= 3x fewer candidates (where more than
  one candidate compiles), asserted from SearchRecorder logs.
"""

import pytest

from repro.analysis.perfmodel import (
    PerfReport,
    StageEstimate,
    analyze_pipeline,
    measured_stage_busy,
    perf_advisories,
    static_score,
    validate_prediction,
)
from repro.core.autotune import gmean, search_pipelines
from repro.core.compiler import CompileOptions, compile_c, compile_function
from repro.diag import CODES, ERROR
from repro.ir import format_pipeline
from repro.obs.search import SearchRecorder
from repro.pipette.config import SCALED_1CORE
from repro.runtime.executor import run_pipeline, run_serial
from repro.taco import (
    ALPHA,
    BETA,
    dense_input,
    mtmul_kernel,
    residual_kernel,
    sddmm_kernel,
    spmv_kernel,
)
from repro.workloads import ALL_BENCHMARKS
from repro.workloads.graphs import uniform_random
from repro.workloads.matrices import random_matrix

PERF_CODES = ("PHL401", "PHL402", "PHL403", "PHL404", "PHL405")


@pytest.fixture(scope="module")
def graph():
    return uniform_random(400, 6, seed=7)


@pytest.fixture(scope="module")
def matrix():
    return random_matrix(80, 5, seed=11)


def _bench_data(name, graph, matrix):
    return matrix if name in ("spmm", "spmv") else graph


def _compiled(name):
    return compile_function(ALL_BENCHMARKS[name].function(), options=CompileOptions())


# ---------------------------------------------------------------------------
# Report shape


def test_report_shape_bfs():
    pipeline = _compiled("bfs")
    report = analyze_pipeline(pipeline)
    assert report.pipeline_name == pipeline.name
    assert len(report.stages) == len(pipeline.stages)
    assert all(s.work > 0 for s in report.stages)
    assert all(s.uops > 0 for s in report.stages)
    peak = max(s.work for s in report.stages)
    assert report.bottleneck_work == peak
    assert report.throughput == pytest.approx(1.0 / peak)
    assert sum(s.share for s in report.stages) == pytest.approx(1.0)
    flagged = [s for s in report.stages if s.bottleneck]
    assert [s.index for s in flagged] == [report.bottleneck_index]
    assert report.stage(report.bottleneck_index) is flagged[0]
    assert report.stage(999) is None


def test_report_edges_cover_stage_queues():
    pipeline = _compiled("bfs")
    report = analyze_pipeline(pipeline)
    assert report.edges, "bfs has cross-stage queues"
    for edge in report.edges:
        assert edge.pressure in ("full", "empty", "balanced")
        assert edge.qid in pipeline.queues
        assert edge.capacity == pipeline.queues[edge.qid].capacity
        assert edge.burst >= 1.0


def test_report_as_dict_and_render():
    report = analyze_pipeline(_compiled("cc"))
    d = report.as_dict()
    assert set(d) == {
        "pipeline", "stages", "edges", "bottleneck", "throughput",
        "issue_demand", "static_score",
    }
    assert d["bottleneck"] == report.bottleneck_index
    assert d["stages"][0]["index"] == report.stages[0].index
    text = report.render()
    assert "perf model:" in text
    assert "<-- bn" in text


def test_static_score_is_throughput():
    pipeline = _compiled("prd")
    report = analyze_pipeline(pipeline)
    assert report.static_score() == report.throughput
    assert static_score(pipeline) == pytest.approx(report.static_score())


def test_bottleneck_tiebreak_prefers_earlier_stage():
    pipeline = _compiled("bfs")
    stages = [
        StageEstimate(0, "a", 1.0, 50.0, 10.0),
        StageEstimate(1, "b", 1.0, 50.0, 10.0),
        StageEstimate(2, "c", 1.0, 10.0, 2.0),
    ]
    report = PerfReport(pipeline, stages, [], issue_width=6.0)
    assert report.bottleneck_index == 0


def test_single_stage_report_has_no_bottleneck_advisory():
    pipeline = compile_c(
        ALL_BENCHMARKS["bfs"].SOURCE, options=CompileOptions(num_stages=1)
    )
    report = analyze_pipeline(pipeline)
    codes = [d.code for d in report.advisories()]
    assert "PHL401" not in codes
    assert "PHL405" not in codes


# ---------------------------------------------------------------------------
# Advisories


def test_perf_codes_are_never_errors():
    for code in PERF_CODES:
        severity, _ = CODES[code]
        assert severity != ERROR


def test_bfs_advisories_pinned():
    diags = perf_advisories(_compiled("bfs"))
    codes = set(d.code for d in diags)
    # The compiled 4-stage BFS legitimately bursts ~32 tokens into its
    # default capacity-24 queues (the simulator confirms full_blocks > 0),
    # and its update stage dominates the predicted work.
    assert "PHL401" in codes
    assert "PHL402" in codes
    assert codes <= set(PERF_CODES)
    assert not diags.has_errors


def test_all_shipped_benchmarks_within_advisory_allowlist():
    # The CI perf-lint sweep contract: shipped kernels never earn an
    # ERROR, and any WARNING is one of the expected advisory codes.
    for name, mod in sorted(ALL_BENCHMARKS.items()):
        diags = perf_advisories(
            compile_function(mod.function(), options=CompileOptions())
        )
        assert not diags.errors(), name
        assert set(d.code for d in diags.warnings()) <= {"PHL402", "PHL404"}, name
        assert set(d.code for d in diags) <= set(PERF_CODES), name


def test_phl405_fires_on_issue_starvation():
    pipeline = _compiled("bfs")
    stages = [
        StageEstimate(0, "a", 1.0, 10.0, 40.0),
        StageEstimate(1, "b", 1.0, 10.0, 40.0),
    ]
    report = PerfReport(pipeline, stages, [], issue_width=6.0)
    assert report.issue_demand == pytest.approx(8.0)
    assert "PHL405" in [d.code for d in report.advisories()]


def test_advisories_append_to_existing_set():
    from repro.diag import DiagnosticSet

    diags = DiagnosticSet()
    diags.add("PHL101", "pre-existing")
    out = perf_advisories(_compiled("bfs"), diags=diags)
    assert out is diags
    assert "PHL101" in [d.code for d in diags]
    assert "PHL401" in [d.code for d in diags]


# ---------------------------------------------------------------------------
# Advisory-only guarantee


def test_perf_lints_never_change_the_compiled_pipeline():
    mod = ALL_BENCHMARKS["bfs"]
    plain = compile_function(mod.function(), options=CompileOptions())
    analyzed = compile_function(
        mod.function(), options=CompileOptions(perf_lints=True)
    )
    assert format_pipeline(analyzed) == format_pipeline(plain)


def test_perf_lints_not_in_cache_key():
    assert (
        CompileOptions(perf_lints=True).cache_key()
        == CompileOptions().cache_key()
    )


def test_perf_lints_never_change_simulation(graph):
    mod = ALL_BENCHMARKS["bfs"]
    arrays, scalars = mod.make_env(graph)
    plain = compile_function(mod.function(), options=CompileOptions())
    analyzed = compile_function(
        mod.function(), options=CompileOptions(perf_lints=True)
    )
    r1 = run_pipeline(plain, dict(arrays), dict(scalars), config=SCALED_1CORE)
    r2 = run_pipeline(analyzed, dict(arrays), dict(scalars), config=SCALED_1CORE)
    assert r1.cycles == r2.cycles


# ---------------------------------------------------------------------------
# The pinned conformance sweep: predicted vs. measured bottleneck


def _taco_cases():
    mat = random_matrix(60, 4, seed=21)
    smat = random_matrix(25, 4, seed=22)
    kdim = 6
    return {
        "taco/spmv": (
            spmv_kernel,
            lambda k: k.bind({"A": mat, "x": dense_input(mat.ncols, 1)}),
        ),
        "taco/residual": (
            residual_kernel,
            lambda k: k.bind(
                {"A": mat, "x": dense_input(mat.ncols, 2), "b": dense_input(mat.nrows, 3)}
            ),
        ),
        "taco/mtmul": (
            mtmul_kernel,
            lambda k: k.bind(
                {
                    "A": mat,
                    "x": dense_input(mat.nrows, 4),
                    "z": dense_input(mat.ncols, 5),
                    "alpha": ALPHA,
                    "beta": BETA,
                }
            ),
        ),
        "taco/sddmm": (
            sddmm_kernel,
            lambda k: k.bind(
                {
                    "B": smat,
                    "C": (dense_input(smat.nrows * kdim, 6), kdim),
                    "D": (dense_input(kdim * smat.ncols, 7), smat.ncols),
                }
            ),
        ),
    }


def _assert_prediction_holds(label, pipeline, arrays, scalars):
    result = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
    verdict = validate_prediction(pipeline, result.stats)
    assert verdict["ok"], (
        "%s: predicted stage %s (set %s), measured %s\nbusy=%s\nwork=%s"
        % (
            label,
            verdict["predicted"],
            verdict["predicted_set"],
            verdict["measured"],
            verdict["busy"],
            verdict["work"],
        )
    )
    return verdict


@pytest.mark.parametrize("bench", sorted(ALL_BENCHMARKS))
def test_conformance_compiled(bench, graph, matrix):
    mod = ALL_BENCHMARKS[bench]
    arrays, scalars = mod.make_env(_bench_data(bench, graph, matrix))
    pipeline = compile_function(mod.function(), options=CompileOptions())
    _assert_prediction_holds(bench + "/static", pipeline, dict(arrays), dict(scalars))


@pytest.mark.parametrize("bench", sorted(ALL_BENCHMARKS))
def test_conformance_manual(bench, graph, matrix):
    mod = ALL_BENCHMARKS[bench]
    arrays, scalars = mod.make_env(_bench_data(bench, graph, matrix))
    _assert_prediction_holds(
        bench + "/manual", mod.manual_pipeline(), dict(arrays), dict(scalars)
    )


@pytest.mark.parametrize("bench", sorted(ALL_BENCHMARKS))
def test_conformance_data_parallel(bench, graph, matrix):
    mod = ALL_BENCHMARKS[bench]
    arrays, scalars = mod.make_env_dp(_bench_data(bench, graph, matrix), 4)
    _assert_prediction_holds(bench + "/dp", mod.data_parallel(4), arrays, scalars)


@pytest.mark.parametrize("name", sorted(_taco_cases()))
def test_conformance_taco(name):
    maker, binder = _taco_cases()[name]
    kernel = maker()
    arrays, scalars = binder(kernel)
    pipeline = compile_c(kernel.source, options=CompileOptions(num_stages=4))
    _assert_prediction_holds(name, pipeline, arrays, scalars)


def test_measured_stage_busy_shape(graph):
    mod = ALL_BENCHMARKS["bfs"]
    arrays, scalars = mod.make_env(graph)
    pipeline = compile_function(mod.function(), options=CompileOptions())
    result = run_pipeline(pipeline, dict(arrays), dict(scalars), config=SCALED_1CORE)
    busy = measured_stage_busy(result.stats)
    assert set(busy) == set(range(len(pipeline.stages)))
    assert all(v >= 0 for v in busy.values())
    assert max(busy.values()) > 0


# ---------------------------------------------------------------------------
# Autotune pruning


#: Exhaustive winner per bench at top_k=5 on the pinned tiny inputs, and
#: whether more than one candidate compiles (spmm admits exactly one).
PRUNE_PINS = {
    "bfs": ((1,), True),
    "cc": ((1, 2), True),
    "prd": ((1, 2), True),
    "radii": ((2, 3, 4), True),
    "spmm": ((4,), False),
    "pr": ((3,), False),
    "spmv": ((0, 1, 2), True),
}


def _prune_inputs(name, mod):
    data = (
        random_matrix(60, 4, seed=11)
        if name in ("spmm", "spmv")
        else uniform_random(150, 4, seed=7)
    )
    return mod.make_env(data)


@pytest.mark.parametrize("bench", sorted(PRUNE_PINS))
def test_prune_static_matches_exhaustive(bench):
    mod = ALL_BENCHMARKS[bench]
    arrays, scalars = _prune_inputs(bench, mod)
    function = mod.function()
    base = run_serial(function, dict(arrays), dict(scalars), config=SCALED_1CORE).cycles

    def evaluate(pipeline):
        result = run_pipeline(pipeline, dict(arrays), dict(scalars), config=SCALED_1CORE)
        return gmean([base / result.cycles])

    rec_full = SearchRecorder()
    best_full, _ = search_pipelines(function, evaluate, top_k=5, recorder=rec_full)
    rec_pruned = SearchRecorder()
    best_pruned, _ = search_pipelines(
        function, evaluate, top_k=5, recorder=rec_pruned, prune_static=True
    )

    expected, prunable = PRUNE_PINS[bench]
    assert best_full is not None and best_full.indices == expected
    assert best_pruned is not None and best_pruned.indices == expected

    scored_full = [c for c in rec_full.candidates if c["status"] == "scored"]
    scored_pruned = [c for c in rec_pruned.candidates if c["status"] == "scored"]
    dropped = [c for c in rec_pruned.candidates if c["status"] == "pruned"]
    assert not any(c["status"] == "pruned" for c in rec_full.candidates)
    if prunable:
        # The acceptance bar: >= 3x fewer training simulations.
        assert 3 * len(scored_pruned) <= len(scored_full)
        assert dropped
        for entry in dropped:
            assert entry["speedup"] is None
            assert entry["static_score"] > 0
            assert "static score" in entry["reason"]
    else:
        assert len(scored_pruned) == len(scored_full) == 1
        assert not dropped


def test_prune_static_tc_partial():
    """TC sits between the PRUNE_PINS categories: three candidates compile
    (too few for the 3x pruning bar, too many for the single-candidate
    branch). Pruning still simulates strictly fewer candidates and picks
    the exhaustive winner."""
    mod = ALL_BENCHMARKS["tc"]
    arrays, scalars = _prune_inputs("tc", mod)
    function = mod.function()
    base = run_serial(function, dict(arrays), dict(scalars), config=SCALED_1CORE).cycles

    def evaluate(pipeline):
        result = run_pipeline(pipeline, dict(arrays), dict(scalars), config=SCALED_1CORE)
        return gmean([base / result.cycles])

    rec_full = SearchRecorder()
    best_full, _ = search_pipelines(function, evaluate, top_k=5, recorder=rec_full)
    rec_pruned = SearchRecorder()
    best_pruned, _ = search_pipelines(
        function, evaluate, top_k=5, recorder=rec_pruned, prune_static=True
    )
    assert best_full is not None and best_full.indices == (3,)
    assert best_pruned is not None and best_pruned.indices == (3,)
    scored_full = [c for c in rec_full.candidates if c["status"] == "scored"]
    scored_pruned = [c for c in rec_pruned.candidates if c["status"] == "scored"]
    assert len(scored_pruned) < len(scored_full)


@pytest.mark.parametrize("bench", ["sssp", "bc"])
def test_search_finds_no_split_for_bucketed_kernels(bench):
    """Documented exceptions to the PRUNE_PINS sweep: SSSP's delta buckets
    and BC's frontier queue make every loop bound value-dependent, so no
    multi-stage split compiles — the search returns no winner either way
    (the paper's SpMM negative result, reproduced on the GARDENIA side).
    The kernels still run as 1-stage fallbacks (see the conformance
    sweep above); only the *search space* is empty."""
    mod = ALL_BENCHMARKS[bench]
    arrays, scalars = _prune_inputs(bench, mod)
    function = mod.function()
    base = run_serial(function, dict(arrays), dict(scalars), config=SCALED_1CORE).cycles

    def evaluate(pipeline):
        result = run_pipeline(pipeline, dict(arrays), dict(scalars), config=SCALED_1CORE)
        return gmean([base / result.cycles])

    for prune in (False, True):
        rec = SearchRecorder()
        best, _ = search_pipelines(
            function, evaluate, top_k=5, recorder=rec, prune_static=prune
        )
        assert best is None, bench
        assert not [c for c in rec.candidates if c["status"] == "scored"]


def test_prune_keep_count_bounds():
    from repro.core.autotune import _prune_keep_count

    assert _prune_keep_count(14, True) == 4
    assert _prune_keep_count(25, True) == 7
    assert _prune_keep_count(1, True) == 1
    assert _prune_keep_count(10, 0.5) == 5
    assert _prune_keep_count(10, 3) == 3
    assert _prune_keep_count(10, 99) == 10
    assert _prune_keep_count(10, 0.0) == 1
