"""Mini-C frontend: lexer, parser, pragmas, and lowering to Phloem IR."""

from .inline import inline_unit
from .lexer import Token, tokenize
from .lowering import BUILTIN_CONSTANTS, compile_source, lower_function
from .parser import parse
from .pragmas import DECOUPLE_MARK, DISTRIBUTE_MARK, collect_function_pragmas, parse_pragma

__all__ = [
    "inline_unit",
    "Token",
    "tokenize",
    "BUILTIN_CONSTANTS",
    "compile_source",
    "lower_function",
    "parse",
    "DECOUPLE_MARK",
    "DISTRIBUTE_MARK",
    "collect_function_pragmas",
    "parse_pragma",
]
