"""The decoupling transform: split one stage body at a decoupling point.

Given a body and a ranked :class:`~repro.analysis.costmodel.DecouplePoint`,
produce a *producer* body (the backward slice of the point's address plus
the loop control that drives it) and a *consumer* body (everything else),
wired by queues:

* in **value mode** (read-only alias class) the producer performs the load
  and forwards the value — the shape reference accelerators can later
  offload;
* in **prefetch mode** (read-write class, the paper's Fig. 4 race) the
  producer only prefetches and forwards the *index*; the consumer re-loads.

Every other value computed on the producer side but consumed downstream is
forwarded through its own queue ("add queues", pass 1); *pure* scalars
(phase-level recomputation chains, loop counters over shared bounds) are
cloned into both sides instead, which is what keeps loop control cheap.

The transform is deliberately conservative: if a split would need values to
flow backwards (consumer -> producer) or a multiply-defined register to
cross the boundary, it raises :class:`~repro.errors.CompileError` and the
driver simply rejects that candidate point, exactly as an untransformable
candidate should be.
"""

from ..analysis.alias import access_class
from ..analysis.defs import DefUse, pure_regs
from ..analysis.slicing import backward_slice
from ..errors import AliasError, CompileError
from ..ir import stmts as S
from ..ir.values import is_reg

_CTRL_KINDS = frozenset(["for", "loop", "if"])
_EFFECT_IN_SLICE = frozenset(
    ["store", "atomic_rmw", "call", "write_shared", "enq", "enq_ctrl", "enq_dist", "enq_ctrl_dist"]
)


class ForwardedValue:
    """One value queued from producer to consumer."""

    __slots__ = ("reg", "qid", "label")

    def __init__(self, reg, qid, label):
        self.reg = reg
        self.qid = qid
        self.label = label


class SplitOutcome:
    """Result of one split: both bodies plus the queues that connect them."""

    def __init__(self, producer_body, consumer_body, group_queue, forwards):
        self.producer_body = producer_body
        self.consumer_body = consumer_body
        self.group_queue = group_queue  # qid carrying group values/indices, or None
        self.forwards = forwards  # list of ForwardedValue


class _Splitter:
    def __init__(self, body, point, alloc_qid, params):
        self.body = body
        self.point = point
        self.alloc_qid = alloc_qid
        self.params = set(params)
        self.du = DefUse(body)
        self.pure = pure_regs(body, self.params)
        self.group_ids = {id(load) for load in point.loads}
        self.dispo = {}
        self.keep = {"P": {}, "C": {}}
        self.forwards = {}  # reg -> ForwardedValue
        self.group_queue = None
        self._moved_deq = False

    # -- classification -------------------------------------------------------

    def classify(self):
        seeds = []
        for load in self.point.loads:
            seeds.append(load.index)
            if is_reg(load.array):
                seeds.append(load.array)
        slice_ids, _ = backward_slice(self.body, seeds, self.du)
        slice_ids -= self.group_ids

        self.ctrl_chain = {}
        self._index_chains(self.body, ())

        for stmt in S.walk(self.body):
            sid = id(stmt)
            kind = stmt.kind
            if sid in self.group_ids:
                self.dispo[sid] = "G"
            elif kind in _CTRL_KINDS:
                self.dispo[sid] = "ctrl"
            elif kind in ("break", "continue"):
                if kind == "break" and stmt.levels != 1:
                    raise CompileError("cannot split across a multi-level break")
                self.dispo[sid] = "X"  # follows its innermost enclosing loop
            elif self._cloneable(stmt):
                self.dispo[sid] = "B"
            elif sid in slice_ids:
                if kind in _EFFECT_IN_SLICE:
                    raise CompileError(
                        "address slice contains effectful statement '%s'" % (stmt,)
                    )
                self.dispo[sid] = "P"
            else:
                self.dispo[sid] = "C"

        self._check_aliasing()

    def _cloneable(self, stmt):
        if stmt.kind in ("comment", "barrier", "read_shared"):
            return True
        if stmt.kind == "assign":
            return all(d in self.pure for d in stmt.defs())
        return False

    def _check_aliasing(self):
        """Producer loads must not touch classes the consumer writes."""
        consumer_written = set()
        producer_read = set()
        for stmt in S.walk(self.body):
            d = self.dispo[id(stmt)]
            if stmt.kind in ("store", "atomic_rmw") and d in ("C", "B"):
                consumer_written.add(access_class(stmt.array))
            if stmt.kind == "load" and d == "P":
                producer_read.add(access_class(stmt.array))
        if self.point.value_mode:
            for load in self.point.loads:
                producer_read.add(access_class(load.array))
        conflicts = producer_read & consumer_written
        if conflicts:
            raise AliasError(
                "decoupling would read %s in the producer while the consumer "
                "writes it (stale-value race, paper Fig. 4)" % sorted(conflicts)
            )

    # -- keep/forward fixpoint ---------------------------------------------------

    def resolve(self):
        for _ in range(8):
            self._moved_deq = False
            self._compute_keep()
            new_regs = self._compute_forwards()
            if not self._moved_deq and new_regs == set(self.forwards):
                return
        raise CompileError("split fixpoint did not converge")

    def _index_chains(self, body, chain):
        for stmt in body:
            self.ctrl_chain[id(stmt)] = chain
            if stmt.kind in _CTRL_KINDS:
                inner = chain + (stmt,)
                for block in stmt.blocks():
                    self._index_chains(block, inner)
            else:
                for block in stmt.blocks():
                    self._index_chains(block, chain)

    def _content(self, stmt, side):
        d = self.dispo[id(stmt)]
        if d == "X" or d == "B":
            # Breaks/continues travel with their innermost enclosing loop,
            # and pure cloneable scalars are emitted wherever they are
            # reached (dead copies are cleaned up); neither forces a
            # control structure to be kept.
            return False
        if d == "G":
            return True
        if d == "ctrl":
            return self.keep[side].get(id(stmt), False)
        if d == side:
            return True
        if d == "P" and side == "C":
            # A forwarded definition materializes a Deq on the consumer side.
            return any(reg in self.forwards for reg in stmt.defs())
        return False

    def _compute_keep(self):
        for side in ("P", "C"):
            keep = {}

            def visit(body):
                has = False
                for stmt in body:
                    if stmt.kind in _CTRL_KINDS:
                        inner = False
                        for block in stmt.blocks():
                            if visit(block):
                                inner = True
                        keep[id(stmt)] = inner
                        has = has or inner
                    else:
                        has = has or self._content(stmt, side)
                return has

            # Two passes: _content consults keep for nested ctrl statements.
            self.keep[side] = keep
            visit(self.body)
            visit(self.body)
            # A kept loop keeps its breaks/continues, which keeps their
            # guard Ifs (even when the guard has no other content).
            for stmt in S.walk(self.body):
                if stmt.kind not in ("break", "continue"):
                    continue
                chain = self.ctrl_chain.get(id(stmt), ())
                loop_at = None
                for index in range(len(chain) - 1, -1, -1):
                    if chain[index].kind in ("for", "loop"):
                        loop_at = index
                        break
                if loop_at is None or not keep.get(id(chain[loop_at])):
                    continue
                for guard in chain[loop_at + 1 :]:
                    keep[id(guard)] = True

    def _compute_forwards(self):
        used_c = set()
        used_p = set()
        for stmt in S.walk(self.body):
            d = self.dispo[id(stmt)]
            if d == "ctrl":
                if self.keep["C"].get(id(stmt)):
                    used_c.update(stmt.uses())
                if self.keep["P"].get(id(stmt)):
                    used_p.update(stmt.uses())
            elif d in ("C", "B", "X"):
                used_c.update(stmt.uses())
                if d in ("B", "X"):
                    used_p.update(stmt.uses())
            elif d == "P":
                used_p.update(stmt.uses())
            elif d == "G":
                # Addresses are producer uses; the loaded value in prefetch
                # mode is consumed where the load stays (consumer).
                used_p.update(stmt.uses())
                if not self.point.value_mode:
                    used_c.update(stmt.uses())

        group_dsts = [load.dst for load in self.point.loads]
        needed = set()
        for reg in used_c:
            if reg in self.pure or reg in self.params or reg == "%ctrl":
                continue
            defs = self.du.defining_stmts(reg)
            if not defs:
                continue  # scalar parameter
            sides = {self.dispo[id(s)] for s in defs}
            if sides <= {"P"} or (self.point.value_mode and sides <= {"G", "P"}):
                if len(defs) > 1:
                    raise CompileError(
                        "register %r crosses the boundary with %d definitions" % (reg, len(defs))
                    )
                needed.add(reg)
            elif "P" in sides or (self.point.value_mode and "G" in sides):
                raise CompileError(
                    "register %r is defined on both sides of the boundary" % (reg,)
                )

        for reg in used_p:
            if reg in self.pure or reg in self.params or reg == "%ctrl":
                continue
            defs = self.du.defining_stmts(reg)
            sides = {self.dispo[id(s)] for s in defs}
            if "C" in sides:
                # A value arriving from an upstream queue can be *relocated*:
                # the earlier stage takes over the dequeue and forwards the
                # value downstream. Anything else flowing backwards is a
                # genuine violation of forward-only control.
                if all(s.kind == "deq" for s in defs):
                    for s in defs:
                        self.dispo[id(s)] = "P"
                    self._moved_deq = True
                    continue
                raise CompileError(
                    "producer needs %r computed on the consumer side "
                    "(control must flow forward)" % (reg,)
                )
            if not self.point.value_mode and "G" in sides:
                raise CompileError(
                    "producer needs the loaded value %r of a prefetch-mode point" % (reg,)
                )

        # Allocate queues: group values share one queue (they are adjacent
        # accesses streamed in order — the shape a single RA serves).
        for reg in sorted(needed):
            if reg in self.forwards:
                continue
            if self.point.value_mode and reg in group_dsts:
                if self.group_queue is None:
                    self.group_queue = self.alloc_qid()
                self.forwards[reg] = ForwardedValue(reg, self.group_queue, "group:%s" % reg)
            else:
                qid = self.alloc_qid()
                self.forwards[reg] = ForwardedValue(reg, qid, "fwd:%s" % reg)
        return needed

    # -- construction ----------------------------------------------------------

    def build(self, side):
        # The consumer keeps the *original* statement objects (later
        # decoupling points are tracked by identity and live downstream);
        # the producer receives clones.
        def take(stmt):
            return stmt if side == "C" else stmt.clone()

        def emit(body):
            out = []
            for stmt in body:
                sid = id(stmt)
                d = self.dispo[sid]
                kind = stmt.kind
                if kind in _CTRL_KINDS:
                    if not self.keep[side].get(sid):
                        continue
                    if kind == "if":
                        out.append(S.If(stmt.cond, emit(stmt.then_body), emit(stmt.else_body)))
                    elif kind == "for":
                        out.append(S.For(stmt.var, stmt.lo, stmt.hi, stmt.step, emit(stmt.body)))
                    else:
                        out.append(S.Loop(emit(stmt.body)))
                elif d == "X" or d == "B":
                    out.append(take(stmt))
                elif d == "G":
                    out.extend(self._emit_group_member(stmt, side))
                elif d == side:
                    out.append(take(stmt))
                    if side == "P":
                        for reg in stmt.defs():
                            fwd = self.forwards.get(reg)
                            if fwd is not None:
                                out.append(S.Enq(fwd.qid, reg))
                elif d == "P" and side == "C":
                    for reg in stmt.defs():
                        fwd = self.forwards.get(reg)
                        if fwd is not None:
                            out.append(S.Deq(reg, fwd.qid))
                # d == "C" and side == "P": dropped.
            return out

        return emit(self.body)

    def _emit_group_member(self, load, side):
        if self.point.value_mode:
            fwd = self.forwards.get(load.dst)
            if side == "P":
                stmts = [load.clone()]
                if fwd is not None:
                    stmts.append(S.Enq(fwd.qid, load.dst))
                return stmts
            if fwd is not None:
                return [S.Deq(load.dst, fwd.qid)]
            return []
        # Prefetch mode: producer warms the cache and forwards the index via
        # the general rule; the consumer keeps the authoritative load.
        if side == "P":
            return [S.Prefetch(load.array, load.index)]
        return [load]


def split_at(body, point, alloc_qid, params):
    """Split ``body`` at ``point``; returns a :class:`SplitOutcome`.

    Raises CompileError/AliasError when the point is not decouplable; the
    caller treats that as "candidate rejected".
    """
    splitter = _Splitter(body, point, alloc_qid, params)
    splitter.classify()
    splitter.resolve()
    producer = splitter.build("P")
    consumer = splitter.build("C")
    forwards = sorted(splitter.forwards.values(), key=lambda f: f.qid)
    return SplitOutcome(producer, consumer, splitter.group_queue, forwards)
