"""Sparse-matrix substrate: CSR matrices and Table V-style generators.

The paper's SuiteSparse/SNAP matrices are unavailable offline; generators
below reproduce the statistic that drives the evaluated kernels — average
nonzeros per row — with three structural flavors matching the domains in
Table V:

* ``uniform``  — scattered nonzeros (graph-as-matrix, file sharing);
* ``banded``   — clustered around the diagonal (structural/FEM: pwtk, cant);
* ``powerlaw`` — heavy-tailed row lengths (circuit, economics).

Values are small deterministic floats so dot products stay well-scaled.
"""

import random


class CSRMatrix:
    """Compressed Sparse Row matrix with sorted column coordinates."""

    __slots__ = ("nrows", "ncols", "pos", "crd", "val")

    def __init__(self, nrows, ncols, pos, crd, val):
        self.nrows = nrows
        self.ncols = ncols
        self.pos = pos
        self.crd = crd
        self.val = val

    @property
    def nnz(self):
        return len(self.crd)

    @property
    def avg_nnz_per_row(self):
        return self.nnz / self.nrows if self.nrows else 0.0

    def row(self, i):
        lo, hi = self.pos[i], self.pos[i + 1]
        return list(zip(self.crd[lo:hi], self.val[lo:hi]))

    def transpose(self):
        """CSR of the transpose (i.e. a CSC view of this matrix)."""
        counts = [0] * self.ncols
        for c in self.crd:
            counts[c] += 1
        pos = [0] * (self.ncols + 1)
        for j in range(self.ncols):
            pos[j + 1] = pos[j] + counts[j]
        cursor = list(pos[:-1])
        crd = [0] * self.nnz
        val = [0.0] * self.nnz
        for i in range(self.nrows):
            for k in range(self.pos[i], self.pos[i + 1]):
                j = self.crd[k]
                crd[cursor[j]] = i
                val[cursor[j]] = self.val[k]
                cursor[j] += 1
        return CSRMatrix(self.ncols, self.nrows, pos, crd, val)

    def to_dense_rows(self):
        rows = []
        for i in range(self.nrows):
            row = [0.0] * self.ncols
            for c, v in self.row(i):
                row[c] = v
            rows.append(row)
        return rows

    def __repr__(self):
        return "CSRMatrix(%dx%d, nnz=%d, %.1f/row)" % (
            self.nrows,
            self.ncols,
            self.nnz,
            self.avg_nnz_per_row,
        )


def _row_length(rng, avg, pattern):
    if pattern == "powerlaw":
        # Heavy tail: most rows short, a few long.
        length = 1
        while rng.random() < 0.75 and length < avg * 12:
            length += max(1, int(avg // 2))
            if rng.random() < 0.5:
                break
        return max(1, min(int(rng.expovariate(1.0 / avg)) + 1, avg * 16))
    jitter = rng.randint(-max(1, int(avg // 2)), max(1, int(avg // 2)))
    return max(1, int(avg) + jitter)


def random_matrix(n, nnz_per_row, seed=0, pattern="uniform", ncols=None):
    """Generate an ``n x ncols`` CSR matrix averaging ``nnz_per_row``."""
    rng = random.Random(seed)
    ncols = ncols or n
    pos = [0]
    crd = []
    val = []
    band = max(4, int(nnz_per_row * 6))
    for i in range(n):
        length = min(_row_length(rng, nnz_per_row, pattern), ncols)
        cols = set()
        while len(cols) < length:
            if pattern == "banded":
                c = i + rng.randint(-band, band)
                c = min(max(c, 0), ncols - 1)
            else:
                c = rng.randrange(ncols)
            cols.add(c)
        for c in sorted(cols):
            crd.append(c)
            val.append(round(rng.uniform(-1.0, 1.0), 3))
        pos.append(len(crd))
    return CSRMatrix(n, ncols, pos, crd, val)


def identityish(n, seed=0):
    """Near-diagonal matrix used in small tests."""
    return random_matrix(n, 1, seed=seed, pattern="banded")
