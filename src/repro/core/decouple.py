"""Decoupling driver: select points, split iteratively, assemble a pipeline.

Splitting always divides the current *last* stage, and points are applied
in program order (address dependences make later points live downstream of
earlier ones). Candidates that prove untransformable (alias races, backward
value flow) are rejected and the next-ranked point takes their place, so
the driver always produces *some* legal pipeline.
"""

from ..analysis.costmodel import rank_decouple_points
from ..errors import AliasError, CompileError
from ..ir import stmts as S
from ..ir.program import PipelineProgram, QueueSpec, StageProgram
from ..ir.values import array_name, is_array_symbol
from .cleanup import cleanup_stage, stage_is_trivial
from .phases import prepare_phases
from .split import split_at


def _walk_positions(body):
    return {id(stmt): pos for pos, stmt in enumerate(S.walk(body))}


def _point_name(point):
    cls = point.cls
    if is_array_symbol(cls):
        return array_name(cls)
    return cls


def _loads_present(body, point):
    present = {id(s) for s in S.walk(body)}
    return all(id(load) in present for load in point.loads)


def decouple_function(function, num_points, capacity=24, point_indices=None, profiler=None):
    """Split ``function`` at up to ``num_points`` ranked points.

    Returns ``(pipeline, applied_points)``. The returned pipeline has had
    only the decouple + add-queues treatment (the paper's ``Q``
    configuration); later passes refine it.

    ``point_indices`` (profile-guided mode, Sec. V) selects *specific*
    candidates by rank index instead of taking the top-scored ones; an
    unsplittable selection then raises instead of falling back, so the
    search can discard the combination.
    """
    work = function.clone()
    shared_vars = prepare_phases(work, profiler=profiler)
    ranked = rank_decouple_points(work)
    rejected = set()

    while True:
        if point_indices is not None:
            try:
                chosen = [ranked[i] for i in point_indices]
            except IndexError:
                raise CompileError("point index out of range (only %d candidates)" % len(ranked))
            if any(id(p) in rejected for p in chosen):
                raise CompileError("selected decoupling points are not splittable")
        else:
            chosen = [p for p in ranked if id(p) not in rejected][:num_points]
        if not chosen:
            # Nothing decouplable: a single-stage pipeline is still valid.
            stage = StageProgram(0, work.name, work.body)
            pipeline = PipelineProgram(
                work.name, [stage], [], [], work.arrays, work.scalar_params,
                shared_vars=shared_vars, intrinsics=work.intrinsics,
                meta={"points": [], "passes": ["decouple", "queues"]},
            )
            cleanup_stage(stage)
            return pipeline, []
        positions = _walk_positions(work.body)
        chosen.sort(key=lambda p: positions[id(p.loads[0])])

        bodies = [work.body]
        applied = []
        qid_counter = [0]

        def alloc_qid():
            qid_counter[0] += 1
            return qid_counter[0] - 1

        failed = None
        for point in chosen:
            if not _loads_present(bodies[-1], point):
                failed = point
                break
            try:
                outcome = split_at(bodies[-1], point, alloc_qid, work.scalar_params)
            except (CompileError, AliasError):
                failed = point
                break
            bodies[-1] = outcome.producer_body
            bodies.append(outcome.consumer_body)
            applied.append((point, outcome))

        if failed is not None:
            rejected.add(id(failed))
            continue
        break

    stages = []
    for index, body in enumerate(bodies):
        if index < len(applied):
            name = "fetch_%s" % _point_name(applied[index][0])
        else:
            name = "update"
        stages.append(StageProgram(index, name, body))

    for stage in stages:
        cleanup_stage(stage)

    pipeline = _assemble(work, stages, capacity, shared_vars)
    pipeline.meta["points"] = [repr(p) for p, _ in applied]
    pipeline.meta["passes"] = ["decouple", "queues"]
    return pipeline, [p for p, _ in applied]


def _assemble(function, stages, capacity, shared_vars):
    """Build queue specs by scanning stage bodies, dropping unused queues."""
    producers = {}
    consumers = {}
    labels = {}
    for stage in stages:
        for stmt in stage.all_stmts():
            if stmt.kind in ("enq", "enq_ctrl", "enq_dist", "enq_ctrl_dist"):
                producers[stmt.queue] = ("stage", stage.index)
            elif stmt.kind in ("deq", "peek"):
                consumers[stmt.queue] = ("stage", stage.index)

    queues = []
    for qid in sorted(set(producers) | set(consumers)):
        if qid not in producers or qid not in consumers:
            raise CompileError(
                "queue %d has producer=%s consumer=%s after assembly"
                % (qid, producers.get(qid), consumers.get(qid))
            )
        queues.append(
            QueueSpec(qid, producers[qid], consumers[qid], capacity, labels.get(qid, ""))
        )

    return PipelineProgram(
        function.name,
        stages,
        queues,
        [],
        function.arrays,
        function.scalar_params,
        shared_vars=shared_vars,
        intrinsics=function.intrinsics,
    )


def renumber_stages(pipeline):
    """Re-index stages 0..k-1 after deletions and refresh queue endpoints."""
    mapping = {}
    for new_index, stage in enumerate(pipeline.stages):
        mapping[stage.index] = new_index
        stage.index = new_index
    for q in pipeline.queues.values():
        kind, idx = q.producer
        if kind == "stage":
            q.producer = (kind, mapping[idx])
        kind, idx = q.consumer
        if kind == "stage":
            q.consumer = (kind, mapping[idx])
    return pipeline


def drop_trivial_stages(pipeline):
    """Delete stages that no longer do observable work (post RA-chaining)."""
    keep = [s for s in pipeline.stages if not stage_is_trivial(s)]
    if len(keep) != len(pipeline.stages):
        pipeline.stages = keep
        renumber_stages(pipeline)
    return pipeline
