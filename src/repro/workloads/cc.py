"""Connected Components (paper Sec. VI-B).

Label-propagation CC in the Ligra style: every vertex starts in the fringe
with its own id as label; each phase pushes smaller labels to neighbors
until no label changes. The structure matches BFS (fringe + CSR traversal),
but the ``labels`` array is both the input to the filter and the output of
the update, so Phloem can decouple its accesses only as prefetches — the
paper observes CC gets a "slightly worse decoupling" than BFS, and this is
why.
"""

from ..frontend.lowering import compile_source
from ..ir import Break, Ctrl, IRBuilder, PipelineProgram, QueueSpec, RA_INDIRECT, RA_SCAN, RASpec, StageProgram

NAME = "cc"

SOURCE = """
#pragma phloem
void cc(const int* restrict nodes, const int* restrict edges,
        int* restrict labels, int* restrict fringe0, int* restrict fringe1,
        int n, int fringe_size_init) {
  int* restrict cur_fringe = fringe0;
  int* restrict next_fringe = fringe1;
  int fringe_size = fringe_size_init;
  while (fringe_size > 0) {
    int next_size = 0;
    for (int i = 0; i < fringe_size; i++) {
      int v = cur_fringe[i];
      int lv = labels[v];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e++) {
        int ngh = edges[e];
        int ln = labels[ngh];
        if (ln > lv) {
          labels[ngh] = lv;
          next_fringe[next_size] = ngh;
          next_size = next_size + 1;
        }
      }
    }
    int* restrict tmp = cur_fringe;
    cur_fringe = next_fringe;
    next_fringe = tmp;
    fringe_size = next_size;
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def make_env(graph):
    labels = list(range(graph.n))
    # A phase can push a vertex once per label improvement, so the fringe
    # needs room for up to one push per directed edge.
    cap = graph.n + graph.m + 1
    fringe0 = list(range(graph.n)) + [0] * (cap - graph.n)
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "labels": labels,
        "fringe0": fringe0,
        "fringe1": [0] * cap,
    }
    scalars = {"n": graph.n, "fringe_size_init": graph.n}
    return arrays, scalars


def reference(graph):
    """Oracle labels: min vertex id per connected component."""
    labels = list(range(graph.n))
    fringe = list(range(graph.n))
    nodes, edges = graph.nodes, graph.edges
    while fringe:
        nxt = []
        for v in fringe:
            lv = labels[v]
            for e in range(nodes[v], nodes[v + 1]):
                w = edges[e]
                if labels[w] > lv:
                    labels[w] = lv
                    nxt.append(w)
        fringe = nxt
    return labels


def check(arrays, graph):
    return arrays["labels"] == reference(graph)


def manual_pipeline():
    """Hand-tuned pipeline: fringe scan -> chained RAs -> label prefetch ->
    update, with per-vertex NEXT markers and phase counts from the shared
    fringe size (no DONE traffic at all — a hand optimization).

    The vertex id travels to the update stage, which reads ``labels[v]``
    itself: forwarding the label would be *correct* for CC (monotone), but
    stale labels inflate the fringe badly on high-diameter graphs.
    """
    from ..ir import EnqCtrl

    func = function()
    Q_RA1, Q_PAIRS, Q_NGH, Q_UPD, Q_LAB = 0, 1, 2, 3, 4

    b = IRBuilder(temp_prefix="%m")
    b.mov("@fringe0", dst="cur_fringe")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.for_("i", 0, "fringe_size"):
            v = b.load("cur_fringe", "i")
            b.enq(Q_LAB, v)
            b.enq(Q_RA1, v)
            b.enq(Q_RA1, b.binop("add", v, 1))
            b.enq_ctrl(Q_RA1, Ctrl.NEXT)  # per-vertex burst delimiter
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        tmp = b.mov("cur_fringe")
        b.mov("next_fringe", dst="cur_fringe")
        b.mov(tmp, dst="next_fringe")
    stage0 = StageProgram(0, "scan_fringe", b.finish())

    # Prefetch stage: warms labels[ngh] a queue-depth ahead of the update.
    b = IRBuilder(temp_prefix="%p")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.for_("i", 0, "fringe_size"):
            with b.loop():
                ngh = b.deq(Q_NGH)
                b.prefetch("@labels", ngh)
                b.enq(Q_UPD, ngh)
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
    stage1 = StageProgram(
        1,
        "prefetch_labels",
        b.finish(),
        handlers={Q_NGH: [EnqCtrl(Q_UPD, Ctrl(Ctrl.NEXT)), Break(1)]},
    )

    b = IRBuilder(temp_prefix="%u")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("@fringe0", dst="other")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        b.mov(0, dst="next_size")
        with b.for_("i", 0, "fringe_size"):
            v = b.deq(Q_LAB)
            lv = b.load("@labels", v)
            with b.loop():  # neighbors until NEXT
                ngh = b.deq(Q_UPD)
                ln = b.load("@labels", ngh)
                better = b.binop("gt", ln, lv)
                with b.if_(better):
                    b.store("@labels", ngh, lv)
                    b.store("next_fringe", "next_size", ngh)
                    b.binop("add", "next_size", 1, dst="next_size")
        b.write_shared("next_size", "next_size")
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        tmp = b.mov("next_fringe")
        b.mov("other", dst="next_fringe")
        b.mov(tmp, dst="other")
    stage2 = StageProgram(2, "update", b.finish(), handlers={Q_UPD: [Break(1)]})

    queues = [
        QueueSpec(Q_RA1, ("stage", 0), ("ra", 0), 24, "v/v+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_UPD, ("stage", 1), ("stage", 2), 24, "neighbors'"),
        QueueSpec(Q_LAB, ("stage", 0), ("stage", 2), 24, "vertices"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH, forward_ctrl=True),
    ]
    return PipelineProgram(
        "cc_manual",
        [stage0, stage1, stage2],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        shared_vars={"next_size"},
        meta={"manual": True},
    )


def data_parallel(nthreads):
    """Hand-written data-parallel CC (vertex-partitioned label propagation)."""
    func = function()
    from ..ir import ArrayDecl

    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        b.mov("@fringe0", dst="cur_fringe")
        b.mov("@fringe1", dst="next_fringe")
        b.mov("fringe_size_init", dst="total")
        with b.loop():
            done = b.assign("le", ["total", 0])
            with b.if_(done):
                b.break_()
            b.mov(0, dst="my_size")
            my_base = b.binop("mul", tid, "cap")
            with b.for_("seg", 0, "nthreads"):
                seg_size = b.load("@sizes", "seg")
                seg_base = b.binop("mul", "seg", "cap")
                with b.for_("j", tid, seg_size, nthreads):
                    idx = b.binop("add", seg_base, "j")
                    v = b.load("cur_fringe", idx)
                    lv = b.load("@labels", v)
                    es = b.load("@nodes", v)
                    ee = b.load("@nodes", b.binop("add", v, 1))
                    with b.for_("e", es, ee):
                        ngh = b.load("@edges", "e")
                        old = b.atomic_min("@labels", ngh, lv)
                        better = b.binop("gt", old, lv)
                        with b.if_(better):
                            slot = b.binop("add", my_base, "my_size")
                            b.store("next_fringe", slot, ngh)
                            b.binop("add", "my_size", 1, dst="my_size")
            b.barrier("dp-phase")
            b.store("@sizes_next", tid, "my_size")
            b.barrier("dp-sizes")
            b.mov(0, dst="total")
            with b.for_("s2", 0, "nthreads"):
                sz = b.load("@sizes_next", "s2")
                b.binop("add", "total", sz, dst="total")
                b.store("@sizes", "s2", sz)
            b.barrier("dp-sync")
            tmp = b.mov("cur_fringe")
            b.mov("next_fringe", dst="cur_fringe")
            b.mov(tmp, dst="next_fringe")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    arrays = dict(func.arrays)
    arrays["sizes"] = ArrayDecl("sizes", elem_size=4)
    arrays["sizes_next"] = ArrayDecl("sizes_next", elem_size=4)
    return PipelineProgram(
        "cc_dp%d" % nthreads,
        stages,
        [],
        [],
        arrays,
        func.scalar_params + ["nthreads", "cap"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads):
    cap = graph.n + graph.m + 1
    fringe0 = [0] * (cap * nthreads)
    sizes = [0] * nthreads
    # Initial fringe: all vertices, striped across segments.
    per = (graph.n + nthreads - 1) // nthreads
    v = 0
    for t in range(nthreads):
        count = min(per, graph.n - v)
        if count <= 0:
            break
        for k in range(count):
            fringe0[t * cap + k] = v + k
        sizes[t] = count
        v += count
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "labels": list(range(graph.n)),
        "fringe0": fringe0,
        "fringe1": [0] * (cap * nthreads),
        "sizes": sizes,
        "sizes_next": [0] * nthreads,
    }
    scalars = {"n": graph.n, "fringe_size_init": graph.n, "nthreads": nthreads, "cap": cap}
    return arrays, scalars
