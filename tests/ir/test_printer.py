"""Textual IR dumps: stable, human-readable fragments."""

from repro import ir


def test_format_stmt_samples():
    assert ir.format_stmt(ir.Assign("x", "add", ["a", 1])) == "x = add(a, 1)"
    assert ir.format_stmt(ir.Load("v", "@a", "i")) == "v = load @a[i]"
    assert ir.format_stmt(ir.Store("@a", 0, "v")) == "store @a[0] = v"
    assert ir.format_stmt(ir.Enq(3, "v")) == "enq(q3, v)"
    assert ir.format_stmt(ir.Deq("x", 2)) == "x = deq(q2)"
    assert ir.format_stmt(ir.EnqCtrl(1, ir.Ctrl("NEXT"))) == "enq_ctrl(q1, NEXT)"
    assert "barrier" in ir.format_stmt(ir.Barrier("phase"))
    assert ir.format_stmt(ir.Break(2)) == "break 2"


def test_format_body_indents():
    body = [ir.For("i", 0, "n", 1, [ir.If("c", [ir.Break()], [])])]
    text = ir.format_body(body)
    lines = text.splitlines()
    assert lines[0].startswith("for i")
    assert lines[1].startswith("  if")
    assert lines[2].startswith("    break")


def test_format_function_header():
    f = ir.Function("bfs", ["n"], {"a": ir.ArrayDecl("a")}, [ir.Assign("x", "mov", [0])])
    text = ir.format_function(f)
    assert "func bfs(n)" in text
    assert "arrays(a)" in text


def test_format_pipeline_lists_everything():
    s0 = ir.StageProgram(0, "p", [ir.Enq(0, "n")])
    s1 = ir.StageProgram(1, "c", [ir.Loop([ir.Deq("x", 1)])], handlers={1: [ir.Break(1)]})
    queues = [
        ir.QueueSpec(0, ("stage", 0), ("ra", 0)),
        ir.QueueSpec(1, ("ra", 0), ("stage", 1)),
    ]
    ras = [ir.RASpec(0, ir.RA_INDIRECT, "@a", 0, 1)]
    p = ir.PipelineProgram("demo", [s0, s1], queues, ras, {"a": ir.ArrayDecl("a")}, ["n"])
    text = ir.format_pipeline(p)
    assert "pipeline demo" in text
    assert "RA(0, indirect @a" in text
    assert "handler(q1):" in text
    assert "stage 0: p" in text
