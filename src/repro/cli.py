"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's artifact would be driven:

* ``emit FILE.c`` — run the Phloem compiler on a mini-C kernel and print
  the pipeline (pseudo-C, IR, or a one-line summary);
* ``lint [FILE.c | --bench NAME|all]`` — run the static pipeline-safety
  analyzer (:mod:`repro.analysis.sanitize`) and print coded diagnostics
  (``PHL...``); exits non-zero when any error-severity finding exists;
* ``demo BENCH`` — run one shipped benchmark (paper five + GARDENIA suite:
  bfs/cc/prd/radii/spmm/sssp/pr/tc/bc/spmv) on a synthetic
  input, comparing serial / data-parallel / Phloem / manual;
* ``search BENCH`` — run the profile-guided pipeline search and print the
  Fig. 13-style distribution;
* ``figures [NAME...]`` — regenerate evaluation figures (fig6..fig14);
* ``trace BENCH`` — run one benchmark with cycle-domain tracing on and
  write a Chrome trace-event file (load it at ui.perfetto.dev);
* ``metrics BENCH`` — run the comparison suite and emit structured
  JSONL RunRecords (:mod:`repro.obs.record`);
* ``report DIR`` — aggregate a results directory (RunRecord JSONL, perf
  baselines, lint JSON, timeline/telemetry snapshots) into one markdown
  or single-file HTML experiment report (:mod:`repro.obs.report`);
* ``serve`` — run the long-lived compile-and-simulate daemon
  (:mod:`repro.service`): async socket server, fork worker pool, shared
  caches, per-client rate limits;
* ``submit [submit flags] VERB ...`` — run any of the verbs above on a
  daemon instead of in-process, byte-identical stdout included.

Every verb is a thin frontend over :mod:`repro.api`: argv becomes a typed
request, :func:`repro.api.handle` executes it, and the CLI prints
``Response.output`` verbatim — the daemon runs the same requests through
the same handlers, so one-shot and served results are interchangeable.

``--quiet`` (or ``REPRO_QUIET=1``) silences the stderr telemetry
(wall-clock/cache chatter); figure results on stdout are unaffected.
"""

import argparse
import sys
import time

from . import api


def _run_local(request):
    """Execute one API request in-process and print its payload."""
    response = api.handle(request)
    if response.output:
        sys.stdout.write(response.output)
    return response.exit_code


# ---------------------------------------------------------------------------
# argv -> request builders (shared by the one-shot verbs and `submit`)


def _req_emit(args):
    with open(args.file) as handle:
        source = handle.read()
    return api.CompileRequest(
        source=source,
        name=args.name,
        stages=args.stages,
        passes=args.passes,
        fmt=args.format,
        verify_each=args.verify_each,
    )


def _req_lint(args):
    source = None
    if args.file is not None:
        with open(args.file) as handle:
            source = handle.read()
    return api.LintRequest(
        source=source,
        file=args.file,
        name=args.name,
        bench=args.bench,
        stages=args.stages,
        passes=args.passes,
        verify_each=args.verify_each,
        json=args.json,
        perf=args.perf,
    )


def _req_demo(args):
    return api.RunRequest(bench=args.bench, size=args.size, seed=args.seed, stages=args.stages)


def _req_search(args):
    return api.SearchRequest(bench=args.bench, prune_static=args.prune_static)


def _req_trace(args):
    return api.TraceRequest(
        bench=args.bench,
        size=args.size,
        seed=args.seed,
        stages=args.stages,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile_passes=args.profile_passes,
        quiet=args.quiet,
    )


def _req_metrics(args):
    return api.MetricsRequest(
        bench=args.bench,
        size=args.size,
        seed=args.seed,
        stages=args.stages,
        jobs=args.jobs,
        metrics_out=args.metrics_out,
        profile_passes=args.profile_passes,
        quiet=args.quiet,
    )


def _req_report(args):
    return api.ReportRequest(
        results_dir=args.results_dir,
        title=args.title,
        baseline=args.baseline,
        out=args.out,
        html_out=args.html_out,
        quiet=args.quiet,
    )


def _req_bench_perf(args):
    scale = "full" if args.full else "quick"
    if args.quick:
        scale = "quick"
    return api.BenchPerfRequest(
        benches=tuple(args.benches),
        scale=scale,
        engine=args.engine,
        repeats=args.repeats,
        jobs=args.jobs,
        baseline=args.baseline,
        check_baseline=args.check_baseline,
        update_baseline=args.update_baseline,
        threshold=args.threshold,
        strict=args.strict,
        json=args.json,
        metrics_out=args.metrics_out,
        quiet=args.quiet,
    )


#: Verb -> argv builder; verbs absent here (figures, serve, submit) run
#: only in-process and cannot be submitted to a daemon.
_REQUEST_BUILDERS = {
    "emit": _req_emit,
    "lint": _req_lint,
    "demo": _req_demo,
    "search": _req_search,
    "trace": _req_trace,
    "metrics": _req_metrics,
    "bench-perf": _req_bench_perf,
    "report": _req_report,
}


def _cmd_emit(args):
    return _run_local(_req_emit(args))


def _cmd_lint(args):
    return _run_local(_req_lint(args))


def _cmd_demo(args):
    return _run_local(_req_demo(args))


def _cmd_search(args):
    return _run_local(_req_search(args))


def _cmd_trace(args):
    return _run_local(_req_trace(args))


def _cmd_metrics(args):
    return _run_local(_req_metrics(args))


def _cmd_bench_perf(args):
    return _run_local(_req_bench_perf(args))


def _cmd_report(args):
    return _run_local(_req_report(args))


_FIGURES = {
    "fig6": "fig6_pass_ablation",
    "fig9": "fig9_overall_speedup",
    "fig10": "fig10_cycle_breakdown",
    "fig11": "fig11_energy_breakdown",
    "fig12": "fig12_taco",
    "fig13": "fig13_stage_distribution",
    "fig14": "fig14_replication",
}

#: Figures that re-slice the shared Fig. 9 suites (computed once, in the
#: parent, with per-benchmark parallelism) rather than running standalone.
_SUITE_FIGURES = ("fig9", "fig10", "fig11", "fig13")


def _cmd_figures(args):
    from . import cache, obs
    from .bench import experiments, parallel, report

    if args.quiet:
        obs.set_quiet(True)
    names = args.names or sorted(_FIGURES)
    for name in names:
        if name not in _FIGURES:
            print("unknown figure %r (choose from %s)" % (name, ", ".join(sorted(_FIGURES))))
            return 2

    jobs = parallel.resolve_jobs(args.jobs)
    parallel.clear_job_log()
    start = time.perf_counter()

    # Two-phase job graph, one pool level deep: the Fig. 9 suites fan out
    # per benchmark, standalone figures fan out per figure; the suite
    # re-slicing figures then run in-parent against the warm suites.
    results = {}
    standalone = [n for n in names if n not in _SUITE_FIGURES]
    if any(n in _SUITE_FIGURES for n in names):
        experiments.ensure_suites(jobs=jobs)
    if standalone:
        job_list = [
            parallel.Job(name, getattr(experiments, _FIGURES[name])) for name in standalone
        ]
        for job_result in parallel.run_jobs(job_list, workers=jobs):
            results[job_result.key] = job_result.value
    for name in names:
        if name not in results:
            results[name] = getattr(experiments, _FIGURES[name])()

    for name in names:
        print(results[name]["text"])
        print()

    if args.metrics_out:
        # Structured RunRecords for whatever suites this invocation ran
        # (the fig9/10/11/13 family); per-suite record lists merge
        # deterministically regardless of worker count.
        from .bench.experiments import _SUITES

        record_lists = [
            obs.records_from_suite(bench, suite, cache_stats=cache.stats())
            for bench, suite in _SUITES.items()
        ]
        records = obs.merge_records(*record_lists)
        obs.write_jsonl(records, args.metrics_out)
        obs.log("metrics: %d records -> %s", len(records), args.metrics_out)

    # Harness telemetry on stderr (obs.log: --quiet/REPRO_QUIET silences
    # it), keeping stdout byte-identical to a serial, cache-less run:
    # per-job wall times and cache hit rates (a cold-vs-warm pair of
    # invocations shows the caches working).
    elapsed = time.perf_counter() - start
    obs.log("%s", report.render_job_times(parallel.job_log(), workers=jobs, total_wall=elapsed))
    obs.log("%s", report.render_cache_stats(cache.stats(), directory=cache.cache_dir()))
    return 0


# ---------------------------------------------------------------------------
# Service frontends: serve / submit


def _cmd_serve(args):
    from .obs import set_quiet
    from .service.daemon import serve_main
    from .service.protocol import default_socket_path

    if args.quiet:
        set_quiet(True)
    socket_path = args.socket
    if socket_path is None and args.host is None:
        socket_path = default_socket_path(create_dir=True)
    return serve_main(
        socket_path=socket_path,
        host=args.host,
        port=args.port,
        workers=args.workers,
        rate=args.rate,
        burst=args.burst,
        quota=args.quota,
    )


def _request_from_argv(argv):
    """Re-parse a submitted verb's argv into its API request.

    Returns ``(request, None)`` or ``(None, exit_code)`` when the argv
    names a verb that cannot run on a daemon.
    """
    parsed = build_parser().parse_args(argv)
    builder = _REQUEST_BUILDERS.get(getattr(parsed, "verb", None))
    if builder is None:
        print(
            "submit: verb %r runs only in-process (submit one of: %s)"
            % (argv[0], ", ".join(sorted(_REQUEST_BUILDERS)))
        )
        return None, 2
    return builder(parsed), None


def _cmd_submit(args):
    import json

    from .client import ServiceClient, ServiceError
    from .obs import log
    from .service.protocol import default_socket_path

    socket_path = args.socket
    if socket_path is None and args.host is None:
        socket_path = default_socket_path()
    argv = list(args.argv)
    if argv and argv[0] == "--":
        argv = argv[1:]

    control = None
    for flag, action in (
        ("ping", "ping"),
        ("server_stats", "stats"),
        ("server_telemetry", "telemetry"),
        ("shutdown", "shutdown"),
    ):
        if getattr(args, flag):
            control = action
    if control is None and not argv:
        print("submit: give a verb to run (e.g. `repro submit metrics bfs`)")
        return 2

    request = None
    if control is None:
        request, code = _request_from_argv(argv)
        if request is None:
            return code

    client = ServiceClient(
        socket_path=socket_path,
        host=args.host,
        port=args.port,
        client_id=args.client,
        timeout=args.timeout,
    )
    try:
        if args.wait is not None:
            client.wait_ready(timeout=args.wait)
        if control is not None:
            reply = client.control(control)
            if control == "telemetry":
                # Raw text exposition, ready for a Prometheus scrape target.
                sys.stdout.write(reply["text"])
            else:
                print(json.dumps(reply, sort_keys=True))
            return 0

        def on_record(record):
            if args.stream:
                print(json.dumps(record, sort_keys=True), flush=True)

        response = client.submit(request, on_record=on_record)
    except ServiceError as exc:
        print("submit: error: %s" % exc, file=sys.stderr)
        return 1
    if response.error is not None:
        print(
            json.dumps({"verb": response.verb, "error": response.error}, sort_keys=True),
            file=sys.stderr,
        )
        return response.exit_code or 1
    if not args.stream and response.output:
        sys.stdout.write(response.output)
    if response.cache is not None:
        log(
            "submit: cache %s",
            " ".join(
                "%s %d/%d" % (layer, c["hits"], c["hits"] + c["misses"])
                for layer, c in sorted(response.cache.items())
            ),
        )
    return response.exit_code


def build_parser():
    from .bench import perf as perfmod
    from .workloads import ALL_BENCHMARKS

    bench_names = tuple(sorted(ALL_BENCHMARKS))
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Phloem reproduction: compile, simulate, and evaluate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    emit = sub.add_parser("emit", help="compile a mini-C kernel and print the pipeline")
    emit.add_argument("file")
    emit.add_argument("--name", default=None, help="kernel name if the file has several")
    emit.add_argument("--stages", type=int, default=4)
    emit.add_argument("--passes", default=None, help="comma-separated pass subset")
    emit.add_argument("--format", choices=("c", "ir", "summary", "diagram"), default="c")
    emit.add_argument(
        "--verify-each", action="store_true",
        help="re-verify the IR and re-run the safety analyzer after every pass",
    )
    emit.set_defaults(func=_cmd_emit, verb="emit")

    lint = sub.add_parser(
        "lint", help="run the static pipeline-safety analyzer on a kernel"
    )
    lint.add_argument("file", nargs="?", default=None, metavar="FILE.c")
    lint.add_argument("--name", default=None, help="kernel name if the file has several")
    lint.add_argument(
        "--bench", default=None, metavar="NAME",
        help="lint a shipped benchmark kernel instead of a file ('all' sweeps every one)",
    )
    lint.add_argument("--stages", type=int, default=4)
    lint.add_argument("--passes", default=None, help="comma-separated pass subset")
    lint.add_argument(
        "--verify-each", action="store_true",
        help="also verify after every compiler pass, not just the final pipeline",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable diagnostics")
    lint.add_argument(
        "--perf", action="store_true",
        help="also run the static performance model (PHL4xx advisories)",
    )
    lint.set_defaults(func=_cmd_lint, verb="lint")

    demo = sub.add_parser("demo", help="run one benchmark across all variants")
    demo.add_argument("bench", choices=bench_names)
    demo.add_argument("--size", type=int, default=4000)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--stages", type=int, default=4)
    demo.set_defaults(func=_cmd_demo, verb="demo")

    search = sub.add_parser("search", help="profile-guided pipeline search")
    search.add_argument("bench", choices=bench_names)
    search.add_argument(
        "--prune-static", action="store_true", dest="prune_static",
        help="drop statically-dominated candidates before any simulation",
    )
    search.set_defaults(func=_cmd_search, verb="search")

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("names", nargs="*", metavar="figN")
    figures.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the harness (default: REPRO_JOBS env or 1)",
    )
    figures.add_argument(
        "--quiet", action="store_true", help="silence stderr telemetry (wall times, cache rates)"
    )
    figures.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="write structured RunRecords for the suites this run computed",
    )
    figures.set_defaults(func=_cmd_figures, verb="figures")

    trace = sub.add_parser(
        "trace", help="run one benchmark with cycle-domain tracing on"
    )
    trace.add_argument("bench", choices=bench_names)
    trace.add_argument("--size", type=int, default=4000)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--stages", type=int, default=4)
    trace.add_argument(
        "--trace-out", default=None, metavar="FILE.json",
        help="write a Chrome trace-event file (open at ui.perfetto.dev)",
    )
    trace.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="write RunRecords for the serial and traced runs",
    )
    trace.add_argument(
        "--profile-passes", action="store_true",
        help="instrument the compiler passes and print the timing table",
    )
    trace.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    trace.set_defaults(func=_cmd_trace, verb="trace")

    bench = sub.add_parser(
        "bench", help="benchmark harness utilities (currently: perf)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    perf = bench_sub.add_parser(
        "perf",
        help="time the simulator itself: each engine vs the reference interpreter",
    )
    perf.add_argument(
        "benches", nargs="*", metavar="BENCH",
        help="kernels to measure (default: every shipped benchmark)",
    )
    perf.add_argument(
        "--quick", action="store_true",
        help="QUICK-scale inputs (the committed-baseline scale; the default)",
    )
    perf.add_argument(
        "--full", action="store_true",
        help="larger inputs for patient local measurement",
    )
    perf.add_argument(
        "--engine", default=None,
        choices=("reference", "fastpath", "batch", "all"),
        help="engine(s) to time against the reference interpreter "
        "(default: fastpath; 'all' measures every engine)",
    )
    perf.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per engine; the minimum wall time is kept (default 2)",
    )
    perf.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (cycles are unaffected; wall times contend)",
    )
    perf.add_argument(
        "--baseline", default=perfmod.BASELINE_FILE, metavar="FILE.json",
        help="baseline file (default: %s in the working directory)"
        % perfmod.BASELINE_FILE,
    )
    perf.add_argument(
        "--check-baseline", action="store_true",
        help="compare against the baseline: cycle changes are errors, "
        "wall-time regressions warn",
    )
    perf.add_argument(
        "--update-baseline", action="store_true",
        help="write the fresh measurements to the baseline file",
    )
    perf.add_argument(
        "--threshold", type=float, default=perfmod.DEFAULT_THRESHOLD,
        help="fractional wall-time tolerance before warning (default 0.25)",
    )
    perf.add_argument(
        "--strict", action="store_true",
        help="treat wall-time warnings as failures (off in CI: boxes are noisy)",
    )
    perf.add_argument("--json", action="store_true", help="JSON instead of the table")
    perf.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="also write repro.obs RunRecords for each measured engine",
    )
    perf.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    perf.set_defaults(func=_cmd_bench_perf, verb="bench-perf")

    metrics = sub.add_parser(
        "metrics", help="run the comparison suite and emit JSONL RunRecords"
    )
    metrics.add_argument("bench", choices=bench_names)
    metrics.add_argument("--size", type=int, default=4000)
    metrics.add_argument("--seed", type=int, default=1)
    metrics.add_argument("--stages", type=int, default=4)
    metrics.add_argument("--jobs", type=int, default=None)
    metrics.add_argument(
        "--metrics-out", default=None, metavar="FILE.jsonl",
        help="destination file (default: JSONL on stdout)",
    )
    metrics.add_argument(
        "--profile-passes", action="store_true",
        help="attach compile-pass timings to the phloem-static records",
    )
    metrics.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    metrics.set_defaults(func=_cmd_metrics, verb="metrics")

    report = sub.add_parser(
        "report",
        help="aggregate a results directory into one experiment report",
    )
    report.add_argument(
        "results_dir", metavar="DIR",
        help="directory of RunRecord JSONL, BENCH_*.json, lint JSON, "
        "timeline and telemetry snapshots",
    )
    report.add_argument("--title", default=None, help="report heading")
    report.add_argument(
        "--baseline", default="BENCH_pipette.json", metavar="FILE.json",
        help="perf baseline whose history feeds the trajectory section "
        "(default: BENCH_pipette.json; missing file is skipped)",
    )
    report.add_argument(
        "--out", default=None, metavar="FILE.md",
        help="write markdown here instead of stdout",
    )
    report.add_argument(
        "--html-out", default=None, metavar="FILE.html",
        help="also write the single-file HTML page",
    )
    report.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    report.set_defaults(func=_cmd_report, verb="report")

    serve = sub.add_parser(
        "serve", help="run the compile-and-simulate daemon (async server + worker pool)"
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket to listen on (default: REPRO_SOCKET env or the "
        "cache directory's serve.sock)",
    )
    serve.add_argument("--host", default=None, help="listen on TCP instead of a unix socket")
    serve.add_argument("--port", type=int, default=0, help="TCP port (0 picks a free one)")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="fork worker processes (0 = execute inline in the server)",
    )
    serve.add_argument(
        "--rate", type=float, default=10.0,
        help="per-client token-bucket refill rate, requests/s (<=0 disables)",
    )
    serve.add_argument(
        "--burst", type=float, default=20.0, help="per-client token-bucket depth"
    )
    serve.add_argument(
        "--quota", type=int, default=4,
        help="per-client in-flight job quota (<=0 disables)",
    )
    serve.add_argument("--quiet", action="store_true", help="silence stderr telemetry")
    serve.set_defaults(func=_cmd_serve, verb="serve")

    submit = sub.add_parser(
        "submit", help="run a verb on a daemon: repro submit [flags] VERB ..."
    )
    submit.add_argument(
        "--socket", default=None, metavar="PATH",
        help="daemon unix socket (default: REPRO_SOCKET env or the cache "
        "directory's serve.sock)",
    )
    submit.add_argument("--host", default=None, help="daemon TCP host")
    submit.add_argument("--port", type=int, default=0, help="daemon TCP port")
    submit.add_argument(
        "--client", default="cli", help="client identity for rate limits and quotas"
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, help="socket timeout in seconds"
    )
    submit.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="poll until the daemon answers a ping before submitting",
    )
    submit.add_argument(
        "--stream", action="store_true",
        help="print streamed records as JSONL as they arrive instead of "
        "the verb's stdout payload",
    )
    submit.add_argument("--ping", action="store_true", help="liveness probe only")
    submit.add_argument(
        "--server-stats", action="store_true", help="print the daemon's counters"
    )
    submit.add_argument(
        "--server-telemetry", action="store_true",
        help="print the daemon's telemetry as Prometheus text exposition",
    )
    submit.add_argument("--shutdown", action="store_true", help="stop the daemon")
    submit.add_argument(
        "argv", nargs=argparse.REMAINDER, metavar="VERB ...",
        help="the verb (and its flags) to run on the daemon",
    )
    submit.set_defaults(func=_cmd_submit, verb="submit")

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
