"""Unified diagnostics for the Phloem toolchain.

Every finding of the static pipeline-safety analyzer
(:mod:`repro.analysis.sanitize`), and every frontend/verifier failure the
``repro lint`` CLI reports, flows through this module: a stable error code
(``PHL001``...), a severity, a message, and an optional source
:class:`Span` threaded from the frontend AST through lowering onto the IR
statements themselves.

The code registry is append-only: codes are stable identifiers that tests,
CI jobs, and editor integrations key on, so a code is never renumbered or
reused once shipped.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, Optional

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
NOTE = "note"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, NOTE: 2}

#: Schema identity stamped on ``repro lint --json`` reports (the versioned
#: wire envelope, matching the ``repro.obs/run-record`` idiom: additions
#: never bump the version; consumers ignore unknown keys).
LINT_REPORT_SCHEMA = "repro.diag/lint-report"
LINT_REPORT_VERSION = 1

#: Stable diagnostic codes: code -> (default severity, summary).
#: Grouped by hundreds: 0xx toolchain wrappers, 1xx token balance,
#: 2xx deadlock, 3xx cross-stage races, 4xx performance advisories
#: (never errors: the 4xx family reports predictions, not defects).
CODES = {
    "PHL001": (ERROR, "IR structural verification failure"),
    "PHL002": (ERROR, "mini-C parse failure"),
    "PHL003": (ERROR, "AST lowering failure"),
    "PHL004": (ERROR, "compiler pass failure"),
    "PHL101": (ERROR, "queue is produced but never consumed"),
    "PHL102": (ERROR, "queue is consumed but never produced"),
    "PHL103": (ERROR, "control-terminated consumer has no producer sentinel"),
    "PHL104": (WARNING, "conditional token imbalance between branch arms"),
    "PHL105": (ERROR, "enqueue/dequeue multiplicity mismatch"),
    "PHL201": (WARNING, "cyclic stage/queue topology"),
    "PHL202": (ERROR, "capacity-infeasible queue cycle"),
    "PHL203": (ERROR, "fan-in queue ordering can deadlock bounded queues"),
    "PHL301": (ERROR, "array written by multiple stages (write-write race)"),
    "PHL302": (ERROR, "cross-stage read of a written array (read-write race)"),
    "PHL303": (WARNING, "non-commutative reduction under replication"),
    "PHL304": (ERROR, "shared scalar crosses stages without a barrier"),
    "PHL401": (NOTE, "predicted bottleneck stage serializes the pipeline"),
    "PHL402": (WARNING, "undersized queue likely to full-stall its producer"),
    "PHL403": (NOTE, "oversized queue wastes buffer capacity"),
    "PHL404": (WARNING, "data-dependent distribution key risks replica load imbalance"),
    "PHL405": (WARNING, "predicted issue-bandwidth starvation on a shared core"),
}


class Span:
    """A source position: 1-based line, optional column, optional file."""

    __slots__ = ("line", "col", "file")

    def __init__(self, line: int, col: Optional[int] = None, file: Optional[str] = None) -> None:
        self.line = line
        self.col = col
        self.file = file

    @classmethod
    def from_error(cls, exc: BaseException, file: Optional[str] = None) -> Optional[Span]:
        """Lift the line/col of a :class:`~repro.errors.SpannedError`."""
        line = getattr(exc, "line", None)
        if line is None:
            return None
        return cls(line, getattr(exc, "col", None), file)

    def render(self) -> str:
        pos = "line %d" % self.line if self.col is None else "%d:%d" % (self.line, self.col)
        return "%s:%s" % (self.file, pos) if self.file else pos

    def as_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"line": self.line}
        if self.col is not None:
            d["col"] = self.col
        if self.file is not None:
            d["file"] = self.file
        return d

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Span)
            and (self.line, self.col, self.file) == (other.line, other.col, other.file)
        )

    def __repr__(self) -> str:
        return "Span(%s)" % self.render()


class Diagnostic:
    """One finding: a coded, severity-ranked message with optional position.

    ``where`` carries pipeline context that is not a source position (e.g.
    ``"stage 1 (fetch_edges)"`` or ``"queue 3"``) so findings on compiler-
    synthesized statements stay actionable even without a span.
    """

    __slots__ = ("code", "severity", "message", "span", "where")

    def __init__(
        self,
        code: str,
        message: str,
        span: Optional[Span] = None,
        where: Optional[str] = None,
        severity: Optional[str] = None,
    ) -> None:
        if code not in CODES:
            raise ValueError("unknown diagnostic code %r" % (code,))
        self.code = code
        self.severity = severity if severity is not None else CODES[code][0]
        if self.severity not in _SEVERITY_RANK:
            raise ValueError("unknown severity %r" % (self.severity,))
        self.message = message
        self.span = span
        self.where = where

    def render(self) -> str:
        parts = []
        if self.span is not None:
            parts.append(self.span.render() + ":")
        parts.append("%s[%s]:" % (self.severity, self.code))
        parts.append(self.message)
        if self.where:
            parts.append("[%s]" % self.where)
        return " ".join(parts)

    def as_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            d["span"] = self.span.as_dict()
        if self.where is not None:
            d["where"] = self.where
        return d

    def __repr__(self) -> str:
        return "Diagnostic(%s)" % self.render()


class DiagnosticSet:
    """An ordered collection of findings with severity-aware helpers."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics = list(diagnostics)

    def add(
        self,
        code: str,
        message: str,
        span: Optional[Span] = None,
        where: Optional[str] = None,
        severity: Optional[str] = None,
    ) -> Diagnostic:
        diag = Diagnostic(code, message, span=span, where=where, severity=severity)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: Iterable[Diagnostic]) -> DiagnosticSet:
        self.diagnostics.extend(other)
        return self

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered most-severe-first, then by a total order.

        The key is (severity, file, line, col, code, where, message): a
        *total* order over every field that renders, so the emitted text is
        byte-stable across ``PYTHONHASHSEED`` values and set/dict iteration
        orders in the analyzers that produced the findings.
        """
        def key(d: Diagnostic) -> tuple[int, str, int, int, str, str, str]:
            span = d.span
            return (
                _SEVERITY_RANK[d.severity],
                (span.file or "") if span is not None else "",
                span.line if span is not None else 1 << 30,
                (span.col if span.col is not None else -1) if span is not None else -1,
                d.code,
                d.where or "",
                d.message,
            )

        return sorted(self.diagnostics, key=key)

    def render_text(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        lines = [d.render() for d in self.sorted()]
        n_err, n_warn = len(self.errors()), len(self.warnings())
        lines.append("%d error(s), %d warning(s)" % (n_err, n_warn))
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "diagnostics": [d.as_dict() for d in self.sorted()],
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
            },
            sort_keys=True,
            indent=2,
        )

    def raise_if_errors(self, prefix: str = "static analysis failed") -> DiagnosticSet:
        """Raise :class:`~repro.errors.SanitizeError` when errors are present."""
        errors = self.errors()
        if not errors:
            return self
        from .errors import SanitizeError

        message = "%s:\n%s" % (prefix, "\n".join(d.render() for d in errors))
        raise SanitizeError(message, diagnostics=errors)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        return "DiagnosticSet(%d errors, %d warnings)" % (
            len(self.errors()),
            len(self.warnings()),
        )


def from_exception(exc: BaseException, file: Optional[str] = None) -> DiagnosticSet:
    """Wrap a toolchain exception as a one-diagnostic set (lint CLI path)."""
    from .errors import CompileError, IRVerificationError, LoweringError, ParseError

    if isinstance(exc, ParseError):
        code = "PHL002"
    elif isinstance(exc, LoweringError):
        code = "PHL003"
    elif isinstance(exc, IRVerificationError):
        code = "PHL001"
    elif isinstance(exc, CompileError):
        code = "PHL004"
    else:
        raise TypeError("not a diagnosable toolchain error: %r" % (exc,))
    diags = DiagnosticSet()
    # SpannedError already formats "line L:C:" into str(exc); strip it so the
    # rendered diagnostic does not repeat the position.
    message = str(exc)
    span = Span.from_error(exc, file=file)
    if span is not None:
        prefix = "line %d:%d: " % (span.line, span.col if span.col is not None else 0)
        if message.startswith(prefix):
            message = message[len(prefix):]
    diags.add(code, message, span=span)
    return diags
