"""Lowering from mini-C ASTs to Phloem IR.

This is where serial C semantics become the fine-grain region-tree IR:
expressions flatten to three-address statements, ``for`` loops with affine
headers become IR ``For`` nodes (the shape the cost model and decoupler
reason about), and everything else becomes ``Loop``/``If``/``Break``.

Symbol kinds:

* pointer parameters -> arrays (referenced as ``@name``);
* scalar parameters and locals -> mutable registers named after the source;
* pointer-typed locals -> registers holding array *handles* (this is how the
  swappable ``cur_fringe``/``next_fringe`` of BFS are modeled).
"""

from .. import ir
from ..diag import Span
from ..errors import LoweringError
from . import cast
from .parser import parse
from .pragmas import DECOUPLE_MARK, DISTRIBUTE_MARK, collect_function_pragmas, parse_pragma

#: Identifiers resolved as compile-time constants, as <limits.h> would.
BUILTIN_CONSTANTS = {
    "INT_MAX": 2**31 - 1,
    "INT_MIN": -(2**31),
    "LONG_MAX": 2**63 - 1,
    "UINT_MAX": 2**32 - 1,
}

_BINOP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "!=": "ne",
}

_BOOL_PRODUCING = frozenset(["<", "<=", ">", ">=", "==", "!=", "&&", "||"])


class _Symbols:
    SCALAR = "scalar"
    ARRAY = "array"
    POINTER = "pointer"

    def __init__(self):
        self.kinds = {}

    def declare(self, name, kind):
        self.kinds[name] = kind

    def kind_of(self, name):
        return self.kinds.get(name)


class Lowerer:
    """Lowers one FuncDef to an ir.Function."""

    def __init__(self, funcdef):
        self.funcdef = funcdef
        self.builder = ir.IRBuilder(temp_prefix="%t")
        self.symbols = _Symbols()
        self.arrays = {}
        self.scalar_params = []
        self.intrinsic_names = set()

    # -- helpers ------------------------------------------------------------

    def error(self, node, msg):
        raise LoweringError(msg, line=getattr(node, "line", None))

    def _span(self, node):
        """The diag Span of an AST node, or None when the parser lost it."""
        line = getattr(node, "line", None)
        return Span(line) if line is not None else None

    def _is_pure(self, expr):
        """True if evaluating ``expr`` has no side effects."""
        if isinstance(expr, (cast.Name, cast.Number)):
            return True
        if isinstance(expr, cast.Unary):
            return self._is_pure(expr.operand)
        if isinstance(expr, cast.Binary):
            return self._is_pure(expr.lhs) and self._is_pure(expr.rhs)
        if isinstance(expr, cast.Ternary):
            return self._is_pure(expr.cond) and self._is_pure(expr.then_expr) and self._is_pure(expr.else_expr)
        if isinstance(expr, cast.Index):
            return self._is_pure(expr.base) and self._is_pure(expr.index)
        return False  # Assign, IncDec, CallExpr

    def _as_bool(self, expr, operand):
        """Normalize a lowered operand to 0/1 when its AST shape isn't boolean."""
        if isinstance(expr, cast.Binary) and expr.op in _BOOL_PRODUCING:
            return operand
        if isinstance(expr, cast.Unary) and expr.op == "not":
            return operand
        if isinstance(operand, (int, float)):
            return 1 if operand else 0
        return self.builder.binop("ne", operand, 0)

    # -- entry point ------------------------------------------------------------

    def lower(self):
        fd = self.funcdef
        for param in fd.params:
            if param.type.is_pointer:
                if not param.type.restrict:
                    raise LoweringError(
                        "pointer parameter %r lacks 'restrict': Phloem requires "
                        "precise aliasing information (paper Sec. IV-A)" % param.name
                    )
                self.symbols.declare(param.name, _Symbols.ARRAY)
                self.arrays[param.name] = ir.ArrayDecl(
                    param.name,
                    elem_size=param.type.elem_size,
                    readonly=param.type.const,
                    restrict=True,
                    is_float=param.type.is_float,
                )
            else:
                self.symbols.declare(param.name, _Symbols.SCALAR)
                self.scalar_params.append(param.name)

        self.lower_body(fd.body, toplevel=True)
        body = self.builder.finish()
        pragmas = collect_function_pragmas(fd.pragmas)
        function = ir.Function(fd.name, self.scalar_params, self.arrays, body, pragmas)
        ir.verify_function(function)
        return function

    # -- statements ------------------------------------------------------------

    def lower_body(self, stmts, toplevel=False):
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, cast.ReturnStmt):
                if stmt.expr is not None:
                    self.error(stmt, "kernels must return void")
                if not (toplevel and i == len(stmts) - 1):
                    self.error(stmt, "early return is not supported")
                continue
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt):
        span = self._span(stmt)
        if span is not None:
            self.builder.at(span)
        if isinstance(stmt, cast.VarDecl):
            self.lower_vardecl(stmt)
        elif isinstance(stmt, cast.ExprStmt):
            self.lower_expr_stmt(stmt.expr)
        elif isinstance(stmt, cast.IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, cast.WhileStmt):
            self.lower_while(stmt)
        elif isinstance(stmt, cast.ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, cast.BreakStmt):
            self.builder.break_()
        elif isinstance(stmt, cast.ContinueStmt):
            self.builder.continue_()
        elif isinstance(stmt, cast.PragmaStmt):
            name, _args = parse_pragma(stmt.text)
            if name == "decouple":
                self.builder.comment(DECOUPLE_MARK)
            elif name == "distribute":
                self.builder.comment(DISTRIBUTE_MARK)
            else:
                self.error(stmt, "#pragma %s is not valid inside a body" % name)
        elif isinstance(stmt, cast.ReturnStmt):
            self.error(stmt, "early return is not supported")
        else:
            self.error(stmt, "unsupported statement %r" % type(stmt).__name__)

    def lower_vardecl(self, decl):
        if decl.type.is_pointer:
            self.symbols.declare(decl.name, _Symbols.POINTER)
            if decl.init is None:
                self.error(decl, "pointer local %r needs an initializer" % decl.name)
            value = self.lower_expr(decl.init)
            if not (ir.is_array_symbol(value) or self._is_pointer_reg(value)):
                self.error(decl, "pointer local %r must be initialized from an array" % decl.name)
            self.builder.mov(value, dst=decl.name)
        else:
            self.symbols.declare(decl.name, _Symbols.SCALAR)
            init = 0.0 if decl.type.is_float else 0
            value = self.lower_expr(decl.init) if decl.init is not None else init
            self.builder.mov(value, dst=decl.name)

    def _is_pointer_reg(self, operand):
        return isinstance(operand, str) and self.symbols.kind_of(operand) == _Symbols.POINTER

    def lower_expr_stmt(self, expr):
        if isinstance(expr, cast.Assign):
            self.lower_assign(expr)
        elif isinstance(expr, cast.IncDec):
            self.lower_incdec(expr, need_value=False)
        elif isinstance(expr, cast.CallExpr):
            self.lower_call(expr, need_value=False)
        else:
            # A pure expression statement has no effect; evaluate for errors.
            self.lower_expr(expr)

    def lower_assign(self, node):
        target = node.target
        if isinstance(target, cast.Name):
            name = target.ident
            kind = self.symbols.kind_of(name)
            if kind is None:
                self.error(node, "assignment to undeclared variable %r" % name)
            if kind == _Symbols.ARRAY:
                self.error(node, "cannot assign to array parameter %r" % name)
            if node.op is None:
                value = self.lower_expr(node.value)
                if kind == _Symbols.POINTER and not (
                    ir.is_array_symbol(value) or self._is_pointer_reg(value)
                ):
                    self.error(node, "pointer %r must be assigned from an array" % name)
                self.builder.mov(value, dst=name)
            else:
                if kind == _Symbols.POINTER:
                    self.error(node, "pointer arithmetic is not supported")
                value = self.lower_expr(node.value)
                self.builder.binop(node.op, name, value, dst=name)
        elif isinstance(target, cast.Index):
            array, index = self.lower_index_target(target)
            if node.op is None:
                value = self.lower_expr(node.value)
            else:
                old = self.builder.load(array, index)
                rhs = self.lower_expr(node.value)
                value = self.builder.binop(node.op, old, rhs)
            self.builder.store(array, index, value)
        else:
            self.error(node, "invalid assignment target")

    def lower_incdec(self, node, need_value):
        target = node.target
        op = "add" if node.delta > 0 else "sub"
        if isinstance(target, cast.Name):
            name = target.ident
            if self.symbols.kind_of(name) != _Symbols.SCALAR:
                self.error(node, "++/-- target must be a scalar variable")
            if need_value and not node.is_prefix:
                old = self.builder.mov(name)
                self.builder.binop(op, name, 1, dst=name)
                return old
            self.builder.binop(op, name, 1, dst=name)
            return name
        if isinstance(target, cast.Index):
            array, index = self.lower_index_target(target)
            old = self.builder.load(array, index)
            new = self.builder.binop(op, old, 1)
            self.builder.store(array, index, new)
            return old if (need_value and not node.is_prefix) else new
        self.error(node, "invalid ++/-- target")

    def lower_index_target(self, node):
        """Lower the base/index of an Index node; returns (array_operand, index_operand)."""
        base = node.base
        if not isinstance(base, cast.Name):
            self.error(node, "only direct array indexing is supported")
        kind = self.symbols.kind_of(base.ident)
        if kind == _Symbols.ARRAY:
            array = "@" + base.ident
        elif kind == _Symbols.POINTER:
            array = base.ident
        else:
            self.error(node, "%r is not an array or pointer" % base.ident)
        index = self.lower_expr(node.index)
        return array, index

    def lower_call(self, node, need_value):
        args = [self.lower_expr(a) for a in node.args]
        self.intrinsic_names.add(node.func)
        dst = self.builder.fresh() if need_value else None
        self.builder.call(dst, node.func, args)
        return dst

    def lower_if(self, node):
        # The container node is emitted when its context closes, after the
        # body set other spans: restore the header span so it lands on the
        # If/Loop/For node itself.
        span = self._span(node)
        cond = self._as_bool(node.cond, self.lower_expr(node.cond))
        with self.builder.if_else(cond) as (then_arm, else_arm):
            with then_arm:
                self.lower_body(node.then_body)
            with else_arm:
                self.lower_body(node.else_body)
            self.builder.at(span)

    def lower_while(self, node):
        span = self._span(node)
        with self.builder.loop():
            cond = self._as_bool(node.cond, self.lower_expr(node.cond))
            stop = self.builder.assign("not", [cond])
            with self.builder.if_(stop):
                self.builder.break_()
            self.lower_body(node.body)
            self.builder.at(span)

    def lower_for(self, node):
        span = self._span(node)
        affine = self._match_affine_for(node)
        if affine is not None:
            var, lo_expr, hi_expr, step = affine
            lo = self.lower_expr(lo_expr)
            hi = self.lower_expr(hi_expr)
            self.symbols.declare(var, _Symbols.SCALAR)
            with self.builder.for_(var, lo, hi, step):
                self.lower_body(node.body)
                self.builder.at(span)
            return
        # General form: lower like a while loop.
        for init in node.init:
            self.lower_stmt(init)
        with self.builder.loop():
            if node.cond is not None:
                cond = self._as_bool(node.cond, self.lower_expr(node.cond))
                stop = self.builder.assign("not", [cond])
                with self.builder.if_(stop):
                    self.builder.break_()
            self.lower_body(node.body)
            if node.post is not None:
                self.lower_expr_stmt(node.post)
            self.builder.at(span)

    def _match_affine_for(self, node):
        """Recognize ``for (v = lo; v < hi; v += step)`` headers.

        Returns ``(var, lo_expr, hi_expr, step)`` or None. The bound must not
        be reassigned inside the body (C re-evaluates it every iteration; the IR
        ``For`` evaluates it once), and the body must not touch ``v``.
        """
        if len(node.init) != 1 or node.cond is None or node.post is None:
            return None
        init = node.init[0]
        if isinstance(init, cast.VarDecl) and not init.type.is_pointer and init.init is not None:
            var = init.name
            lo_expr = init.init
        elif (
            isinstance(init, cast.ExprStmt)
            and isinstance(init.expr, cast.Assign)
            and init.expr.op is None
            and isinstance(init.expr.target, cast.Name)
        ):
            var = init.expr.target.ident
            lo_expr = init.expr.value
        else:
            return None

        cond = node.cond
        if not (
            isinstance(cond, cast.Binary)
            and cond.op == "<"
            and isinstance(cond.lhs, cast.Name)
            and cond.lhs.ident == var
        ):
            return None
        hi_expr = cond.rhs

        post = node.post
        if isinstance(post, cast.IncDec) and isinstance(post.target, cast.Name) and post.target.ident == var:
            step = post.delta
        elif (
            isinstance(post, cast.Assign)
            and post.op == "add"
            and isinstance(post.target, cast.Name)
            and post.target.ident == var
            and isinstance(post.value, cast.Number)
        ):
            step = post.value.value
        else:
            return None
        if step <= 0:
            return None

        mutated = self._mutated_names(node.body)
        if var in mutated:
            return None
        for name in self._expr_names(hi_expr) | self._expr_names(lo_expr):
            if name in mutated:
                return None
        return var, lo_expr, hi_expr, step

    def _mutated_names(self, body):
        names = set()

        def visit_expr(expr):
            if isinstance(expr, cast.Assign):
                if isinstance(expr.target, cast.Name):
                    names.add(expr.target.ident)
                visit_expr(expr.value)
            elif isinstance(expr, cast.IncDec):
                if isinstance(expr.target, cast.Name):
                    names.add(expr.target.ident)
            elif isinstance(expr, cast.Binary):
                visit_expr(expr.lhs)
                visit_expr(expr.rhs)
            elif isinstance(expr, cast.Unary):
                visit_expr(expr.operand)
            elif isinstance(expr, cast.Ternary):
                visit_expr(expr.cond)
                visit_expr(expr.then_expr)
                visit_expr(expr.else_expr)
            elif isinstance(expr, cast.CallExpr):
                for a in expr.args:
                    visit_expr(a)
            elif isinstance(expr, cast.Index):
                visit_expr(expr.index)

        def visit_stmt(stmt):
            if isinstance(stmt, cast.VarDecl):
                names.add(stmt.name)
            elif isinstance(stmt, cast.ExprStmt):
                visit_expr(stmt.expr)
            elif isinstance(stmt, cast.IfStmt):
                for s in stmt.then_body:
                    visit_stmt(s)
                for s in stmt.else_body:
                    visit_stmt(s)
            elif isinstance(stmt, cast.WhileStmt):
                for s in stmt.body:
                    visit_stmt(s)
            elif isinstance(stmt, cast.ForStmt):
                for s in stmt.init:
                    visit_stmt(s)
                if stmt.post is not None:
                    visit_expr(stmt.post)
                for s in stmt.body:
                    visit_stmt(s)

        for stmt in body:
            visit_stmt(stmt)
        return names

    def _expr_names(self, expr):
        names = set()
        stack = [expr]
        while stack:
            e = stack.pop()
            if isinstance(e, cast.Name):
                names.add(e.ident)
            elif isinstance(e, cast.Binary):
                stack.extend([e.lhs, e.rhs])
            elif isinstance(e, cast.Unary):
                stack.append(e.operand)
            elif isinstance(e, cast.Ternary):
                stack.extend([e.cond, e.then_expr, e.else_expr])
            elif isinstance(e, cast.Index):
                stack.extend([e.base, e.index])
            elif isinstance(e, cast.CallExpr):
                stack.extend(e.args)
        return names

    # -- expressions -----------------------------------------------------------

    def lower_expr(self, node):
        if isinstance(node, cast.Number):
            return node.value
        if isinstance(node, cast.Name):
            name = node.ident
            if name in BUILTIN_CONSTANTS:
                return BUILTIN_CONSTANTS[name]
            kind = self.symbols.kind_of(name)
            if kind == _Symbols.ARRAY:
                return "@" + name
            if kind is None:
                self.error(node, "use of undeclared identifier %r" % name)
            return name
        if isinstance(node, cast.Unary):
            operand = self.lower_expr(node.operand)
            if isinstance(operand, (int, float)):
                return ir.evaluate(node.op, [operand])
            return self.builder.assign(node.op, [operand])
        if isinstance(node, cast.Binary):
            return self.lower_binary(node)
        if isinstance(node, cast.Ternary):
            if not self._is_pure(node):
                self.error(node, "?: with side effects is not supported")
            cond = self._as_bool(node.cond, self.lower_expr(node.cond))
            a = self.lower_expr(node.then_expr)
            b = self.lower_expr(node.else_expr)
            return self.builder.assign("select", [cond, a, b])
        if isinstance(node, cast.Index):
            array, index = self.lower_index_target(node)
            return self.builder.load(array, index)
        if isinstance(node, cast.Assign):
            self.lower_assign(node)
            if isinstance(node.target, cast.Name):
                return node.target.ident
            self.error(node, "assignment used as a value must target a variable")
        if isinstance(node, cast.IncDec):
            return self.lower_incdec(node, need_value=True)
        if isinstance(node, cast.CallExpr):
            return self.lower_call(node, need_value=True)
        self.error(node, "unsupported expression %r" % type(node).__name__)

    def lower_binary(self, node):
        if node.op in ("&&", "||"):
            if not self._is_pure(node):
                self.error(node, "%s with side effects is not supported" % node.op)
            lhs = self._as_bool(node.lhs, self.lower_expr(node.lhs))
            rhs = self._as_bool(node.rhs, self.lower_expr(node.rhs))
            return self.builder.binop("and" if node.op == "&&" else "or", lhs, rhs)
        op = _BINOP_MAP.get(node.op)
        if op is None:
            self.error(node, "unsupported operator %r" % node.op)
        lhs = self.lower_expr(node.lhs)
        rhs = self.lower_expr(node.rhs)
        if isinstance(lhs, (int, float)) and isinstance(rhs, (int, float)):
            return ir.evaluate(op, [lhs, rhs])
        return self.builder.binop(op, lhs, rhs)


def lower_function(funcdef):
    """Lower a single parsed FuncDef into an ir.Function."""
    return Lowerer(funcdef).lower()


def compile_source(source, name=None, inline=True):
    """Parse mini-C ``source`` and lower it; returns one ir.Function.

    If the source contains several functions, ``name`` selects which one;
    calls to the *other* functions in the unit are inlined first (so their
    loops and loads participate in decoupling — the paper's Sec. IV-A
    future work). Calls to names not defined in the unit stay opaque
    intrinsics. Pass ``inline=False`` to treat every call as an intrinsic.
    """
    funcdefs = parse(source)
    if not funcdefs:
        raise LoweringError("no functions in source")
    if name is None:
        if len(funcdefs) > 1:
            raise LoweringError("multiple functions in source; pass name=")
        name = funcdefs[0].name
    matches = [f for f in funcdefs if f.name == name]
    if not matches:
        raise LoweringError("no function named %r in source" % name)
    if inline and len(funcdefs) > 1:
        from .inline import inline_unit

        return lower_function(inline_unit(funcdefs, name))
    return lower_function(matches[0])
