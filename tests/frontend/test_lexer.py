"""Mini-C lexer behaviour."""

import pytest

from repro.errors import ParseError
from repro.frontend.lexer import tokenize


def _kinds(src):
    return [(t.kind, t.value) for t in tokenize(src) if t.kind != "eof"]


def test_idents_and_keywords():
    toks = _kinds("int foo while bar")
    assert toks == [
        ("keyword", "int"),
        ("ident", "foo"),
        ("keyword", "while"),
        ("ident", "bar"),
    ]


def test_numbers():
    toks = _kinds("42 0x1F 3.5 1e3 2.5e-2")
    values = [v for _, v in toks]
    assert values == [42, 31, 3.5, 1000.0, 0.025]


def test_integer_suffixes():
    toks = _kinds("42u 7L 1.0f 3f")
    values = [v for _, v in toks]
    assert values == [42, 7, 1.0, 3.0]


def test_punctuation_longest_match():
    toks = _kinds("a <<= b << c <= d < e")
    puncts = [v for k, v in toks if k == "punct"]
    assert puncts == ["<<=", "<<", "<=", "<"]


def test_comments_skipped():
    toks = _kinds("a // line comment\n b /* block\n comment */ c")
    assert [v for _, v in toks] == ["a", "b", "c"]


def test_unterminated_block_comment():
    with pytest.raises(ParseError, match="unterminated"):
        tokenize("/* nope")


def test_pragma_token():
    toks = tokenize("#pragma phloem\nint x;")
    assert toks[0].kind == "pragma"
    assert toks[0].value == "phloem"


def test_includes_ignored():
    toks = _kinds("#include <limits.h>\nint x;")
    assert toks[0] == ("keyword", "int")


def test_unknown_preprocessor_rejected():
    with pytest.raises(ParseError, match="unsupported preprocessor"):
        tokenize("#ifdef FOO")


def test_unexpected_char():
    with pytest.raises(ParseError, match="unexpected character"):
        tokenize("int $x;")


def test_line_numbers():
    toks = tokenize("a\nb\n  c")
    a, b, c = toks[0], toks[1], toks[2]
    assert (a.line, b.line, c.line) == (1, 2, 3)
    assert c.col == 3
