"""Machine assembly: placement, limits, stats, energy, multicore queues."""

import pytest

from repro import ir
from repro.errors import ResourceError
from repro.pipette import Machine, MachineConfig, RunSpec, energy_of


def _counted_pipe(nstages):
    stages = []
    queues = []
    for i in range(nstages):
        b = ir.IRBuilder()
        if i == 0:
            with b.for_("i", 0, 50):
                b.enq(0, "i")
        elif i == nstages - 1:
            b.mov(0, dst="acc")
            with b.for_("i", 0, 50):
                v = b.deq(i - 1)
                b.binop("add", "acc", v, dst="acc")
            b.store("@out", 0, "acc")
        else:
            with b.for_("i", 0, 50):
                v = b.deq(i - 1)
                b.enq(i, v)
        stages.append(ir.StageProgram(i, "s%d" % i, b.finish()))
        if i:
            queues.append(ir.QueueSpec(i - 1, ("stage", i - 1), ("stage", i)))
    return ir.PipelineProgram("chain", stages, queues, [], {"out": ir.ArrayDecl("out")}, [])


def test_smt_thread_limit():
    pipe = _counted_pipe(5)
    with pytest.raises(ResourceError, match="SMT threads"):
        Machine(MachineConfig(smt_threads=4)).run(RunSpec(pipe, {"out": [0]}, {}))


def test_stage_cores_spread():
    pipe = _counted_pipe(5)
    cfg = MachineConfig(cores=2)
    res = Machine(cfg).run(
        RunSpec(pipe, {"out": [0]}, {}, stage_cores=[0, 0, 0, 1, 1])
    )
    assert res.arrays()["out"] == [sum(range(50))]


def test_unknown_core_rejected():
    pipe = _counted_pipe(2)
    with pytest.raises(ResourceError, match="core"):
        Machine(MachineConfig(cores=1)).run(RunSpec(pipe, {"out": [0]}, {}, core=3))


def test_cross_core_queue_gets_higher_latency():
    pipe = _counted_pipe(2)
    cfg = MachineConfig(cores=2)
    m_same = Machine(cfg)
    same = m_same.run(RunSpec(pipe, {"out": [0]}, {}, stage_cores=[0, 0]))
    m_cross = Machine(cfg)
    cross = m_cross.run(RunSpec(pipe, {"out": [0]}, {}, stage_cores=[0, 1]))
    assert cross.arrays()["out"] == same.arrays()["out"]
    assert m_same.envs[0].queues[0].latency == cfg.queue_latency
    assert m_cross.envs[0].queues[0].latency == cfg.xcore_queue_latency


def test_wall_cycles_and_stats():
    pipe = _counted_pipe(3)
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    assert res.cycles > 0
    assert res.stats.total_uops > 100
    assert res.stats.queue_enqs == res.stats.queue_deqs == 100
    breakdown = res.stats.cycle_breakdown()
    primary = sum(breakdown[k] for k in ("issue", "backend", "queue", "other"))
    assert abs(primary - res.cycles) < 1.0
    assert breakdown["branch"] + breakdown["barrier"] <= breakdown["other"] + 1e-9


def test_energy_components():
    pipe = _counted_pipe(2)
    cfg = MachineConfig()
    res = Machine(cfg).run(RunSpec(pipe, {"out": [0]}, {}))
    energy = energy_of(res.stats, cfg, active_cores=1)
    d = energy.as_dict()
    assert d["core_dynamic"] > 0
    assert d["core_static"] > 0
    assert energy.total == sum(d.values())


def test_replica_runs_share_arrays():
    shared = [0] * 4

    def writer(offset):
        b = ir.IRBuilder()
        b.store("@buf", offset, offset + 1)
        stage = ir.StageProgram(0, "w", b.finish())
        return ir.PipelineProgram("w%d" % offset, [stage], [], [], {"buf": ir.ArrayDecl("buf")}, [])

    specs = [
        RunSpec(writer(0), {"buf": shared}, {}, core=0),
        RunSpec(writer(1), {"buf": shared}, {}, core=0),
    ]
    res = Machine(MachineConfig()).run(specs)
    assert res.arrays(0)["buf"][:2] == [1, 2]
    assert res.arrays(0)["buf"] is res.arrays(1)["buf"]


def test_enq_dist_routes_to_replica():
    # Replica 0 sends a value to replica 1's queue 0.
    b0 = ir.IRBuilder()
    b0.enq_dist(0, 42, 1)
    sender_stage = ir.StageProgram(0, "s", b0.finish())
    b1 = ir.IRBuilder()
    v = b1.deq(0)
    b1.store("@out", 0, v)
    recv_stage = ir.StageProgram(1, "r", b1.finish())

    def make(arrays):
        return ir.PipelineProgram(
            "repl",
            [sender_stage.clone(), recv_stage.clone()],
            [ir.QueueSpec(0, ("stage", 0), ("stage", 1))],
            [],
            {"out": ir.ArrayDecl("out")},
            [],
        )

    out0, out1 = [0], [0]
    specs = [
        RunSpec(make(out0), {"out": out0}, {}, core=0),
        RunSpec(make(out1), {"out": out1}, {}, core=0),
    ]
    # Both replicas' senders route to replica 1; both receivers need a
    # value, so send to 0 from replica 1 as well.
    specs[1].pipeline.stages[0].body[0] = ir.EnqDist(0, 7, 0)
    res = Machine(MachineConfig()).run(specs)
    assert res.arrays(0)["out"] == [7]
    assert res.arrays(1)["out"] == [42]
