"""The paper's benchmarks, inputs, and baseline variants."""

from . import bfs, cc, datasets, graphs, matrices, prd, radii, spmm
from .dataflow import dataflow_variant
from .graphs import CSRGraph, mesh3d, power_law, road_network, uniform_random
from .matrices import CSRMatrix, random_matrix

#: The five C benchmarks of Sec. VI-B, by name.
GRAPH_BENCHMARKS = {"bfs": bfs, "cc": cc, "prd": prd, "radii": radii}
ALL_BENCHMARKS = dict(GRAPH_BENCHMARKS, spmm=spmm)

__all__ = [
    "bfs",
    "cc",
    "datasets",
    "graphs",
    "matrices",
    "prd",
    "radii",
    "spmm",
    "dataflow_variant",
    "CSRGraph",
    "mesh3d",
    "power_law",
    "road_network",
    "uniform_random",
    "CSRMatrix",
    "random_matrix",
    "GRAPH_BENCHMARKS",
    "ALL_BENCHMARKS",
]
