"""Operation vocabulary for the Phloem IR.

The IR is deliberately fine-grained (Sec. V of the paper: "a custom IR that
represents fine-grain operations (e.g., load, add)"), so each ``Assign``
statement performs exactly one scalar operation drawn from the tables here.
"""

#: Binary arithmetic/logic operations. Each takes two scalar operands.
BINARY_OPS = frozenset(
    [
        "add",
        "sub",
        "mul",
        "div",
        "mod",
        "and",
        "or",
        "xor",
        "shl",
        "shr",
        "lt",
        "le",
        "gt",
        "ge",
        "eq",
        "ne",
        "min",
        "max",
        "pack2",
    ]
)

#: Unary operations. ``mov`` is a plain register copy (used heavily by the
#: add-queues and recompute passes when rewiring values between stages).
#: ``fst``/``snd`` unpack a paired queue entry (see ``pack2``).
UNARY_OPS = frozenset(["neg", "not", "mov", "fst", "snd"])

#: Ternary operations. ``select(c, a, b)`` evaluates to ``a`` if ``c`` is
#: truthy else ``b``; it lets the frontend lower simple conditional
#: expressions without introducing control flow.
TERNARY_OPS = frozenset(["select"])

ALL_OPS = BINARY_OPS | UNARY_OPS | TERNARY_OPS

#: Comparison operations; their results feed branches, so the simulator's
#: branch predictor cares about where their inputs came from.
COMPARE_OPS = frozenset(["lt", "le", "gt", "ge", "eq", "ne"])

_PYTHON_BINARY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: _checked_div(a, b),
    "mod": lambda a, b: _checked_mod(a, b),
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "min": lambda a, b: a if a < b else b,
    "max": lambda a, b: a if a > b else b,
    # A double-width queue entry (replicated pipelines distribute value
    # pairs atomically through one queue; hardware-wise a 128-bit entry).
    "pack2": lambda a, b: (a, b),
}

_PYTHON_UNARY = {
    "neg": lambda a: -a,
    "not": lambda a: 0 if a else 1,
    "mov": lambda a: a,
    "fst": lambda a: a[0],
    "snd": lambda a: a[1],
}


def _checked_div(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    # C semantics: integer division truncates toward zero.
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _checked_mod(a, b):
    if isinstance(a, float) or isinstance(b, float):
        raise TypeError("mod is undefined on floats")
    # C semantics: sign of the result follows the dividend.
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


def evaluate(op, args):
    """Functionally evaluate ``op`` on concrete argument values.

    This is the single source of truth for operator semantics; the
    simulator's interpreter delegates here.
    """
    if op in _PYTHON_BINARY:
        return _PYTHON_BINARY[op](args[0], args[1])
    if op in _PYTHON_UNARY:
        return _PYTHON_UNARY[op](args[0])
    if op == "select":
        return args[1] if args[0] else args[2]
    raise ValueError("unknown op %r" % (op,))


def arity(op):
    """Number of operands ``op`` consumes."""
    if op in BINARY_OPS:
        return 2
    if op in UNARY_OPS:
        return 1
    if op in TERNARY_OPS:
        return 3
    raise ValueError("unknown op %r" % (op,))
