"""Setup shim: the offline environment lacks `wheel`, so `pip install -e .`
cannot build a PEP 660 editable wheel. `python setup.py develop` (or
`pip install -e . --no-build-isolation` once wheel is available) installs
the package equivalently.
"""
from setuptools import setup

setup()
