"""Named inputs: scaled-down substitutes for the paper's Tables IV and V.

Each entry keeps the *statistical identity* of its namesake — degree
distribution family, avg degree / nnz-per-row, and relative scale — at
sizes a Python-hosted simulator completes in seconds (see DESIGN.md,
substitutions). Training inputs are materially smaller than test inputs,
exactly as in the paper's profile-guided flow.
"""

from functools import lru_cache

from . import graphs, matrices


class GraphInput:
    """A named graph input (Table IV substitute)."""

    def __init__(self, name, domain, builder, training=False):
        self.name = name
        self.domain = domain
        self._builder = builder
        self.training = training

    @lru_cache(maxsize=None)
    def _build_cached(self):
        return self._builder()

    def build(self):
        return self._build_cached()

    def __repr__(self):
        return "GraphInput(%s)" % self.name


class MatrixInput:
    """A named matrix input (Table V substitute)."""

    def __init__(self, name, domain, builder, training=False):
        self.name = name
        self.domain = domain
        self._builder = builder
        self.training = training

    @lru_cache(maxsize=None)
    def _build_cached(self):
        return self._builder()

    def build(self):
        return self._build_cached()

    def __repr__(self):
        return "MatrixInput(%s)" % self.name


#: Training graphs (paper: internet, USA-road-d-NY).
TRAIN_GRAPHS = [
    GraphInput("internet-train", "internet graph", lambda: graphs.power_law(1500, 2, seed=41), training=True),
    GraphInput("road-ny-train", "road network", lambda: graphs.road_network(45, 35, seed=42), training=True),
]

#: Test graphs (paper: coAuthorsDBLP, hugetrace, Freescale1, as-Skitter, USA-road-d).
TEST_GRAPHS = [
    GraphInput("coauthors", "human collaboration", lambda: graphs.power_law(3000, 4, seed=11)),
    GraphInput("hugetrace", "dynamic simulation", lambda: graphs.mesh3d(13, seed=12)),
    GraphInput("freescale", "circuit simulation", lambda: graphs.uniform_random(4000, 5, seed=13)),
    GraphInput("skitter", "internet graph", lambda: graphs.power_law(3500, 6, seed=14)),
    GraphInput("road-usa", "road network", lambda: graphs.road_network(100, 75, seed=15)),
]

#: SpMM training matrices (paper: email-Enron, wiki-Vote).
TRAIN_MATRICES_SPMM = [
    MatrixInput("enron-train", "graph as matrix", lambda: matrices.random_matrix(60, 6, seed=21, pattern="powerlaw"), training=True),
    MatrixInput("wikivote-train", "graph as matrix", lambda: matrices.random_matrix(50, 7, seed=22, pattern="uniform"), training=True),
]

#: SpMM test matrices (paper: p2p-Gnutella31, amazon0312, cage12, 2cubes, rma10).
TEST_MATRICES_SPMM = [
    MatrixInput("gnutella", "file sharing", lambda: matrices.random_matrix(140, 3, seed=31, pattern="uniform")),
    MatrixInput("amazon", "graph as matrix", lambda: matrices.random_matrix(160, 8, seed=32, pattern="powerlaw")),
    MatrixInput("cage12", "gel electrophoresis", lambda: matrices.random_matrix(120, 15, seed=33, pattern="banded")),
    MatrixInput("2cubes", "electromagnetics", lambda: matrices.random_matrix(110, 16, seed=34, pattern="banded")),
    MatrixInput("rma10", "fluid dynamics", lambda: matrices.random_matrix(70, 30, seed=35, pattern="banded")),
]

#: GARDENIA-suite weighted graphs (SSSP): the Table IV substitutes with
#: deterministic integer edge weights in the published uniform / skewed
#: distributions.
SUITE_WEIGHTED_GRAPHS = [
    GraphInput("skitter-w", "internet graph (weighted)", lambda: graphs.with_weights(graphs.power_law(3500, 6, seed=14), max_weight=64, seed=1)),
    GraphInput("road-usa-w", "road network (weighted)", lambda: graphs.with_weights(graphs.road_network(100, 75, seed=15), max_weight=64, seed=2)),
    GraphInput("coauthors-w", "collaboration (weighted)", lambda: graphs.with_weights(graphs.power_law(3000, 4, seed=11), max_weight=64, seed=3, distribution="powerlaw")),
]

#: GARDENIA-suite SpMV matrices (GARDENIA: webbase-1M, shipsec1-like).
TEST_MATRICES_SPMV = [
    MatrixInput("webbase", "web crawl", lambda: matrices.random_matrix(3000, 5, seed=61, pattern="powerlaw")),
    MatrixInput("shipsec", "ship structure", lambda: matrices.random_matrix(2000, 24, seed=62, pattern="banded")),
]

#: Taco test matrices (paper: scircuit, mac_econ, cop20k_A, pwtk, cant).
TEST_MATRICES_TACO = [
    MatrixInput("scircuit", "circuit simulation", lambda: matrices.random_matrix(3400, 6, seed=51, pattern="powerlaw")),
    MatrixInput("mac-econ", "economics", lambda: matrices.random_matrix(4100, 6, seed=52, pattern="uniform")),
    MatrixInput("cop20k", "particle physics", lambda: matrices.random_matrix(2400, 21, seed=53, pattern="uniform")),
    MatrixInput("pwtk", "structural", lambda: matrices.random_matrix(2200, 40, seed=54, pattern="banded")),
    MatrixInput("cant", "cantilever", lambda: matrices.random_matrix(1200, 50, seed=55, pattern="banded")),
]


def graph_by_name(name):
    for g in TRAIN_GRAPHS + TEST_GRAPHS + SUITE_WEIGHTED_GRAPHS:
        if g.name == name:
            return g
    raise KeyError(name)


def matrix_by_name(name):
    for m in (
        TRAIN_MATRICES_SPMM + TEST_MATRICES_SPMM + TEST_MATRICES_SPMV + TEST_MATRICES_TACO
    ):
        if m.name == name:
            return m
    raise KeyError(name)
