"""Regenerates paper Fig. 13: speedup distribution vs pipeline length.

Expected shape: performance does not grow monotonically with stage count —
an interior optimum exists (too many stages add communication), and SpMM's
distribution stays flat/low.
"""

from repro.bench.experiments import fig13_stage_distribution


def test_fig13(once):
    result = once(fig13_stage_distribution)
    print(result["text"])
    dists = result["distributions"]
    assert "bfs" in dists and "spmv" in dists and "spmm" in dists
    bfs_best = {units: max(s) for units, s in dists["bfs"].items()}
    assert max(bfs_best.values()) > 1.5
    # SpMM never gains much, at any pipeline length (paper Fig. 13).
    spmm_all = [s for speeds in dists["spmm"].values() for s in speeds]
    assert max(spmm_all) < 1.5
