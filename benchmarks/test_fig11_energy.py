"""Regenerates paper Fig. 11: energy breakdowns normalized to serial.

Expected shape: Phloem's energy is below serial's on the graph benchmarks
(better core utilization shrinks static energy), and the DRAM component is
roughly unchanged (the same data still moves).
"""

from repro.bench.experiments import fig11_energy_breakdown


def test_fig11(once):
    result = once(fig11_energy_breakdown)
    print(result["text"])
    table = result["energy"]
    for name, variants in table.items():
        serial_total = sum(variants["serial"].values())
        assert abs(serial_total - 1.0) < 1e-6
        if name in ("bfs", "cc", "radii"):
            assert sum(variants["phloem"].values()) < 1.1, name
