"""Differential conformance: every engine ≡ reference interpreter, bit for bit.

Every shipped workload — the five paper benchmarks and the five
GARDENIA-suite workloads (static, data-parallel, and manual-pipeline
variants), the Taco kernels, and the demo figure
output — runs under the full engine matrix (reference interpreter,
closure-compiled fast path, batch-advance whole-stage compiler), and every
observable must be identical: final arrays, total cycles, the full
``SimStats.summary()`` (stall buckets, queue traffic, cache hit counts),
the Fig. 10 cycle breakdown, and the energy model. Any divergence is an
engine bug by definition: the reference interpreter is the oracle.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])

from repro.bench.harness import adapter_for
from repro.core import compile_c, compile_function
from repro.pipette.fastpath import ENGINES
from repro.runtime import run_pipeline
from repro.workloads.matrices import random_matrix

BENCHES = ("bfs", "cc", "prd", "radii", "spmm", "sssp", "pr", "tc", "bc", "spmv")


def _engine_matrix(pipeline, arrays, scalars, config):
    """Run under every engine; returns ``{engine name: RunResult}``."""
    return {
        name: run_pipeline(pipeline, arrays, scalars, config=config, engine=name)
        for name in ENGINES
    }


def _assert_identical(results):
    oracle = results["reference"]
    for name, result in results.items():
        assert result.arrays == oracle.arrays, name
        assert result.cycles == oracle.cycles, name
        assert result.stats.summary() == oracle.stats.summary(), name
        assert result.breakdown() == oracle.breakdown(), name
        assert result.energy().as_dict() == oracle.energy().as_dict(), name


def _bench_data(name, tiny_graph, micro_graph, small=False):
    # sssp coerces a plain graph to a weighted one (deterministic weights);
    # tc and bc canonicalize (symmetrize) internally.
    if name in ("spmm", "spmv"):
        return random_matrix(40 if small else 60, 4, seed=3)
    return micro_graph if small else tiny_graph


@pytest.mark.parametrize("name", BENCHES)
def test_static_pipeline_conformance(name, tiny_graph, micro_graph, tiny_config):
    adapter = adapter_for(name)
    data = _bench_data(name, tiny_graph, micro_graph)
    arrays, scalars = adapter.env(data)
    pipeline = compile_function(adapter.function(), num_stages=4)
    results = _engine_matrix(pipeline, arrays, scalars, tiny_config)
    _assert_identical(results)
    assert adapter.check(results["batch"].arrays, data)


@pytest.mark.parametrize("name", BENCHES)
def test_data_parallel_conformance(name, tiny_graph, micro_graph, tiny_config):
    adapter = adapter_for(name)
    data = _bench_data(name, tiny_graph, micro_graph, small=True)
    arrays, scalars = adapter.dp_env(data, 3)
    pipeline = adapter.dp_pipeline(3)
    results = _engine_matrix(pipeline, arrays, scalars, tiny_config)
    _assert_identical(results)


@pytest.mark.parametrize("name", BENCHES)
def test_manual_pipeline_conformance(name, tiny_graph, micro_graph, tiny_config):
    adapter = adapter_for(name)
    data = _bench_data(name, tiny_graph, micro_graph, small=True)
    arrays, scalars = adapter.env(data)
    pipeline = adapter.manual()
    results = _engine_matrix(pipeline, arrays, scalars, tiny_config)
    _assert_identical(results)


def _taco_cases():
    from repro.taco import (
        ALPHA,
        BETA,
        dense_input,
        mtmul_kernel,
        residual_kernel,
        sddmm_kernel,
        spmv_kernel,
    )

    matrix = random_matrix(60, 4, seed=21)
    cases = []
    kernel = spmv_kernel()
    cases.append((kernel, kernel.bind({"A": matrix, "x": dense_input(matrix.ncols, 1)})))
    kernel = residual_kernel()
    cases.append(
        (
            kernel,
            kernel.bind(
                {
                    "A": matrix,
                    "x": dense_input(matrix.ncols, 2),
                    "b": dense_input(matrix.nrows, 3),
                }
            ),
        )
    )
    small = random_matrix(25, 4, seed=22)
    kdim = 6
    kernel = sddmm_kernel()
    cases.append(
        (
            kernel,
            kernel.bind(
                {
                    "B": small,
                    "C": (dense_input(small.nrows * kdim, 6), kdim),
                    "D": (dense_input(kdim * small.ncols, 7), small.ncols),
                }
            ),
        )
    )
    kernel = mtmul_kernel()
    cases.append(
        (
            kernel,
            kernel.bind(
                {
                    "A": matrix,
                    "x": dense_input(matrix.nrows, 4),
                    "z": dense_input(matrix.ncols, 5),
                    "alpha": ALPHA,
                    "beta": BETA,
                }
            ),
        )
    )
    return cases


def test_taco_kernels_conformance(tiny_config):
    for kernel, (arrays, scalars) in _taco_cases():
        pipeline = compile_c(kernel.source, num_stages=4)
        results = _engine_matrix(pipeline, arrays, scalars, tiny_config)
        _assert_identical(results)


def test_demo_stdout_identical_across_engines(tmp_path):
    """The figure-facing stdout of ``repro demo`` is engine-independent."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_QUIET"] = "1"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    cmd = [sys.executable, "-m", "repro", "demo", "bfs", "--size", "200", "--seed", "3"]

    env.pop("REPRO_SLOWPATH", None)
    env.pop("REPRO_ENGINE", None)
    fast = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )
    assert fast.returncode == 0, fast.stderr
    env["REPRO_ENGINE"] = "batch"
    batch = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )
    assert batch.returncode == 0, batch.stderr
    del env["REPRO_ENGINE"]
    env["REPRO_SLOWPATH"] = "1"
    slow = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )
    assert slow.returncode == 0, slow.stderr
    assert fast.stdout == slow.stdout
    assert batch.stdout == slow.stdout
