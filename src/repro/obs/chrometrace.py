"""Chrome trace-event JSON export (``chrome://tracing`` / Perfetto).

Maps one :class:`~repro.obs.tracer.Tracer` to the Trace Event Format's
JSON-object form: ``{"traceEvents": [...], ...}``. Simulated cycles are
written as microseconds (``ts``/``dur``), so one display microsecond is one
cycle; ``displayTimeUnit`` is set accordingly and the convention is noted
in ``otherData``.

Track layout:

* pid 0 holds one thread track per simulated task (stage threads and RA
  daemons), labeled via ``thread_name`` metadata events and ordered by
  stage index via ``thread_sort_index``;
* scheduler spans are complete ("X") events named ``run`` whose args carry
  the yield reason; stall intervals are nested "X" events named
  ``stall:<bucket>``; RA loads are "X" events named ``ra_load`` on a
  separate ``<task>.mem`` track so in-flight loads do not overlap the
  scheduler spans;
* queue occupancy samples are counter ("C") events, one counter track per
  queue (``occupancy:<queue>``).

:func:`validate_chrome_trace` checks the subset of the format this exporter
emits (it is also what the test suite runs against generated traces).
"""

import json

#: Category names used by the exporter (handy for trace-viewer filtering).
CAT_SCHED = "sched"
CAT_STALL = "stall"
CAT_QUEUE = "queue"
CAT_RA = "ra"

_PID = 0


def export_chrome_trace(tracer, meta=None):
    """Render ``tracer`` as a Trace Event Format JSON object (a dict)."""
    events = []
    tids = {}

    def tid_of(name):
        if name not in tids:
            tid = len(tids)
            tids[name] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        return tids[name]

    # Register declared tracks first so track order is deterministic and
    # stage threads come before the ad-hoc .mem tracks.
    for name in tracer.threads:
        tid_of(name)

    for thread, t0, t1, reason in tracer.spans:
        events.append(
            {
                "ph": "X",
                "name": "run",
                "cat": CAT_SCHED,
                "pid": _PID,
                "tid": tid_of(thread),
                "ts": t0,
                "dur": t1 - t0,
                "args": {"yield": str(reason)},
            }
        )
    for thread, bucket, t0, t1 in tracer.stalls:
        events.append(
            {
                "ph": "X",
                "name": "stall:%s" % bucket,
                "cat": CAT_STALL,
                "pid": _PID,
                "tid": tid_of(thread),
                "ts": t0,
                "dur": t1 - t0,
                "args": {"bucket": bucket},
            }
        )
    for thread, t0, t1 in tracer.ra_loads:
        events.append(
            {
                "ph": "X",
                "name": "ra_load",
                "cat": CAT_RA,
                "pid": _PID,
                "tid": tid_of(thread + ".mem"),
                "ts": t0,
                "dur": t1 - t0,
                "args": {},
            }
        )
    for label, t, value in tracer.counters:
        events.append(
            {
                "ph": "C",
                "name": "occupancy:%s" % label,
                "cat": CAT_QUEUE,
                "pid": _PID,
                "tid": 0,
                "ts": t,
                "args": {"occupancy": value},
            }
        )

    other = {"time_unit": "1 us == 1 simulated cycle"}
    other.update(tracer.meta)
    if meta:
        other.update(meta)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(tracer, path, meta=None):
    """Export ``tracer`` and write it to ``path`` as JSON."""
    trace = export_chrome_trace(tracer, meta=meta)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return trace


#: Phase types this exporter may emit.
_KNOWN_PHASES = ("X", "C", "M")


def validate_chrome_trace(trace):
    """Validate the JSON-object Trace Event Format subset we emit.

    Returns the list of problems found (empty when the trace is valid):
    structural checks on every event, plus the layout guarantees the
    exporter makes (every non-metadata event's track is named, complete
    events carry non-negative durations, counter events carry numeric
    args).
    """
    problems = []
    if not isinstance(trace, dict):
        return ["top level must be a JSON object (the Trace Event Format dict form)"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]

    named_tracks = set()
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            if not event.get("args", {}).get("name"):
                problems.append("thread_name metadata event without args.name")
            named_tracks.add((event.get("pid"), event.get("tid")))

    for index, event in enumerate(events):
        where = "event %d" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append("%s: unknown phase %r" % (where, ph))
            continue
        if not event.get("name"):
            problems.append("%s: missing name" % where)
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            problems.append("%s: pid/tid must be integers" % where)
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: ts must be a non-negative number" % where)
        if (event["pid"], event["tid"]) not in named_tracks and ph == "X":
            problems.append("%s: slice on unnamed track tid=%r" % (where, event["tid"]))
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: complete event needs non-negative dur" % where)
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append("%s: counter event needs args" % where)
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append("%s: counter args must be numeric" % where)
    return problems
