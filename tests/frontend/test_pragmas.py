"""Table II parity: the four Phloem pragmas parse and attach correctly."""

import pytest

from repro.errors import ParseError
from repro.frontend import compile_source
from repro.frontend.pragmas import DECOUPLE_MARK, collect_function_pragmas, parse_pragma


def test_parse_each_pragma():
    assert parse_pragma("phloem") == ("phloem", {})
    assert parse_pragma("decouple") == ("decouple", {})
    assert parse_pragma("replicate 4") == ("replicate", {"value": 4})
    assert parse_pragma("distribute bits=3") == ("distribute", {"bits": 3})


def test_unknown_pragma_rejected():
    with pytest.raises(ParseError, match="unknown #pragma"):
        parse_pragma("vectorize")


def test_empty_pragma_rejected():
    with pytest.raises(ParseError):
        parse_pragma("   ")


def test_collect_function_annotations():
    ann = collect_function_pragmas(["phloem", "replicate 4"])
    assert ann == {"phloem": True, "replicate": 4}


def test_replicate_needs_count():
    with pytest.raises(ParseError, match="positive count"):
        collect_function_pragmas(["replicate zero"])


def test_decouple_invalid_at_function_level():
    with pytest.raises(ParseError):
        collect_function_pragmas(["decouple"])


def test_phloem_annotation_via_frontend():
    f = compile_source("#pragma phloem\nvoid k(int n) { }")
    assert f.pragmas == {"phloem": True}


def test_decouple_marker_in_body():
    src = """
    #pragma phloem
    void k(const int* restrict a, int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        #pragma decouple
        int v = a[i];
        out[i] = v;
      }
    }
    """
    f = compile_source(src)
    from repro.ir import walk

    comments = [s for s in walk(f.body) if s.kind == "comment"]
    assert any(c.text == DECOUPLE_MARK for c in comments)


def test_decouple_hint_forces_ranking():
    src = """
    void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
      for (int i = 0; i < n; i++) {
        #pragma decouple
        int v = a[i];
        out[i] = b[v];
      }
    }
    """
    from repro.analysis import rank_decouple_points

    f = compile_source(src)
    points = rank_decouple_points(f)
    assert points[0].hinted
    assert points[0].cls == "@a"
