"""Graph analytics: the paper's Sec. II BFS walkthrough, end to end.

Compares every execution strategy the evaluation uses on one road-network
input: serial, data-parallel (4 SMT threads), Phloem's automatic pipeline
(with its cycle breakdown, as in Fig. 10), and the hand-tuned pipeline.

Run:  python examples/graph_analytics.py
"""

from repro.core import ALL_PASSES, compile_function, pipeline_summary
from repro.pipette import SCALED_1CORE
from repro.runtime import run_pipeline, run_serial
from repro.workloads import bfs
from repro.workloads.graphs import road_network


def show(label, cycles, baseline, breakdown=None):
    line = "%-16s %12.0f cycles   %5.2fx" % (label, cycles, baseline / cycles)
    if breakdown:
        parts = ", ".join("%s %.0f%%" % (k, 100 * v / cycles) for k, v in breakdown.items())
        line += "   (" + parts + ")"
    print(line)


def main():
    graph = road_network(150, 120, seed=3)
    print("input: %r (a USA-road-d style network)\n" % graph)

    function = bfs.function()
    arrays, scalars = bfs.make_env(graph)

    serial = run_serial(function, arrays, scalars, config=SCALED_1CORE)
    assert bfs.check(serial.arrays, graph)
    show("serial", serial.cycles, serial.cycles, serial.breakdown())

    dp = bfs.data_parallel(4)
    dp_arrays, dp_scalars = bfs.make_env_dp(graph, 4)
    dresult = run_pipeline(dp, dp_arrays, dp_scalars, config=SCALED_1CORE)
    assert bfs.check(dresult.arrays, graph)
    show("data-parallel", dresult.cycles, serial.cycles)

    pipeline = compile_function(function, num_stages=4, passes=ALL_PASSES)
    print("\nPhloem produced: %s" % pipeline_summary(pipeline))
    for ra in pipeline.ras:
        print("   %r" % ra)
    presult = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE)
    assert bfs.check(presult.arrays, graph)
    show("phloem", presult.cycles, serial.cycles, presult.breakdown())

    manual = bfs.manual_pipeline()
    mresult = run_pipeline(manual, arrays, scalars, config=SCALED_1CORE)
    assert bfs.check(mresult.arrays, graph)
    show("manual", mresult.cycles, serial.cycles)

    print(
        "\nPhloem reaches %.0f%% of the hand-tuned pipeline automatically."
        % (100.0 * mresult.cycles / presult.cycles)
    )


if __name__ == "__main__":
    main()
