"""Content-addressed memo layers for the evaluation harness.

Regenerating the paper's figures repeats two kinds of work across figures
and across invocations: compiling the same ``(function, options)`` pipeline
and simulating the same ``(function, input, config)`` serial baseline. This
module memoizes both (plus the profile-guided search's scores) behind
stable content hashes:

* **pipeline** — compiled pipelines keyed by the canonical IR fingerprint
  (:func:`repro.ir.fingerprint`) plus ``CompileOptions.cache_key()``;
* **baseline** — serial-run results (cycles, output arrays, cycle/energy
  breakdowns) keyed by function + input contents + machine config;
* **search** — profile-guided search scores keyed by function, training
  inputs, config, and search parameters.

Each layer has an in-process dict in front of a shared on-disk pickle store
(``REPRO_CACHE_DIR``, default ``~/.cache/phloem-repro``), so warm results
survive process restarts and are shared by every worker of the parallel
harness (:mod:`repro.bench.parallel`) and every client of the
compile-and-simulate daemon (:mod:`repro.service`). ``REPRO_NO_CACHE=1``
disables the disk layer. Keys are salted with the package version:
upgrading the compiler invalidates every cached artifact.

Concurrency: entries are written with write-then-rename (readers never
observe a partial pickle), and each compute-on-miss runs under a per-key
``flock`` so simultaneous clients asking for the same artifact do the
work once — the first takes the miss and computes, the rest block briefly
and take a hit off the store the winner populated.

Cached values are treated as immutable: :func:`cached_compile` returns a
fresh clone per call, and :class:`BaselineResult` arrays must not be
mutated by callers (the harness only reads them for output validation).
"""

import contextlib
import hashlib
import os
import pickle
import tempfile
from dataclasses import asdict, is_dataclass

try:
    import fcntl
except ImportError:  # non-POSIX: atomic rename still guards writes
    fcntl = None

from .core.compiler import compile_function
from .ir.serialize import fingerprint
from .runtime.executor import run_serial

#: Memo layers, in the order stats are reported.
LAYERS = ("pipeline", "baseline", "search")

_memory = {layer: {} for layer in LAYERS}
_stats = {layer: {"hits": 0, "misses": 0} for layer in LAYERS}


# ---------------------------------------------------------------------------
# Key construction


def _canon(value):
    """Canonical text of a plain-data value (dicts sorted, type-tagged)."""
    if isinstance(value, dict):
        return "{" + ",".join("%s=%s" % (k, _canon(value[k])) for k in sorted(value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canon(v) for v in value) + "]"
    if isinstance(value, bool):
        return "b:%d" % value
    if isinstance(value, int):
        return "i:%d" % value
    if isinstance(value, float):
        return "f:%s" % repr(value)
    if value is None:
        return "none"
    return "s:%s" % value


def content_hash(*parts):
    """SHA-256 over the canonical forms of ``parts`` (the cache key)."""
    from . import __version__

    h = hashlib.sha256()
    h.update(("v:%s" % __version__).encode("utf-8"))
    for part in parts:
        h.update(b"\x00")
        h.update(_canon(part).encode("utf-8"))
    return h.hexdigest()


def fingerprint_env(arrays, scalars):
    """Content hash of one benchmark environment (arrays + scalars)."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        h.update(("a:%s=" % name).encode("utf-8"))
        h.update(_canon(list(arrays[name])).encode("utf-8"))
    for name in sorted(scalars):
        h.update(("s:%s=%s" % (name, _canon(scalars[name]))).encode("utf-8"))
    return h.hexdigest()


def fingerprint_config(config):
    """Content hash of a :class:`~repro.pipette.config.MachineConfig`."""
    data = asdict(config) if is_dataclass(config) else vars(config)
    return content_hash("config", data)


# ---------------------------------------------------------------------------
# Storage: per-process memory in front of a shared pickle directory


def cache_dir():
    """The on-disk cache directory, or ``None`` when disk caching is off."""
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    path = os.environ.get("REPRO_CACHE_DIR")
    if not path:
        path = os.path.join(os.path.expanduser("~"), ".cache", "phloem-repro")
    return path


def _disk_path(layer, key):
    base = cache_dir()
    if base is None:
        return None
    return os.path.join(base, layer, key + ".pkl")


def _load(layer, key):
    if key in _memory[layer]:
        _stats[layer]["hits"] += 1
        return _memory[layer][key]
    path = _disk_path(layer, key)
    if path is not None and os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            value = None  # truncated or stale entry: treat as a miss
        if value is not None:
            _memory[layer][key] = value
            _stats[layer]["hits"] += 1
            return value
    _stats[layer]["misses"] += 1
    return None


@contextlib.contextmanager
def _key_lock(layer, key):
    """Serialize compute-on-miss for one cache key across processes.

    An exclusive ``flock`` on ``<layer>/<key>.lock`` (released on close —
    and by the OS if the holder dies). Degrades to a no-op when disk
    caching is off or the platform has no ``fcntl``; the write-then-rename
    in :func:`_store` still guards against corruption, the lock only
    deduplicates the work.
    """
    base = cache_dir()
    if base is None or fcntl is None:
        yield
        return
    path = os.path.join(base, layer, key + ".lock")
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:
        yield
        return
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            pass
        yield
    finally:
        os.close(fd)


def _get_or_compute(layer, key, compute):
    """One-miss-many-hits lookup: the shared compute-on-miss protocol.

    Memory first (no lock), then the disk store under the per-key lock —
    re-checked after acquisition, because a concurrent process may have
    computed the value while this one waited.
    """
    if key in _memory[layer]:
        _stats[layer]["hits"] += 1
        return _memory[layer][key]
    with _key_lock(layer, key):
        value = _load(layer, key)
        if value is None:
            value = compute()
            _store(layer, key, value)
        return value


def _store(layer, key, value):
    _memory[layer][key] = value
    path = _disk_path(layer, key)
    if path is None:
        return
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Write-then-rename so concurrent harness workers never observe a
        # partially written pickle.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError:
        pass  # disk cache is best-effort; memory layer already holds it


def reset(memory=True, stats=True):
    """Clear the in-process memo layers and/or hit counters (tests)."""
    if memory:
        for layer in LAYERS:
            _memory[layer].clear()
    if stats:
        for layer in LAYERS:
            _stats[layer]["hits"] = 0
            _stats[layer]["misses"] = 0


# ---------------------------------------------------------------------------
# Statistics (merged across pool workers by repro.bench.parallel)


def stats_snapshot():
    """Flat ``{(layer, kind): count}`` copy of the hit/miss counters."""
    return {
        (layer, kind): _stats[layer][kind] for layer in LAYERS for kind in ("hits", "misses")
    }


def stats_delta(before):
    """Counter increments since a :func:`stats_snapshot`."""
    now = stats_snapshot()
    return {key: now[key] - before.get(key, 0) for key in now}


def merge_stats(delta):
    """Fold a worker's :func:`stats_delta` into this process's counters."""
    for (layer, kind), count in delta.items():
        _stats[layer][kind] += count


def stats_since(snapshot):
    """``{layer: {"hits": n, "misses": n}}`` increments since a snapshot.

    The per-request cache view of the API layer: a one-shot CLI process
    reports the same numbers as before (nothing precedes the request), a
    long-lived service worker reports just this request's traffic — which
    is how a client sees its warm submission hit the shared cache.
    """
    delta = stats_delta(snapshot)
    return {
        layer: {kind: delta[(layer, kind)] for kind in ("hits", "misses")} for layer in LAYERS
    }


def stats():
    """``{layer: {"hits": n, "misses": n}}`` view of the counters."""
    return {layer: dict(_stats[layer]) for layer in LAYERS}


# ---------------------------------------------------------------------------
# Layer 1: compiled pipelines


def cached_compile(function, options):
    """``compile_function(function, options=options)``, memoized.

    The key is the canonical IR fingerprint of ``function`` plus
    ``options.cache_key()``; a warm hit skips the whole pass stack. Returns
    a fresh clone so callers may mutate their pipeline freely. Intrinsic
    implementations (opaque callables) are stripped before pickling and
    reattached from ``function`` on the way out.
    """
    key = content_hash("pipeline", fingerprint(function), options.cache_key())

    def compute():
        pipeline = compile_function(function, options=options)
        stored = pipeline.clone()
        stored.intrinsics = {}
        return stored

    value = _get_or_compute("pipeline", key, compute)
    pipeline = value.clone()
    pipeline.intrinsics = dict(function.intrinsics)
    # Engine choice is not part of the cache key (both engines share
    # entries), so restamp the caller's preference on the way out.
    pipeline.meta["fastpath"] = options.fastpath
    return pipeline


# ---------------------------------------------------------------------------
# Layer 2: serial baselines


class _EnergyView:
    """Mimics the ``energy()`` result of a live run (``as_dict()``)."""

    __slots__ = ("_values",)

    def __init__(self, values):
        self._values = values

    def as_dict(self):
        """The per-component energy dict, as recorded at simulation time."""
        return dict(self._values)


class BaselineResult:
    """A cached serial run: quacks like the slice of ``RunResult`` the
    harness consumes (``cycles``, ``arrays``, ``breakdown()``, ``energy()``,
    ``summary()``).
    """

    __slots__ = ("cycles", "arrays", "_breakdown", "_energy", "_summary")

    def __init__(self, cycles, arrays, breakdown, energy, summary=None):
        self.cycles = cycles
        self.arrays = arrays
        self._breakdown = breakdown
        self._energy = energy
        self._summary = summary

    def breakdown(self):
        """Cycle breakdown dict, as recorded at simulation time."""
        return dict(self._breakdown)

    def energy(self):
        """Energy view whose ``as_dict()`` matches the live run's."""
        return _EnergyView(self._energy)

    def summary(self):
        """The ``SimStats.summary()`` dict recorded at simulation time."""
        return None if self._summary is None else dict(self._summary)

    def __repr__(self):
        return "BaselineResult(%.0f cycles)" % self.cycles


def cached_serial_run(function, arrays, scalars, config):
    """``run_serial(...)``, memoized on function + input contents + config.

    This is the shared serial-baseline cache: every figure experiment and
    ``run_suite`` call that simulates the same serial ``(benchmark, input)``
    pair under the same machine config gets the recorded result back
    instead of re-simulating it.
    """
    key = content_hash(
        "baseline",
        fingerprint(function),
        fingerprint_env(arrays, scalars),
        fingerprint_config(config),
    )

    def compute():
        result = run_serial(function, arrays, scalars, config=config)
        return {
            "cycles": result.cycles,
            "arrays": result.arrays,
            "breakdown": result.breakdown(),
            "energy": result.energy().as_dict(),
            "summary": result.stats.summary(),
        }

    return BaselineResult(**_get_or_compute("baseline", key, compute))


# ---------------------------------------------------------------------------
# Layer 3: profile-guided search scores


def cached_search(key_parts, compute):
    """Memoize a profile-guided search's *scores* (not its pipelines).

    ``compute()`` must return a plain-data payload (the harness stores
    candidate indices, unit counts, and speedups); the winning pipeline is
    recompiled through :func:`cached_compile` on a warm hit, which keeps
    pickles small and pipelines importable everywhere.
    """
    key = content_hash("search", *key_parts)
    return _get_or_compute("search", key, compute)
