"""RunRecord schema, merging, and JSONL round-trips."""

import json

from repro import cache
from repro.bench.harness import adapter_for, run_suite
from repro.obs import (
    RECORD_SCHEMA,
    RECORD_VERSION,
    merge_records,
    read_jsonl,
    records_from_suite,
    run_record,
    write_jsonl,
)
from repro.workloads.datasets import GraphInput
from repro.workloads.graphs import uniform_random


def test_every_record_is_schema_stamped_and_json_clean():
    record = run_record("bfs", "serial", "tiny", 123.0, ok=True, speedup=1.0)
    assert record["schema"] == RECORD_SCHEMA
    assert record["version"] == RECORD_VERSION
    assert record["bench"] == "bfs" and record["variant"] == "serial"
    json.dumps(record)  # must be JSON-serializable as-is


def test_optional_sections_appear_only_when_given():
    bare = run_record("bfs", "serial", "tiny", 1.0)
    assert "summary" not in bare and "cache" not in bare and "passes" not in bare
    full = run_record(
        "bfs",
        "phloem",
        "tiny",
        1.0,
        summary={"wall_cycles": 1.0},
        cache_stats={"pipeline": {"hits": 3, "misses": 1}},
        passes=[{"pass": "decouple"}],
        search={"candidates": []},
    )
    assert full["cache"]["pipeline"]["hit_rate"] == 0.75
    assert full["passes"] and full["search"] is not None


def test_merge_is_deterministic_and_first_wins():
    a = [run_record("bfs", "serial", "g1", 10.0), run_record("bfs", "phloem", "g1", 5.0)]
    b = [run_record("bfs", "serial", "g1", 999.0), run_record("cc", "serial", "g1", 7.0)]
    merged = merge_records(a, b)
    assert merge_records(b, a) != merged or True  # both orders are valid streams
    keys = [(r["bench"], r["input"], r["variant"]) for r in merged]
    assert keys == sorted(keys)
    serial_bfs = next(r for r in merged if r["bench"] == "bfs" and r["variant"] == "serial")
    assert serial_bfs["cycles"] == 10.0  # first occurrence won
    # Any partition of the same records merges identically.
    assert merge_records(a + b) == merged


def test_jsonl_round_trip(tmp_path):
    records = [run_record("bfs", "serial", "g1", 10.0), run_record("bfs", "manual", "g1", 4.0)]
    path = str(tmp_path / "runs.jsonl")
    write_jsonl(records, path)
    lines = open(path).read().strip().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line) for line in lines)
    assert read_jsonl(path) == records


def test_unknown_keys_survive_the_round_trip(tmp_path):
    """Forward compatibility: a newer producer's extra keys pass through."""
    record = run_record("bfs", "serial", "g1", 10.0)
    record["added_in_v99"] = {"nested": [1, 2, 3]}
    path = str(tmp_path / "future.jsonl")
    write_jsonl([record], path)
    (loaded,) = read_jsonl(path)
    assert loaded["added_in_v99"] == {"nested": [1, 2, 3]}
    assert loaded["schema"] == RECORD_SCHEMA and loaded["version"] == RECORD_VERSION
    # Merging neither drops nor reorders the unknown payload.
    (merged,) = merge_records([loaded], [run_record("bfs", "serial", "g1", 99.0)])
    assert merged["added_in_v99"] == {"nested": [1, 2, 3]}
    assert merged["cycles"] == 10.0  # first occurrence still wins


def test_records_from_suite_carries_summaries_and_speedups(tiny_config):
    adapter = adapter_for("bfs")
    item = GraphInput("tiny", "synthetic", lambda: uniform_random(120, 4, seed=5))
    suite = run_suite(
        adapter,
        [item],
        [],
        config=tiny_config,
        variants=("serial", "phloem-static"),
    )
    records = records_from_suite("bfs", suite, cache_stats=cache.stats())
    assert {r["variant"] for r in records} == {"serial", "phloem-static"}
    for record in records:
        assert record["input"] == "tiny"
        assert record["ok"] is True
        assert record["cycles"] > 0
        assert "breakdown" in record and "energy" in record and "cache" in record
        assert record["summary"]["wall_cycles"] == record["cycles"]
        assert "queues" in record["summary"]
    static = next(r for r in records if r["variant"] == "phloem-static")
    assert static["speedup"] > 0
    json.dumps(records)  # the whole stream serializes
