"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark runs its experiment exactly once (the experiments are
multi-second simulations; statistical repetition is meaningless for a
deterministic simulator) and prints the paper-style table on completion.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable a single time, pedantically."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
