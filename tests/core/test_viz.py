"""ASCII pipeline diagrams."""

from repro.core import ascii_diagram, compile_function
from repro.core.compiler import ALL_PASSES
from repro.workloads import bfs


def test_bfs_diagram_chain():
    pipe = compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)
    text = ascii_diagram(pipe)
    lines = text.splitlines()
    assert lines[0] == "pipeline bfs"
    assert "RA0 indirect @nodes" in text
    assert "RA1 scan @edges" in text
    assert "update]" in text
    # Topological: the fetch stage appears before the update stage.
    assert text.index("fetch_nodes") < text.index("update")


def test_serial_diagram():
    pipe = compile_function(bfs.function(), num_stages=1, passes=())
    text = ascii_diagram(pipe)
    assert "bfs]" in text or "update" in text or "[0:" in text


def test_q_only_diagram_has_all_queues():
    pipe = compile_function(bfs.function(), num_stages=4, passes=())
    text = ascii_diagram(pipe)
    for qid in pipe.queues:
        assert "q%d" % qid in text
