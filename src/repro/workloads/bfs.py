"""Breadth-First Search (paper Sec. II, Fig. 1/2).

Provides the four variants the evaluation compares:

* ``SOURCE`` — the serial mini-C kernel (the paper's Fig. 2 left, with the
  CSR struct flattened into restrict pointer parameters);
* :func:`reference` — a pure-Python oracle;
* :func:`data_parallel` — a PBFS/Ligra-style hand-written data-parallel
  variant (vertex-partitioned, benign races on distances, per-thread
  private next-fringe segments, double-barrier phase protocol);
* :func:`manual_pipeline` — the hand-optimized Pipette pipeline (the
  paper's "Manually pipelined" bars): fringe scan feeding two chained RAs
  (nodes indirect -> edges scan), a distance-prefetch stage, and an update
  stage, all using control-value handlers.
"""

from collections import deque

from ..frontend.lowering import compile_source
from ..ir import (
    Break,
    Ctrl,
    Enq,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)

INT_MAX = 2**31 - 1

NAME = "bfs"

SOURCE = """
#pragma phloem
void bfs(const int* restrict nodes, const int* restrict edges,
         int* restrict distances, int* restrict fringe0, int* restrict fringe1,
         int n, int fringe_size_init) {
  int* restrict cur_fringe = fringe0;
  int* restrict next_fringe = fringe1;
  int fringe_size = fringe_size_init;
  int cur_dist = 0;
  while (fringe_size > 0) {
    int next_size = 0;
    for (int i = 0; i < fringe_size; i++) {
      int v = cur_fringe[i];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e++) {
        int ngh = edges[e];
        int old_dist = distances[ngh];
        if (old_dist > cur_dist + 1) {
          distances[ngh] = cur_dist + 1;
          next_fringe[next_size] = ngh;
          next_size = next_size + 1;
        }
      }
    }
    int* restrict tmp = cur_fringe;
    cur_fringe = next_fringe;
    next_fringe = tmp;
    fringe_size = next_size;
    cur_dist = cur_dist + 1;
  }
}
"""

_function_cache = {}


def function():
    """The lowered serial kernel (cached)."""
    if "f" not in _function_cache:
        _function_cache["f"] = compile_source(SOURCE)
    return _function_cache["f"].clone()


def default_root(graph):
    """A deterministic, well-connected root: the max-degree vertex."""
    return max(range(graph.n), key=graph.degree)


def make_env(graph, root=None):
    """Arrays/scalars binding for one run on ``graph``."""
    if root is None:
        root = default_root(graph)
    distances = [INT_MAX] * graph.n
    distances[root] = 0
    fringe0 = [0] * (graph.n + 1)
    fringe0[0] = root
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "distances": distances,
        "fringe0": fringe0,
        "fringe1": [0] * (graph.n + 1),
    }
    scalars = {"n": graph.n, "fringe_size_init": 1}
    return arrays, scalars


def reference(graph, root=None):
    """Oracle distances via a Python BFS."""
    if root is None:
        root = default_root(graph)
    dist = [INT_MAX] * graph.n
    dist[root] = 0
    queue = deque([root])
    nodes, edges = graph.nodes, graph.edges
    while queue:
        v = queue.popleft()
        nd = dist[v] + 1
        for e in range(nodes[v], nodes[v + 1]):
            w = edges[e]
            if dist[w] > nd:
                dist[w] = nd
                queue.append(w)
    return dist


def check(arrays, graph, root=None):
    """Validate a run's output against the oracle."""
    return arrays["distances"] == reference(graph, root)


# ---------------------------------------------------------------------------
# Manually pipelined variant (the paper's hand-tuned Pipette code)


def manual_pipeline():
    """Hand-written 3-stage + 2-chained-RA pipeline with CV handlers."""
    func = function()
    Q_RA1_IN, Q_PAIRS, Q_NGH, Q_UPD = 0, 1, 2, 3

    # Stage 0: scan the fringe, drive the RA chain with v and v+1.
    b = IRBuilder(temp_prefix="%m")
    b.mov("@fringe0", dst="cur_fringe")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.for_("i", 0, "fringe_size"):
            v = b.load("cur_fringe", "i")
            b.enq(Q_RA1_IN, v)
            vp1 = b.binop("add", v, 1)
            b.enq(Q_RA1_IN, vp1)
        b.enq_ctrl(Q_RA1_IN, Ctrl.DONE)
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        tmp = b.mov("cur_fringe")
        b.mov("next_fringe", dst="cur_fringe")
        b.mov(tmp, dst="next_fringe")
    stage0 = StageProgram(0, "scan_fringe", b.finish())

    # Stage 1: prefetch neighbor distances, forward the neighbor stream.
    b = IRBuilder(temp_prefix="%p")
    b.mov("fringe_size_init", dst="fringe_size")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        with b.loop():
            ngh = b.deq(Q_NGH)
            b.prefetch("@distances", ngh)
            b.enq(Q_UPD, ngh)
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
    stage1 = StageProgram(
        1,
        "prefetch_dist",
        b.finish(),
        handlers={Q_NGH: [Enq(Q_UPD, "%ctrl"), Break(1)]},
    )

    # Stage 2: authoritative distance check + update, builds the next fringe.
    b = IRBuilder(temp_prefix="%u")
    b.mov("@fringe1", dst="next_fringe")
    b.mov("@fringe0", dst="other_fringe")
    b.mov("fringe_size_init", dst="fringe_size")
    b.mov(0, dst="cur_dist")
    with b.loop():
        done = b.assign("le", ["fringe_size", 0])
        with b.if_(done):
            b.break_()
        b.mov(0, dst="next_size")
        nd = b.binop("add", "cur_dist", 1)
        with b.loop():
            ngh = b.deq(Q_UPD)
            old = b.load("@distances", ngh)
            better = b.binop("gt", old, nd)
            with b.if_(better):
                b.store("@distances", ngh, nd)
                b.store("next_fringe", "next_size", ngh)
                b.binop("add", "next_size", 1, dst="next_size")
        b.write_shared("next_size", "next_size")
        b.barrier("phase")
        fs = b.read_shared("next_size")
        b.barrier("phase-sync")
        b.mov(fs, dst="fringe_size")
        b.binop("add", "cur_dist", 1, dst="cur_dist")
        tmp = b.mov("next_fringe")
        b.mov("other_fringe", dst="next_fringe")
        b.mov(tmp, dst="other_fringe")
    stage2 = StageProgram(2, "update", b.finish(), handlers={Q_UPD: [Break(1)]})

    queues = [
        QueueSpec(Q_RA1_IN, ("stage", 0), ("ra", 0), 24, "v/v+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_UPD, ("stage", 1), ("stage", 2), 24, "neighbors'"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1_IN, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH),
    ]
    return PipelineProgram(
        "bfs_manual",
        [stage0, stage1, stage2],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        shared_vars={"next_size"},
        meta={"manual": True},
    )


# ---------------------------------------------------------------------------
# Data-parallel variant (PBFS/Ligra-style port)


def data_parallel(nthreads):
    """Hand-written data-parallel BFS over ``nthreads`` worker threads.

    Vertex-partitioned: worker t processes elements ``j % T == t`` of every
    per-thread fringe segment, races benignly on ``distances`` (all writers
    store the same level), and appends discoveries to its private segment
    of ``next_fringe``. Sizes flow through the ``sizes`` array across a
    double barrier.
    """
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        b.mov("@fringe0", dst="cur_fringe")
        b.mov("@fringe1", dst="next_fringe")
        b.mov(0, dst="cur_dist")
        b.mov("fringe_size_init", dst="total")
        # Segment 0 initially holds the root (size saved by make_env_dp).
        with b.loop():
            done = b.assign("le", ["total", 0])
            with b.if_(done):
                b.break_()
            b.mov(0, dst="my_size")
            nd = b.binop("add", "cur_dist", 1)
            my_base = b.binop("mul", tid, "cap")
            with b.for_("seg", 0, "nthreads"):
                seg_size = b.load("@sizes", "seg")
                seg_base = b.binop("mul", "seg", "cap")
                with b.for_("j", tid, seg_size, nthreads):
                    idx = b.binop("add", seg_base, "j")
                    v = b.load("cur_fringe", idx)
                    es = b.load("@nodes", v)
                    ee = b.load("@nodes", b.binop("add", v, 1))
                    with b.for_("e", es, ee):
                        ngh = b.load("@edges", "e")
                        # PBFS-style CAS: atomically claim the vertex, push
                        # only on success (work-efficient, no duplicates).
                        old = b.atomic_min("@distances", ngh, nd)
                        better = b.binop("gt", old, nd)
                        with b.if_(better):
                            slot = b.binop("add", my_base, "my_size")
                            b.store("next_fringe", slot, ngh)
                            b.binop("add", "my_size", 1, dst="my_size")
            b.barrier("dp-phase")
            b.store("@sizes_next", tid, "my_size")
            b.barrier("dp-sizes")
            b.mov(0, dst="total")
            with b.for_("s2", 0, "nthreads"):
                sz = b.load("@sizes_next", "s2")
                b.binop("add", "total", sz, dst="total")
                b.store("@sizes", "s2", sz)
            b.barrier("dp-sync")
            b.binop("add", "cur_dist", 1, dst="cur_dist")
            tmp = b.mov("cur_fringe")
            b.mov("next_fringe", dst="cur_fringe")
            b.mov(tmp, dst="next_fringe")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    arrays = dict(func.arrays)
    from ..ir import ArrayDecl

    arrays["sizes"] = ArrayDecl("sizes", elem_size=4)
    arrays["sizes_next"] = ArrayDecl("sizes_next", elem_size=4)
    return PipelineProgram(
        "bfs_dp%d" % nthreads,
        stages,
        [],
        [],
        arrays,
        func.scalar_params + ["nthreads", "cap"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads, root=None):
    """Environment for the data-parallel variant (segmented fringes)."""
    if root is None:
        root = default_root(graph)
    cap = graph.n + 1
    distances = [INT_MAX] * graph.n
    distances[root] = 0
    fringe0 = [0] * (cap * nthreads)
    fringe0[0] = root
    sizes = [0] * nthreads
    sizes[0] = 1
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "distances": distances,
        "fringe0": fringe0,
        "fringe1": [0] * (cap * nthreads),
        "sizes": sizes,
        "sizes_next": [0] * nthreads,
    }
    scalars = {"n": graph.n, "fringe_size_init": 1, "nthreads": nthreads, "cap": cap}
    return arrays, scalars
