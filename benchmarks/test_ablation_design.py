"""Extension ablation: the Pipette design parameters the paper fixes.

Not a paper figure — supports Table III's choices: speedup saturates near
the paper's 24-deep queues, deep RA request parallelism is what makes RAs
win, and SMT time-multiplexing of stages holds up against spatial
placement (the load-balance argument of Sec. I).
"""

from repro.bench.experiments import ablation_design_choices


def test_ablation(once):
    result = once(ablation_design_choices)
    print(result["text"])
    table = result["speedups"]
    depth = table["queue depth"]
    assert depth["depth=24"] > depth["depth=2"]  # decoupling needs slack
    assert depth["depth=64"] < 1.25 * depth["depth=24"]  # saturates by 24
    mshr = table["RA parallelism"]
    assert mshr["ra_mshrs=16"] > mshr["ra_mshrs=1"]
