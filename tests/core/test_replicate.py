"""Automatic replication of compiled flat-stream pipelines."""

import pytest
from dataclasses import replace

from repro.core import compile_function, replicate_pipeline
from repro.core.compiler import ALL_PASSES
from repro.errors import CompileError
from repro.runtime import run_replicated
from repro.workloads import bfs, cc, replicated


@pytest.fixture(scope="module")
def compiled_bfs():
    return compile_function(bfs.function(), num_stages=4, passes=ALL_PASSES)


def test_clone_count_and_meta(compiled_bfs):
    clones = replicate_pipeline(compiled_bfs, 3)
    assert len(clones) == 3
    assert all(c.meta["replicated"] == 3 for c in clones)
    assert clones[0].name.endswith("_repl0")


def test_distribution_statements_present(compiled_bfs):
    from repro.ir import walk

    (clone,) = replicate_pipeline(compiled_bfs, 1)
    kinds = [s.kind for stage in clone.stages for s in stage.all_stmts()]
    assert "enq_dist" in kinds
    assert "enq_ctrl_dist" in kinds
    qid = clone.meta["distributed_queue"]
    # No plain enq remains on the distributed queue.
    plain = [
        s
        for stage in clone.stages
        for s in stage.all_stmts()
        if s.kind == "enq" and s.queue == qid
    ]
    assert not plain


def test_counting_handler_installed(compiled_bfs):
    (clone,) = replicate_pipeline(compiled_bfs, 1)
    qid = clone.meta["distributed_queue"]
    handler = clone.stages[-1].handlers[qid]
    kinds = [s.kind for s in handler]
    assert kinds == ["assign", "assign", "if"]


def test_shared_cells_renamed_per_replica(compiled_bfs):
    clones = replicate_pipeline(compiled_bfs, 2)
    assert any("@0" in v for v in clones[0].shared_vars)
    assert any("@1" in v for v in clones[0].shared_vars)
    from repro.ir import walk

    writes0 = [
        s.var
        for stage in clones[0].stages
        for s in stage.all_stmts()
        if s.kind == "write_shared"
    ]
    assert all(v.endswith("@0") for v in writes0)


def test_non_flat_pipeline_rejected():
    pipe = compile_function(cc.function(), num_stages=4, passes=ALL_PASSES)
    with pytest.raises(CompileError, match="flat distributable stream"):
        replicate_pipeline(pipe, 2)


def test_end_to_end_correct(compiled_bfs, micro_graph, tiny_config):
    config = replace(tiny_config, cores=2)
    clones = replicate_pipeline(compiled_bfs, 2)
    envs = replicated.make_envs("bfs", micro_graph, 2)
    result = run_replicated(
        [(clones[r], envs[r][0], envs[r][1], r) for r in range(2)], config
    )
    assert result.arrays["distances"] == bfs.reference(micro_graph)


def test_replicate_pragma_recorded(micro_graph, tiny_config):
    """#pragma replicate flows from source to the compiled pipeline's meta,
    and the requested replicas run correctly end to end."""
    from dataclasses import replace

    source = bfs.SOURCE.replace("#pragma phloem", "#pragma phloem\n#pragma replicate 2")
    from repro.frontend import compile_source

    function = compile_source(source)
    assert function.pragmas["replicate"] == 2
    pipeline = compile_function(function, num_stages=4, passes=ALL_PASSES)
    assert pipeline.meta["replicate"] == 2
    clones = replicate_pipeline(pipeline, pipeline.meta["replicate"])
    envs = replicated.make_envs("bfs", micro_graph, 2)
    config = replace(tiny_config, cores=2)
    result = run_replicated(
        [(clones[r], envs[r][0], envs[r][1], r) for r in range(2)], config
    )
    assert result.arrays["distances"] == bfs.reference(micro_graph)
