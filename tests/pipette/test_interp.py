"""Interpreter semantics: small programs run through the full machine."""

import pytest

from repro import ir
from repro.errors import DeadlockError, SimulationError
from repro.pipette import Machine, MachineConfig, RunSpec


def _run(body, arrays=None, scalars=None, decls=None, handlers=None, intrinsics=None):
    decls = decls or {name: ir.ArrayDecl(name) for name in (arrays or {})}
    stage = ir.StageProgram(0, "t", body, handlers=handlers or {})
    pipe = ir.PipelineProgram("t", [stage], [], [], decls, list((scalars or {}).keys()), intrinsics=intrinsics)
    machine = Machine(MachineConfig())
    result = machine.run(RunSpec(pipe, arrays or {}, scalars or {}))
    return result


def test_arithmetic_and_store():
    b = ir.IRBuilder()
    x = b.binop("mul", 6, 7)
    b.store("@out", 0, x)
    res = _run(b.finish(), {"out": [0]})
    assert res.arrays()["out"] == [42]


def test_loop_sum():
    b = ir.IRBuilder()
    b.mov(0, dst="acc")
    with b.for_("i", 0, "n"):
        v = b.load("@a", "i")
        b.binop("add", "acc", v, dst="acc")
    b.store("@out", 0, "acc")
    res = _run(b.finish(), {"a": [1, 2, 3, 4], "out": [0]}, {"n": 4})
    assert res.arrays()["out"] == [10]


def test_nested_break_levels():
    b = ir.IRBuilder()
    b.mov(0, dst="count")
    with b.loop():
        with b.loop():
            b.binop("add", "count", 1, dst="count")
            b.break_(2)
    b.store("@out", 0, "count")
    res = _run(b.finish(), {"out": [0]})
    assert res.arrays()["out"] == [1]


def test_continue_skips():
    b = ir.IRBuilder()
    b.mov(0, dst="acc")
    with b.for_("i", 0, 10):
        odd = b.binop("mod", "i", 2)
        with b.if_(odd):
            b.continue_()
        b.binop("add", "acc", "i", dst="acc")
    b.store("@out", 0, "acc")
    res = _run(b.finish(), {"out": [0]})
    assert res.arrays()["out"] == [0 + 2 + 4 + 6 + 8]


def test_pointer_handles():
    b = ir.IRBuilder()
    b.mov("@a", dst="p")
    b.mov("@b", dst="q")
    tmp = b.mov("p")
    b.mov("q", dst="p")
    b.mov(tmp, dst="q")
    b.store("p", 0, 1)  # now points at b
    res = _run(b.finish(), {"a": [0], "b": [0]})
    assert res.arrays()["b"] == [1]
    assert res.arrays()["a"] == [0]


def test_out_of_bounds_load_raises():
    b = ir.IRBuilder()
    b.load("@a", 5, dst="v")
    with pytest.raises(SimulationError, match="out of bounds"):
        _run(b.finish(), {"a": [1, 2]})


def test_intrinsic_call():
    b = ir.IRBuilder()
    r = b.call(b.fresh(), "work", [21])
    b.store("@out", 0, r)
    intr = {"work": ir.Intrinsic("work", lambda x: x * 2, cost=10)}
    res = _run(b.finish(), {"out": [0]}, intrinsics=intr)
    assert res.arrays()["out"] == [42]


def test_unbound_intrinsic_raises():
    b = ir.IRBuilder()
    b.call(None, "mystery", [])
    with pytest.raises(SimulationError, match="unbound intrinsic"):
        _run(b.finish())


def test_atomic_rmw_returns_old():
    b = ir.IRBuilder()
    old = b.atomic_add("@a", 0, 5)
    b.store("@out", 0, old)
    res = _run(b.finish(), {"a": [10], "out": [0]})
    assert res.arrays()["a"] == [15]
    assert res.arrays()["out"] == [10]


def test_shared_cells_roundtrip():
    b = ir.IRBuilder()
    b.write_shared("total", 7)
    b.barrier()
    x = b.read_shared("total")
    b.barrier()
    b.store("@out", 0, x)
    res = _run(b.finish(), {"out": [0]})
    assert res.arrays()["out"] == [7]


def test_two_stage_queue_roundtrip():
    b0 = ir.IRBuilder()
    with b0.for_("i", 0, 5):
        b0.enq(0, "i")
    s0 = ir.StageProgram(0, "p", b0.finish())

    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.for_("i", 0, 5):
        v = b1.deq(0)
        b1.binop("add", "acc", v, dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "c", b1.finish())

    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [],
        {"out": ir.ArrayDecl("out")}, [],
    )
    machine = Machine(MachineConfig())
    res = machine.run(RunSpec(pipe, {"out": [0]}, {}))
    assert res.arrays()["out"] == [10]


def test_control_handler_breaks_loop():
    b0 = ir.IRBuilder()
    for v in (1, 2, 3):
        b0.enq(0, v)
    b0.enq_ctrl(0, "DONE")
    s0 = ir.StageProgram(0, "p", b0.finish())

    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.loop():
        v = b1.deq(0)
        b1.binop("add", "acc", v, dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "c", b1.finish(), handlers={0: [ir.Break(1)]})

    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [],
        {"out": ir.ArrayDecl("out")}, [],
    )
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    assert res.arrays()["out"] == [6]


def test_handler_fallthrough_retries():
    """A handler without Break consumes the marker and keeps dequeuing."""
    b0 = ir.IRBuilder()
    b0.enq(0, 1)
    b0.enq_ctrl(0, "NEXT")
    b0.enq(0, 2)
    b0.enq_ctrl(0, "DONE")
    s0 = ir.StageProgram(0, "p", b0.finish())

    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    b1.mov(0, dst="dones")
    with b1.loop():
        v = b1.deq(0)
        b1.binop("add", "acc", v, dst="acc")
    b1.store("@out", 0, "acc")
    handler = [
        ir.Assign("dones", "add", ["dones", 1]),
        ir.Assign("%stop", "ge", ["dones", 2]),
        ir.If("%stop", [ir.Break(1)], []),
    ]
    s1 = ir.StageProgram(1, "c", b1.finish(), handlers={0: handler})
    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [],
        {"out": ir.ArrayDecl("out")}, [],
    )
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    assert res.arrays()["out"] == [3]


def test_is_control_explicit_check():
    b0 = ir.IRBuilder()
    b0.enq(0, 9)
    b0.enq_ctrl(0, "DONE")
    s0 = ir.StageProgram(0, "p", b0.finish())

    b1 = ir.IRBuilder()
    b1.mov(0, dst="acc")
    with b1.loop():
        v = b1.deq(0)
        c = b1.is_control(v)
        with b1.if_(c):
            b1.break_()
        b1.binop("add", "acc", v, dst="acc")
    b1.store("@out", 0, "acc")
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [],
        {"out": ir.ArrayDecl("out")}, [],
    )
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    assert res.arrays()["out"] == [9]


def test_peek_then_deq():
    b0 = ir.IRBuilder()
    b0.enq(0, 5)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    x = b1.peek(0)
    y = b1.deq(0)
    b1.store("@out", 0, b1.binop("add", x, y))
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [],
        {"out": ir.ArrayDecl("out")}, [],
    )
    res = Machine(MachineConfig()).run(RunSpec(pipe, {"out": [0]}, {}))
    assert res.arrays()["out"] == [10]


def test_queue_mismatch_deadlocks():
    """A consumer expecting more values than produced deadlocks loudly."""
    b0 = ir.IRBuilder()
    b0.enq(0, 1)
    s0 = ir.StageProgram(0, "p", b0.finish())
    b1 = ir.IRBuilder()
    b1.deq(0)
    b1.deq(0)  # never arrives
    s1 = ir.StageProgram(1, "c", b1.finish())
    pipe = ir.PipelineProgram(
        "t", [s0, s1], [ir.QueueSpec(0, ("stage", 0), ("stage", 1))], [], {}, [],
    )
    with pytest.raises(DeadlockError):
        Machine(MachineConfig()).run(RunSpec(pipe, {}, {}))


def test_missing_scalar_binding_raises():
    b = ir.IRBuilder()
    b.mov("n", dst="x")
    stage = ir.StageProgram(0, "t", b.finish())
    pipe = ir.PipelineProgram("t", [stage], [], [], {}, ["n"])
    with pytest.raises(SimulationError, match="scalar params"):
        Machine(MachineConfig()).run(RunSpec(pipe, {}, {}))


def test_missing_array_binding_raises():
    b = ir.IRBuilder()
    b.load("@a", 0)
    stage = ir.StageProgram(0, "t", b.finish())
    pipe = ir.PipelineProgram("t", [stage], [], [], {"a": ir.ArrayDecl("a")}, [])
    with pytest.raises(SimulationError, match="not bound"):
        Machine(MachineConfig()).run(RunSpec(pipe, {}, {}))


def test_float_arithmetic():
    b = ir.IRBuilder()
    x = b.binop("mul", 0.5, "alpha")
    b.store("@out", 0, x)
    res = _run(b.finish(), {"out": [0.0]}, {"alpha": 3.0})
    assert res.arrays()["out"] == [1.5]


def test_select_and_pack():
    b = ir.IRBuilder()
    p = b.binop("pack2", 3, 4)
    a = b.assign("fst", [p])
    c = b.assign("select", [b.binop("gt", a, 0), a, 0])
    b.store("@out", 0, c)
    res = _run(b.finish(), {"out": [0]})
    assert res.arrays()["out"] == [3]
