"""Handler semantics: requests in, typed responses with captured output out."""

import json

import pytest

from repro import api

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


def test_emit_summary_response():
    response = api.handle(api.CompileRequest(source=KERNEL, fmt="summary"))
    assert isinstance(response, api.CompileResponse)
    assert response.ok
    assert "stages" in response.output
    assert response.summary is not None and "RAs" in response.summary


def test_handle_accepts_wire_dicts():
    wire = api.CompileRequest(source=KERNEL, fmt="summary").to_wire()
    response = api.handle(wire)
    assert response.ok and "stages" in response.output


def test_handle_rejects_unknown_wire():
    with pytest.raises(api.ApiError):
        api.handle({"schema": "repro.api/request", "version": 1, "verb": "nope"})


def test_lint_clean_kernel():
    response = api.handle(api.LintRequest(source=KERNEL, file="k.c"))
    assert isinstance(response, api.LintResponse)
    assert response.ok
    assert response.errors == 0


BAD_KERNEL = """
#pragma phloem
void bad(int n) {
  #pragma phloem
  n = 1;
}
"""


def test_lint_bad_kernel_collects_diagnostics():
    response = api.handle(api.LintRequest(source=BAD_KERNEL, file="bad.c", json=True))
    assert response.exit_code != 0
    assert response.errors > 0
    assert response.records, "json lint must carry structured diagnostics"
    codes = {d.get("code") for d in response.records}
    assert any(code and code.startswith("PHL") for code in codes)


def test_demo_reports_speedup():
    response = api.handle(api.RunRequest(bench="bfs", size=300))
    assert isinstance(response, api.RunResponse)
    assert response.ok
    assert response.speedup is not None and response.speedup > 0
    assert "serial" in response.output and "phloem" in response.output


def test_metrics_records_match_stdout_jsonl():
    response = api.handle(api.MetricsRequest(bench="bfs", size=300, quiet=True))
    assert isinstance(response, api.MetricsResponse)
    assert response.ok
    lines = [json.loads(line) for line in response.output.splitlines() if line.strip()]
    assert lines == response.records
    assert {r["variant"] for r in response.records} >= {"serial", "phloem-static"}


def test_metrics_cache_delta_is_per_request(tmp_path, monkeypatch):
    from repro import cache

    # Cold start regardless of what earlier tests compiled in-process.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cache.reset()
    cold = api.handle(api.MetricsRequest(bench="cc", size=300, seed=7, quiet=True))
    warm = api.handle(api.MetricsRequest(bench="cc", size=300, seed=7, quiet=True))
    assert cold.cache is not None and warm.cache is not None
    assert cold.cache["pipeline"]["misses"] >= 1
    assert warm.cache["pipeline"]["hits"] >= 1
    assert warm.cache["pipeline"]["misses"] == 0
    # Warm-vs-warm runs are deterministic and byte-identical.
    rewarm = api.handle(api.MetricsRequest(bench="cc", size=300, seed=7, quiet=True))
    assert rewarm.output == warm.output


def test_output_is_captured_not_printed(capsys):
    api.handle(api.RunRequest(bench="bfs", size=300))
    assert capsys.readouterr().out == ""
