"""PageRank, push-style (GARDENIA suite).

Classic synchronous PageRank for a fixed number of iterations: each round
*pushes* every vertex's ``rank/degree`` share along its out-edges into a
neighbor-sum array, then a dense apply recomputes ranks. Unlike
PageRank-Delta (:mod:`repro.workloads.prd`) there is no fringe — every
vertex scatters every round — so the kernel is a pure streaming scatter,
the shape RA offloading likes best.

Floating-point: the pipeline performs the scatter in serial order, so its
ranks are bitwise equal to the serial kernel; the data-parallel variant
reassociates the ``atomic_add`` reductions and is checked with a
tolerance (``check_dp``).
"""

from ..frontend.lowering import compile_source
from ..ir import (
    Break,
    Ctrl,
    EnqCtrl,
    IRBuilder,
    PipelineProgram,
    QueueSpec,
    RA_INDIRECT,
    RA_SCAN,
    RASpec,
    StageProgram,
)

NAME = "pr"

#: Damping factor and fixed iteration count.
DAMPING = 0.85
ITERS = 10

SOURCE = """
#pragma phloem
void pr(const int* restrict nodes, const int* restrict edges,
        const int* restrict degree, double* restrict rank,
        double* restrict nghsum, int n, int iters,
        double damping, double base) {
  for (int it = 0; it < iters; it++) {
    for (int v = 0; v < n; v++) {
      int deg = degree[v];
      if (deg > 0) {
        double share = rank[v] / deg;
        int edge_start = nodes[v];
        int edge_end = nodes[v + 1];
        for (int e = edge_start; e < edge_end; e++) {
          int ngh = edges[e];
          double s = nghsum[ngh];
          nghsum[ngh] = s + share;
        }
      }
    }
    for (int u = 0; u < n; u++) {
      rank[u] = base + damping * nghsum[u];
      nghsum[u] = 0.0;
    }
  }
}
"""

_cache = {}


def function():
    if "f" not in _cache:
        _cache["f"] = compile_source(SOURCE)
    return _cache["f"].clone()


def make_env(graph, iters=ITERS):
    n = graph.n
    arrays = {
        "nodes": list(graph.nodes),
        "edges": list(graph.edges),
        "degree": [graph.degree(v) for v in range(n)],
        "rank": [1.0 / n] * n,
        "nghsum": [0.0] * n,
    }
    scalars = {
        "n": n,
        "iters": iters,
        "damping": DAMPING,
        "base": (1.0 - DAMPING) / n,
    }
    return arrays, scalars


def reference(graph, iters=ITERS):
    """Oracle ranks: the same algorithm in pure Python (bitwise identical)."""
    n = graph.n
    nodes, edges = graph.nodes, graph.edges
    degree = [graph.degree(v) for v in range(n)]
    rank = [1.0 / n] * n
    nghsum = [0.0] * n
    base = (1.0 - DAMPING) / n
    for _ in range(iters):
        for v in range(n):
            deg = degree[v]
            if deg > 0:
                share = rank[v] / deg
                for e in range(nodes[v], nodes[v + 1]):
                    nghsum[edges[e]] += share
        for u in range(n):
            rank[u] = base + DAMPING * nghsum[u]
            nghsum[u] = 0.0
    return rank


def check(arrays, graph, exact=True, tol=1e-9):
    expected = reference(graph)
    got = arrays["rank"]
    if exact:
        return got == expected
    return all(abs(a - b) <= tol * max(1.0, abs(b)) for a, b in zip(got, expected))


def check_dp(arrays, graph):
    """Data-parallel validation: atomic scatters reassociate the FP sums."""
    return check(arrays, graph, exact=False, tol=1e-6)


# ---------------------------------------------------------------------------
# Manually pipelined variant


def manual_pipeline():
    """3 stages + 2 chained RAs, barrier-free.

    The driver streams every vertex id and its neighbor burst each
    iteration; nothing it reads is ever written by the update stage, so no
    phase barriers are needed — queue capacities alone bound run-ahead.
    The middle stage prefetches the scatter targets; the update stage owns
    rank/nghsum and replays the serial scatter+apply order exactly.
    """
    func = function()
    Q_RA1, Q_PAIRS, Q_NGH, Q_UPD, Q_V = 0, 1, 2, 3, 4

    b = IRBuilder(temp_prefix="%m")
    with b.for_("it", 0, "iters"):
        with b.for_("v", 0, "n"):
            b.enq(Q_V, "v")
            b.enq(Q_RA1, "v")
            b.enq(Q_RA1, b.binop("add", "v", 1))
            b.enq_ctrl(Q_RA1, Ctrl.NEXT)
    stage0 = StageProgram(0, "drive", b.finish())

    b = IRBuilder(temp_prefix="%p")
    with b.for_("it", 0, "iters"):
        with b.for_("v", 0, "n"):
            with b.loop():
                ngh = b.deq(Q_NGH)
                b.prefetch("@nghsum", ngh)
                b.enq(Q_UPD, ngh)
    stage1 = StageProgram(
        1,
        "prefetch_nghsum",
        b.finish(),
        handlers={Q_NGH: [EnqCtrl(Q_UPD, Ctrl(Ctrl.NEXT)), Break(1)]},
    )

    b = IRBuilder(temp_prefix="%u")
    with b.for_("it", 0, "iters"):
        with b.for_("i", 0, "n"):
            v = b.deq(Q_V)
            deg = b.load("@degree", v)
            b.mov(0.0, dst="share")
            has = b.binop("gt", deg, 0)
            with b.if_(has):
                r = b.load("@rank", v)
                b.binop("div", r, deg, dst="share")
            with b.loop():
                ngh = b.deq(Q_UPD)
                s = b.load("@nghsum", ngh)
                b.store("@nghsum", ngh, b.binop("add", s, "share"))
        with b.for_("u", 0, "n"):
            s = b.load("@nghsum", "u")
            acc = b.binop("add", "base", b.binop("mul", "damping", s))
            b.store("@rank", "u", acc)
            b.store("@nghsum", "u", 0.0)
    stage2 = StageProgram(2, "update", b.finish(), handlers={Q_UPD: [Break(1)]})

    queues = [
        QueueSpec(Q_RA1, ("stage", 0), ("ra", 0), 24, "v/v+1"),
        QueueSpec(Q_PAIRS, ("ra", 0), ("ra", 1), 24, "edge bounds"),
        QueueSpec(Q_NGH, ("ra", 1), ("stage", 1), 24, "neighbors"),
        QueueSpec(Q_UPD, ("stage", 1), ("stage", 2), 24, "neighbors'"),
        QueueSpec(Q_V, ("stage", 0), ("stage", 2), 24, "vertices"),
    ]
    ras = [
        RASpec(0, RA_INDIRECT, "@nodes", Q_RA1, Q_PAIRS),
        RASpec(1, RA_SCAN, "@edges", Q_PAIRS, Q_NGH),
    ]
    return PipelineProgram(
        "pr_manual",
        [stage0, stage1, stage2],
        queues,
        ras,
        func.arrays,
        func.scalar_params,
        meta={"manual": True},
    )


# ---------------------------------------------------------------------------
# Data-parallel variant


def data_parallel(nthreads):
    """Vertex-striped scatter with ``atomic_add``, chunk-partitioned apply.

    The apply of iteration ``it`` writes ranks the next scatter reads, so
    each iteration ends with a full barrier before the ranks are consumed
    again.
    """
    func = function()
    stages = []
    for tid in range(nthreads):
        b = IRBuilder(temp_prefix="%d")
        with b.for_("it", 0, "iters"):
            with b.for_("v", tid, "n", nthreads):
                deg = b.load("@degree", "v")
                has = b.binop("gt", deg, 0)
                with b.if_(has):
                    r = b.load("@rank", "v")
                    share = b.binop("div", r, deg)
                    es = b.load("@nodes", "v")
                    ee = b.load("@nodes", b.binop("add", "v", 1))
                    with b.for_("e", es, ee):
                        ngh = b.load("@edges", "e")
                        b.atomic_add("@nghsum", ngh, share)
            b.barrier("dp-scatter")
            lo = b.binop("mul", tid, "chunk")
            hi = b.assign("min", [b.binop("add", lo, "chunk"), "n"])
            with b.for_("u", lo, hi):
                s = b.load("@nghsum", "u")
                acc = b.binop("add", "base", b.binop("mul", "damping", s))
                b.store("@rank", "u", acc)
                b.store("@nghsum", "u", 0.0)
            b.barrier("dp-apply")
        stages.append(StageProgram(tid, "worker%d" % tid, b.finish()))

    return PipelineProgram(
        "pr_dp%d" % nthreads,
        stages,
        [],
        [],
        func.arrays,
        func.scalar_params + ["nthreads", "chunk"],
        meta={"data_parallel": True},
    )


def make_env_dp(graph, nthreads, iters=ITERS):
    arrays, scalars = make_env(graph, iters)
    scalars["nthreads"] = nthreads
    scalars["chunk"] = (graph.n + nthreads - 1) // nthreads
    return arrays, scalars
