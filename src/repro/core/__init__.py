"""The Phloem compiler: automatic decoupling into fine-grain pipelines."""

from .accelerate import apply_reference_accelerators
from .autotune import CandidateResult, SearchPoint, gmean, search_pipelines, speedup_distribution
from .codegen import emit_pipeline, emit_stage
from .compiler import ALL_PASSES, CompileOptions, compile_c, compile_function, pipeline_summary
from .ctrl import apply_control_handlers, apply_control_values, apply_interstage_dce
from .decouple import decouple_function
from .recompute import apply_recompute
from .replicate import replicate_pipeline
from .viz import ascii_diagram

__all__ = [
    "apply_reference_accelerators",
    "CandidateResult",
    "SearchPoint",
    "gmean",
    "search_pipelines",
    "speedup_distribution",
    "emit_pipeline",
    "emit_stage",
    "ALL_PASSES",
    "CompileOptions",
    "compile_c",
    "compile_function",
    "pipeline_summary",
    "apply_control_handlers",
    "apply_control_values",
    "apply_interstage_dce",
    "decouple_function",
    "apply_recompute",
    "replicate_pipeline",
    "ascii_diagram",
]
