"""CLI surface."""

import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "k.c"
    path.write_text(KERNEL)
    return str(path)


def test_emit_summary(kernel_file, capsys):
    assert main(["emit", kernel_file, "--format", "summary"]) == 0
    out = capsys.readouterr().out
    assert "stages" in out and "RAs" in out


def test_emit_pseudo_c(kernel_file, capsys):
    assert main(["emit", kernel_file]) == 0
    out = capsys.readouterr().out
    assert "setup_reference_accelerator" in out


def test_emit_ir(kernel_file, capsys):
    assert main(["emit", kernel_file, "--format", "ir"]) == 0
    out = capsys.readouterr().out
    assert "pipeline k" in out


def test_emit_pass_subset(kernel_file, capsys):
    assert main(["emit", kernel_file, "--passes", "recompute,cv", "--format", "summary"]) == 0
    out = capsys.readouterr().out
    assert "0 RAs" in out


def test_demo_bfs(capsys):
    assert main(["demo", "bfs", "--size", "300"]) == 0
    out = capsys.readouterr().out
    assert "serial" in out and "phloem" in out
    assert "False" not in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figures_rejects_unknown(capsys):
    assert main(["figures", "fig99"]) == 2


def test_demo_spmm(capsys):
    assert main(["demo", "spmm", "--size", "2000"]) == 0
    out = capsys.readouterr().out
    assert "serial" in out and "manual" in out
    assert "False" not in out


def test_figures_jobs_flag_parses():
    args = build_parser().parse_args(["figures", "fig6", "--jobs", "4"])
    assert args.jobs == 4 and args.names == ["fig6"]
    assert build_parser().parse_args(["figures"]).jobs is None


def test_figures_fig6_smoke(tmp_path):
    """End-to-end: QUICK fig6 through the parallel harness with a cold cache."""
    env = dict(os.environ)
    env.update(
        REPRO_QUICK="1",
        REPRO_CACHE_DIR=str(tmp_path),
        PYTHONPATH=os.path.join(os.path.dirname(__file__), "..", "src"),
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "figures", "fig6", "--jobs", "2"],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Fig. 6" in proc.stdout
    assert "cache" in proc.stderr  # telemetry lands on stderr, not stdout
