"""Benchmark harness: runs paper-style comparisons and aggregates results.

Wraps each benchmark module behind a uniform adapter (inputs in, arrays +
oracle check out), runs the variants the paper compares — Serial,
Data-parallel, Phloem (profile-guided and static), Manually pipelined —
and aggregates per-input speedups with geometric means, as every figure in
Sec. VII does.
"""

import os

from ..core.autotune import gmean, search_pipelines
from ..core.compiler import ALL_PASSES, compile_function
from ..errors import PhloemError
from ..pipette.config import SCALED_1CORE
from ..runtime.executor import run_pipeline, run_serial

#: Environment switch: REPRO_QUICK=1 shrinks the evaluation (fewer inputs).
QUICK = bool(os.environ.get("REPRO_QUICK"))

#: SMT width used for single-core data-parallel baselines.
DP_THREADS = 4


class VariantRun:
    """One (variant, input) execution."""

    __slots__ = ("variant", "input_name", "cycles", "ok", "breakdown", "energy", "meta")

    def __init__(self, variant, input_name, cycles, ok, breakdown, energy, meta=None):
        self.variant = variant
        self.input_name = input_name
        self.cycles = cycles
        self.ok = ok
        self.breakdown = breakdown
        self.energy = energy
        self.meta = meta or {}

    def __repr__(self):
        return "VariantRun(%s/%s: %.0f cycles, ok=%s)" % (
            self.variant,
            self.input_name,
            self.cycles,
            self.ok,
        )


class GraphBenchAdapter:
    """Adapter for the fringe-based graph benchmarks (BFS/CC/PRD/Radii)."""

    def __init__(self, module):
        self.module = module
        self.name = module.NAME

    def function(self):
        return self.module.function()

    def env(self, graph):
        return self.module.make_env(graph)

    def dp_pipeline(self, nthreads):
        return self.module.data_parallel(nthreads)

    def dp_env(self, graph, nthreads):
        return self.module.make_env_dp(graph, nthreads)

    def manual(self):
        return self.module.manual_pipeline()

    def check(self, arrays, graph):
        if self.name == "prd":
            return self.module.check(arrays, graph, exact=True)
        return self.module.check(arrays, graph)

    def check_dp(self, arrays, graph):
        if self.name == "prd":
            return self.module.check(arrays, graph, exact=False, tol=1e-6)
        return self.module.check(arrays, graph)


class SpmmBenchAdapter:
    """Adapter for SpMM (matrix inputs)."""

    def __init__(self, module):
        self.module = module
        self.name = module.NAME

    def function(self):
        return self.module.function()

    def env(self, matrix):
        return self.module.make_env(matrix)

    def dp_pipeline(self, nthreads):
        return self.module.data_parallel(nthreads)

    def dp_env(self, matrix, nthreads):
        return self.module.make_env_dp(matrix, nthreads)

    def manual(self):
        return self.module.manual_pipeline()

    def check(self, arrays, matrix):
        return self.module.check(arrays, matrix)

    check_dp = check


def _record(variant, input_name, result, ok):
    return VariantRun(
        variant,
        input_name,
        result.cycles,
        ok,
        result.breakdown(),
        result.energy().as_dict(),
    )


def profile_guided_pipeline(adapter, train_inputs, config=SCALED_1CORE, max_stages=4, top_k=5, limit=40):
    """Run the paper's profile-guided search; returns (best, all results).

    The evaluator scores each candidate by gmean speedup over serial on the
    training inputs, mirroring Sec. VI-C.
    """
    function = adapter.function()
    baselines = {}
    envs = {}
    for item in train_inputs:
        arrays, scalars = adapter.env(item.build())
        envs[item.name] = (arrays, scalars)
        baselines[item.name] = run_serial(function, arrays, scalars, config=config).cycles

    def evaluate(pipeline):
        speeds = []
        for item in train_inputs:
            arrays, scalars = envs[item.name]
            result = run_pipeline(pipeline, arrays, scalars, config=config)
            speeds.append(baselines[item.name] / result.cycles)
        return gmean(speeds)

    return search_pipelines(function, evaluate, max_stages=max_stages, top_k=top_k, limit=limit)


def run_suite(adapter, test_inputs, train_inputs, config=SCALED_1CORE, variants=None, num_stages=4):
    """Run all requested variants on all test inputs.

    Returns ``{variant: [VariantRun, ...]}`` plus the search results under
    the key ``"_search"`` when the profile-guided variant ran.
    """
    variants = variants or ("serial", "data-parallel", "phloem", "phloem-static", "manual")
    function = adapter.function()
    out = {v: [] for v in variants}

    static_pipeline = None
    if "phloem-static" in variants or "phloem" in variants:
        static_pipeline = compile_function(function, num_stages=num_stages, passes=ALL_PASSES)

    best = None
    if "phloem" in variants:
        try:
            best, results = profile_guided_pipeline(adapter, train_inputs, config=config, max_stages=num_stages)
            out["_search"] = results
        except PhloemError:
            best = None
    pgo_pipeline = best.pipeline if best is not None else static_pipeline

    manual_pipeline = adapter.manual() if "manual" in variants else None
    dp_pipeline = adapter.dp_pipeline(DP_THREADS) if "data-parallel" in variants else None

    for item in test_inputs:
        data = item.build()
        arrays, scalars = adapter.env(data)
        serial_result = run_serial(function, arrays, scalars, config=config)
        serial_ok = adapter.check(serial_result.arrays, data)
        if "serial" in variants:
            out["serial"].append(_record("serial", item.name, serial_result, serial_ok))

        if "data-parallel" in variants:
            dp_arrays, dp_scalars = adapter.dp_env(data, DP_THREADS)
            result = run_pipeline(dp_pipeline, dp_arrays, dp_scalars, config=config)
            run = _record("data-parallel", item.name, result, adapter.check_dp(result.arrays, data))
            run.meta["speedup"] = serial_result.cycles / result.cycles
            out["data-parallel"].append(run)

        for variant, pipeline in (("phloem", pgo_pipeline), ("phloem-static", static_pipeline), ("manual", manual_pipeline)):
            if variant not in variants or pipeline is None:
                continue
            result = run_pipeline(pipeline, arrays, scalars, config=config)
            run = _record(variant, item.name, result, adapter.check(result.arrays, data))
            run.meta["speedup"] = serial_result.cycles / result.cycles
            out[variant].append(run)
        if "serial" in variants:
            out["serial"][-1].meta["speedup"] = 1.0
    return out


def gmean_speedup(runs):
    """Geometric-mean speedup over serial across a variant's runs."""
    speeds = [r.meta.get("speedup") for r in runs if "speedup" in r.meta]
    if not speeds:
        return float("nan")
    return gmean(speeds)


def normalized_breakdowns(suite):
    """Average cycle breakdowns normalized to the serial baseline (Fig. 10)."""
    serial_cycles = {r.input_name: r.cycles for r in suite.get("serial", [])}
    out = {}
    for variant, runs in suite.items():
        if variant.startswith("_"):
            continue
        rows = []
        for run in runs:
            base = serial_cycles.get(run.input_name)
            if not base:
                continue
            rows.append({k: v / base for k, v in run.breakdown.items()})
        if rows:
            keys = rows[0].keys()
            out[variant] = {k: sum(r[k] for r in rows) / len(rows) for k in keys}
    return out


def normalized_energy(suite):
    """Average energy normalized to serial (Fig. 11)."""
    serial_energy = {
        r.input_name: sum(r.energy.values()) for r in suite.get("serial", [])
    }
    out = {}
    for variant, runs in suite.items():
        if variant.startswith("_"):
            continue
        rows = []
        for run in runs:
            base = serial_energy.get(run.input_name)
            if not base:
                continue
            rows.append({k: v / base for k, v in run.energy.items()})
        if rows:
            keys = rows[0].keys()
            out[variant] = {k: sum(r[k] for r in rows) / len(rows) for k in keys}
    return out
