"""Tensor format declarations for the mini-Taco compiler.

Mirrors Taco's per-dimension format vectors: a matrix may be dense-dense
(a plain 2-D array) or dense-sparse (CSR: dense rows, compressed columns).
Vectors are dense. The lowering uses these to decide which loops iterate
positions of a compressed level and which iterate a dense range.
"""

DENSE = "d"
COMPRESSED = "s"


class TensorDecl:
    """Declares one tensor's order and per-dimension storage format."""

    __slots__ = ("name", "formats")

    def __init__(self, name, formats):
        for f in formats:
            if f not in (DENSE, COMPRESSED):
                raise ValueError("unknown format %r" % f)
        self.name = name
        self.formats = tuple(formats)

    @property
    def order(self):
        return len(self.formats)

    @property
    def is_csr(self):
        return self.formats == (DENSE, COMPRESSED)

    @property
    def is_dense(self):
        return all(f == DENSE for f in self.formats)

    def __repr__(self):
        return "TensorDecl(%s, %s)" % (self.name, "".join(self.formats))


def csr(name):
    """Sparse matrix: dense rows, compressed columns."""
    return TensorDecl(name, (DENSE, COMPRESSED))


def dense_matrix(name):
    """Plain 2-D array (row-major)."""
    return TensorDecl(name, (DENSE, DENSE))


def dense_vector(name):
    """Plain 1-D array."""
    return TensorDecl(name, (DENSE,))
