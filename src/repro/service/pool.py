"""The daemon's fork-based request worker pool.

Reuses the :mod:`repro.bench.parallel` fork-pool machinery and contracts:
workers are forked once at daemon startup (before the event loop runs),
mark themselves with the same worker flag — so any nested
:func:`repro.bench.parallel.run_jobs` inside a request degrades to the
serial path instead of spawning a pool inside a pool — and ship their
:mod:`repro.cache` hit/miss delta back with every result so the parent's
counters reflect the whole fleet, exactly as the figures harness does.

Workers are long-lived: their in-process memo layers stay warm across
requests, and all of them share the on-disk content-addressed store, so
any client's compile warms every later client's.

``workers <= 0`` (or a platform without ``fork``) selects the inline
executor: requests run in the calling process, which is what the tests
and tiny deployments want.
"""

import multiprocessing

from .. import cache
from ..api.handlers import handle
from ..api.requests import Request, error_response
from ..bench.parallel import _fork_available, _pool_init
from ..errors import PhloemError


def execute_wire(wire):
    """Run one request wire dict; returns ``(response_wire, cache_delta)``.

    The module-level worker entry point (fork pools need a picklable
    target). Toolchain and validation failures become structured error
    responses — a worker never takes the daemon down with it.
    """
    before = cache.stats_snapshot()
    verb = wire.get("verb") if isinstance(wire, dict) else None
    try:
        response = handle(Request.from_wire(wire))
    except PhloemError as exc:
        response = error_response(verb, "toolchain-error", str(exc), exit_code=1)
    except Exception as exc:  # noqa: BLE001 - the pool must survive anything
        response = error_response(
            verb, "internal-error", "%s: %s" % (type(exc).__name__, exc), exit_code=1
        )
    return response.to_wire(), cache.stats_delta(before)


class RequestPool:
    """Fixed-size fork pool executing request wires for the daemon.

    :meth:`submit` bridges ``apply_async`` into the caller's asyncio loop:
    it returns a future resolved from the pool's result thread via
    ``call_soon_threadsafe``. The parent folds each worker's cache delta
    into its own counters (fleet-wide stats), mirroring
    :func:`repro.bench.parallel.run_jobs`.
    """

    def __init__(self, workers=2):
        self.workers = max(0, int(workers))
        self._pool = None
        if self.workers > 0 and _fork_available():
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(self.workers, initializer=_pool_init)

    @property
    def inline(self):
        """True when requests execute in the daemon process itself."""
        return self._pool is None

    def submit(self, wire, loop):
        """Schedule one request; returns an asyncio future of its result."""
        future = loop.create_future()

        if self._pool is None:
            response_wire, delta = execute_wire(wire)
            future.set_result((response_wire, delta))
            return future

        def done(result):
            loop.call_soon_threadsafe(_resolve, future, result)

        def failed(exc):
            loop.call_soon_threadsafe(_reject, future, exc)

        self._pool.apply_async(execute_wire, (wire,), callback=done, error_callback=failed)
        return future

    def close(self):
        """Tear the pool down (daemon shutdown)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def _resolve(future, result):
    if not future.cancelled():
        future.set_result(result)


def _reject(future, exc):
    if not future.cancelled():
        future.set_exception(exc)
