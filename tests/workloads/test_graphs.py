"""Graph substrate: CSR validity and generator statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.graphs import CSRGraph, mesh3d, power_law, road_network, uniform_random


def _validate(graph):
    assert graph.nodes[0] == 0
    assert graph.nodes[-1] == graph.m
    assert all(a <= b for a, b in zip(graph.nodes, graph.nodes[1:]))
    assert all(0 <= w < graph.n for w in graph.edges)


def test_from_adjacency():
    g = CSRGraph.from_adjacency([[1, 2], [2], []])
    assert g.n == 3 and g.m == 3
    assert g.neighbors(0) == [1, 2]
    assert g.degree(2) == 0


def test_bad_nodes_rejected():
    with pytest.raises(ValueError):
        CSRGraph(3, [0, 1], [0])


def test_road_network_stats():
    g = road_network(20, 15, seed=1)
    _validate(g)
    assert g.n == 300
    assert 1.5 < g.avg_degree < 4.0  # near-planar, Table IV road class


def test_power_law_heavy_tail():
    g = power_law(600, 5, seed=2)
    _validate(g)
    degrees = sorted((g.degree(v) for v in range(g.n)), reverse=True)
    assert degrees[0] > 4 * g.avg_degree  # hubs exist


def test_mesh3d_uniform_degree():
    g = mesh3d(6)
    _validate(g)
    assert g.n == 216
    inner = [g.degree(v) for v in range(g.n) if g.degree(v) == 6]
    assert len(inner) > 0
    assert max(g.degree(v) for v in range(g.n)) == 6


def test_uniform_random_degree():
    g = uniform_random(100, 7, seed=3)
    _validate(g)
    assert all(g.degree(v) == 7 for v in range(g.n))


def test_generators_deterministic():
    a = power_law(200, 4, seed=9)
    b = power_law(200, 4, seed=9)
    assert a.edges == b.edges and a.nodes == b.nodes


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 60), st.integers(1, 6), st.integers(0, 5))
def test_uniform_random_always_valid(n, degree, seed):
    _validate(uniform_random(n, degree, seed=seed))
