"""One entry point per verb: ``handle(request) -> Response``.

The bodies of the one-shot CLI verbs live here, behind the typed requests
of :mod:`repro.api.requests`. Each runner prints exactly what the
pre-service CLI printed — :func:`handle` captures that stdout into
``Response.output``, so ``repro emit`` and a daemon-submitted
:class:`~repro.api.requests.CompileRequest` produce byte-identical
payloads from the same code path. Alongside the text, runners collect the
structured record stream (RunRecords, diagnostics, perf records) into
``Response.records`` for JSONL streaming, and :func:`handle` stamps the
per-request :mod:`repro.cache` hit/miss delta into ``Response.cache``.

Telemetry stays on stderr through :mod:`repro.obs.log` and is therefore
*server-side* under a daemon; per-request ``quiet`` flags are restored
after every request so a long-lived worker never leaks one client's
preference into the next request.
"""

import contextlib
import io
import json as _json

from .. import cache
from ..core import ALL_PASSES, CompileOptions, compile_function, emit_pipeline, pipeline_summary
from ..frontend import compile_source
from ..ir import format_pipeline
from ..obs import get_quiet, set_quiet
from ..pipette import SCALED_1CORE
from .requests import RESPONSE_FOR_VERB, ApiError, Request

#: The variants ``demo``/``metrics`` run and print, in order (all use the
#: unified adapter + run_suite path; "phloem-static" is the compiled
#: pipeline).
DEMO_VARIANTS = ("serial", "data-parallel", "phloem-static", "manual")


def _passes_option(text):
    """CLI-style pass subset: None = all, else comma-separated names."""
    if text is None:
        return ALL_PASSES
    return tuple(p for p in text.split(",") if p)


def _demo_input(bench, size, seed):
    """One synthetic input item for ``demo``-family verbs (graph/matrix)."""
    from ..workloads.datasets import GraphInput, MatrixInput
    from ..workloads.graphs import uniform_random
    from ..workloads.matrices import random_matrix

    if bench == "spmm":
        return MatrixInput(
            "demo", "synthetic", lambda: random_matrix(max(40, size // 40), 8, seed=seed)
        )
    if bench == "spmv":
        return MatrixInput(
            "demo", "synthetic", lambda: random_matrix(max(40, size // 4), 8, seed=seed)
        )
    return GraphInput("demo", "synthetic", lambda: uniform_random(size, 5, seed=seed))


# ---------------------------------------------------------------------------
# Per-verb runners: print the one-shot payload, return
# ``(exit_code, records, extras)``


def _run_emit(req):
    function = compile_source(req.source, name=req.name)
    options = CompileOptions(
        num_stages=req.stages, passes=_passes_option(req.passes), verify_each=req.verify_each
    )
    pipeline = compile_function(function, options=options)
    summary = pipeline_summary(pipeline)
    if req.fmt == "summary":
        print(summary)
    elif req.fmt == "ir":
        print(format_pipeline(pipeline))
    elif req.fmt == "diagram":
        from ..core.viz import ascii_diagram

        print(ascii_diagram(pipeline))
    else:
        print(emit_pipeline(pipeline))
    return 0, [], {"summary": summary}


def _run_lint(req):
    from ..analysis.sanitize import lint_source
    from ..diag import LINT_REPORT_SCHEMA, LINT_REPORT_VERSION

    targets = []
    if req.bench is not None:
        from ..workloads import ALL_BENCHMARKS

        if req.bench != "all" and req.bench not in ALL_BENCHMARKS:
            print(
                "unknown benchmark %r (choose from %s, all)"
                % (req.bench, ", ".join(sorted(ALL_BENCHMARKS)))
            )
            return 2, [], {}
        names = sorted(ALL_BENCHMARKS) if req.bench == "all" else [req.bench]
        for bench in names:
            targets.append((bench, ALL_BENCHMARKS[bench].SOURCE, None, None))
    if req.source is not None:
        targets.append((req.file, req.source, req.name, req.file))
    if not targets:
        print("lint: give a FILE.c, --bench NAME, or --bench all")
        return 2, [], {}

    options = CompileOptions(
        num_stages=req.stages, passes=_passes_option(req.passes), verify_each=req.verify_each
    )
    failed = False
    errors = warnings = 0
    reports = []
    records = []
    for label, source, name, path in targets:
        diags = lint_source(source, name=name, options=options, file=path, perf=req.perf)
        failed = failed or diags.has_errors
        errors += len(diags.errors())
        warnings += len(diags.warnings())
        records.extend(dict(d.as_dict(), target=label) for d in diags.sorted())
        if req.json:
            reports.append(
                {
                    "target": label,
                    "diagnostics": [d.as_dict() for d in diags.sorted()],
                    "errors": len(diags.errors()),
                    "warnings": len(diags.warnings()),
                }
            )
        elif len(diags) == 0:
            print("%s: clean" % label)
        else:
            print("%s:" % label)
            for line in diags.render_text().splitlines():
                print("  " + line)
    if req.json:
        envelope = {
            "schema": LINT_REPORT_SCHEMA,
            "version": LINT_REPORT_VERSION,
            "reports": reports,
        }
        print(_json.dumps(envelope, indent=2, sort_keys=True))
    return (1 if failed else 0), records, {"errors": errors, "warnings": warnings}


def _run_demo(req):
    from ..bench.harness import adapter_for, run_suite
    from ..obs import records_from_suite

    adapter = adapter_for(req.bench)
    item = _demo_input(req.bench, req.size, req.seed)
    print("input: %r" % item.build())
    suite = run_suite(
        adapter,
        [item],
        [],
        config=SCALED_1CORE,
        variants=DEMO_VARIANTS,
        options=CompileOptions(num_stages=req.stages),
    )
    print("phloem pipeline: %s\n" % pipeline_summary(suite["_meta"]["phloem-static"]))
    base = suite["serial"][0].cycles
    print("%-16s %14s %9s %6s" % ("variant", "cycles", "speedup", "ok"))
    for name in DEMO_VARIANTS:
        run = suite[name][0]
        print("%-16s %14.0f %8.2fx %6s" % (name, run.cycles, base / run.cycles, run.ok))
    ok = all(suite[name][0].ok for name in DEMO_VARIANTS)
    records = records_from_suite(req.bench, suite)
    speedup = base / suite["phloem-static"][0].cycles
    return (0 if ok else 1), records, {"speedup": speedup}


def _run_search(req):
    from ..bench.harness import adapter_for, profile_guided_pipeline
    from ..bench.report import render_distribution
    from ..core.autotune import speedup_distribution
    from ..workloads import datasets

    adapter = adapter_for(req.bench)
    train = (
        datasets.TRAIN_MATRICES_SPMM
        if req.bench in ("spmm", "spmv")
        else datasets.TRAIN_GRAPHS
    )
    best, results = profile_guided_pipeline(
        adapter, train, config=SCALED_1CORE, prune_static=req.prune_static
    )
    if req.prune_static:
        # len(results) is cached with the search, so this line is stable
        # across warm and cold runs (pruned candidates are never scored).
        print("static pruning: simulated %d surviving candidates" % len(results))
    print(
        render_distribution(
            "training-set speedups by pipeline length",
            {req.bench: speedup_distribution(results)},
        )
    )
    records = [
        {"indices": list(r.indices), "units": r.num_units, "speedup": r.speedup}
        for r in results
    ]
    best_dict = None
    if best is not None:
        print("\nbest: %r" % best)
        print("      %s" % pipeline_summary(best.pipeline))
        best_dict = {
            "indices": list(best.indices),
            "units": best.num_units,
            "speedup": best.speedup,
            "summary": pipeline_summary(best.pipeline),
        }
    return 0, records, {"best": best_dict}


def _run_trace(req):
    from .. import obs
    from ..bench.harness import adapter_for
    from ..runtime.executor import run_pipeline

    if req.quiet:
        obs.set_quiet(True)
    adapter = adapter_for(req.bench)
    item = _demo_input(req.bench, req.size, req.seed)
    data = item.build()
    arrays, scalars = adapter.env(data)
    function = adapter.function()
    options = CompileOptions(num_stages=req.stages)

    cache_before = cache.stats_snapshot()
    profiler = obs.PassProfiler() if req.profile_passes else None
    if profiler is not None:
        pipeline = compile_function(function, options=options, profiler=profiler)
    else:
        pipeline = cache.cached_compile(function, options)

    serial = cache.cached_serial_run(function, arrays, scalars, SCALED_1CORE)
    tracer = obs.Tracer()
    tracer.meta.update({"bench": req.bench, "input": item.name})
    result = run_pipeline(pipeline, arrays, scalars, config=SCALED_1CORE, tracer=tracer)
    ok = adapter.check(result.arrays, data)

    print("pipeline: %s" % pipeline_summary(pipeline))
    print(
        "serial %.0f cycles, traced pipeline %.0f cycles (%.2fx), ok=%s"
        % (serial.cycles, result.cycles, serial.cycles / result.cycles, ok)
    )
    print()
    print(obs.render_timeline(obs.summarize_timeline(tracer)))
    if profiler is not None:
        print()
        print(profiler.render())

    if req.trace_out:
        obs.write_chrome_trace(tracer, req.trace_out, meta={"bench": req.bench})
        obs.log("trace: %d events -> %s (open at ui.perfetto.dev)", len(tracer), req.trace_out)
    records = [
        obs.run_record(
            req.bench, "serial", item.name, serial.cycles, ok=True,
            summary=serial.summary(), breakdown=serial.breakdown(),
            energy=serial.energy().as_dict(), speedup=1.0,
        ),
        obs.run_record(
            req.bench, "phloem-static", item.name, result.cycles, ok=ok,
            summary=result.stats.summary(), breakdown=result.breakdown(),
            energy=result.energy().as_dict(),
            speedup=serial.cycles / result.cycles,
            cache_stats=cache.stats_since(cache_before),
            passes=None if profiler is None else profiler.as_dicts(),
        ),
    ]
    if req.metrics_out:
        obs.write_jsonl(records, req.metrics_out)
        obs.log("metrics: %d records -> %s", len(records), req.metrics_out)
    return (0 if ok else 1), records, {"cycles": result.cycles}


def _run_metrics(req):
    from .. import obs
    from ..bench.harness import adapter_for, run_suite

    if req.quiet:
        obs.set_quiet(True)
    adapter = adapter_for(req.bench)
    item = _demo_input(req.bench, req.size, req.seed)
    options = CompileOptions(num_stages=req.stages)
    cache_before = cache.stats_snapshot()
    suite = run_suite(
        adapter,
        [item],
        [],
        config=SCALED_1CORE,
        variants=DEMO_VARIANTS,
        options=options,
        jobs=req.jobs,
    )
    records = obs.records_from_suite(
        req.bench, suite, cache_stats=cache.stats_since(cache_before)
    )
    if req.profile_passes:
        profiler = obs.PassProfiler()
        compile_function(adapter.function(), options=options, profiler=profiler)
        for record in records:
            if record["variant"] == "phloem-static":
                record["passes"] = profiler.as_dicts()
    if req.metrics_out:
        obs.write_jsonl(records, req.metrics_out)
        obs.log("metrics: %d records -> %s", len(records), req.metrics_out)
    else:
        for record in records:
            print(_json.dumps(record, sort_keys=True))
    return (0 if all(r.get("ok", True) for r in records) else 1), records, {}


def _run_bench_perf(req):
    from .. import obs
    from ..bench import perf as perfmod

    if req.quiet:
        obs.set_quiet(True)
    for bench in req.benches:
        if bench not in perfmod.SCALES["quick"]:
            print(
                "unknown benchmark %r (choose from %s)"
                % (bench, ", ".join(sorted(perfmod.SCALES["quick"])))
            )
            return 2, [], {}
    status, records = perfmod.run_cli(req)
    extras = {"aggregate": perfmod.aggregate(records) if records else None}
    return status, perfmod.obs_records(records), extras


def _run_report(req):
    import os

    from .. import obs

    if req.quiet:
        obs.set_quiet(True)
    if not req.results_dir or not os.path.isdir(req.results_dir):
        print("report: results directory %r not found" % (req.results_dir,))
        return 2, [], {}
    extra = (req.baseline,) if req.baseline else ()
    report = obs.collect(req.results_dir, extra_files=extra, title=req.title)
    markdown = obs.render_markdown(report)
    written = []
    if req.out:
        with open(req.out, "w") as handle:
            handle.write(markdown)
        written.append(req.out)
    if req.html_out:
        with open(req.html_out, "w") as handle:
            handle.write(obs.render_html(report))
        written.append(req.html_out)
    if not req.out:
        print(markdown, end="")
    for path in written:
        obs.log("report: wrote %s", path)
    summary = report.summary()
    return 0, [summary], {"summary": summary}


_RUNNERS = {
    "emit": _run_emit,
    "lint": _run_lint,
    "demo": _run_demo,
    "search": _run_search,
    "trace": _run_trace,
    "metrics": _run_metrics,
    "bench-perf": _run_bench_perf,
    "report": _run_report,
}


def handle(request):
    """Execute one API request and return its typed :class:`Response`.

    The runner's stdout is captured into ``Response.output`` (the CLI
    prints it verbatim; the daemon ships it over the socket), the cache
    hit/miss delta over the request lands in ``Response.cache``, and any
    per-request quiet override is restored on the way out. Toolchain
    errors (:class:`~repro.errors.PhloemError`) propagate to the caller:
    the one-shot CLI fails loudly exactly as it always did, while the
    service worker wraps them into structured error responses.
    """
    if isinstance(request, dict):
        request = Request.from_wire(request)
    runner = _RUNNERS.get(request.VERB)
    if runner is None:
        raise ApiError("no handler for verb %r" % (request.VERB,))
    before = cache.stats_snapshot()
    old_quiet = get_quiet()
    buffer = io.StringIO()
    try:
        with contextlib.redirect_stdout(buffer):
            exit_code, records, extras = runner(request)
    finally:
        set_quiet(old_quiet)
    response_cls = RESPONSE_FOR_VERB[request.VERB]
    return response_cls(
        verb=request.VERB,
        exit_code=exit_code,
        output=buffer.getvalue(),
        records=records,
        cache=cache.stats_since(before),
        **extras,
    )
