"""Per-figure experiment drivers (the evaluation of Sec. VII).

Each ``figN_*`` function regenerates one figure of the paper as structured
data plus an ASCII rendering. Heavyweight results (the Fig. 9 suite) are
computed once and shared by the figures that re-slice them (Figs. 10, 11,
13). Set ``REPRO_QUICK=1`` to shrink the evaluation for smoke runs.

Mirroring the paper's methodology (Sec. VI): PRD and Radii bound their
simulation time by running on the lower-diameter inputs (the paper uses
iteration sampling for the same reason); Taco benchmarks use the static
compilation flow.
"""

from .. import cache
from ..core.autotune import gmean, speedup_distribution
from ..core.compiler import ALL_PASSES, CompileOptions
from ..frontend.lowering import compile_source
from ..pipette.config import SCALED_1CORE
from ..runtime.executor import run_pipeline
from ..taco import kernels as taco_kernels
from ..taco.parallel import stripe_data_parallel
from ..workloads import bc, bfs, cc, datasets, graphs, pr, prd, radii, replicated, spmm, spmv, sssp, tc
from ..pipette.config import SCALED_4CORE
from ..runtime.executor import run_replicated
from ..workloads.dataflow import dataflow_variant
from . import report
from .harness import (
    DP_THREADS,
    QUICK,
    BenchAdapter,
    gmean_speedup,
    normalized_breakdowns,
    normalized_energy,
    run_suite,
)
from .parallel import Job, run_jobs

#: Per-benchmark test inputs (PRD/Radii use the low-diameter subset).
_GRAPH_INPUT_NAMES = {
    "bfs": ["coauthors", "hugetrace", "freescale", "skitter", "road-usa"],
    "cc": ["coauthors", "hugetrace", "freescale", "skitter", "road-usa"],
    "prd": ["coauthors", "freescale", "skitter"],
    "radii": ["coauthors", "freescale", "skitter"],
}


def _inputs_for(name):
    names = _GRAPH_INPUT_NAMES[name]
    if QUICK:
        names = names[:2]
    return [datasets.graph_by_name(n) for n in names]


def _spmm_inputs():
    items = datasets.TEST_MATRICES_SPMM
    return items[:2] if QUICK else items


# ---------------------------------------------------------------------------
# Fig. 6 — BFS pass ablation


FIG6_VARIANTS = [
    ("Dataflow-style", None),  # the Dynamatic-like negative result
    ("Q", ()),
    ("R+Q", ("recompute",)),
    ("CV+R+Q", ("recompute", "cv")),
    ("DCE+CV+R+Q", ("recompute", "cv", "dce")),
    ("CH+DCE+CV+R+Q", ("recompute", "cv", "dce", "handlers")),
    ("RA+R+Q", ("recompute", "ra")),
    ("All passes", ALL_PASSES),
    ("Manually pipelined", "manual"),
]


def fig6_pass_ablation(config=SCALED_1CORE, input_name="freescale"):
    """Speedup over serial BFS with each added pass (paper Fig. 6)."""
    graph = datasets.graph_by_name(input_name).build()
    arrays, scalars = bfs.make_env(graph)
    function = bfs.function()
    serial = cache.cached_serial_run(function, arrays, scalars, config)
    assert bfs.check(serial.arrays, graph)

    speedups = {}
    for label, passes in FIG6_VARIANTS:
        if passes == "manual":
            pipeline = bfs.manual_pipeline()
        elif passes is None:
            pipeline = dataflow_variant(function)
        else:
            pipeline = cache.cached_compile(function, CompileOptions(num_stages=4, passes=passes))
        result = run_pipeline(pipeline, arrays, scalars, config=config)
        if not bfs.check(result.arrays, graph):
            raise AssertionError("fig6 variant %r produced wrong distances" % label)
        speedups[label] = serial.cycles / result.cycles

    text = report.render_table(
        "Fig. 6: BFS speedup with each added pass (input: %s)" % input_name,
        ["variant", "speedup over serial"],
        [[k, v] for k, v in speedups.items()],
    )
    return {"speedups": speedups, "text": text}


# ---------------------------------------------------------------------------
# Fig. 9/10/11 — overall comparison suite (computed once)

_SUITES = {}


def ensure_suites(config=SCALED_1CORE, jobs=None):
    """Run the Fig. 9 suite for all five benchmarks (cached).

    The five suites are independent: with ``jobs`` > 1 they fan out over
    the worker pool (one job per benchmark), which is where the figures
    CLI gets its cross-benchmark parallelism.
    """
    if _SUITES:
        return _SUITES
    specs = [
        (name, BenchAdapter(module), _inputs_for(name), datasets.TRAIN_GRAPHS)
        for name, module in (("bfs", bfs), ("cc", cc), ("prd", prd), ("radii", radii))
    ]
    specs.append(("spmm", BenchAdapter(spmm), _spmm_inputs(), datasets.TRAIN_MATRICES_SPMM))
    job_list = [
        Job("suite:%s" % name, run_suite, adapter, tests, train, config)
        for name, adapter, tests, train in specs
    ]
    for spec, result in zip(specs, run_jobs(job_list, workers=jobs)):
        _SUITES[spec[0]] = result.value
    return _SUITES


def fig9_overall_speedup(config=SCALED_1CORE):
    """Per-benchmark speedups over serial (paper Fig. 9)."""
    suites = ensure_suites(config)
    table = {}
    for name, suite in suites.items():
        table[name] = {
            variant: gmean_speedup(runs)
            for variant, runs in suite.items()
            if not variant.startswith("_")
        }
        for variant, runs in suite.items():
            if variant.startswith("_"):
                continue
            bad = [r for r in runs if not r.ok]
            if bad:
                raise AssertionError("fig9 %s/%s failed validation: %s" % (name, variant, bad))
    text = report.render_speedups("Fig. 9: gmean speedup over serial", table)
    return {"speedups": table, "text": text}


def fig10_cycle_breakdown(config=SCALED_1CORE):
    """Cycle breakdowns normalized to serial (paper Fig. 10)."""
    suites = ensure_suites(config)
    table = {name: normalized_breakdowns(suite) for name, suite in suites.items()}
    text = report.render_stacked(
        "Fig. 10: cycles normalized to serial (issue/backend/queue/other)",
        table,
        ["issue", "backend", "queue", "other"],
    )
    return {"breakdowns": table, "text": text}


def fig11_energy_breakdown(config=SCALED_1CORE):
    """Energy breakdowns normalized to serial (paper Fig. 11)."""
    suites = ensure_suites(config)
    table = {name: normalized_energy(suite) for name, suite in suites.items()}
    text = report.render_stacked(
        "Fig. 11: energy normalized to serial",
        table,
        ["core_dynamic", "core_static", "cache", "dram"],
    )
    return {"energy": table, "text": text}


# ---------------------------------------------------------------------------
# Extension — GARDENIA-style workload suite (SSSP, PageRank, TC, BC, SpMV)

#: Per-workload test inputs. SSSP runs on the weighted Table IV
#: substitutes; TC and BC canonicalize (symmetrize) internally, so they
#: share the plain graph inputs with PageRank.
_GARDENIA_INPUT_NAMES = {
    "sssp": ["coauthors-w", "road-usa-w", "skitter-w"],
    "pr": ["coauthors", "freescale", "skitter"],
    "tc": ["coauthors", "freescale", "skitter"],
    "bc": ["coauthors", "freescale", "skitter"],
}

#: The GARDENIA suite compares the hand-written baselines against the
#: *static* compilation flow (no profile-guided search): the suite is a
#: breadth check across irregular shapes, and the search's training
#: simulations would dominate its wall-clock without changing the story.
_GARDENIA_VARIANTS = ("serial", "data-parallel", "phloem-static", "manual")

_GARDENIA_SUITES = {}


def ensure_gardenia_suites(config=SCALED_1CORE, jobs=None):
    """Run the GARDENIA comparison for all five workloads (cached)."""
    if _GARDENIA_SUITES:
        return _GARDENIA_SUITES
    specs = [
        (
            name,
            BenchAdapter(module),
            [
                datasets.graph_by_name(n)
                for n in (
                    # One input per workload under QUICK: five workloads x
                    # four variants is already a lot of simulation, and the
                    # first-listed inputs are the cheap ones.
                    _GARDENIA_INPUT_NAMES[name][:1]
                    if QUICK
                    else _GARDENIA_INPUT_NAMES[name]
                )
            ],
        )
        for name, module in (("sssp", sssp), ("pr", pr), ("tc", tc), ("bc", bc))
    ]
    spmv_inputs = datasets.TEST_MATRICES_SPMV
    specs.append(("spmv", BenchAdapter(spmv), spmv_inputs[:1] if QUICK else spmv_inputs))
    job_list = [
        Job(
            "gardenia:%s" % name,
            run_suite,
            adapter,
            tests,
            [],
            config,
            _GARDENIA_VARIANTS,
        )
        for name, adapter, tests in specs
    ]
    for spec, result in zip(specs, run_jobs(job_list, workers=jobs)):
        _GARDENIA_SUITES[spec[0]] = result.value
    return _GARDENIA_SUITES


def gardenia_suite(config=SCALED_1CORE, jobs=None):
    """GARDENIA-suite speedups over serial (extension of Fig. 9).

    Every run is validated against its workload's golden CPU oracle;
    a failed check is an assertion, never a silent row.
    """
    suites = ensure_gardenia_suites(config, jobs=jobs)
    table = {}
    for name, suite in suites.items():
        table[name] = {
            variant: gmean_speedup(runs)
            for variant, runs in suite.items()
            if not variant.startswith("_")
        }
        for variant, runs in suite.items():
            if variant.startswith("_"):
                continue
            bad = [r for r in runs if not r.ok]
            if bad:
                raise AssertionError(
                    "gardenia %s/%s failed its golden oracle: %s" % (name, variant, bad)
                )
    text = report.render_speedups(
        "GARDENIA suite: gmean speedup over serial", table
    )
    return {"speedups": table, "text": text}


# ---------------------------------------------------------------------------
# Fig. 12 — Taco benchmarks


def _taco_cases():
    matrices = datasets.TEST_MATRICES_TACO
    if QUICK:
        matrices = matrices[:2]
    cases = []
    for matrix_input in matrices:
        m = matrix_input.build()
        cases.append((matrix_input.name, m))
    return cases


def fig12_taco(config=SCALED_1CORE):
    """Taco kernels: serial vs data-parallel vs Phloem-static (paper Fig. 12)."""
    specs = [
        ("spmv", taco_kernels.spmv_kernel(), lambda m: {"A": m, "x": taco_kernels.dense_input(m.ncols, 1)}, ()),
        (
            "residual",
            taco_kernels.residual_kernel(),
            lambda m: {
                "A": m,
                "x": taco_kernels.dense_input(m.ncols, 1),
                "b": taco_kernels.dense_input(m.nrows, 2),
            },
            (),
        ),
        (
            "mtmul",
            taco_kernels.mtmul_kernel(),
            lambda m: {
                "A": m,
                "x": taco_kernels.dense_input(m.nrows, 4),
                "z": taco_kernels.dense_input(m.ncols, 3),
                "alpha": taco_kernels.ALPHA,
                "beta": taco_kernels.BETA,
            },
            ("y",),
        ),
        (
            "sddmm",
            taco_kernels.sddmm_kernel(),
            lambda m: {
                "B": m,
                "C": (taco_kernels.dense_input(m.nrows * 12, 5), 12),
                "D": (taco_kernels.dense_input(12 * m.ncols, 6), m.ncols),
            },
            (),
        ),
    ]

    table = {}
    for kname, kernel, data_builder, atomic_arrays in specs:
        function = compile_source(kernel.source)
        pipeline = cache.cached_compile(function, CompileOptions(num_stages=4, passes=ALL_PASSES))
        dp = stripe_data_parallel(function, DP_THREADS, atomic_arrays=atomic_arrays)
        serial_speeds, dp_speeds, phloem_speeds = [], [], []
        for mat_name, matrix in _taco_cases():
            if kname == "sddmm" and matrix.nrows > 2500:
                continue  # the dense k-loop makes big inputs slow to simulate
            arrays, scalars = kernel.bind(data_builder(matrix))
            serial = cache.cached_serial_run(function, arrays, scalars, config)
            presult = run_pipeline(pipeline, arrays, scalars, config=config)
            dp_scalars = dict(scalars)
            dp_scalars["nthreads"] = DP_THREADS
            dresult = run_pipeline(dp, arrays, dp_scalars, config=config)
            serial_speeds.append(1.0)
            phloem_speeds.append(serial.cycles / presult.cycles)
            dp_speeds.append(serial.cycles / dresult.cycles)
        if not serial_speeds:
            continue  # every input filtered out (QUICK + the sddmm guard)
        table[kname] = {
            "serial": 1.0,
            "data-parallel": gmean(dp_speeds),
            "phloem-static": gmean(phloem_speeds),
        }
    text = report.render_speedups("Fig. 12: Taco benchmark gmean speedups", table)
    return {"speedups": table, "text": text}


# ---------------------------------------------------------------------------
# Fig. 13 — pipeline-length distribution from the search


def fig13_stage_distribution(config=SCALED_1CORE):
    """Distribution of profiled pipeline speedups by stage count (Fig. 13)."""
    table = {}

    suites = ensure_suites(config)
    for name in ("bfs", "spmm"):
        search = suites[name].get("_search")
        if search:
            table[name] = speedup_distribution(search)

    # SpMV: run the search against its training matrices.
    kernel = taco_kernels.spmv_kernel()
    function = compile_source(kernel.source)

    train = datasets.TRAIN_MATRICES_SPMM
    baselines = {}
    envs = {}
    for item in train:
        m = item.build()
        arrays, scalars = kernel.bind({"A": m, "x": taco_kernels.dense_input(m.ncols, 1)})
        envs[item.name] = (arrays, scalars)
        baselines[item.name] = cache.cached_serial_run(function, arrays, scalars, config).cycles

    from ..core.autotune import gmean, search_pipelines

    def evaluate(pipeline):
        speeds = []
        for item in train:
            arrays, scalars = envs[item.name]
            result = run_pipeline(pipeline, arrays, scalars, config=config)
            speeds.append(baselines[item.name] / result.cycles)
        return gmean(speeds)

    _, results = search_pipelines(function, evaluate, max_stages=4, top_k=5, limit=40)
    table["spmv"] = speedup_distribution(results)

    text = report.render_distribution(
        "Fig. 13: training-set speedup distribution vs pipeline length", table
    )
    return {"distributions": table, "text": text}


# ---------------------------------------------------------------------------
# Fig. 14 — replicated pipelines on 4 cores x 4 threads


def _fig14_graph(app):
    if QUICK:
        return graphs.uniform_random(6000, 5, seed=71)
    if app in ("bfs", "cc"):
        return graphs.uniform_random(16000, 5, seed=71)
    return graphs.uniform_random(3000, 5, seed=72)


def _fig14_check(app, module, arrays, graph, variant):
    if app == "prd":
        exact = variant == "serial"
        return module.check(arrays, graph, exact=exact, tol=1e-6)
    return module.check(arrays, graph)


def fig14_replication(config=SCALED_4CORE, replicas=4):
    """BFS/CC/PRD/Radii replicated over 4 cores (paper Fig. 14).

    Compares a single-thread serial run, a 16-thread data-parallel run,
    the replicated+distributed pipelines ("Phloem" bars), and hand-tuned
    replicated variants ("Manual" bars; for BFS a leaner source-sharded
    2-stage pipeline exploiting BFS's benign same-value races).
    """
    modules = {"bfs": bfs, "cc": cc, "prd": prd, "radii": radii}
    table = {}
    for app, module in modules.items():
        graph = _fig14_graph(app)
        arrays, scalars = module.make_env(graph)
        function = module.function()
        serial = cache.cached_serial_run(function, arrays, scalars, config)
        if not _fig14_check(app, module, serial.arrays, graph, "serial"):
            raise AssertionError("fig14 %s serial failed validation" % app)
        entry = {"serial": 1.0}

        # Data-parallel over all 16 threads (4 per core).
        threads = config.cores * config.smt_threads
        dp = module.data_parallel(threads)
        dp_arrays, dp_scalars = module.make_env_dp(graph, threads)
        stage_cores = [i // config.smt_threads for i in range(threads)]
        dresult = run_pipeline(dp, dp_arrays, dp_scalars, config=config, stage_cores=stage_cores)
        if not _fig14_check(app, module, dresult.arrays, graph, "data-parallel"):
            raise AssertionError("fig14 %s data-parallel failed validation" % app)
        entry["data-parallel"] = serial.cycles / dresult.cycles

        if app == "bfs":
            # BFS's flat pipeline goes through the fully automatic
            # replicate+distribute transform on the compiled pipeline.
            from ..core.replicate import replicate_pipeline

            compiled = cache.cached_compile(
                module.function(), CompileOptions(num_stages=4, passes=ALL_PASSES)
            )
            clones = replicate_pipeline(compiled, replicas)
            cases = [("phloem", lambda rid, _r: clones[rid])]
        else:
            cases = [("phloem", replicated.BUILDERS[app])]
        cases.append(("manual", replicated.MANUAL_BUILDERS[app]))
        if app == "bfs":
            # Ablation supporting the distribute pragma: replication alone
            # leaves all discovered work with the replica that found it.
            cases.append(("no-distribute", replicated.bfs_replicated_nodist))
        for variant, builder in cases:
            pipelines = [builder(rid, replicas) for rid in range(replicas)]
            envs = replicated.make_envs(app, graph, replicas)
            result = run_replicated(
                [(pipelines[r], envs[r][0], envs[r][1], r) for r in range(replicas)],
                config,
            )
            if not _fig14_check(app, module, result.arrays, graph, variant):
                raise AssertionError("fig14 %s %s failed validation" % (app, variant))
            entry[variant] = serial.cycles / result.cycles
        table[app] = entry

    text = report.render_speedups(
        "Fig. 14: replicated pipelines on %d cores (speedup over 1-thread serial)" % 4,
        table,
    )
    return {"speedups": table, "text": text}


# ---------------------------------------------------------------------------
# Extension: ablations of the architectural design choices (beyond the
# paper's figures, supporting DESIGN.md's parameter decisions)


def ablation_design_choices(config=SCALED_1CORE):
    """Sweep the Pipette parameters the paper fixes in Table III.

    Uses the fully-optimized BFS pipeline on the freescale input and
    reports speedup over serial as one parameter varies at a time:
    queue depth (24 in the paper), RA parallelism, the prefetcher, and
    spatial (cross-core) vs SMT stage placement.
    """
    from dataclasses import replace

    graph = datasets.graph_by_name("freescale" if not QUICK else "coauthors").build()
    arrays, scalars = bfs.make_env(graph)
    function = bfs.function()
    serial = cache.cached_serial_run(function, arrays, scalars, config)

    table = {}

    depth_row = {}
    for depth in (2, 4, 8, 24, 64):
        pipeline = cache.cached_compile(
            function, CompileOptions(num_stages=4, passes=ALL_PASSES, queue_capacity=depth)
        )
        result = run_pipeline(pipeline, arrays, scalars, config=config)
        assert bfs.check(result.arrays, graph)
        depth_row["depth=%d" % depth] = serial.cycles / result.cycles
    table["queue depth"] = depth_row

    pipeline = cache.cached_compile(function, CompileOptions(num_stages=4, passes=ALL_PASSES))
    mshr_row = {}
    for mshrs in (1, 4, 16, 32):
        cfg = replace(config, ra_mshrs=mshrs)
        result = run_pipeline(pipeline, arrays, scalars, config=cfg)
        mshr_row["ra_mshrs=%d" % mshrs] = serial.cycles / result.cycles
    table["RA parallelism"] = mshr_row

    pf_row = {}
    for enabled in (False, True):
        cfg = replace(config, prefetch_enabled=enabled)
        base = cache.cached_serial_run(function, arrays, scalars, cfg)
        result = run_pipeline(pipeline, arrays, scalars, config=cfg)
        pf_row["prefetch=%s" % enabled] = base.cycles / result.cycles
    table["stride prefetcher"] = pf_row

    place_row = {}
    cfg4 = replace(config, cores=4)
    smt = run_pipeline(pipeline, arrays, scalars, config=cfg4)
    place_row["SMT (1 core)"] = serial.cycles / smt.cycles
    spatial = run_pipeline(
        pipeline, arrays, scalars, config=cfg4,
        stage_cores=list(range(len(pipeline.stages))),
    )
    place_row["spatial (1 stage/core)"] = serial.cycles / spatial.cycles
    table["stage placement"] = place_row

    text = report.render_speedups(
        "Ablation (extension): Pipette design parameters on BFS", table
    )
    return {"speedups": table, "text": text}
