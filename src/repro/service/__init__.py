"""Compile-and-simulate as a service.

The long-lived daemon behind ``repro serve``: an asyncio NDJSON socket
server (:mod:`repro.service.daemon`) executing :mod:`repro.api` requests
on a fork worker pool (:mod:`repro.service.pool`) over the shared
content-addressed :mod:`repro.cache`, with per-client token-bucket rate
limits and job quotas (:mod:`repro.service.ratelimit`). The wire format
lives in :mod:`repro.service.protocol`; the matching client in
:mod:`repro.client`. Request telemetry — per-verb counters, latency
histograms, Prometheus exposition — lives in
:mod:`repro.service.telemetry` and rides the ``stats``/``telemetry``
control actions.
"""

from .daemon import REJECTED_EXIT_CODE, Daemon, serve_main
from .pool import RequestPool, execute_wire
from .ratelimit import QUOTA_EXCEEDED, RATE_LIMITED, ClientGovernor, TokenBucket
from .telemetry import (
    LATENCY_BUCKETS_S,
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    LatencyHistogram,
    ServiceTelemetry,
    parse_prometheus,
    render_prometheus,
)

__all__ = [
    "Daemon",
    "serve_main",
    "REJECTED_EXIT_CODE",
    "RequestPool",
    "execute_wire",
    "TokenBucket",
    "ClientGovernor",
    "RATE_LIMITED",
    "QUOTA_EXCEEDED",
    "ServiceTelemetry",
    "LatencyHistogram",
    "LATENCY_BUCKETS_S",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_VERSION",
    "render_prometheus",
    "parse_prometheus",
]
