"""Stage-thread interpreter: functional execution + scoreboard timing.

Each pipeline stage runs as a generator (a :class:`~repro.pipette.sched.Task`)
that walks its region-tree body, executing statements functionally while
accounting cycles with an out-of-order-lite model:

* every micro-op claims a slot in the core's shared 6-wide issue ledger
  (SMT contention among co-resident stages falls out of this);
* each register carries a *ready* cycle; completion = max(issue slot,
  operand ready) + latency, so dependence chains (the paper's serialized
  indirections) cost their full latency while independent work overlaps;
* loads additionally bound run-ahead through MSHR and ROB ledgers;
* branches run through a gshare predictor; mispredictions redirect the
  issue cursor at branch resolution time;
* queue operations block the *thread* (Pipette semantics: the SMT scheduler
  issues other threads meanwhile), with blocked time attributed to the
  queue-stall bucket of Fig. 10.
"""

from collections import deque

from ..errors import SimulationError
from ..ir import ops
from ..ir.values import is_control
from .branch import GsharePredictor
from .sched import BLOCKED

#: Control-flow signals returned by block execution.
NORMAL = None
_HALT = ("halt", 0)


class ArrayBinding:
    """Runtime binding of an array symbol: data plus its simulated address."""

    __slots__ = ("name", "data", "base", "elem_size", "is_float")

    def __init__(self, name, data, base, elem_size, is_float):
        self.name = name
        self.data = data
        self.base = base
        self.elem_size = elem_size
        self.is_float = is_float


class ThreadCtx:
    """Mutable per-thread machine state (registers + timing scoreboard)."""

    __slots__ = (
        "regs",
        "ready",
        "cursor",
        "rob",
        "rob_size",
        "rob_last",
        "mshr",
        "ledger",
        "mem",
        "core",
        "stats",
        "pred",
        "task",
        "config",
        "tracer",
    )

    def __init__(self, config, core, ledger, mem, stats, task, tracer=None):
        self.regs = {}
        self.ready = {}
        self.cursor = 0.0
        self.rob = deque()
        self.rob_size = config.rob_size
        self.rob_last = 0.0
        self.mshr = deque()
        self.ledger = ledger
        self.mem = mem
        self.core = core
        self.stats = stats
        self.pred = GsharePredictor()
        self.task = task
        self.config = config
        self.tracer = tracer

    # -- timing primitives -------------------------------------------------

    def issue(self, n=1):
        """Claim ``n`` issue slots starting at the cursor; returns last slot."""
        t = self.ledger.acquire(self.cursor)
        for _ in range(n - 1):
            t = self.ledger.acquire(t)
        self.cursor = t
        self.stats.uops += n
        return t

    def retire(self, completion):
        """Push a completion through the in-order ROB; may stall the cursor."""
        if completion < self.rob_last:
            completion = self.rob_last
        self.rob_last = completion
        rob = self.rob
        if len(rob) >= self.rob_size:
            oldest = rob.popleft()
            if oldest > self.cursor:
                self.stats.mem_stall += oldest - self.cursor
                if self.tracer is not None:
                    self.tracer.stall(self.stats.name, "mem", self.cursor, oldest)
                self.cursor = oldest
        rob.append(completion)

    def mshr_claim(self, completion):
        """Bound outstanding loads; the oldest must finish to free an entry."""
        mshr = self.mshr
        if len(mshr) >= self.config.mshrs:
            oldest = mshr.popleft()
            if oldest > self.cursor:
                self.stats.mem_stall += oldest - self.cursor
                if self.tracer is not None:
                    self.tracer.stall(self.stats.name, "mem", self.cursor, oldest)
                self.cursor = oldest
        mshr.append(completion)

    def next_event_cycle(self):
        """Event-horizon contract: the earliest cycle the thread's clock can
        sit at given its scoreboard state, without mutating anything.

        The cursor is the baseline; a *full* ROB or MSHR whose oldest
        completion lies ahead of it would stall the very next retire/claim
        to that completion — the same closed form the engines' inline ring
        code advances the clock by.
        """
        t = self.cursor
        mshr = self.mshr
        if len(mshr) >= self.config.mshrs and mshr[0] > t:
            t = mshr[0]
        rob = self.rob
        if len(rob) >= self.rob_size and rob[0] > t:
            t = rob[0]
        return t

    def ready_of(self, operand):
        if type(operand) is str:
            return self.ready.get(operand, 0.0)
        return 0.0


def _assign_pcs(stage):
    """Branch PCs by structural position (preorder walk of the stage).

    The gshare predictor indexes its tables by PC. Object addresses
    (``id``) would tie timing to allocator state, so two structurally
    identical pipelines could mispredict differently — and cached or
    pool-worker runs would not be bit-identical to serial ones.
    """
    table = {}
    counter = [0]

    def walk(body):
        for stmt in body:
            table[id(stmt)] = counter[0]
            counter[0] += 1
            kind = stmt.kind
            if kind == "if":
                walk(stmt.then_body)
                walk(stmt.else_body or [])
            elif kind in ("for", "loop"):
                walk(stmt.body)

    walk(stage.body)
    for qid in sorted(stage.handlers):
        walk(stage.handlers[qid])
    return table


class StageInterp:
    """Interprets one stage of a pipeline on one simulated thread."""

    def __init__(self, stage, ctx, runenv):
        self.stage = stage
        self.ctx = ctx
        self.env = runenv  # RunEnv: arrays, queues, shared cells, barrier...
        self.handlers = stage.handlers
        self.pcs = _assign_pcs(stage)

    # -- operand helpers -----------------------------------------------------

    def val(self, operand):
        if type(operand) is str and not operand.startswith("@"):
            return self.ctx.regs[operand]
        return operand  # constant or array handle

    def array_binding(self, operand):
        """Resolve an array operand (symbol or pointer register) to a binding."""
        name = operand
        if not name.startswith("@"):
            name = self.ctx.regs[name]  # pointer register holds a handle
            if not isinstance(name, str) or not name.startswith("@"):
                raise SimulationError(
                    "register %r used as pointer holds %r" % (operand, name)
                )
        binding = self.env.arrays.get(name[1:])
        if binding is None:
            raise SimulationError("unbound array %s" % name)
        return binding

    # -- main loop -----------------------------------------------------------

    def run(self):
        """Top-level generator executed by the scheduler."""
        ctx = self.ctx
        ctx.stats.start_cycle = ctx.cursor
        signal = yield from self.exec_body(self.stage.body)
        if signal is not NORMAL and signal is not _HALT:
            raise SimulationError(
                "stage %s finished with dangling control signal %r" % (self.stage.name, signal)
            )
        ctx.stats.end_cycle = ctx.cursor
        self.env.on_thread_done(self)

    def exec_body(self, body):
        """Execute a statement list; returns NORMAL or ('break', n)/('continue', 1)."""
        ctx = self.ctx
        regs = ctx.regs
        ready = ctx.ready
        for stmt in body:
            kind = stmt.kind

            if kind == "assign":
                args = stmt.args
                vals = [
                    regs[a] if type(a) is str and not a.startswith("@") else a for a in args
                ]
                slot = ctx.issue(1)
                dep = 0.0
                for a in args:
                    if type(a) is str:
                        r = ready.get(a, 0.0)
                        if r > dep:
                            dep = r
                start = slot if slot > dep else dep
                comp = start + ctx.config.op_latency(stmt.op)
                regs[stmt.dst] = ops.evaluate(stmt.op, vals)
                ready[stmt.dst] = comp
                ctx.retire(comp)

            elif kind == "load":
                binding = self.array_binding(stmt.array)
                idx = self.val(stmt.index)
                slot = ctx.issue(1)
                dep = ctx.ready_of(stmt.index)
                if type(stmt.array) is str and not stmt.array.startswith("@"):
                    r = ready.get(stmt.array, 0.0)
                    if r > dep:
                        dep = r
                start = slot if slot > dep else dep
                addr = binding.base + idx * binding.elem_size
                latency = ctx.mem.access(ctx.core, addr, start, stream_id=binding.name)
                comp = start + latency
                try:
                    value = binding.data[idx]
                except IndexError:
                    raise SimulationError(
                        "stage %s: load %s[%d] out of bounds (len %d)"
                        % (self.stage.name, stmt.array, idx, len(binding.data))
                    )
                regs[stmt.dst] = value
                ready[stmt.dst] = comp
                ctx.stats.loads += 1
                ctx.mshr_claim(comp)
                ctx.retire(comp)

            elif kind == "store":
                binding = self.array_binding(stmt.array)
                idx = self.val(stmt.index)
                value = self.val(stmt.value)
                slot = ctx.issue(1)
                dep = max(ctx.ready_of(stmt.index), ctx.ready_of(stmt.value))
                start = slot if slot > dep else dep
                addr = binding.base + idx * binding.elem_size
                ctx.mem.access(ctx.core, addr, start, stream_id=binding.name, is_store=True)
                try:
                    binding.data[idx] = value
                except IndexError:
                    raise SimulationError(
                        "stage %s: store %s[%d] out of bounds (len %d)"
                        % (self.stage.name, stmt.array, idx, len(binding.data))
                    )
                ctx.stats.stores += 1
                ctx.retire(start + 1)

            elif kind == "prefetch":
                binding = self.array_binding(stmt.array)
                idx = self.val(stmt.index)
                slot = ctx.issue(1)
                dep = ctx.ready_of(stmt.index)
                start = slot if slot > dep else dep
                if 0 <= idx < len(binding.data):
                    addr = binding.base + idx * binding.elem_size
                    latency = ctx.mem.access(ctx.core, addr, start, stream_id=binding.name)
                    comp = start + latency
                    ctx.stats.loads += 1
                    ctx.mshr_claim(comp)
                    ctx.retire(comp)

            elif kind == "if":
                cond = self.val(stmt.cond)
                taken = bool(cond)
                slot = ctx.issue(1)
                ctx.stats.branches += 1
                correct = ctx.pred.predict_and_update(self.pcs[id(stmt)], taken)
                if not correct:
                    resolve = max(slot, ctx.ready_of(stmt.cond))
                    target = resolve + ctx.config.mispredict_penalty
                    ctx.stats.mispredicts += 1
                    ctx.stats.branch_stall += target - ctx.cursor
                    if ctx.tracer is not None and target > ctx.cursor:
                        ctx.tracer.stall(ctx.stats.name, "branch", ctx.cursor, target)
                    ctx.cursor = target
                body2 = stmt.then_body if taken else stmt.else_body
                if body2:
                    signal = yield from self.exec_body(body2)
                    if signal is not NORMAL:
                        return signal

            elif kind == "for":
                signal = yield from self.exec_for(stmt)
                if signal is not NORMAL:
                    return signal

            elif kind == "loop":
                signal = yield from self.exec_loop(stmt)
                if signal is not NORMAL:
                    return signal

            elif kind == "break":
                return ("break", stmt.levels)

            elif kind == "continue":
                return ("continue", 1)

            elif kind == "deq":
                signal = yield from self.exec_deq(stmt)
                if signal is not NORMAL:
                    return signal

            elif kind == "enq":
                yield from self.do_enq(self.env.queue_of(self, stmt.queue), self.val(stmt.value), stmt.value)

            elif kind == "enq_ctrl":
                yield from self.do_enq(self.env.queue_of(self, stmt.queue), stmt.ctrl, None)
                self.env.stats.ctrl_values += 1

            elif kind == "peek":
                yield from self.exec_peek(stmt)

            elif kind == "is_control":
                value = self.val(stmt.src)
                slot = ctx.issue(1)
                comp = max(slot, ctx.ready_of(stmt.src)) + 1
                regs[stmt.dst] = 1 if is_control(value) else 0
                ready[stmt.dst] = comp
                ctx.retire(comp)

            elif kind == "call":
                intr = self.env.intrinsics.get(stmt.func)
                if intr is None:
                    raise SimulationError("unbound intrinsic %r" % stmt.func)
                vals = [self.val(a) for a in stmt.args]
                slot = ctx.issue(max(1, intr.cost))
                dep = 0.0
                for a in stmt.args:
                    r = ctx.ready_of(a)
                    if r > dep:
                        dep = r
                comp = max(slot, dep) + 1
                result = intr.fn(*vals)
                if stmt.dst is not None:
                    regs[stmt.dst] = result if result is not None else 0
                    ready[stmt.dst] = comp
                ctx.retire(comp)

            elif kind == "barrier":
                yield from self.exec_barrier(stmt)

            elif kind == "read_shared":
                slot = ctx.issue(1)
                regs[stmt.dst] = self.env.shared.read(stmt.var)
                ready[stmt.dst] = slot + 1
                ctx.retire(slot + 1)

            elif kind == "write_shared":
                value = self.val(stmt.value)
                slot = ctx.issue(1)
                self.env.shared.write(stmt.var, value)
                ctx.retire(max(slot, ctx.ready_of(stmt.value)) + 1)

            elif kind == "atomic_rmw":
                binding = self.array_binding(stmt.array)
                idx = self.val(stmt.index)
                value = self.val(stmt.value)
                slot = ctx.issue(3)
                dep = max(ctx.ready_of(stmt.index), ctx.ready_of(stmt.value))
                start = slot if slot > dep else dep
                addr = binding.base + idx * binding.elem_size
                latency = ctx.mem.access(ctx.core, addr, start, stream_id=binding.name)
                comp = start + latency + self.env.atomic_overhead
                old = binding.data[idx]
                binding.data[idx] = ops.evaluate(stmt.op, [old, value])
                if stmt.dst is not None:
                    regs[stmt.dst] = old
                    ready[stmt.dst] = comp
                ctx.stats.loads += 1
                ctx.stats.stores += 1
                ctx.mshr_claim(comp)
                ctx.retire(comp)

            elif kind == "enq_dist":
                replica = self.val(stmt.replica)
                queue, extra = self.env.remote_queue(self, stmt.queue, replica)
                yield from self.do_enq(queue, self.val(stmt.value), stmt.value, extra)

            elif kind == "enq_ctrl_dist":
                for queue, extra in self.env.all_replica_queues(self, stmt.queue):
                    yield from self.do_enq(queue, stmt.ctrl, None, extra)
                    self.env.stats.ctrl_values += 1

            elif kind == "comment":
                pass

            else:
                raise SimulationError("unknown statement kind %r" % kind)
        return NORMAL

    # -- control flow ----------------------------------------------------------

    def exec_for(self, stmt):
        ctx = self.ctx
        lo = self.val(stmt.lo)
        hi = self.val(stmt.hi)
        step = self.val(stmt.step)
        pc = self.pcs[id(stmt)]
        bound_dep = max(ctx.ready_of(stmt.lo), ctx.ready_of(stmt.hi))
        i = lo
        while True:
            taken = i < hi
            # Loop control costs real instructions: increment, compare,
            # branch (paper Sec. III: "Computing loop bounds becomes
            # relatively expensive as the body... becomes smaller").
            slot = ctx.issue(3)
            ctx.stats.branches += 1
            correct = ctx.pred.predict_and_update(pc, taken)
            if not correct:
                resolve = max(slot, bound_dep)
                target = resolve + ctx.config.mispredict_penalty
                ctx.stats.mispredicts += 1
                ctx.stats.branch_stall += max(0.0, target - ctx.cursor)
                if target > ctx.cursor:
                    if ctx.tracer is not None:
                        ctx.tracer.stall(ctx.stats.name, "branch", ctx.cursor, target)
                    ctx.cursor = target
            if not taken:
                break
            ctx.regs[stmt.var] = i
            ctx.ready[stmt.var] = ctx.cursor
            signal = yield from self.exec_body(stmt.body)
            if signal is not NORMAL:
                kind, levels = signal
                if kind == "continue":
                    pass
                elif kind == "break":
                    if levels > 1:
                        return ("break", levels - 1)
                    break
                else:
                    return signal
            i += step
        return NORMAL

    def exec_loop(self, stmt):
        while True:
            signal = yield from self.exec_body(stmt.body)
            if signal is not NORMAL:
                kind, levels = signal
                if kind == "continue":
                    continue
                if kind == "break":
                    if levels > 1:
                        return ("break", levels - 1)
                    return NORMAL
                return signal

    # -- queues ------------------------------------------------------------------

    def do_enq(self, queue, value, value_operand, extra_latency=0.0):
        """Enqueue ``value``; blocks the thread only when the queue is full.

        Like a register write in the OOO core, an enqueue whose *value* is
        still being produced does not stall the thread: the entry's
        visibility timestamp simply carries the value's ready time. Only an
        architecturally full queue blocks the thread (Pipette semantics),
        which is what the Fig. 10 queue-stall bucket measures.
        """
        ctx = self.ctx
        slot = ctx.issue(1)
        dep = ctx.ready_of(value_operand) if value_operand is not None else 0.0
        start = slot if slot > dep else dep
        t = queue.try_enq(start, value, extra_latency)
        if t is None:
            wait_from = ctx.cursor
            while t is None:
                ctx.task.block(("enq", queue.qid))
                queue.waiting_producers.append(ctx.task)
                yield BLOCKED
                t = queue.try_enq(start if start > ctx.cursor else ctx.cursor, value, extra_latency)
            if t > ctx.cursor:
                ctx.stats.queue_stall += t - wait_from
                if ctx.tracer is not None:
                    ctx.tracer.stall(ctx.stats.name, "queue", wait_from, t)
                ctx.cursor = t
        elif t > start:
            # A slot existed only in the future (the capacity-ago entry is
            # dequeued later): the queue is effectively full now.
            ctx.stats.queue_stall += t - ctx.cursor
            if ctx.tracer is not None:
                ctx.tracer.stall(ctx.stats.name, "queue", ctx.cursor, t)
            ctx.cursor = t
        ctx.stats.queue_ops += 1
        self.env.stats.queue_enqs += 1
        ctx.retire((t if t > start else start) + 1)

    def _deq_value(self, queue, reason):
        """Dequeue one entry; blocks the thread only when the queue is empty.

        Returns ``(value, ready_cycle)``. A present-but-in-flight entry does
        not stall the thread: its timestamp propagates through the register
        ready time, exactly like a load in flight.
        """
        ctx = self.ctx
        slot = ctx.issue(1)
        res = queue.try_deq(slot)
        if res is None:
            wait_from = ctx.cursor
            while res is None:
                ctx.task.block((reason, queue.qid))
                queue.waiting_consumers.append(ctx.task)
                yield BLOCKED
                res = queue.try_deq(ctx.cursor)
            value, t = res
            if t > ctx.cursor:
                ctx.stats.queue_stall += max(0.0, t - wait_from)
                if ctx.tracer is not None and t > wait_from:
                    ctx.tracer.stall(ctx.stats.name, "queue", wait_from, t)
                ctx.cursor = t
        else:
            value, t = res
        ctx.stats.queue_ops += 1
        self.env.stats.queue_deqs += 1
        ctx.retire(t + 1)
        return value, t

    def exec_deq(self, stmt):
        ctx = self.ctx
        queue = self.env.queue_of(self, stmt.queue)
        handler = self.handlers.get(stmt.queue)
        while True:
            value, t = yield from self._deq_value(queue, "deq")
            if is_control(value) and handler is not None:
                # Hardware control-value handler: runs instead of delivering
                # the value; Pipette jumps to the handler on dequeue.
                ctx.regs["%ctrl"] = value
                ctx.ready["%ctrl"] = t
                signal = yield from self.exec_body(handler)
                if signal is not NORMAL:
                    return signal  # typically ('break', n) out of the loop
                continue  # handler fell through: retry the dequeue
            ctx.regs[stmt.dst] = value
            ctx.ready[stmt.dst] = t
            return NORMAL

    def exec_peek(self, stmt):
        ctx = self.ctx
        queue = self.env.queue_of(self, stmt.queue)
        slot = ctx.issue(1)
        res = queue.try_peek(slot)
        if res is None:
            wait_from = ctx.cursor
            while res is None:
                ctx.task.block(("peek", queue.qid))
                queue.waiting_consumers.append(ctx.task)
                yield BLOCKED
                res = queue.try_peek(ctx.cursor)
            value, t = res
            if t > ctx.cursor:
                ctx.stats.queue_stall += max(0.0, t - wait_from)
                if ctx.tracer is not None and t > wait_from:
                    ctx.tracer.stall(ctx.stats.name, "queue", wait_from, t)
                ctx.cursor = t
        else:
            value, t = res
        ctx.regs[stmt.dst] = value
        ctx.ready[stmt.dst] = t
        ctx.retire(t + 1)

    def exec_barrier(self, stmt):
        ctx = self.ctx
        barrier = self.env.barrier
        arrive_time = ctx.cursor
        release = barrier.arrive(ctx.task, arrive_time)
        if release is None:
            ctx.task.block(("barrier", stmt.tag))
            yield BLOCKED
            release = barrier.last_release
        if release > ctx.cursor:
            ctx.stats.barrier_stall += release - ctx.cursor
            if ctx.tracer is not None:
                ctx.tracer.stall(ctx.stats.name, "barrier", ctx.cursor, release)
            ctx.cursor = release
