"""Reproduction of *Phloem: Automatic Acceleration of Irregular Applications
with Fine-Grain Pipeline Parallelism* (HPCA 2023).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.frontend` -- mini-C -> Phloem IR
* :mod:`repro.core` -- the Phloem compiler (passes, search, replication)
* :mod:`repro.pipette` -- the simulated hardware substrate
* :mod:`repro.runtime` -- serial/pipelined/data-parallel/replicated executors
* :mod:`repro.taco` -- mini tensor-algebra compiler emitting mini-C
* :mod:`repro.workloads` -- benchmarks and synthetic inputs
* :mod:`repro.bench` -- the per-figure evaluation harness
* :mod:`repro.cache` -- compiled-pipeline / serial-baseline memo layers
"""

__version__ = "1.2.0"

from .core import ALL_PASSES, CompileOptions, compile_c, compile_function, replicate_pipeline
from .frontend import compile_source
from .pipette import PIPETTE_1CORE, PIPETTE_4CORE, SCALED_1CORE, SCALED_4CORE, MachineConfig
from .runtime import describe_run, run_pipeline, run_replicated, run_serial

__all__ = [
    "ALL_PASSES",
    "CompileOptions",
    "compile_c",
    "compile_function",
    "replicate_pipeline",
    "compile_source",
    "PIPETTE_1CORE",
    "PIPETTE_4CORE",
    "SCALED_1CORE",
    "SCALED_4CORE",
    "MachineConfig",
    "describe_run",
    "run_pipeline",
    "run_replicated",
    "run_serial",
]
