"""Handler semantics: requests in, typed responses with captured output out."""

import json

import pytest

from repro import api

KERNEL = """
#pragma phloem
void k(const int* restrict a, const int* restrict b, int* restrict out, int n) {
  for (int i = 0; i < n; i++) {
    int v = a[i];
    out[i] = b[v];
  }
}
"""


def test_emit_summary_response():
    response = api.handle(api.CompileRequest(source=KERNEL, fmt="summary"))
    assert isinstance(response, api.CompileResponse)
    assert response.ok
    assert "stages" in response.output
    assert response.summary is not None and "RAs" in response.summary


def test_handle_accepts_wire_dicts():
    wire = api.CompileRequest(source=KERNEL, fmt="summary").to_wire()
    response = api.handle(wire)
    assert response.ok and "stages" in response.output


def test_handle_rejects_unknown_wire():
    with pytest.raises(api.ApiError):
        api.handle({"schema": "repro.api/request", "version": 1, "verb": "nope"})


def test_lint_clean_kernel():
    response = api.handle(api.LintRequest(source=KERNEL, file="k.c"))
    assert isinstance(response, api.LintResponse)
    assert response.ok
    assert response.errors == 0


BAD_KERNEL = """
#pragma phloem
void bad(int n) {
  #pragma phloem
  n = 1;
}
"""


def test_lint_bad_kernel_collects_diagnostics():
    response = api.handle(api.LintRequest(source=BAD_KERNEL, file="bad.c", json=True))
    assert response.exit_code != 0
    assert response.errors > 0
    assert response.records, "json lint must carry structured diagnostics"
    codes = {d.get("code") for d in response.records}
    assert any(code and code.startswith("PHL") for code in codes)


def test_lint_perf_advisories_flow_through():
    import json as _json

    response = api.handle(api.LintRequest(bench="bfs", perf=True, json=True))
    assert response.ok, "advisories never fail a lint"
    payload = _json.loads(response.output)
    assert payload["schema"] == "repro.diag/lint-report"
    assert payload["version"] == 1
    (entry,) = payload["reports"]
    codes = {d["code"] for d in entry["diagnostics"]}
    assert "PHL401" in codes
    # The structured record stream carries the same advisories.
    assert any(r.get("code") == "PHL401" for r in response.records)


def test_demo_reports_speedup():
    response = api.handle(api.RunRequest(bench="bfs", size=300))
    assert isinstance(response, api.RunResponse)
    assert response.ok
    assert response.speedup is not None and response.speedup > 0
    assert "serial" in response.output and "phloem" in response.output


def test_metrics_records_match_stdout_jsonl():
    response = api.handle(api.MetricsRequest(bench="bfs", size=300, quiet=True))
    assert isinstance(response, api.MetricsResponse)
    assert response.ok
    lines = [json.loads(line) for line in response.output.splitlines() if line.strip()]
    assert lines == response.records
    assert {r["variant"] for r in response.records} >= {"serial", "phloem-static"}


def test_metrics_cache_delta_is_per_request(tmp_path, monkeypatch):
    from repro import cache

    # Cold start regardless of what earlier tests compiled in-process.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cache.reset()
    cold = api.handle(api.MetricsRequest(bench="cc", size=300, seed=7, quiet=True))
    warm = api.handle(api.MetricsRequest(bench="cc", size=300, seed=7, quiet=True))
    assert cold.cache is not None and warm.cache is not None
    assert cold.cache["pipeline"]["misses"] >= 1
    assert warm.cache["pipeline"]["hits"] >= 1
    assert warm.cache["pipeline"]["misses"] == 0
    # Warm-vs-warm runs are deterministic and byte-identical.
    rewarm = api.handle(api.MetricsRequest(bench="cc", size=300, seed=7, quiet=True))
    assert rewarm.output == warm.output


def test_output_is_captured_not_printed(capsys):
    api.handle(api.RunRequest(bench="bfs", size=300))
    assert capsys.readouterr().out == ""


class TestReport:
    def _results_dir(self, tmp_path):
        from repro.obs import run_record, write_jsonl

        write_jsonl(
            [
                run_record("bfs", "serial", "tiny", 1000.0, ok=True),
                run_record("bfs", "phloem-static", "tiny", 400.0, ok=True, speedup=2.5),
            ],
            str(tmp_path / "runs.jsonl"),
        )
        return str(tmp_path)

    def test_report_markdown_is_the_stdout_payload(self, tmp_path):
        response = api.handle(
            api.ReportRequest(results_dir=self._results_dir(tmp_path), baseline=None)
        )
        assert isinstance(response, api.ReportResponse)
        assert response.ok
        assert "## Per-kernel speedups" in response.output
        assert "bfs" in response.output
        assert response.summary["kernels"] == ["bfs"]
        (record,) = response.records
        assert record == response.summary

    def test_report_writes_files_instead_of_stdout(self, tmp_path):
        out = tmp_path / "report.md"
        html_out = tmp_path / "report.html"
        response = api.handle(
            api.ReportRequest(
                results_dir=self._results_dir(tmp_path),
                baseline=None,
                out=str(out),
                html_out=str(html_out),
                quiet=True,
            )
        )
        assert response.ok
        assert response.output == ""
        assert "## Per-kernel speedups" in out.read_text()
        assert html_out.read_text().startswith("<!DOCTYPE html>")

    def test_report_missing_directory_exits_2(self, tmp_path):
        response = api.handle(
            api.ReportRequest(results_dir=str(tmp_path / "nope"), baseline=None)
        )
        assert response.exit_code == 2
        assert "not found" in response.output
